"""Dump the generated OpenCL program for inspection.

Writes the kernel translation unit and the host program the automatic
code generator (Section 5.2) produces for a small heterogeneous
Jacobi-2D design into ``examples/generated/``.

Run:  python examples/codegen_dump.py
"""

import pathlib

from repro import generate_program, jacobi_2d, make_heterogeneous_design


def main() -> None:
    spec = jacobi_2d(grid=(256, 256), iterations=64)
    design = make_heterogeneous_design(
        spec, region_shape=(128, 128), counts=(2, 2), fused_depth=8,
        unroll=2,
    )
    program = generate_program(design)

    out_dir = pathlib.Path(__file__).parent / "generated"
    out_dir.mkdir(exist_ok=True)
    kernel_path = out_dir / "jacobi2d_heterogeneous.cl"
    host_path = out_dir / "jacobi2d_host.c"
    kernel_path.write_text(program.kernel_source)
    host_path.write_text(program.host_source)

    print(f"Design: {design.describe()}")
    print(f"Wrote {kernel_path} "
          f"({len(program.kernel_source.splitlines())} lines, "
          f"{program.num_kernels} kernels, "
          f"{program.kernel_source.count('pipe float')} pipes)")
    print(f"Wrote {host_path} "
          f"({len(program.host_source.splitlines())} lines)")
    print()
    print("First kernel preview:")
    in_kernel = False
    shown = 0
    for line in program.kernel_source.splitlines():
        if line.startswith("__kernel"):
            in_kernel = True
        if in_kernel:
            print("  " + line)
            shown += 1
            if shown > 30:
                print("  ...")
                break


if __name__ == "__main__":
    main()
