// Auto-generated coresident pipeline for stencil program blur-sobel-threshold: 3 stages, 2 forwarded edge(s).
#include "stencil_runtime.h"

// On-chip forwarding pipes for aligned edges.
pipe float fwd_blur_a_to_sobel_t0_0 __attribute__((xcl_reqd_pipe_depth(32)));
pipe float fwd_blur_a_to_sobel_t0_1 __attribute__((xcl_reqd_pipe_depth(32)));
pipe float fwd_sobel_a_to_threshold_t0_0 __attribute__((xcl_reqd_pipe_depth(512)));
pipe float fwd_sobel_a_to_threshold_t0_1 __attribute__((xcl_reqd_pipe_depth(512)));

// === stage blur ========================================
// Auto-generated pipe-shared design for gaussian-blur-2d: h=4, K=2, unroll=1.


#define W0 128
#define W1 128

// OpenCL 2.0 pipes bridging adjacent tiles (two per face).
pipe float blur_pipe_0_0_to_0_1_d1 __attribute__((xcl_reqd_pipe_depth(32)));
pipe float blur_pipe_0_1_to_0_0_d1 __attribute__((xcl_reqd_pipe_depth(32)));

// Per-iteration compute bounds: dimension d covers [LO(d, it), HI(d, it)) in local-buffer coordinates.
#define T_LO0(it) (1 + 1 * (it))
#define T_HI0(it) (135 - 1 * (it))
#define T_EXT0 136
#define T_LO1(it) (1 + 1 * (it))
#define T_HI1(it) (68 - 0 * (it))
#define T_EXT1 69
__attribute__((reqd_work_group_size(1, 1, 1)))
__kernel void stencil_gaussian_blur_2d_k0_0(
        __global float *restrict g_a,
        __global float *restrict g_a_out,
        const int g0,
        const int g1) {
    // Tile (0, 0): output (128, 64), local footprint (136, 69).
    __local float buf_a[136][69];
    __local float new_a[136][69];
    // Burst-read the tile footprint from global memory.
    burst_read(g_a, (__local float *)buf_a, 9384);
    for (int it = 0; it < 4; ++it) {
        for (int x0 = T_LO0(it); x0 < T_HI0(it); ++x0) {
            for (int x1 = T_LO1(it); x1 < T_HI1(it); ++x1) {
                // Skip frozen cells at the physical array border.
                if (g0 + x0 >= 1 && g0 + x0 < W0 - 1 && g1 + x1 >= 1 && g1 + x1 < W1 - 1) {
                    new_a[x0][x1] = 0.0625f * buf_a[x0 - 1][x1 - 1] + 0.125f * buf_a[x0 - 1][x1] + 0.0625f * buf_a[x0 - 1][x1 + 1] + 0.125f * buf_a[x0][x1 - 1] + 0.25f * buf_a[x0][x1] + 0.125f * buf_a[x0][x1 + 1] + 0.0625f * buf_a[x0 + 1][x1 - 1] + 0.125f * buf_a[x0 + 1][x1] + 0.0625f * buf_a[x0 + 1][x1 + 1];
                }
                else {
                    new_a[x0][x1] = buf_a[x0][x1];
                }
            }
        }
        // Push freshly computed boundary strips to neighbors.
        for (int x0 = T_LO0(it); x0 < T_HI0(it); ++x0) {
            for (int x1 = 68 - 1; x1 < 68 - 1 + 1; ++x1) {
                write_pipe_block(blur_pipe_0_0_to_0_1_d1, &buf_a[x0][x1]);
            }
        }
        // Ping-pong the tile buffers.
        swap_buffers(&buf_a, &new_a);
        if (it + 1 < 4) {
            // Drain neighbor halo strips for the next iteration.
            for (int x0 = T_LO0(it); x0 < T_HI0(it); ++x0) {
                for (int x1 = 68; x1 < 68 + 1; ++x1) {
                    read_pipe_block(blur_pipe_0_1_to_0_0_d1, &buf_a[x0][x1]);
                }
            }
        }
    }
    // Burst-write the tile's output cells back.
    burst_write(g_a_out, (__local float *)buf_a, 8192);
}
#undef T_LO0
#undef T_HI0
#undef T_EXT0
#undef T_LO1
#undef T_HI1
#undef T_EXT1

// Per-iteration compute bounds: dimension d covers [LO(d, it), HI(d, it)) in local-buffer coordinates.
#define T_LO0(it) (1 + 1 * (it))
#define T_HI0(it) (135 - 1 * (it))
#define T_EXT0 136
#define T_LO1(it) (1 + 0 * (it))
#define T_HI1(it) (68 - 1 * (it))
#define T_EXT1 69
__attribute__((reqd_work_group_size(1, 1, 1)))
__kernel void stencil_gaussian_blur_2d_k0_1(
        __global float *restrict g_a,
        __global float *restrict g_a_out,
        const int g0,
        const int g1) {
    // Tile (0, 1): output (128, 64), local footprint (136, 69).
    __local float buf_a[136][69];
    __local float new_a[136][69];
    // Burst-read the tile footprint from global memory.
    burst_read(g_a, (__local float *)buf_a, 9384);
    for (int it = 0; it < 4; ++it) {
        for (int x0 = T_LO0(it); x0 < T_HI0(it); ++x0) {
            for (int x1 = T_LO1(it); x1 < T_HI1(it); ++x1) {
                // Skip frozen cells at the physical array border.
                if (g0 + x0 >= 1 && g0 + x0 < W0 - 1 && g1 + x1 >= 1 && g1 + x1 < W1 - 1) {
                    new_a[x0][x1] = 0.0625f * buf_a[x0 - 1][x1 - 1] + 0.125f * buf_a[x0 - 1][x1] + 0.0625f * buf_a[x0 - 1][x1 + 1] + 0.125f * buf_a[x0][x1 - 1] + 0.25f * buf_a[x0][x1] + 0.125f * buf_a[x0][x1 + 1] + 0.0625f * buf_a[x0 + 1][x1 - 1] + 0.125f * buf_a[x0 + 1][x1] + 0.0625f * buf_a[x0 + 1][x1 + 1];
                }
                else {
                    new_a[x0][x1] = buf_a[x0][x1];
                }
            }
        }
        // Push freshly computed boundary strips to neighbors.
        for (int x0 = T_LO0(it); x0 < T_HI0(it); ++x0) {
            for (int x1 = 1; x1 < 1 + 1; ++x1) {
                write_pipe_block(blur_pipe_0_1_to_0_0_d1, &buf_a[x0][x1]);
            }
        }
        // Ping-pong the tile buffers.
        swap_buffers(&buf_a, &new_a);
        if (it + 1 < 4) {
            // Drain neighbor halo strips for the next iteration.
            for (int x0 = T_LO0(it); x0 < T_HI0(it); ++x0) {
                for (int x1 = 1 - 1; x1 < 1 - 1 + 1; ++x1) {
                    read_pipe_block(blur_pipe_0_0_to_0_1_d1, &buf_a[x0][x1]);
                }
            }
        }
    }
    // Burst-write the tile's output cells back.
    burst_write(g_a_out, (__local float *)buf_a, 8192);
}
#undef T_LO0
#undef T_HI0
#undef T_EXT0
#undef T_LO1
#undef T_HI1
#undef T_EXT1
#undef W0
#undef W1

// === stage sobel ========================================
// Auto-generated baseline design for sobel-x-2d: h=1, K=2, unroll=1.


#define W0 128
#define W1 128

// Baseline design: no inter-kernel pipes.

// Per-iteration compute bounds: dimension d covers [LO(d, it), HI(d, it)) in local-buffer coordinates.
#define T_LO0(it) (1 + 1 * (it))
#define T_HI0(it) (129 - 1 * (it))
#define T_EXT0 130
#define T_LO1(it) (1 + 1 * (it))
#define T_HI1(it) (65 - 1 * (it))
#define T_EXT1 66
__attribute__((reqd_work_group_size(1, 1, 1)))
__kernel void stencil_sobel_x_2d_k0_0(
        __global float *restrict g_a,
        __global float *restrict g_a_out,
        const int g0,
        const int g1) {
    // Tile (0, 0): output (128, 64), local footprint (130, 66).
    __local float buf_a[130][66];
    __local float new_a[130][66];
    // Burst-read the tile footprint from global memory.
    burst_read(g_a, (__local float *)buf_a, 8580);
    for (int it = 0; it < 1; ++it) {
        for (int x0 = T_LO0(it); x0 < T_HI0(it); ++x0) {
            for (int x1 = T_LO1(it); x1 < T_HI1(it); ++x1) {
                // Skip frozen cells at the physical array border.
                if (g0 + x0 >= 1 && g0 + x0 < W0 - 1 && g1 + x1 >= 1 && g1 + x1 < W1 - 1) {
                    new_a[x0][x1] = -0.125f * buf_a[x0 - 1][x1 - 1] + 0.125f * buf_a[x0 - 1][x1 + 1] + -0.25f * buf_a[x0][x1 - 1] + 0.25f * buf_a[x0][x1 + 1] + -0.125f * buf_a[x0 + 1][x1 - 1] + 0.125f * buf_a[x0 + 1][x1 + 1];
                }
                else {
                    new_a[x0][x1] = buf_a[x0][x1];
                }
            }
        }
        // Ping-pong the tile buffers.
        swap_buffers(&buf_a, &new_a);
    }
    // Burst-write the tile's output cells back.
    burst_write(g_a_out, (__local float *)buf_a, 8192);
}
#undef T_LO0
#undef T_HI0
#undef T_EXT0
#undef T_LO1
#undef T_HI1
#undef T_EXT1

// Per-iteration compute bounds: dimension d covers [LO(d, it), HI(d, it)) in local-buffer coordinates.
#define T_LO0(it) (1 + 1 * (it))
#define T_HI0(it) (129 - 1 * (it))
#define T_EXT0 130
#define T_LO1(it) (1 + 1 * (it))
#define T_HI1(it) (65 - 1 * (it))
#define T_EXT1 66
__attribute__((reqd_work_group_size(1, 1, 1)))
__kernel void stencil_sobel_x_2d_k0_1(
        __global float *restrict g_a,
        __global float *restrict g_a_out,
        const int g0,
        const int g1) {
    // Tile (0, 1): output (128, 64), local footprint (130, 66).
    __local float buf_a[130][66];
    __local float new_a[130][66];
    // Burst-read the tile footprint from global memory.
    burst_read(g_a, (__local float *)buf_a, 8580);
    for (int it = 0; it < 1; ++it) {
        for (int x0 = T_LO0(it); x0 < T_HI0(it); ++x0) {
            for (int x1 = T_LO1(it); x1 < T_HI1(it); ++x1) {
                // Skip frozen cells at the physical array border.
                if (g0 + x0 >= 1 && g0 + x0 < W0 - 1 && g1 + x1 >= 1 && g1 + x1 < W1 - 1) {
                    new_a[x0][x1] = -0.125f * buf_a[x0 - 1][x1 - 1] + 0.125f * buf_a[x0 - 1][x1 + 1] + -0.25f * buf_a[x0][x1 - 1] + 0.25f * buf_a[x0][x1 + 1] + -0.125f * buf_a[x0 + 1][x1 - 1] + 0.125f * buf_a[x0 + 1][x1 + 1];
                }
                else {
                    new_a[x0][x1] = buf_a[x0][x1];
                }
            }
        }
        // Ping-pong the tile buffers.
        swap_buffers(&buf_a, &new_a);
    }
    // Burst-write the tile's output cells back.
    burst_write(g_a_out, (__local float *)buf_a, 8192);
}
#undef T_LO0
#undef T_HI0
#undef T_EXT0
#undef T_LO1
#undef T_HI1
#undef T_EXT1
#undef W0
#undef W1

// === stage threshold ========================================
// Auto-generated baseline design for contrast-threshold-2d: h=1, K=2, unroll=1.


#define W0 128
#define W1 128

// Baseline design: no inter-kernel pipes.

// Per-iteration compute bounds: dimension d covers [LO(d, it), HI(d, it)) in local-buffer coordinates.
#define T_LO0(it) (1 + 1 * (it))
#define T_HI0(it) (129 - 1 * (it))
#define T_EXT0 130
#define T_LO1(it) (1 + 1 * (it))
#define T_HI1(it) (65 - 1 * (it))
#define T_EXT1 66
__attribute__((reqd_work_group_size(1, 1, 1)))
__kernel void stencil_contrast_threshold_2d_k0_0(
        __global float *restrict g_a,
        __global float *restrict g_a_out,
        const int g0,
        const int g1) {
    // Tile (0, 0): output (128, 64), local footprint (130, 66).
    __local float buf_a[130][66];
    __local float new_a[130][66];
    // Burst-read the tile footprint from global memory.
    burst_read(g_a, (__local float *)buf_a, 8580);
    for (int it = 0; it < 1; ++it) {
        for (int x0 = T_LO0(it); x0 < T_HI0(it); ++x0) {
            for (int x1 = T_LO1(it); x1 < T_HI1(it); ++x1) {
                // Skip frozen cells at the physical array border.
                if (g0 + x0 >= 1 && g0 + x0 < W0 - 1 && g1 + x1 >= 1 && g1 + x1 < W1 - 1) {
                    new_a[x0][x1] = 2.4f * buf_a[x0][x1] + -0.35f * buf_a[x0 - 1][x1] + -0.35f * buf_a[x0 + 1][x1] + -0.35f * buf_a[x0][x1 - 1] + -0.35f * buf_a[x0][x1 + 1] + -0.175f;
                }
                else {
                    new_a[x0][x1] = buf_a[x0][x1];
                }
            }
        }
        // Ping-pong the tile buffers.
        swap_buffers(&buf_a, &new_a);
    }
    // Burst-write the tile's output cells back.
    burst_write(g_a_out, (__local float *)buf_a, 8192);
}
#undef T_LO0
#undef T_HI0
#undef T_EXT0
#undef T_LO1
#undef T_HI1
#undef T_EXT1

// Per-iteration compute bounds: dimension d covers [LO(d, it), HI(d, it)) in local-buffer coordinates.
#define T_LO0(it) (1 + 1 * (it))
#define T_HI0(it) (129 - 1 * (it))
#define T_EXT0 130
#define T_LO1(it) (1 + 1 * (it))
#define T_HI1(it) (65 - 1 * (it))
#define T_EXT1 66
__attribute__((reqd_work_group_size(1, 1, 1)))
__kernel void stencil_contrast_threshold_2d_k0_1(
        __global float *restrict g_a,
        __global float *restrict g_a_out,
        const int g0,
        const int g1) {
    // Tile (0, 1): output (128, 64), local footprint (130, 66).
    __local float buf_a[130][66];
    __local float new_a[130][66];
    // Burst-read the tile footprint from global memory.
    burst_read(g_a, (__local float *)buf_a, 8580);
    for (int it = 0; it < 1; ++it) {
        for (int x0 = T_LO0(it); x0 < T_HI0(it); ++x0) {
            for (int x1 = T_LO1(it); x1 < T_HI1(it); ++x1) {
                // Skip frozen cells at the physical array border.
                if (g0 + x0 >= 1 && g0 + x0 < W0 - 1 && g1 + x1 >= 1 && g1 + x1 < W1 - 1) {
                    new_a[x0][x1] = 2.4f * buf_a[x0][x1] + -0.35f * buf_a[x0 - 1][x1] + -0.35f * buf_a[x0 + 1][x1] + -0.35f * buf_a[x0][x1 - 1] + -0.35f * buf_a[x0][x1 + 1] + -0.175f;
                }
                else {
                    new_a[x0][x1] = buf_a[x0][x1];
                }
            }
        }
        // Ping-pong the tile buffers.
        swap_buffers(&buf_a, &new_a);
    }
    // Burst-write the tile's output cells back.
    burst_write(g_a_out, (__local float *)buf_a, 8192);
}
#undef T_LO0
#undef T_HI0
#undef T_EXT0
#undef T_LO1
#undef T_HI1
#undef T_EXT1
#undef W0
#undef W1

