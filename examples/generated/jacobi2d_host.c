// Auto-generated host program for jacobi-2d (heterogeneous, h=8).
#include <CL/cl.h>
#include "stencil_host.h"

int main(int argc, char **argv) {
    cl_context ctx = stencil_create_context("xilinx_adm-pcie-7v3");
    cl_command_queue queue = stencil_create_queue(ctx);
    cl_mem d_a = stencil_alloc(ctx, 65536 * sizeof(float));
    cl_mem d_a_out = stencil_alloc(ctx, 65536 * sizeof(float));

    // 8 temporal blocks x 4 regions x 4 kernels.
    for (int block = 0; block < 8; ++block) {
        for (int region = 0; region < 4; ++region) {
            int origin[2]; stencil_region_origin(region, origin, 128, 128);
            // Launch every tile kernel; launches are issued sequentially.
            stencil_launch(queue, "stencil_jacobi_2d_k0_0", origin[0] + 0, origin[1] + 0);
            stencil_launch(queue, "stencil_jacobi_2d_k0_1", origin[0] + 0, origin[1] + 64);
            stencil_launch(queue, "stencil_jacobi_2d_k1_0", origin[0] + 64, origin[1] + 0);
            stencil_launch(queue, "stencil_jacobi_2d_k1_1", origin[0] + 64, origin[1] + 64);
            // Block barrier: all tiles must commit before the next.
            clFinish(queue);
            // Swap global ping-pong buffers.
            stencil_swap(&d_a, &d_a_out);
        }
    }
    return 0;
}
