// Auto-generated heterogeneous design for jacobi-2d: h=8, K=4, unroll=2.
#include "stencil_runtime.h"

#define W0 256
#define W1 256

// OpenCL 2.0 pipes bridging adjacent tiles (two per face).
pipe float pipe_0_0_to_1_0_d0 __attribute__((xcl_reqd_pipe_depth(32)));
pipe float pipe_1_0_to_0_0_d0 __attribute__((xcl_reqd_pipe_depth(32)));
pipe float pipe_0_0_to_0_1_d1 __attribute__((xcl_reqd_pipe_depth(32)));
pipe float pipe_0_1_to_0_0_d1 __attribute__((xcl_reqd_pipe_depth(32)));
pipe float pipe_0_1_to_1_1_d0 __attribute__((xcl_reqd_pipe_depth(32)));
pipe float pipe_1_1_to_0_1_d0 __attribute__((xcl_reqd_pipe_depth(32)));
pipe float pipe_1_0_to_1_1_d1 __attribute__((xcl_reqd_pipe_depth(32)));
pipe float pipe_1_1_to_1_0_d1 __attribute__((xcl_reqd_pipe_depth(32)));

// Per-iteration compute bounds: dimension d covers [LO(d, it), HI(d, it)) in local-buffer coordinates.
#define T_LO0(it) (1 + 1 * (it))
#define T_HI0(it) (72 - 0 * (it))
#define T_EXT0 73
#define T_LO1(it) (1 + 1 * (it))
#define T_HI1(it) (72 - 0 * (it))
#define T_EXT1 73
__attribute__((reqd_work_group_size(1, 1, 1)))
__kernel void stencil_jacobi_2d_k0_0(
        __global float *restrict g_a,
        __global float *restrict g_a_out,
        const int g0,
        const int g1) {
    // Tile (0, 0): output (64, 64), local footprint (73, 73).
    __local float buf_a[73][73];
    __local float new_a[73][73];
    // Burst-read the tile footprint from global memory.
    burst_read(g_a, (__local float *)buf_a, 5329);
    for (int it = 0; it < 8; ++it) {
        for (int x0 = T_LO0(it); x0 < T_HI0(it); ++x0) {
            __attribute__((opencl_unroll_hint(2)))
            for (int x1 = T_LO1(it); x1 < T_HI1(it); ++x1) {
                // Skip frozen cells at the physical array border.
                if (g0 + x0 >= 1 && g0 + x0 < W0 - 1 && g1 + x1 >= 1 && g1 + x1 < W1 - 1) {
                    new_a[x0][x1] = 0.2f * buf_a[x0][x1] + 0.2f * buf_a[x0 - 1][x1] + 0.2f * buf_a[x0 + 1][x1] + 0.2f * buf_a[x0][x1 - 1] + 0.2f * buf_a[x0][x1 + 1];
                }
                else {
                    new_a[x0][x1] = buf_a[x0][x1];
                }
            }
        }
        // Push freshly computed boundary strips to neighbors.
        for (int x0 = 72 - 1; x0 < 72 - 1 + 1; ++x0) {
            for (int x1 = T_LO1(it); x1 < T_HI1(it); ++x1) {
                write_pipe_block(pipe_0_0_to_1_0_d0, &buf_a[x0][x1]);
            }
        }
        for (int x0 = T_LO0(it); x0 < T_HI0(it); ++x0) {
            for (int x1 = 72 - 1; x1 < 72 - 1 + 1; ++x1) {
                write_pipe_block(pipe_0_0_to_0_1_d1, &buf_a[x0][x1]);
            }
        }
        // Ping-pong the tile buffers.
        swap_buffers(&buf_a, &new_a);
        if (it + 1 < 8) {
            // Drain neighbor halo strips for the next iteration.
            for (int x0 = 72; x0 < 72 + 1; ++x0) {
                for (int x1 = T_LO1(it); x1 < T_HI1(it); ++x1) {
                    read_pipe_block(pipe_1_0_to_0_0_d0, &buf_a[x0][x1]);
                }
            }
            for (int x0 = T_LO0(it); x0 < T_HI0(it); ++x0) {
                for (int x1 = 72; x1 < 72 + 1; ++x1) {
                    read_pipe_block(pipe_0_1_to_0_0_d1, &buf_a[x0][x1]);
                }
            }
        }
    }
    // Burst-write the tile's output cells back.
    burst_write(g_a_out, (__local float *)buf_a, 4096);
}
#undef T_LO0
#undef T_HI0
#undef T_EXT0
#undef T_LO1
#undef T_HI1
#undef T_EXT1

// Per-iteration compute bounds: dimension d covers [LO(d, it), HI(d, it)) in local-buffer coordinates.
#define T_LO0(it) (1 + 1 * (it))
#define T_HI0(it) (72 - 0 * (it))
#define T_EXT0 73
#define T_LO1(it) (1 + 0 * (it))
#define T_HI1(it) (72 - 1 * (it))
#define T_EXT1 73
__attribute__((reqd_work_group_size(1, 1, 1)))
__kernel void stencil_jacobi_2d_k0_1(
        __global float *restrict g_a,
        __global float *restrict g_a_out,
        const int g0,
        const int g1) {
    // Tile (0, 1): output (64, 64), local footprint (73, 73).
    __local float buf_a[73][73];
    __local float new_a[73][73];
    // Burst-read the tile footprint from global memory.
    burst_read(g_a, (__local float *)buf_a, 5329);
    for (int it = 0; it < 8; ++it) {
        for (int x0 = T_LO0(it); x0 < T_HI0(it); ++x0) {
            __attribute__((opencl_unroll_hint(2)))
            for (int x1 = T_LO1(it); x1 < T_HI1(it); ++x1) {
                // Skip frozen cells at the physical array border.
                if (g0 + x0 >= 1 && g0 + x0 < W0 - 1 && g1 + x1 >= 1 && g1 + x1 < W1 - 1) {
                    new_a[x0][x1] = 0.2f * buf_a[x0][x1] + 0.2f * buf_a[x0 - 1][x1] + 0.2f * buf_a[x0 + 1][x1] + 0.2f * buf_a[x0][x1 - 1] + 0.2f * buf_a[x0][x1 + 1];
                }
                else {
                    new_a[x0][x1] = buf_a[x0][x1];
                }
            }
        }
        // Push freshly computed boundary strips to neighbors.
        for (int x0 = T_LO0(it); x0 < T_HI0(it); ++x0) {
            for (int x1 = 1; x1 < 1 + 1; ++x1) {
                write_pipe_block(pipe_0_1_to_0_0_d1, &buf_a[x0][x1]);
            }
        }
        for (int x0 = 72 - 1; x0 < 72 - 1 + 1; ++x0) {
            for (int x1 = T_LO1(it); x1 < T_HI1(it); ++x1) {
                write_pipe_block(pipe_0_1_to_1_1_d0, &buf_a[x0][x1]);
            }
        }
        // Ping-pong the tile buffers.
        swap_buffers(&buf_a, &new_a);
        if (it + 1 < 8) {
            // Drain neighbor halo strips for the next iteration.
            for (int x0 = T_LO0(it); x0 < T_HI0(it); ++x0) {
                for (int x1 = 1 - 1; x1 < 1 - 1 + 1; ++x1) {
                    read_pipe_block(pipe_0_0_to_0_1_d1, &buf_a[x0][x1]);
                }
            }
            for (int x0 = 72; x0 < 72 + 1; ++x0) {
                for (int x1 = T_LO1(it); x1 < T_HI1(it); ++x1) {
                    read_pipe_block(pipe_1_1_to_0_1_d0, &buf_a[x0][x1]);
                }
            }
        }
    }
    // Burst-write the tile's output cells back.
    burst_write(g_a_out, (__local float *)buf_a, 4096);
}
#undef T_LO0
#undef T_HI0
#undef T_EXT0
#undef T_LO1
#undef T_HI1
#undef T_EXT1

// Per-iteration compute bounds: dimension d covers [LO(d, it), HI(d, it)) in local-buffer coordinates.
#define T_LO0(it) (1 + 0 * (it))
#define T_HI0(it) (72 - 1 * (it))
#define T_EXT0 73
#define T_LO1(it) (1 + 1 * (it))
#define T_HI1(it) (72 - 0 * (it))
#define T_EXT1 73
__attribute__((reqd_work_group_size(1, 1, 1)))
__kernel void stencil_jacobi_2d_k1_0(
        __global float *restrict g_a,
        __global float *restrict g_a_out,
        const int g0,
        const int g1) {
    // Tile (1, 0): output (64, 64), local footprint (73, 73).
    __local float buf_a[73][73];
    __local float new_a[73][73];
    // Burst-read the tile footprint from global memory.
    burst_read(g_a, (__local float *)buf_a, 5329);
    for (int it = 0; it < 8; ++it) {
        for (int x0 = T_LO0(it); x0 < T_HI0(it); ++x0) {
            __attribute__((opencl_unroll_hint(2)))
            for (int x1 = T_LO1(it); x1 < T_HI1(it); ++x1) {
                // Skip frozen cells at the physical array border.
                if (g0 + x0 >= 1 && g0 + x0 < W0 - 1 && g1 + x1 >= 1 && g1 + x1 < W1 - 1) {
                    new_a[x0][x1] = 0.2f * buf_a[x0][x1] + 0.2f * buf_a[x0 - 1][x1] + 0.2f * buf_a[x0 + 1][x1] + 0.2f * buf_a[x0][x1 - 1] + 0.2f * buf_a[x0][x1 + 1];
                }
                else {
                    new_a[x0][x1] = buf_a[x0][x1];
                }
            }
        }
        // Push freshly computed boundary strips to neighbors.
        for (int x0 = 1; x0 < 1 + 1; ++x0) {
            for (int x1 = T_LO1(it); x1 < T_HI1(it); ++x1) {
                write_pipe_block(pipe_1_0_to_0_0_d0, &buf_a[x0][x1]);
            }
        }
        for (int x0 = T_LO0(it); x0 < T_HI0(it); ++x0) {
            for (int x1 = 72 - 1; x1 < 72 - 1 + 1; ++x1) {
                write_pipe_block(pipe_1_0_to_1_1_d1, &buf_a[x0][x1]);
            }
        }
        // Ping-pong the tile buffers.
        swap_buffers(&buf_a, &new_a);
        if (it + 1 < 8) {
            // Drain neighbor halo strips for the next iteration.
            for (int x0 = 1 - 1; x0 < 1 - 1 + 1; ++x0) {
                for (int x1 = T_LO1(it); x1 < T_HI1(it); ++x1) {
                    read_pipe_block(pipe_0_0_to_1_0_d0, &buf_a[x0][x1]);
                }
            }
            for (int x0 = T_LO0(it); x0 < T_HI0(it); ++x0) {
                for (int x1 = 72; x1 < 72 + 1; ++x1) {
                    read_pipe_block(pipe_1_1_to_1_0_d1, &buf_a[x0][x1]);
                }
            }
        }
    }
    // Burst-write the tile's output cells back.
    burst_write(g_a_out, (__local float *)buf_a, 4096);
}
#undef T_LO0
#undef T_HI0
#undef T_EXT0
#undef T_LO1
#undef T_HI1
#undef T_EXT1

// Per-iteration compute bounds: dimension d covers [LO(d, it), HI(d, it)) in local-buffer coordinates.
#define T_LO0(it) (1 + 0 * (it))
#define T_HI0(it) (72 - 1 * (it))
#define T_EXT0 73
#define T_LO1(it) (1 + 0 * (it))
#define T_HI1(it) (72 - 1 * (it))
#define T_EXT1 73
__attribute__((reqd_work_group_size(1, 1, 1)))
__kernel void stencil_jacobi_2d_k1_1(
        __global float *restrict g_a,
        __global float *restrict g_a_out,
        const int g0,
        const int g1) {
    // Tile (1, 1): output (64, 64), local footprint (73, 73).
    __local float buf_a[73][73];
    __local float new_a[73][73];
    // Burst-read the tile footprint from global memory.
    burst_read(g_a, (__local float *)buf_a, 5329);
    for (int it = 0; it < 8; ++it) {
        for (int x0 = T_LO0(it); x0 < T_HI0(it); ++x0) {
            __attribute__((opencl_unroll_hint(2)))
            for (int x1 = T_LO1(it); x1 < T_HI1(it); ++x1) {
                // Skip frozen cells at the physical array border.
                if (g0 + x0 >= 1 && g0 + x0 < W0 - 1 && g1 + x1 >= 1 && g1 + x1 < W1 - 1) {
                    new_a[x0][x1] = 0.2f * buf_a[x0][x1] + 0.2f * buf_a[x0 - 1][x1] + 0.2f * buf_a[x0 + 1][x1] + 0.2f * buf_a[x0][x1 - 1] + 0.2f * buf_a[x0][x1 + 1];
                }
                else {
                    new_a[x0][x1] = buf_a[x0][x1];
                }
            }
        }
        // Push freshly computed boundary strips to neighbors.
        for (int x0 = 1; x0 < 1 + 1; ++x0) {
            for (int x1 = T_LO1(it); x1 < T_HI1(it); ++x1) {
                write_pipe_block(pipe_1_1_to_0_1_d0, &buf_a[x0][x1]);
            }
        }
        for (int x0 = T_LO0(it); x0 < T_HI0(it); ++x0) {
            for (int x1 = 1; x1 < 1 + 1; ++x1) {
                write_pipe_block(pipe_1_1_to_1_0_d1, &buf_a[x0][x1]);
            }
        }
        // Ping-pong the tile buffers.
        swap_buffers(&buf_a, &new_a);
        if (it + 1 < 8) {
            // Drain neighbor halo strips for the next iteration.
            for (int x0 = 1 - 1; x0 < 1 - 1 + 1; ++x0) {
                for (int x1 = T_LO1(it); x1 < T_HI1(it); ++x1) {
                    read_pipe_block(pipe_0_1_to_1_1_d0, &buf_a[x0][x1]);
                }
            }
            for (int x0 = T_LO0(it); x0 < T_HI0(it); ++x0) {
                for (int x1 = 1 - 1; x1 < 1 - 1 + 1; ++x1) {
                    read_pipe_block(pipe_1_0_to_1_1_d1, &buf_a[x0][x1]);
                }
            }
        }
    }
    // Burst-write the tile's output cells back.
    burst_write(g_a_out, (__local float *)buf_a, 4096);
}
#undef T_LO0
#undef T_HI0
#undef T_EXT0
#undef T_LO1
#undef T_HI1
#undef T_EXT1
