// Auto-generated host program for stencil program blur-sobel-threshold (coresident, 3 stages).
#include <CL/cl.h>
#include "stencil_host.h"

int main(int argc, char **argv) {
    cl_context ctx = stencil_create_context("xilinx_adm-pcie-7v3");
    cl_command_queue queue = stencil_create_queue(ctx);
    // DDR spill buffers for non-forwarded inter-stage edges.

    // Stage blur: gaussian-blur-2d (h=4, K=2).
    stencil_run_stage_blur(ctx, queue);
    clFinish(queue);

    // Stage sobel: sobel-x-2d (h=1, K=2).
    // Input a streams on-chip from stage blur (forwarded).
    stencil_run_stage_sobel(ctx, queue);
    clFinish(queue);

    // Stage threshold: contrast-threshold-2d (h=1, K=2).
    // Input a streams on-chip from stage sobel (forwarded).
    stencil_run_stage_threshold(ctx, queue);
    clFinish(queue);
    return 0;
}

// --- stage blur driver ------------------------------
// Auto-generated host program for gaussian-blur-2d (pipe-shared, h=4).

int stencil_run_stage_blur(cl_context ctx, cl_command_queue queue) {
            cl_mem d_a = stencil_alloc(ctx, 16384 * sizeof(float));
    cl_mem d_a_out = stencil_alloc(ctx, 16384 * sizeof(float));

    // 2 temporal blocks x 1 regions x 2 kernels.
    for (int block = 0; block < 2; ++block) {
        for (int region = 0; region < 1; ++region) {
            int origin[2]; stencil_region_origin(region, origin, 128, 128);
            // Launch every tile kernel; launches are issued sequentially.
            stencil_launch(queue, "stencil_gaussian_blur_2d_k0_0", origin[0] + 0, origin[1] + 0);
            stencil_launch(queue, "stencil_gaussian_blur_2d_k0_1", origin[0] + 0, origin[1] + 64);
            // Block barrier: all tiles must commit before the next.
            clFinish(queue);
            // Swap global ping-pong buffers.
            stencil_swap(&d_a, &d_a_out);
        }
    }
    return 0;
}

// --- stage sobel driver ------------------------------
// Auto-generated host program for sobel-x-2d (baseline, h=1).

int stencil_run_stage_sobel(cl_context ctx, cl_command_queue queue) {
            cl_mem d_a = stencil_alloc(ctx, 16384 * sizeof(float));
    cl_mem d_a_out = stencil_alloc(ctx, 16384 * sizeof(float));

    // 1 temporal blocks x 1 regions x 2 kernels.
    for (int block = 0; block < 1; ++block) {
        for (int region = 0; region < 1; ++region) {
            int origin[2]; stencil_region_origin(region, origin, 128, 128);
            // Launch every tile kernel; launches are issued sequentially.
            stencil_launch(queue, "stencil_sobel_x_2d_k0_0", origin[0] + 0, origin[1] + 0);
            stencil_launch(queue, "stencil_sobel_x_2d_k0_1", origin[0] + 0, origin[1] + 64);
            // Block barrier: all tiles must commit before the next.
            clFinish(queue);
            // Swap global ping-pong buffers.
            stencil_swap(&d_a, &d_a_out);
        }
    }
    return 0;
}

// --- stage threshold driver ------------------------------
// Auto-generated host program for contrast-threshold-2d (baseline, h=1).

int stencil_run_stage_threshold(cl_context ctx, cl_command_queue queue) {
            cl_mem d_a = stencil_alloc(ctx, 16384 * sizeof(float));
    cl_mem d_a_out = stencil_alloc(ctx, 16384 * sizeof(float));

    // 1 temporal blocks x 1 regions x 2 kernels.
    for (int block = 0; block < 1; ++block) {
        for (int region = 0; region < 1; ++region) {
            int origin[2]; stencil_region_origin(region, origin, 128, 128);
            // Launch every tile kernel; launches are issued sequentially.
            stencil_launch(queue, "stencil_contrast_threshold_2d_k0_0", origin[0] + 0, origin[1] + 0);
            stencil_launch(queue, "stencil_contrast_threshold_2d_k0_1", origin[0] + 0, origin[1] + 64);
            // Block barrier: all tiles must commit before the next.
            clFinish(queue);
            // Swap global ping-pong buffers.
            stencil_swap(&d_a, &d_a_out);
        }
    }
    return 0;
}

