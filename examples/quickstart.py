"""Quickstart: the paper's whole flow in one call.

:func:`repro.synthesize` chains the framework's pipeline — workload
resolution, the state-of-the-art overlapped-tiling baseline, the
model-driven design-space exploration, and OpenCL code generation —
exactly as the paper's Fig. 5 push-button flow.  This script runs it
for Jacobi-2D at paper scale and then measures both designs on the
cycle simulator.

Run:  python examples/quickstart.py
"""

from repro import simulate, synthesize


def main() -> None:
    # One call: jacobi-2d in, optimized heterogeneous design +
    # generated OpenCL program out.  The baseline parameters mirror
    # the paper's Table 3 configuration (4x4 parallel kernels,
    # 128x128 tiles, 32 fused iterations).
    synth = synthesize(
        benchmark="jacobi-2d",
        tile_shape=(128, 128),
        counts=(4, 4),
        fused_depth=32,
        unroll=4,
    )
    print(f"Workload: {synth.spec.describe()}")
    print(f"Baseline:      {synth.baseline.describe()}")
    print(f"  redundant/useful computation: "
          f"{synth.baseline.redundancy_ratio():.2f}")
    print(f"Heterogeneous: {synth.design.describe()}")
    print(f"  explored {synth.dse.evaluated} candidates, "
          f"{synth.dse.feasible} feasible")
    print(f"  redundant/useful computation: "
          f"{synth.design.redundancy_ratio():.2f}")

    # Resources (the paper's Table 3 columns).  The facade reports the
    # chosen design's utilization; score the baseline on the same
    # engine for the comparison row.
    base_res = synth.evaluator.resources(synth.baseline).total
    print(f"Baseline resources:      {base_res}")
    print(f"Heterogeneous resources: {synth.resources.total}")

    # The generated program is ready to drop into an OpenCL project.
    kernel_lines = len(synth.program.kernel_source.splitlines())
    print(f"Generated {synth.program.num_kernels} kernels "
          f"({kernel_lines} lines of OpenCL)")

    # Measure both designs on the cycle-approximate simulator.
    base_sim = simulate(synth.baseline)
    het_sim = simulate(synth.design)
    speedup = base_sim.total_cycles / het_sim.total_cycles
    print(f"Baseline:      {base_sim.total_cycles:.3e} cycles "
          f"({base_sim.seconds * 1e3:.1f} ms at 200 MHz)")
    print(f"Heterogeneous: {het_sim.total_cycles:.3e} cycles "
          f"({het_sim.seconds * 1e3:.1f} ms at 200 MHz)")
    print(f"Speedup: {speedup:.2f}x  (paper reports 1.58x for "
          f"Jacobi-2D, 1.65x on average)")


if __name__ == "__main__":
    main()
