"""Quickstart: the paper's whole flow in ~60 lines.

Builds the Jacobi-2D workload at paper scale, constructs the
state-of-the-art baseline (overlapped tiling), lets the model-driven
optimizer derive the heterogeneous pipe-shared design under the
baseline's resource budget, and compares both on the cycle simulator.

Run:  python examples/quickstart.py
"""

from repro import (
    estimate_resources,
    jacobi_2d,
    make_baseline_design,
    optimize_heterogeneous,
    simulate,
)


def main() -> None:
    # The workload: Polybench Jacobi-2D at the paper's problem size.
    spec = jacobi_2d()
    print(f"Workload: {spec.describe()}")

    # The baseline design from the paper's Table 3: 4x4 parallel
    # kernels, 128x128 tiles, 32 fused iterations.
    baseline = make_baseline_design(
        spec, tile_shape=(128, 128), counts=(4, 4), fused_depth=32,
        unroll=4,
    )
    print(f"Baseline:      {baseline.describe()}")
    print(f"  redundant/useful computation: "
          f"{baseline.redundancy_ratio():.2f}")

    # Model-driven DSE: explore fused depths and balancing factors
    # within the baseline's hardware budget (Section 5.1).
    result = optimize_heterogeneous(spec, baseline)
    hetero = result.best.design
    print(f"Heterogeneous: {hetero.describe()}")
    print(f"  explored {result.evaluated} candidates, "
          f"{result.feasible} feasible")
    print(f"  redundant/useful computation: "
          f"{hetero.redundancy_ratio():.2f}")

    # Resources (the paper's Table 3 columns).
    base_res = estimate_resources(baseline).total
    het_res = estimate_resources(hetero).total
    print(f"Baseline resources:      {base_res}")
    print(f"Heterogeneous resources: {het_res}")

    # Measure both on the cycle-approximate simulator.
    base_sim = simulate(baseline)
    het_sim = simulate(hetero)
    speedup = base_sim.total_cycles / het_sim.total_cycles
    print(f"Baseline:      {base_sim.total_cycles:.3e} cycles "
          f"({base_sim.seconds * 1e3:.1f} ms at 200 MHz)")
    print(f"Heterogeneous: {het_sim.total_cycles:.3e} cycles "
          f"({het_sim.seconds * 1e3:.1f} ms at 200 MHz)")
    print(f"Speedup: {speedup:.2f}x  (paper reports 1.58x for "
          f"Jacobi-2D, 1.65x on average)")


if __name__ == "__main__":
    main()
