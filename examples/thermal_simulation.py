"""Chip thermal simulation (HotSpot) on the synthesized accelerator.

The paper's introduction motivates iterative stencils with scientific
and thermal simulation [Huang et al., DAC'04].  This example builds a
small die floorplan with two hot functional blocks, runs the HotSpot-2D
stencil through the *functional* executor of an optimized heterogeneous
design (i.e., exactly what the generated FPGA kernels would compute),
verifies it against the naive reference bit-for-bit, and reports the
steady-state hot spots plus the simulated FPGA speedup.

Run:  python examples/thermal_simulation.py
"""

import numpy as np

from repro import (
    hotspot_2d,
    make_baseline_design,
    optimize_heterogeneous,
    run_functional,
    run_reference,
    simulate,
)


def build_power_map(shape):
    """A die with two high-power blocks (e.g. cores) and a cool cache."""
    power = np.full(shape, 0.02, dtype=np.float32)
    h, w = shape
    power[h // 8 : h // 3, w // 8 : w // 3] = 0.30  # core 0
    power[h // 2 : 3 * h // 4, w // 2 : 7 * w // 8] = 0.22  # core 1
    return power


def main() -> None:
    # A 128x128 thermal grid, 200 solver iterations.
    spec = hotspot_2d(grid=(128, 128), iterations=200)
    power = {"power": build_power_map(spec.grid_shape)}
    ambient = {"a": np.full(spec.grid_shape, 0.45, dtype=np.float32)}

    # Design the accelerator: baseline, then model-optimized.
    baseline = make_baseline_design(
        spec, tile_shape=(32, 32), counts=(2, 2), fused_depth=8, unroll=2
    )
    hetero = optimize_heterogeneous(spec, baseline).best.design
    print(f"Optimized design: {hetero.describe()}")

    # Execute the design functionally (what the FPGA would compute).
    result = run_functional(hetero, state=ambient, aux=power)
    reference = run_reference(spec, state=ambient, aux=power)
    assert np.array_equal(result["a"], reference["a"]), (
        "accelerator output must match the reference bit-for-bit"
    )
    print("Functional check: accelerator == reference (bitwise)")

    temps = result["a"]
    hottest = np.unravel_index(np.argmax(temps), temps.shape)
    print(f"Peak temperature {temps.max():.3f} at cell {hottest}")
    print(f"Mean temperature {temps.mean():.3f} "
          f"(ambient drive: 0.45)")

    # Coarse ASCII heat map (16x16 downsample).
    ds = temps.reshape(16, 8, 16, 8).mean(axis=(1, 3))
    lo, hi = ds.min(), ds.max()
    ramp = " .:-=+*#%@"
    print("Heat map (hot = @):")
    for row in ds:
        line = "".join(
            ramp[int((v - lo) / (hi - lo + 1e-9) * (len(ramp) - 1))]
            for v in row
        )
        print("  " + line)

    # And the performance story at paper scale.
    paper_spec = hotspot_2d()
    paper_base = make_baseline_design(
        paper_spec, (128, 128), (4, 4), 32, unroll=4
    )
    paper_het = optimize_heterogeneous(paper_spec, paper_base).best.design
    speedup = (
        simulate(paper_base).total_cycles
        / simulate(paper_het).total_cycles
    )
    print(f"Paper-scale HotSpot-2D simulated speedup: {speedup:.2f}x "
          f"(paper reports 1.35x)")


if __name__ == "__main__":
    main()
