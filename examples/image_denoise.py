"""Image-processing pipeline: from user OpenCL source to accelerator.

The paper's framework takes *the user's own stencil kernel source* as
input (Fig. 5).  This example writes an iterative 3x3 Gaussian
smoothing kernel exactly as an OpenCL programmer would, runs it through
the feature extractor, builds the workload around a noisy synthetic
image, optimizes a design, executes it functionally, and reports the
denoising quality plus the generated OpenCL program's shape.

Run:  python examples/image_denoise.py
"""

import numpy as np

from repro import (
    StencilSpec,
    extract_features,
    generate_program,
    make_baseline_design,
    optimize_heterogeneous,
    run_functional,
    simulate,
)

USER_KERNEL = """
__kernel void smooth(__global float* img, __global float* out) {
    int y = get_global_id(0);
    int x = get_global_id(1);
    out[y][x] = 0.25f   * img[y][x]
              + 0.125f  * (img[y-1][x] + img[y+1][x]
                           + img[y][x-1] + img[y][x+1])
              + 0.0625f * (img[y-1][x-1] + img[y-1][x+1]
                           + img[y+1][x-1] + img[y+1][x+1]);
}
"""


def noisy_image(shape, seed=11):
    """A synthetic scene (smooth gradient + shapes) plus sensor noise."""
    rng = np.random.default_rng(seed)
    yy, xx = np.meshgrid(
        np.linspace(0, 1, shape[0]),
        np.linspace(0, 1, shape[1]),
        indexing="ij",
    )
    clean = 0.4 * yy + 0.3 * xx
    clean[shape[0] // 4 : shape[0] // 2, shape[1] // 4 : shape[1] // 2] += 0.4
    noise = rng.normal(0.0, 0.08, shape)
    return clean.astype(np.float32), (clean + noise).astype(np.float32)


def main() -> None:
    # 1. Extract the stencil from the user's OpenCL kernel.
    features = extract_features(
        USER_KERNEL, name="smooth-3x3", field_map={"out": "img"}
    )
    print(f"Extracted: {features.ndim}-D stencil, radius "
          f"{features.pattern.radius}, "
          f"{features.pattern.points_per_cell()} taps, "
          f"{features.counts.flops} flops/cell as written")

    # 2. Bind it to the image workload.
    spec = StencilSpec(
        name="smooth-3x3",
        pattern=features.pattern,
        grid_shape=(128, 128),
        iterations=24,
    )
    clean, noisy = noisy_image(spec.grid_shape)

    # 3. Design the accelerator.
    baseline = make_baseline_design(spec, (32, 32), (2, 2), 6, unroll=2)
    hetero = optimize_heterogeneous(spec, baseline).best.design
    print(f"Optimized design: {hetero.describe()}")

    # 4. Run the pipeline functionally.
    out = run_functional(hetero, state={"img": noisy})["img"]
    rms_before = float(np.sqrt(np.mean((noisy - clean) ** 2)))
    rms_after = float(np.sqrt(np.mean((out - clean) ** 2)))
    print(f"RMS error vs clean image: {rms_before:.4f} -> "
          f"{rms_after:.4f} after {spec.iterations} smoothing passes")
    assert rms_after < rms_before

    # 5. Performance and generated code.
    speedup = (
        simulate(baseline).total_cycles / simulate(hetero).total_cycles
    )
    program = generate_program(hetero)
    kernel_lines = len(program.kernel_source.splitlines())
    print(f"Simulated speedup over overlapped tiling: {speedup:.2f}x")
    print(f"Generated OpenCL: {program.num_kernels} kernels, "
          f"{kernel_lines} lines, "
          f"{program.kernel_source.count('pipe float')} pipes")


if __name__ == "__main__":
    main()
