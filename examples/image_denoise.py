"""Image-processing pipeline: from user OpenCL source to accelerator.

The paper's framework takes *the user's own stencil kernel source* as
input (Fig. 5).  This example writes an iterative 3x3 Gaussian
smoothing kernel exactly as an OpenCL programmer would, extracts it,
chains it with a contrast-enhancement stage into a two-stage
``ProgramSpec`` DAG, synthesizes the whole program through
``api.synthesize`` (program-level DSE + fused pipeline codegen), runs
it functionally on a noisy synthetic image, and reports the denoising
quality plus the generated pipeline's shape.

Run:  python examples/image_denoise.py
"""

import numpy as np

from repro import StencilSpec, extract_features
from repro.api import synthesize
from repro.program import ProgramBuilder, run_program_functional
from repro.stencil.library import contrast_threshold_2d

USER_KERNEL = """
__kernel void smooth(__global float* img, __global float* out) {
    int y = get_global_id(0);
    int x = get_global_id(1);
    out[y][x] = 0.25f   * img[y][x]
              + 0.125f  * (img[y-1][x] + img[y+1][x]
                           + img[y][x-1] + img[y][x+1])
              + 0.0625f * (img[y-1][x-1] + img[y-1][x+1]
                           + img[y+1][x-1] + img[y+1][x+1]);
}
"""

GRID = (128, 128)


def noisy_image(shape, seed=11):
    """A synthetic scene (smooth gradient + shapes) plus sensor noise."""
    rng = np.random.default_rng(seed)
    yy, xx = np.meshgrid(
        np.linspace(0, 1, shape[0]),
        np.linspace(0, 1, shape[1]),
        indexing="ij",
    )
    clean = 0.4 * yy + 0.3 * xx
    clean[shape[0] // 4 : shape[0] // 2, shape[1] // 4 : shape[1] // 2] += 0.4
    noise = rng.normal(0.0, 0.08, shape)
    return clean.astype(np.float32), (clean + noise).astype(np.float32)


def main() -> None:
    # 1. Extract the stencil from the user's OpenCL kernel.
    features = extract_features(
        USER_KERNEL, name="smooth-3x3", field_map={"out": "img"}
    )
    print(f"Extracted: {features.ndim}-D stencil, radius "
          f"{features.pattern.radius}, "
          f"{features.pattern.points_per_cell()} taps, "
          f"{features.counts.flops} flops/cell as written")

    # 2. Chain it into a two-stage program: denoise, then enhance.
    smooth = StencilSpec(
        name="smooth-3x3",
        pattern=features.pattern,
        grid_shape=GRID,
        iterations=24,
    )
    builder = ProgramBuilder("denoise-enhance")
    builder.stage("smooth", smooth)
    builder.stage("enhance", contrast_threshold_2d(grid=GRID, iterations=1))
    builder.connect("smooth", "img", "enhance", target="a")
    program = builder.build()
    print(f"Program: {program.name}, stages {program.topo_order()}")

    # 3. Co-optimize both stages under one shared resource budget.
    synth = synthesize(program=program)
    print(f"Optimized program:\n{synth.design.describe()}")
    print(f"Predicted {synth.predicted_cycles:.3e} cycles, "
          f"{synth.resources.total}")

    # 4. Run the whole pipeline functionally on real pixels.
    clean, noisy = noisy_image(GRID)
    produced = run_program_functional(
        synth.design, external={"smooth": {"img": noisy}}
    )
    denoised = produced["smooth"]["img"]
    enhanced = produced["enhance"]["a"]
    rms_before = float(np.sqrt(np.mean((noisy - clean) ** 2)))
    rms_after = float(np.sqrt(np.mean((denoised - clean) ** 2)))
    print(f"RMS error vs clean image: {rms_before:.4f} -> "
          f"{rms_after:.4f} after {smooth.iterations} smoothing passes")
    assert rms_after < rms_before
    print(f"Enhanced output range: [{enhanced.min():.3f}, "
          f"{enhanced.max():.3f}]")

    # 5. The generated fused pipeline.
    pipeline = synth.pipeline
    kernel_lines = len(pipeline.kernel_source.splitlines())
    print(f"Generated OpenCL pipeline: {pipeline.num_kernels} kernels, "
          f"{kernel_lines} lines, "
          f"{len(pipeline.forwarded)} forwarded inter-stage edge(s)")


if __name__ == "__main__":
    main()
