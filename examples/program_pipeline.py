"""Multi-stencil program synthesis: blur -> sobel -> threshold.

Real image workloads are chains of dependent stencils, not single
kernels.  This example takes the library's three-stage image pipeline
(iterated Gaussian blur feeding a Sobel-x gradient feeding a contrast
threshold), co-optimizes all three stages under one shared resource
budget through the tiered program search, verifies the fused execution
bitwise against the stage-by-stage reference composition, and writes
the generated chained OpenCL pipeline into ``examples/generated/``.

Run:  python examples/program_pipeline.py
"""

import pathlib

import numpy as np

from repro.api import synthesize
from repro.dse.search import SearchDriver
from repro.program import (
    ProgramEvaluator,
    blur_sobel_threshold,
    run_program_functional,
    run_program_reference,
)

OUT_DIR = pathlib.Path(__file__).parent / "generated"


def main() -> None:
    # 1. A three-stage DAG from the program library (test-sized grid).
    program = blur_sobel_threshold(
        grid=(128, 128), blur_iterations=8, iterations=1
    )
    print(f"Program: {program.name}")
    print(program.describe())

    # 2. Co-optimize every stage under one shared budget, through the
    #    tiered search driver (vectorized Tier-0 screen + exact Tier-1).
    engine = ProgramEvaluator()
    driver = SearchDriver(evaluator=engine, chunk_size=256)
    synth = synthesize(program=program, driver=driver)
    print(f"Best ({synth.design.schedule}): "
          f"{synth.predicted_cycles:.3e} cycles, {synth.resources.total}")
    for name, stage_design in synth.design.stage_designs:
        print(f"  {name}: {stage_design.describe()}")
    report = driver.report
    print(f"Search: {report.candidates} candidates, "
          f"{report.promoted} promoted, "
          f"{report.tier1_evaluations} tier-1 evaluations")

    # 3. The fused execution is bitwise-identical to composing the
    #    per-stage reference kernels.
    reference = run_program_reference(program)
    fused = run_program_functional(synth.design)
    for name in program.topo_order():
        for field, expected in reference[name].items():
            assert np.array_equal(expected, fused[name][field]), (
                name, field,
            )
    print("Fused execution matches stage-by-stage reference bitwise.")

    # 4. Emit the chained OpenCL pipeline.
    pipeline = synth.pipeline
    OUT_DIR.mkdir(exist_ok=True)
    kernel_path = OUT_DIR / "blur_sobel_threshold_pipeline.cl"
    host_path = OUT_DIR / "blur_sobel_threshold_host.c"
    kernel_path.write_text(pipeline.kernel_source)
    host_path.write_text(pipeline.host_source)
    print(f"Wrote {kernel_path} ({pipeline.num_kernels} kernels, "
          f"{len(pipeline.forwarded)} forwarded edge(s))")
    print(f"Wrote {host_path}")


if __name__ == "__main__":
    main()
