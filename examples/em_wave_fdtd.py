"""Electromagnetic wave propagation (FDTD-2D) on the accelerator.

FDTD is the hardest workload in the paper's suite: three coupled field
sweeps per time step.  The framework composes the sweeps symbolically
into one multi-field stencil, so the tiled pipe-shared designs apply
unchanged.  This example excites a field pulse, propagates it through
an optimized heterogeneous design, checks bitwise equivalence with the
reference, and renders the outgoing wavefront.

Run:  python examples/em_wave_fdtd.py
"""

import numpy as np

from repro import (
    fdtd_2d,
    make_baseline_design,
    optimize_heterogeneous,
    run_functional,
    run_reference,
    simulate,
)


def pulse_state(shape):
    """Zero fields with a Gaussian magnetic pulse in the center."""
    yy, xx = np.meshgrid(
        np.arange(shape[0]), np.arange(shape[1]), indexing="ij"
    )
    cy, cx = shape[0] // 2, shape[1] // 2
    hz = np.exp(-((yy - cy) ** 2 + (xx - cx) ** 2) / 18.0)
    return {
        "ex": np.zeros(shape, dtype=np.float32),
        "ey": np.zeros(shape, dtype=np.float32),
        "hz": hz.astype(np.float32),
    }


def render(field, size=24):
    """Coarse ASCII rendering of |field|."""
    h, w = field.shape
    step_y, step_x = h // size, w // size
    ds = np.abs(field[: size * step_y, : size * step_x]).reshape(
        size, step_y, size, step_x
    ).max(axis=(1, 3))
    ramp = " .:-=+*#%@"
    hi = ds.max() + 1e-9
    for row in ds:
        print(
            "  "
            + "".join(
                ramp[int(v / hi * (len(ramp) - 1))] for v in row
            )
        )


def main() -> None:
    spec = fdtd_2d(grid=(96, 96), iterations=30)
    print(f"Workload: {spec.describe()}")
    print(f"Composed one-step pattern: fields {spec.pattern.fields}, "
          f"radius {spec.pattern.radius}, "
          f"{spec.pattern.points_per_cell()} taps/cell")

    state = pulse_state(spec.grid_shape)

    baseline = make_baseline_design(spec, (24, 24), (2, 2), 6, unroll=2)
    hetero = optimize_heterogeneous(spec, baseline).best.design
    print(f"Optimized design: {hetero.describe()}")

    out = run_functional(hetero, state=state)
    ref = run_reference(spec, state=state)
    for field in spec.pattern.fields:
        assert np.array_equal(out[field], ref[field]), field
    print("Functional check: all three fields match the reference "
          "bitwise")

    print(f"Wavefront |hz| after {spec.iterations} steps "
          f"(peak {np.abs(out['hz']).max():.3f}):")
    render(out["hz"])

    # Energy should have radiated outward from the center.
    center = np.abs(out["hz"][40:56, 40:56]).max()
    ring = np.abs(out["hz"][20:28, :]).max()
    print(f"Pulse center amplitude {center:.3f}, "
          f"outgoing ring amplitude {ring:.3f}")

    # Paper-scale performance comparison.
    paper_spec = fdtd_2d()
    paper_base = make_baseline_design(
        paper_spec, (64, 64), (4, 4), 12, unroll=2
    )
    paper_het = optimize_heterogeneous(
        paper_spec, paper_base
    ).best.design
    speedup = (
        simulate(paper_base).total_cycles
        / simulate(paper_het).total_cycles
    )
    print(f"Paper-scale FDTD-2D simulated speedup: {speedup:.2f}x "
          f"(paper reports 1.48x)")


if __name__ == "__main__":
    main()
