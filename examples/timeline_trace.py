"""Kernel execution timelines (the paper's Fig. 4), two ways.

Simulates one region block of the baseline and the heterogeneous
Jacobi-2D designs, prints per-kernel phase timelines as ASCII Gantt
rows (launch stagger, reads, fused iterations, pipe stalls, barrier
waits), and exports Chrome-tracing JSON files that open in
chrome://tracing or https://ui.perfetto.dev.

Run:  python examples/timeline_trace.py
"""

import pathlib

from repro import jacobi_2d, make_baseline_design, simulate
from repro.sim import write_chrome_trace
from repro.sim.kernel import KernelPhase
from repro.tiling import make_heterogeneous_design

_GLYPH = {
    KernelPhase.LAUNCH: "l",
    KernelPhase.READ: "r",
    KernelPhase.COMPUTE: "#",
    KernelPhase.PIPE_WAIT: "~",
    KernelPhase.WRITE: "w",
    KernelPhase.BARRIER_WAIT: ".",
}


def gantt(result, width=78):
    """Print one ASCII row per kernel for a single region block."""
    block = result.block
    span = block.block_cycles
    for index in sorted(block.timelines):
        timeline = block.timelines[index]
        row = [" "] * width
        for record in timeline.records:
            lo = int(record.start / span * (width - 1))
            hi = max(lo + 1, int(record.end / span * (width - 1)))
            for col in range(lo, min(hi, width)):
                row[col] = _GLYPH[record.phase]
        print(f"  {str(index):8s}|{''.join(row)}|")
    print(
        "  legend: l=launch r=read #=compute ~=pipe-wait w=write "
        ".=barrier-wait"
    )


def main() -> None:
    spec = jacobi_2d(grid=(512, 512), iterations=64)
    baseline = make_baseline_design(spec, (64, 64), (2, 2), 8, unroll=2)
    hetero = make_heterogeneous_design(
        spec, (128, 128), (2, 2), 16, unroll=2
    )
    out_dir = pathlib.Path(__file__).parent / "generated"
    out_dir.mkdir(exist_ok=True)

    for label, design in (("baseline", baseline), ("hetero", hetero)):
        result = simulate(design)
        print(f"\n{label}: {design.describe()}")
        print(f"one region block = {result.block.block_cycles:.0f} "
              f"cycles, critical kernel {result.block.critical_index}")
        gantt(result)
        path = write_chrome_trace(
            result, out_dir / f"trace_{label}.json"
        )
        print(f"  Chrome trace written to {path}")


if __name__ == "__main__":
    main()
