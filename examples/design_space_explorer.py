"""Interactive-style design-space exploration report.

Sweeps the fused-iteration depth for Jacobi-3D, prints the analytical
model's prediction next to the simulator's measurement (the paper's
Fig. 7 view), and shows the performance/BRAM Pareto frontier the
optimizer works with.

Run:  python examples/design_space_explorer.py
"""

from repro import (
    get_benchmark,
    make_baseline_design,
    make_heterogeneous_design,
    simulate,
)
from repro.dse import CandidateEvaluator, optimize_heterogeneous
from repro.dse.pareto import pareto_front


def main() -> None:
    spec = get_benchmark("jacobi-3d")
    baseline = make_baseline_design(
        spec, (16, 32, 32), (4, 2, 2), 6, unroll=4
    )
    region = baseline.tile_grid.region_shape
    engine = CandidateEvaluator()

    print(f"Workload: {spec.describe()}")
    print(f"Baseline: {baseline.describe()}")
    print()
    header = (
        f"{'h':>4} | {'model (cyc)':>12} | {'sim (cyc)':>12} | "
        f"{'err':>7} | {'BRAM':>5} | {'redund':>6}"
    )
    print(header)
    print("-" * len(header))
    for h in (2, 4, 6, 8, 12, 16, 24, 32):
        design = make_heterogeneous_design(
            spec, region, (4, 2, 2), h, unroll=4
        )
        predicted = engine.predict_cycles(design)
        measured = simulate(design).total_cycles
        bram = engine.resources(design).total.bram18
        err = (measured - predicted) / measured
        print(
            f"{h:>4} | {predicted:>12.3e} | {measured:>12.3e} | "
            f"{err:>6.1%} | {bram:>5} | "
            f"{design.redundancy_ratio():>6.2f}"
        )

    print()
    result = optimize_heterogeneous(spec, baseline, evaluator=engine)
    best = result.best.design
    print(f"Engine: {engine.stats.summary()}")
    print(
        f"Optimizer pick: h={best.fused_depth} "
        f"(explored {result.evaluated}, feasible {result.feasible})"
    )

    front = pareto_front(result.candidates)
    print(f"Performance/BRAM Pareto frontier "
          f"({len(front)} of {result.feasible} feasible points):")
    for point in front[:8]:
        print(
            f"  h={point.design.fused_depth:>3} "
            f"{point.predicted_cycles:.3e} cycles, "
            f"BRAM {point.resources.total.bram18}"
        )

    speedup = (
        simulate(baseline).total_cycles / simulate(best).total_cycles
    )
    print(f"Measured speedup of the pick: {speedup:.2f}x "
          f"(paper reports 2.05x for Jacobi-3D)")


if __name__ == "__main__":
    main()
