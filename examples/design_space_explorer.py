"""Interactive-style design-space exploration report.

Sweeps the fused-iteration depth for Jacobi-3D, prints the analytical
model's prediction next to the simulator's measurement (the paper's
Fig. 7 view), then hands the same engine to :func:`repro.synthesize`
for the optimizer's pick and the performance/BRAM Pareto frontier.

Run:  python examples/design_space_explorer.py
"""

from repro import get_benchmark, simulate, synthesize
from repro.dse import CandidateEvaluator
from repro.dse.pareto import pareto_front
from repro.tiling import make_heterogeneous_design

BASELINE = {
    "tile_shape": (16, 32, 32),
    "counts": (4, 2, 2),
    "fused_depth": 6,
    "unroll": 4,
}


def main() -> None:
    spec = get_benchmark("jacobi-3d")
    engine = CandidateEvaluator()

    # The one-call facade builds the baseline and runs the optimizer;
    # the manual sweep below explores the same region with the same
    # engine, so every score is shared.
    synth = synthesize(benchmark="jacobi-3d", evaluator=engine,
                       emit=False, **BASELINE)

    print(f"Workload: {spec.describe()}")
    print(f"Baseline: {synth.baseline.describe()}")
    print()

    # Manual sweep: model vs simulator across the cone depth, over
    # the region the baseline's tile grid covers.
    region = synth.baseline.tile_grid.region_shape
    header = (
        f"{'h':>4} | {'model (cyc)':>12} | {'sim (cyc)':>12} | "
        f"{'err':>7} | {'BRAM':>5} | {'redund':>6}"
    )
    print(header)
    print("-" * len(header))
    for h in (2, 4, 6, 8, 12, 16, 24, 32):
        design = make_heterogeneous_design(
            spec, region, BASELINE["counts"], h, unroll=4
        )
        predicted = engine.predict_cycles(design)
        measured = simulate(design).total_cycles
        bram = engine.resources(design).total.bram18
        err = (measured - predicted) / measured
        print(
            f"{h:>4} | {predicted:>12.3e} | {measured:>12.3e} | "
            f"{err:>6.1%} | {bram:>5} | "
            f"{design.redundancy_ratio():>6.2f}"
        )

    print()
    best = synth.design
    print(f"Engine: {engine.stats.summary()}")
    print(
        f"Optimizer pick: h={best.fused_depth} "
        f"(explored {synth.dse.evaluated}, "
        f"feasible {synth.dse.feasible})"
    )

    front = pareto_front(synth.dse.candidates)
    print(f"Performance/BRAM Pareto frontier "
          f"({len(front)} of {synth.dse.feasible} feasible points):")
    for point in front[:8]:
        print(
            f"  h={point.design.fused_depth:>3} "
            f"{point.predicted_cycles:.3e} cycles, "
            f"BRAM {point.resources.total.bram18}"
        )

    speedup = (
        simulate(synth.baseline).total_cycles
        / simulate(best).total_cycles
    )
    print(f"Measured speedup of the pick: {speedup:.2f}x "
          f"(paper reports 2.05x for Jacobi-3D)")


if __name__ == "__main__":
    main()
