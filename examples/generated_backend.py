"""Run the *generated code itself* and verify it bit-for-bit.

The framework emits two backends from the same design: OpenCL-C (for
the real toolchain) and executable Python (for verification).  This
example generates both for a heterogeneous HotSpot design, runs the
executable backend through real pipe objects under cooperative
scheduling, compares against the naive reference, and shows the
off-line profiling flow that recovers the platform constants the
analytical model needs.

Run:  python examples/generated_backend.py
"""

import numpy as np

from repro import generate_program, hotspot_2d, make_heterogeneous_design
from repro.codegen import GeneratedDesignExecutor
from repro.model import OfflineProfiler
from repro.stencil import run_reference


def main() -> None:
    spec = hotspot_2d(grid=(64, 64), iterations=20)
    design = make_heterogeneous_design(
        spec, region_shape=(32, 32), counts=(2, 2), fused_depth=5,
        unroll=2,
    )
    print(f"Design: {design.describe()}")

    # Backend 1: OpenCL-C for the toolchain.
    opencl = generate_program(design)
    print(f"OpenCL backend: {opencl.num_kernels} kernels, "
          f"{len(opencl.kernel_source.splitlines())} lines, "
          f"{opencl.kernel_source.count('pipe float')} pipes")

    # Backend 2: executable Python for verification.
    executor = GeneratedDesignExecutor(design)
    print(f"Executable backend: "
          f"{len(executor.module_source.splitlines())} lines of "
          f"generated Python")

    out = executor.run()
    ref = run_reference(spec)
    match = np.array_equal(out["a"], ref["a"])
    print(f"Generated kernels vs reference: "
          f"{'bitwise identical' if match else 'MISMATCH'}")
    assert match

    # Peek at one generated kernel.
    lines = executor.module_source.splitlines()
    start = next(
        i
        for i, line in enumerate(lines)
        if line.startswith("def stencil_")
    )
    print("\nGenerated kernel preview:")
    for line in lines[start : start + 16]:
        print("  " + line)
    print("  ...")

    # Off-line profiling (Table 1: "obtained: off-line profiling").
    print("\nOff-line profiling of the platform:")
    calibration = OfflineProfiler().calibrate()
    print(f"  effective bandwidth "
          f"{calibration.bandwidth_bytes_per_cycle:.1f} B/cycle")
    print(f"  C_pipe {calibration.pipe_cycles_per_word:.2f} "
          f"cycles/word")
    print(f"  kernel launch {calibration.launch_cycles:.0f} + "
          f"{calibration.launch_stagger_cycles:.0f}/kernel cycles")


if __name__ == "__main__":
    main()
