"""Tests for Pareto-front utilities."""

from repro.dse.optimizer import EvaluatedDesign
from repro.dse.pareto import pareto_front
from repro.fpga.estimator import DesignResources
from repro.fpga.resources import ResourceVector
from repro.stencil import jacobi_2d
from repro.tiling import make_baseline_design


def make_candidate(cycles, bram, tile=(8, 8)):
    spec = jacobi_2d(grid=(32, 32), iterations=4)
    design = make_baseline_design(spec, tile, (2, 2), 2)
    resources = DesignResources(
        total=ResourceVector(bram18=bram),
        kernels=ResourceVector(bram18=bram),
        pipes=ResourceVector(),
    )
    return EvaluatedDesign(design, cycles, resources)


class TestParetoFront:
    def test_dominated_point_removed(self):
        a = make_candidate(100, 10)
        b = make_candidate(200, 20)  # dominated by a
        front = pareto_front([a, b])
        assert front == [a]

    def test_tradeoff_points_kept(self):
        fast_big = make_candidate(100, 50)
        slow_small = make_candidate(200, 10)
        front = pareto_front([fast_big, slow_small])
        assert set(id(c) for c in front) == {
            id(fast_big),
            id(slow_small),
        }

    def test_sorted_by_cycles(self):
        candidates = [
            make_candidate(300, 5),
            make_candidate(100, 50),
            make_candidate(200, 20),
        ]
        front = pareto_front(candidates)
        cycles = [c.predicted_cycles for c in front]
        assert cycles == sorted(cycles)

    def test_duplicate_objectives_deduplicated(self):
        # Duplicated designs with identical objectives collapse to one
        # frontier entry — a duplicate adds no trade-off information.
        a = make_candidate(100, 10)
        b = make_candidate(100, 10)
        front = pareto_front([a, b])
        assert len(front) == 1
        assert front[0].predicted_cycles == 100

    def test_duplicate_objectives_do_not_shadow_the_front(self):
        # Historically a tied pair excluded *each other* from the
        # dominance scan, letting dominated duplicates survive; the
        # frontier must stay duplicate-free and correct.
        tied_a = make_candidate(100, 10)
        tied_b = make_candidate(100, 10)
        dominated = make_candidate(200, 20)
        front = pareto_front([tied_a, dominated, tied_b])
        assert len(front) == 1
        assert front[0].predicted_cycles == 100

    def test_duplicate_pick_is_deterministic(self):
        # Distinct designs with equal objectives: the kept one is the
        # lowest canonical signature, regardless of input order.
        a = make_candidate(100, 10, tile=(8, 8))
        b = make_candidate(100, 10, tile=(16, 4))
        expected = min(
            (a, b), key=lambda c: repr(c.design.signature())
        )
        for ordering in ([a, b], [b, a]):
            front = pareto_front(ordering)
            assert len(front) == 1
            assert front[0] is expected

    def test_objectives_computed_once_per_candidate(self):
        calls = []

        def counting(e):
            calls.append(e)
            return (e.predicted_cycles, float(e.resources.total.bram18))

        candidates = [
            make_candidate(100, 50),
            make_candidate(200, 10),
            make_candidate(300, 5),
        ]
        pareto_front(candidates, objectives=counting)
        assert len(calls) == len(candidates)

    def test_custom_objectives(self):
        a = make_candidate(100, 50)
        b = make_candidate(200, 10)
        front = pareto_front(
            [a, b], objectives=lambda e: (e.predicted_cycles,)
        )
        assert front == [a]

    def test_empty_input(self):
        assert pareto_front([]) == []
