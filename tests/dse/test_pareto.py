"""Tests for Pareto-front utilities."""

from repro.dse.optimizer import EvaluatedDesign
from repro.dse.pareto import pareto_front
from repro.fpga.estimator import DesignResources
from repro.fpga.resources import ResourceVector
from repro.stencil import jacobi_2d
from repro.tiling import make_baseline_design


def make_candidate(cycles, bram):
    spec = jacobi_2d(grid=(32, 32), iterations=4)
    design = make_baseline_design(spec, (8, 8), (2, 2), 2)
    resources = DesignResources(
        total=ResourceVector(bram18=bram),
        kernels=ResourceVector(bram18=bram),
        pipes=ResourceVector(),
    )
    return EvaluatedDesign(design, cycles, resources)


class TestParetoFront:
    def test_dominated_point_removed(self):
        a = make_candidate(100, 10)
        b = make_candidate(200, 20)  # dominated by a
        front = pareto_front([a, b])
        assert front == [a]

    def test_tradeoff_points_kept(self):
        fast_big = make_candidate(100, 50)
        slow_small = make_candidate(200, 10)
        front = pareto_front([fast_big, slow_small])
        assert set(id(c) for c in front) == {
            id(fast_big),
            id(slow_small),
        }

    def test_sorted_by_cycles(self):
        candidates = [
            make_candidate(300, 5),
            make_candidate(100, 50),
            make_candidate(200, 20),
        ]
        front = pareto_front(candidates)
        cycles = [c.predicted_cycles for c in front]
        assert cycles == sorted(cycles)

    def test_duplicate_objectives_all_kept(self):
        a = make_candidate(100, 10)
        b = make_candidate(100, 10)
        assert len(pareto_front([a, b])) == 2

    def test_custom_objectives(self):
        a = make_candidate(100, 50)
        b = make_candidate(200, 10)
        front = pareto_front(
            [a, b], objectives=lambda e: (e.predicted_cycles,)
        )
        assert front == [a]

    def test_empty_input(self):
        assert pareto_front([]) == []
