"""Tests for the full-space (parallelism x tile x depth) search."""

import math

import pytest

from repro.dse import optimize_full, parallelism_candidates
from repro.errors import DesignSpaceError
from repro.stencil import jacobi_2d, get_benchmark
from repro.tiling import DesignKind


class TestParallelismCandidates:
    def test_respects_kernel_cap(self):
        spec = jacobi_2d(grid=(256, 256), iterations=8)
        for counts in parallelism_candidates(spec, 8):
            assert math.prod(counts) <= 8

    def test_powers_of_two(self):
        spec = jacobi_2d(grid=(256, 256), iterations=8)
        for counts in parallelism_candidates(spec, 16):
            for k in counts:
                assert k & (k - 1) == 0

    def test_includes_serial_option(self):
        spec = jacobi_2d(grid=(64, 64), iterations=8)
        assert (1, 1) in parallelism_candidates(spec, 16)

    def test_small_grid_limits_counts(self):
        spec = get_benchmark("jacobi-1d", grid=(8,), iterations=4)
        candidates = parallelism_candidates(spec, 64)
        assert max(math.prod(c) for c in candidates) <= 4

    def test_sorted_by_parallelism(self):
        spec = jacobi_2d(grid=(256, 256), iterations=8)
        candidates = parallelism_candidates(spec, 8)
        products = [math.prod(c) for c in candidates]
        assert products == sorted(products)

    def test_invalid_cap(self):
        spec = jacobi_2d(grid=(64, 64), iterations=8)
        with pytest.raises(DesignSpaceError):
            parallelism_candidates(spec, 0)


class TestOptimizeFull:
    @pytest.fixture(scope="class")
    def results(self):
        spec = jacobi_2d(grid=(256, 256), iterations=32)
        return optimize_full(
            spec, unroll=2, max_kernels=8, max_fused_depth=16
        )

    def test_all_kinds_present(self, results):
        assert set(results) == {
            "baseline",
            "pipe-shared",
            "heterogeneous",
        }

    def test_kinds_correct(self, results):
        assert results["baseline"].best.design.kind is (
            DesignKind.BASELINE
        )
        assert results["heterogeneous"].best.design.kind is (
            DesignKind.HETEROGENEOUS
        )

    def test_sharing_designs_beat_baseline(self, results):
        base = results["baseline"].best.predicted_cycles
        assert results["pipe-shared"].best.predicted_cycles <= base
        assert results["heterogeneous"].best.predicted_cycles <= base

    def test_all_fit_device(self, results):
        from repro.fpga.estimator import ResourceEstimator
        from repro.fpga.resources import VIRTEX7_690T

        estimator = ResourceEstimator()
        for result in results.values():
            estimator.check_fits(result.best.design, VIRTEX7_690T)

    def test_explores_multiple_parallelisms(self, results):
        counts = {
            c.design.tile_grid.counts
            for c in results["baseline"].candidates
        }
        assert len(counts) > 3
