"""Tests for the model-driven optimizer."""

import pytest

from repro.dse import (
    Optimizer,
    ResourceBudget,
    optimize_baseline,
    optimize_heterogeneous,
    optimize_pipe_shared,
)
from repro.errors import DesignSpaceError
from repro.fpga.resources import ResourceVector
from repro.stencil import jacobi_2d
from repro.tiling import DesignKind, make_baseline_design


@pytest.fixture(scope="module")
def spec():
    return jacobi_2d(grid=(256, 256), iterations=64)


@pytest.fixture(scope="module")
def baseline(spec):
    return make_baseline_design(spec, (32, 32), (2, 2), 8, unroll=2)


class TestExplore:
    def test_returns_fastest_feasible(self, spec, baseline):
        candidates = [
            baseline.with_fused_depth(h) for h in (1, 2, 4, 8, 16)
        ]
        from repro.fpga.resources import VIRTEX7_690T

        result = Optimizer().explore(
            candidates, ResourceBudget.from_device(VIRTEX7_690T)
        )
        assert result.evaluated == 5
        best_cycles = result.best.predicted_cycles
        assert all(
            best_cycles <= c.predicted_cycles for c in result.candidates
        )

    def test_infeasible_budget_raises(self, baseline):
        tiny = ResourceBudget(limit=ResourceVector(1, 1, 1, 1))
        with pytest.raises(DesignSpaceError, match="No feasible design"):
            Optimizer().explore([baseline], tiny)

    def test_candidates_sorted(self, spec, baseline):
        from repro.fpga.resources import VIRTEX7_690T

        candidates = [baseline.with_fused_depth(h) for h in (1, 4, 8)]
        result = Optimizer().explore(
            candidates, ResourceBudget.from_device(VIRTEX7_690T)
        )
        cycles = [c.predicted_cycles for c in result.candidates]
        assert cycles == sorted(cycles)


class TestBaselineSearch:
    def test_finds_feasible_design(self, spec):
        result = optimize_baseline(spec, (2, 2), max_fused_depth=16)
        assert result.best.design.kind is DesignKind.BASELINE
        assert result.feasible > 0

    def test_prefers_fusion_over_none(self, spec):
        result = optimize_baseline(spec, (2, 2), max_fused_depth=16)
        assert result.best.design.fused_depth > 1


class TestConstrainedSearches:
    def test_pipe_shared_same_layout(self, spec, baseline):
        result = optimize_pipe_shared(spec, baseline)
        best = result.best.design
        assert best.kind is DesignKind.PIPE_SHARED
        assert best.tile_grid.counts == baseline.tile_grid.counts
        assert best.slowest_tile().shape == (32, 32)

    def test_hetero_region_preserved(self, spec, baseline):
        result = optimize_heterogeneous(spec, baseline)
        best = result.best.design
        assert best.kind is DesignKind.HETEROGENEOUS
        assert (
            best.tile_grid.region_shape
            == baseline.tile_grid.region_shape
        )

    def test_hetero_fits_baseline_budget(self, spec, baseline):
        from repro.fpga.estimator import ResourceEstimator

        result = optimize_heterogeneous(spec, baseline)
        estimator = ResourceEstimator()
        budget = ResourceBudget.from_design(baseline, estimator)
        assert budget.admits(result.best.design, estimator)

    def test_hetero_predicted_faster_than_baseline(self, spec, baseline):
        from repro.model import PerformanceModel

        result = optimize_heterogeneous(spec, baseline)
        model = PerformanceModel()
        assert result.best.predicted_cycles < model.predict_cycles(
            baseline
        )

    def test_hetero_deepens_fusion(self, spec, baseline):
        """Freed BRAM admits deeper cones (the paper's Table 3 trend)."""
        result = optimize_heterogeneous(spec, baseline)
        assert result.best.design.fused_depth >= baseline.fused_depth


class TestBudget:
    def test_from_design_slack(self, baseline):
        strict = ResourceBudget.from_design(baseline, slack=1.0)
        loose = ResourceBudget.from_design(baseline, slack=1.5)
        assert loose.limit.bram18 >= strict.limit.bram18

    def test_admits(self, baseline):
        budget = ResourceBudget.from_design(baseline)
        assert budget.admits(baseline)
