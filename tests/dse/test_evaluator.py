"""Tests for the unified candidate-evaluation engine."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dse import (
    CandidateEvaluator,
    CandidateTrace,
    ResourceBudget,
    optimize_full,
)
from repro.dse.evaluator import EvaluationStats
from repro.errors import DesignSpaceError
from repro.fpga.resources import VIRTEX7_690T, ResourceVector
from repro.stencil import jacobi_2d
from repro.tiling import make_baseline_design


@pytest.fixture(scope="module")
def spec():
    return jacobi_2d(grid=(128, 128), iterations=16)


@pytest.fixture(scope="module")
def baseline(spec):
    return make_baseline_design(spec, (32, 32), (2, 2), 4, unroll=2)


@pytest.fixture(scope="module")
def budget():
    return ResourceBudget.from_device(VIRTEX7_690T)


class TestCaching:
    def test_same_signature_same_object(self, baseline, budget):
        engine = CandidateEvaluator()
        first = engine.evaluate(baseline, budget)
        second = engine.evaluate(baseline, budget)
        assert first is not None
        assert second is first
        assert engine.stats.cache_hits == 1
        assert engine.stats.evaluated == 1
        assert engine.cache_size() == 1

    def test_equal_designs_share_cache_entry(self, baseline, budget):
        engine = CandidateEvaluator()
        twin = baseline.with_fused_depth(baseline.fused_depth)
        assert twin is not baseline
        assert engine.evaluate(baseline, budget) is engine.evaluate(
            twin, budget
        )

    def test_budget_rechecked_on_cache_hit(self, baseline, budget):
        engine = CandidateEvaluator()
        assert engine.evaluate(baseline, budget) is not None
        tiny = ResourceBudget(limit=ResourceVector(1, 1, 1, 1))
        assert engine.evaluate(baseline, tiny) is None
        assert engine.stats.infeasible == 1
        # The cached evaluation survives for permissive budgets.
        assert engine.evaluate(baseline, budget) is not None

    def test_clear_cache(self, baseline, budget):
        engine = CandidateEvaluator()
        engine.evaluate(baseline, budget)
        engine.clear_cache()
        assert engine.cache_size() == 0
        engine.evaluate(baseline, budget)
        assert engine.stats.evaluated == 2


class TestBatch:
    def test_results_match_input_order(self, baseline, budget):
        depths = (8, 1, 4, 2, 1)
        candidates = [baseline.with_fused_depth(h) for h in depths]
        for workers in (None, 4):
            engine = CandidateEvaluator(max_workers=workers)
            results = engine.evaluate_batch(candidates, budget)
            assert len(results) == len(candidates)
            for candidate, result in zip(candidates, results):
                assert result.design.signature() == candidate.signature()

    def test_parallel_matches_serial(self, baseline, budget):
        candidates = [baseline.with_fused_depth(h) for h in (1, 2, 4, 8)]
        serial = CandidateEvaluator().evaluate_batch(candidates, budget)
        parallel = CandidateEvaluator(max_workers=4).evaluate_batch(
            candidates, budget
        )
        assert [r.predicted_cycles for r in serial] == [
            r.predicted_cycles for r in parallel
        ]

    def test_explore_attaches_stats(self, baseline, budget):
        engine = CandidateEvaluator()
        result = engine.explore(
            [baseline.with_fused_depth(h) for h in (1, 2, 4)], budget
        )
        assert result.stats is not None
        assert result.stats.candidates == 3
        assert result.stats.evaluated == 3
        assert result.evaluated == 3

    def test_explore_empty_feasible_raises(self, baseline):
        tiny = ResourceBudget(limit=ResourceVector(1, 1, 1, 1))
        with pytest.raises(DesignSpaceError, match="No feasible design"):
            CandidateEvaluator().explore([baseline], tiny)


class TestPruning:
    def test_bound_is_admissible(self, baseline):
        engine = CandidateEvaluator()
        for h in (1, 2, 4, 8):
            design = baseline.with_fused_depth(h)
            assert engine.lower_bound(design) <= engine.predict_cycles(
                design
            ) * (1 + 1e-12)

    def test_prune_keeps_best(self, baseline, budget):
        candidates = [
            baseline.with_fused_depth(h) for h in (1, 2, 3, 4, 6, 8, 12, 16)
        ]
        plain = CandidateEvaluator().explore(candidates, budget)
        pruned = CandidateEvaluator(prune=True).explore(candidates, budget)
        assert (
            pruned.best.design.signature() == plain.best.design.signature()
        )
        assert pruned.best.predicted_cycles == plain.best.predicted_cycles
        assert pruned.stats.evaluated <= plain.stats.evaluated

    def test_pruned_candidates_counted(self, baseline, budget):
        candidates = [baseline.with_fused_depth(h) for h in range(1, 17)]
        engine = CandidateEvaluator(prune=True)
        result = engine.explore(candidates, budget)
        stats = result.stats
        assert stats.candidates == len(candidates)
        assert (
            stats.evaluated
            + stats.cache_hits
            + stats.pruned
            + stats.infeasible
            == len(candidates)
        )


class TestPropertyPruning:
    @settings(max_examples=20, deadline=None)
    @given(
        depths=st.lists(
            st.integers(min_value=1, max_value=16),
            min_size=1,
            max_size=8,
            unique=True,
        ),
        counts=st.sampled_from([(1, 1), (2, 2), (4, 2)]),
        unroll=st.sampled_from([1, 2]),
    )
    def test_pruning_never_discards_optimum(self, depths, counts, unroll):
        spec = jacobi_2d(grid=(64, 64), iterations=16)
        base = make_baseline_design(spec, (16, 16), counts, 1, unroll=unroll)
        candidates = [base.with_fused_depth(h) for h in depths]
        budget = ResourceBudget.from_device(VIRTEX7_690T)
        plain = CandidateEvaluator().explore(candidates, budget)
        for workers in (None, 2):
            pruned = CandidateEvaluator(
                prune=True, max_workers=workers
            ).explore(candidates, budget)
            assert (
                pruned.best.design.signature()
                == plain.best.design.signature()
            )
            assert (
                pruned.best.predicted_cycles == plain.best.predicted_cycles
            )


class TestOptimizeFullParity:
    def test_parallel_cached_matches_serial(self, spec):
        kwargs = dict(unroll=2, max_kernels=4, max_fused_depth=8)
        serial = optimize_full(spec, **kwargs)
        engine = CandidateEvaluator(max_workers=4, prune=True)
        fast = optimize_full(spec, evaluator=engine, **kwargs)
        assert set(serial) == set(fast)
        for kind, serial_result in serial.items():
            assert (
                fast[kind].best.design.signature()
                == serial_result.best.design.signature()
            )
            assert (
                fast[kind].best.predicted_cycles
                == serial_result.best.predicted_cycles
            )

    def test_serial_engine_is_bit_identical(self, spec):
        kwargs = dict(unroll=2, max_kernels=4, max_fused_depth=8)
        legacy = optimize_full(spec, **kwargs)
        engine = CandidateEvaluator()
        routed = optimize_full(spec, evaluator=engine, **kwargs)
        for kind, legacy_result in legacy.items():
            result = routed[kind]
            assert result.evaluated == legacy_result.evaluated
            assert result.feasible == legacy_result.feasible
            assert [
                (c.design.signature(), c.predicted_cycles)
                for c in result.candidates
            ] == [
                (c.design.signature(), c.predicted_cycles)
                for c in legacy_result.candidates
            ]


class TestTraceAndStats:
    def test_trace_hook_sees_every_candidate(self, baseline, budget):
        events = []
        engine = CandidateEvaluator(prune=True, trace=events.append)
        candidates = [baseline.with_fused_depth(h) for h in (1, 2, 4, 8)]
        engine.explore(candidates, budget)
        assert len(events) == len(candidates)
        assert all(isinstance(e, CandidateTrace) for e in events)
        outcomes = {e.outcome for e in events}
        assert outcomes <= {"evaluated", "cache-hit", "infeasible", "pruned"}
        assert "evaluated" in outcomes

    def test_trace_seq_ids_are_monotonic(self, baseline, budget):
        events = []
        engine = CandidateEvaluator(prune=True, trace=events.append)
        candidates = [baseline.with_fused_depth(h) for h in (1, 2, 4, 8)]
        engine.explore(candidates, budget)
        engine.explore(candidates, budget)  # second batch keeps counting
        assert [e.seq for e in events] == list(range(len(events)))

    def test_trace_seq_ids_unique_under_thread_pool(
        self, baseline, budget
    ):
        events = []
        engine = CandidateEvaluator(max_workers=4, trace=events.append)
        candidates = [
            baseline.with_fused_depth(h) for h in (1, 2, 3, 4, 5, 6, 7, 8)
        ] * 2
        engine.explore(candidates, budget)
        seqs = [e.seq for e in events]
        # Assigned under the engine lock at emit time: the arrival
        # order of trace callbacks IS the sequence order.
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(candidates)

    def test_stats_merge_and_dict(self):
        a = EvaluationStats(candidates=2, evaluated=1, cache_hits=1)
        b = EvaluationStats(candidates=3, pruned=2, infeasible=1)
        a.merge(b)
        assert a.as_dict() == {
            "candidates": 5,
            "evaluated": 1,
            "cache_hits": 1,
            "store_hits": 0,
            "infeasible": 1,
            "pruned": 2,
            "screened": 0,
            "promoted": 0,
            "wall_time_s": 0.0,
        }
        assert "5 candidates" in a.summary()
