"""Equivalence tests for the evaluator's vectorized fast path.

The fast path must be *indistinguishable* from the scalar path in
everything except speed: same results, same engine counters, same
trace streams, same store contents.  Every comparison here is exact.
"""

import pytest

from repro.dse import CandidateEvaluator, ResourceBudget
from repro.fpga.resources import VIRTEX7_690T, ResourceVector
from repro.model.predictor import Fidelity
from repro.stencil import hotspot_2d, jacobi_2d
from repro.store.backing import DesignStore
from repro.tiling import make_baseline_design, make_pipe_shared_design


@pytest.fixture(scope="module")
def budget():
    return ResourceBudget.from_device(VIRTEX7_690T)


def make_candidates():
    """A small space mixing kinds, depths, and exact duplicates."""
    j2d = jacobi_2d(grid=(128, 128), iterations=16)
    hs = hotspot_2d(grid=(128, 128), iterations=16)
    designs = []
    for h in (2, 4, 8):
        designs.append(make_baseline_design(j2d, (32, 32), (2, 2), h))
        designs.append(make_pipe_shared_design(j2d, (32, 32), (2, 2), h))
        designs.append(make_baseline_design(hs, (16, 16), (2, 2), h))
    # Exact duplicates exercise memo hits inside one batch.
    designs.append(designs[0])
    designs.append(designs[3].with_fused_depth(designs[3].fused_depth))
    return designs


def run_engine(vectorize, budget, store=None, fidelity=Fidelity.REFINED):
    traces = []
    engine = CandidateEvaluator(
        fidelity=fidelity,
        vectorize=vectorize,
        trace=traces.append,
        store=store,
    )
    results = engine.evaluate_batch(make_candidates(), budget)
    return engine, results, traces


def strip_wall_time(stats):
    d = stats.as_dict()
    d.pop("wall_time_s", None)
    return d


@pytest.mark.parametrize("fidelity", [Fidelity.PAPER, Fidelity.REFINED])
def test_fast_path_matches_scalar_path(budget, fidelity):
    scalar_engine, scalar, scalar_traces = run_engine(
        False, budget, fidelity=fidelity
    )
    vector_engine, vector, vector_traces = run_engine(
        True, budget, fidelity=fidelity
    )

    assert len(scalar) == len(vector)
    for s, v in zip(scalar, vector):
        assert (s is None) == (v is None)
        if s is not None:
            assert v.design.signature() == s.design.signature()
            assert v.predicted_cycles == s.predicted_cycles
            assert v.resources == s.resources

    assert strip_wall_time(vector_engine.stats) == strip_wall_time(
        scalar_engine.stats
    )
    assert [
        (t.design.signature(), t.outcome, t.predicted_cycles, t.seq)
        for t in vector_traces
    ] == [
        (t.design.signature(), t.outcome, t.predicted_cycles, t.seq)
        for t in scalar_traces
    ]


def test_duplicates_hit_memo_inside_one_batch(budget):
    engine, results, _ = run_engine(True, budget)
    assert engine.stats.cache_hits == 2
    assert results[-2].predicted_cycles == results[0].predicted_cycles


def test_infeasible_budget_matches_scalar(budget):
    tiny = ResourceBudget(limit=ResourceVector(1, 1, 1, 1))
    scalar_engine, scalar, _ = run_engine(False, tiny)
    vector_engine, vector, _ = run_engine(True, tiny)
    assert all(r is None for r in vector)
    assert scalar == vector
    assert strip_wall_time(vector_engine.stats) == strip_wall_time(
        scalar_engine.stats
    )
    assert vector_engine.stats.infeasible == len(make_candidates())


def test_store_contents_identical(tmp_path, budget):
    with DesignStore(tmp_path / "scalar") as store:
        run_engine(False, budget, store=store)
    with DesignStore(tmp_path / "vector") as store:
        run_engine(True, budget, store=store)

    # Same records, same order, same serialization — byte for byte.
    for name in ("journal.jsonl", "snapshot.jsonl"):
        scalar_file = tmp_path / "scalar" / name
        vector_file = tmp_path / "vector" / name
        assert scalar_file.exists() == vector_file.exists()
        if scalar_file.exists():
            assert scalar_file.read_bytes() == vector_file.read_bytes()


def test_warm_store_answers_without_evaluation(tmp_path, budget):
    with DesignStore(tmp_path / "s") as store:
        run_engine(True, budget, store=store)
    with DesignStore(tmp_path / "s") as store:
        engine, results, _ = run_engine(True, budget, store=store)
        assert engine.stats.evaluated == 0
        assert engine.stats.store_hits > 0
        assert all(r is not None for r in results)


def test_vectorize_knob_eligibility(budget):
    auto = CandidateEvaluator()
    assert not auto._vector_eligible(0)
    assert not auto._vector_eligible(1)
    assert auto._vector_eligible(2)

    forced = CandidateEvaluator(vectorize=True)
    assert forced._vector_eligible(1)
    assert not forced._vector_eligible(0)

    disabled = CandidateEvaluator(vectorize=False)
    assert not disabled._vector_eligible(100)

    pruning = CandidateEvaluator(prune=True, vectorize=True)
    assert not pruning._vector_eligible(100)


def test_single_candidate_forced_vector_matches_scalar(budget):
    design = make_candidates()[0]
    scalar = CandidateEvaluator(vectorize=False)
    vector = CandidateEvaluator(vectorize=True)
    s = scalar.evaluate_batch([design], budget)[0]
    v = vector.evaluate_batch([design], budget)[0]
    assert s is not None and v is not None
    assert v.predicted_cycles == s.predicted_cycles
    assert v.resources == s.resources
