"""Tests for the tiered streaming search driver.

The contract under test is exact: a tiered search (any chunk size, any
screen mode, vectorized or scalar screening) must return the
*bitwise-identical* best design the exhaustive sweep returns, and —
with a non-pruning evaluator and a frontier-preserving screen (``None``
or ``"pareto"``; the latency screen may legitimately drop band points
slower than the best) — the identical final Pareto frontier.
Checkpointed runs must resume to the same answer after interruption,
including a SIGKILL mid-chunk.
"""

import os
import signal
import subprocess
import sys

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dse import (
    CandidateEvaluator,
    DesignSpace,
    ResourceBudget,
    SearchDriver,
    baseline_candidates,
    merge_results,
    optimize_baseline,
    optimize_full,
    optimize_heterogeneous,
    optimize_pipe_shared,
    pareto_explore,
    pareto_front,
)
from repro.dse.search import SearchFrontier
from repro.errors import DesignSpaceError, StoreError
from repro.fpga.resources import VIRTEX7_690T, ResourceVector
from repro.model.batch import lower_bound_batch
from repro.model.predictor import Fidelity
from repro.stencil import jacobi_2d
from repro.store import CRASH_ENV, SearchCheckpoint
from repro.tiling import make_baseline_design, make_pipe_shared_design


def _budget():
    return ResourceBudget.from_device(VIRTEX7_690T)


def _space(spec, counts=(2, 2), **kw):
    return DesignSpace.default(spec, counts, **kw)


def _mixed_candidates(spec, space):
    """Baseline + pipe-shared designs over a small space."""
    designs = []
    for tile in space.tile_shapes():
        for depth in space.depth_candidates():
            designs.append(
                make_baseline_design(
                    spec, tile, space.counts, depth, space.unroll
                )
            )
            designs.append(
                make_pipe_shared_design(
                    spec, tile, space.counts, depth, space.unroll
                )
            )
    return designs


def _signature_view(results):
    return [
        (e.design.signature(), e.predicted_cycles) for e in results
    ]


def _assert_same_best(a, b):
    assert a.best.design.signature() == b.best.design.signature()
    assert a.best.predicted_cycles == b.best.predicted_cycles


class TestLowerBoundBatch:
    @pytest.mark.parametrize(
        "fidelity", [Fidelity.REFINED, Fidelity.PAPER]
    )
    def test_bitwise_parity_with_scalar_bound(
        self, small_jacobi2d, fidelity
    ):
        designs = _mixed_candidates(
            small_jacobi2d, _space(small_jacobi2d)
        )
        engine = CandidateEvaluator(fidelity=fidelity)
        bounds = lower_bound_batch(
            designs, fidelity=fidelity, flexcl=engine.model.estimator
        )
        for design, bound in zip(designs, bounds):
            assert float(bound) == engine.lower_bound(design)

    def test_mixed_rank_groups(self, small_jacobi1d, small_jacobi2d):
        designs = [
            make_baseline_design(small_jacobi1d, (8,), (2,), 2),
            make_baseline_design(small_jacobi2d, (8, 8), (2, 2), 2),
            make_baseline_design(small_jacobi1d, (16,), (2,), 3),
        ]
        engine = CandidateEvaluator()
        bounds = lower_bound_batch(
            designs, flexcl=engine.model.estimator
        )
        for design, bound in zip(designs, bounds):
            assert float(bound) == engine.lower_bound(design)

    def test_bound_is_admissible(self, small_jacobi2d):
        """The screen bound never exceeds the exact prediction."""
        designs = _mixed_candidates(
            small_jacobi2d, _space(small_jacobi2d)
        )
        engine = CandidateEvaluator()
        bounds = lower_bound_batch(
            designs, flexcl=engine.model.estimator
        )
        for design, bound in zip(designs, bounds):
            assert float(bound) <= engine.predict_cycles(design)


class TestScreenBatch:
    def test_matches_scalar_components(self, small_jacobi2d):
        designs = _mixed_candidates(
            small_jacobi2d, _space(small_jacobi2d)
        )
        budget = _budget()
        engine = CandidateEvaluator()
        feasible, bounds, bram = engine.screen_batch(designs, budget)
        scalar = CandidateEvaluator(vectorize=False)
        s_feasible, s_bounds, s_bram = scalar.screen_batch(
            designs, budget
        )
        assert feasible == s_feasible
        assert bounds == s_bounds
        assert bram == s_bram
        for design, ok in zip(designs, feasible):
            total = scalar.resources(design).total
            assert ok == total.fits_within(budget.limit)

    def test_does_not_grow_the_memo(self, small_jacobi2d):
        designs = _mixed_candidates(
            small_jacobi2d, _space(small_jacobi2d)
        )
        for engine in (
            CandidateEvaluator(),
            CandidateEvaluator(vectorize=False),
        ):
            before = len(engine._results)
            engine.screen_batch(designs, _budget())
            assert len(engine._results) == before


class TestSearchFrontier:
    def test_incumbent_keeps_first_of_ties(self, small_jacobi2d):
        engine = CandidateEvaluator()
        design = make_baseline_design(
            small_jacobi2d, (8, 8), (2, 2), 2
        )
        scored = engine.evaluate_batch([design], _budget())
        frontier = SearchFrontier()
        frontier.extend(scored)
        first = frontier.best
        # An equal-cycles result later in the stream must not displace
        # the incumbent (strict-< update, like the engine).
        frontier.extend(scored)
        assert frontier.best is first

    def test_latency_screen_rule(self):
        frontier = SearchFrontier()
        assert frontier.admits_cycles(1e18)  # empty: everything admits
        assert frontier.admits(1e18, 10**9)

    def test_pareto_screen_admits_equal_tuples(self, small_jacobi2d):
        engine = CandidateEvaluator()
        design = make_baseline_design(
            small_jacobi2d, (8, 8), (2, 2), 2
        )
        [scored] = engine.evaluate_batch([design], _budget())
        frontier = SearchFrontier()
        frontier.extend([scored])
        bram = scored.resources.total.bram18
        cycles = scored.predicted_cycles
        assert frontier.admits(cycles, bram)  # equal tuple survives
        assert not frontier.admits(cycles + 1, bram)
        assert not frontier.admits(cycles, bram + 1)
        assert frontier.admits(cycles - 1, bram + 1)  # trade-off


class TestDriverValidation:
    def test_rejects_bad_chunk_size(self):
        with pytest.raises(DesignSpaceError, match="chunk_size"):
            SearchDriver(chunk_size=0)

    def test_rejects_unknown_screen(self):
        with pytest.raises(DesignSpaceError, match="screen"):
            SearchDriver(screen="resources")

    def test_rejects_bad_shard(self):
        with pytest.raises(DesignSpaceError, match="shard"):
            SearchDriver(shard=(2, 2))
        with pytest.raises(DesignSpaceError, match="shard"):
            SearchDriver(shard=(0, 0))


class TestDriverEquivalence:
    def test_passthrough_is_exhaustive_explore(self, small_jacobi2d):
        designs = _mixed_candidates(
            small_jacobi2d, _space(small_jacobi2d)
        )
        budget = _budget()
        reference = CandidateEvaluator().explore(designs, budget)
        driver = SearchDriver(
            evaluator=CandidateEvaluator(), chunk_size=None
        )
        result = driver.run(iter(designs), budget)
        _assert_same_best(result, reference)
        assert _signature_view(result.candidates) == _signature_view(
            reference.candidates
        )

    @pytest.mark.parametrize("screen", [None, "latency", "pareto"])
    @pytest.mark.parametrize("chunk_size", [1, 7, 64, 10_000])
    def test_best_and_frontier_match_exhaustive(
        self, small_jacobi2d, screen, chunk_size
    ):
        designs = _mixed_candidates(
            small_jacobi2d, _space(small_jacobi2d)
        )
        budget = _budget()
        reference = CandidateEvaluator(prune=False).explore(
            designs, budget
        )
        driver = SearchDriver(
            evaluator=CandidateEvaluator(prune=False),
            chunk_size=chunk_size,
            screen=screen,
        )
        result = driver.run(iter(designs), budget)
        _assert_same_best(result, reference)
        if screen != "latency":
            # The latency screen only promises the best design; it may
            # drop band points slower than the incumbent (documented).
            assert _signature_view(result.frontier) == _signature_view(
                pareto_front(list(reference.candidates))
            )

    def test_scalar_screen_fallback_matches(self, small_jacobi2d):
        designs = _mixed_candidates(
            small_jacobi2d, _space(small_jacobi2d)
        )
        budget = _budget()
        vectorized = SearchDriver(
            evaluator=CandidateEvaluator(prune=False), chunk_size=16
        ).run(iter(designs), budget)
        scalar = SearchDriver(
            evaluator=CandidateEvaluator(prune=False, vectorize=False),
            chunk_size=16,
        ).run(iter(designs), budget)
        _assert_same_best(vectorized, scalar)
        assert _signature_view(vectorized.frontier) == _signature_view(
            scalar.frontier
        )

    def test_pruned_serial_engine_same_best(self, small_jacobi2d):
        designs = _mixed_candidates(
            small_jacobi2d, _space(small_jacobi2d)
        )
        budget = _budget()
        reference = CandidateEvaluator().explore(designs, budget)
        driver = SearchDriver(
            evaluator=CandidateEvaluator(prune=True), chunk_size=16
        )
        result = driver.run(iter(designs), budget)
        _assert_same_best(result, reference)

    def test_no_feasible_design_raises(self, small_jacobi2d):
        design = make_baseline_design(
            small_jacobi2d, (8, 8), (2, 2), 2
        )
        tiny = ResourceBudget(limit=ResourceVector(1, 1, 1, 1))
        driver = SearchDriver(chunk_size=4)
        with pytest.raises(DesignSpaceError, match="No feasible"):
            driver.run(iter([design]), tiny)

    def test_report_accounts_for_every_candidate(self, small_jacobi2d):
        designs = _mixed_candidates(
            small_jacobi2d, _space(small_jacobi2d)
        )
        driver = SearchDriver(
            evaluator=CandidateEvaluator(prune=False), chunk_size=16
        )
        driver.run(iter(designs), _budget())
        report = driver.report
        assert report.candidates == len(designs)
        assert (
            report.infeasible
            + report.screened
            + report.tier1_evaluations
            == len(designs)
        )
        assert report.promoted == report.tier1_evaluations
        # O(chunk) residency: chunk + frontier band + incumbent.
        assert report.peak_resident <= 16 + report.band_size + 1
        # Engine lifetime stats absorbed both tiers.
        stats = driver.evaluator.stats
        assert stats.candidates == len(designs)
        assert stats.screened == report.screened
        assert stats.promoted == report.promoted


class TestCheckpointResume:
    def _driver(self, checkpoint, **kw):
        return SearchDriver(
            evaluator=CandidateEvaluator(prune=False),
            chunk_size=kw.pop("chunk_size", 16),
            checkpoint=checkpoint,
            search_key=kw.pop("search_key", "test"),
            **kw,
        )

    def test_interrupted_stream_resumes_to_same_result(
        self, tmp_path, small_jacobi2d
    ):
        designs = _mixed_candidates(
            small_jacobi2d, _space(small_jacobi2d)
        )
        budget = _budget()
        reference = SearchDriver(
            evaluator=CandidateEvaluator(prune=False), chunk_size=16
        ).run(iter(designs), budget)
        path = tmp_path / "search.jsonl"
        # "Interrupt" after three chunks by truncating the stream.
        with SearchCheckpoint(path) as ck:
            partial = self._driver(ck)
            try:
                partial.run(iter(designs[: 3 * 16]), budget)
            except DesignSpaceError:
                pass  # the prefix may hold no feasible design
        with SearchCheckpoint(path) as ck:
            resumed = self._driver(ck)
            result = resumed.run(iter(designs), budget)
        assert resumed.report.replayed_chunks == 3
        assert resumed.report.chunks == (len(designs) + 15) // 16
        _assert_same_best(result, reference)
        assert _signature_view(result.frontier) == _signature_view(
            reference.frontier
        )

    def test_full_replay_runs_no_tier1(self, tmp_path, small_jacobi2d):
        designs = _mixed_candidates(
            small_jacobi2d, _space(small_jacobi2d)
        )
        budget = _budget()
        path = tmp_path / "search.jsonl"
        with SearchCheckpoint(path) as ck:
            first = self._driver(ck)
            one = first.run(iter(designs), budget)
        with SearchCheckpoint(path) as ck:
            second = self._driver(ck)
            two = second.run(iter(designs), budget)
        assert second.report.replayed_chunks == second.report.chunks
        assert second.report.tier1_evaluations == 0
        _assert_same_best(two, one)
        assert _signature_view(two.frontier) == _signature_view(
            one.frontier
        )
        # Replayed EvaluatedDesigns round-trip cycles exactly.
        assert two.best.predicted_cycles == one.best.predicted_cycles
        assert two.best.resources == one.best.resources

    def test_meta_mismatch_raises(self, tmp_path, small_jacobi2d):
        designs = _mixed_candidates(
            small_jacobi2d, _space(small_jacobi2d)
        )
        path = tmp_path / "search.jsonl"
        with SearchCheckpoint(path) as ck:
            self._driver(ck).run(iter(designs), _budget())
        with SearchCheckpoint(path) as ck:
            changed = self._driver(ck, chunk_size=8)
            with pytest.raises(StoreError, match="different config"):
                changed.run(iter(designs), _budget())

    def test_nondeterministic_stream_raises(
        self, tmp_path, small_jacobi2d
    ):
        designs = _mixed_candidates(
            small_jacobi2d, _space(small_jacobi2d)
        )
        path = tmp_path / "search.jsonl"
        with SearchCheckpoint(path) as ck:
            self._driver(ck).run(iter(designs), _budget())
        with SearchCheckpoint(path) as ck:
            with pytest.raises(StoreError, match="deterministic"):
                # Same chunks, but the final chunk is short: the
                # recorded n no longer matches the enumeration.
                self._driver(ck).run(iter(designs[:-3]), _budget())

    def test_sigkill_mid_search_then_resume(
        self, tmp_path, small_jacobi2d
    ):
        """A real SIGKILL mid-chunk leaves a resumable checkpoint."""
        path = tmp_path / "search.jsonl"
        script = (
            "from repro.dse import CandidateEvaluator, DesignSpace, "
            "ResourceBudget, SearchDriver, baseline_candidates\n"
            "from repro.fpga.resources import VIRTEX7_690T\n"
            "from repro.stencil import jacobi_2d\n"
            "from repro.store import SearchCheckpoint\n"
            "spec = jacobi_2d(grid=(32, 32), iterations=8)\n"
            "space = DesignSpace.default(spec, (2, 2))\n"
            f"with SearchCheckpoint({str(path)!r}) as ck:\n"
            "    driver = SearchDriver(\n"
            "        evaluator=CandidateEvaluator(prune=False),\n"
            "        chunk_size=8, checkpoint=ck, search_key='kill')\n"
            "    driver.run(\n"
            "        baseline_candidates(space),\n"
            "        ResourceBudget.from_device(VIRTEX7_690T))\n"
        )
        env = dict(os.environ)
        env[CRASH_ENV] = "5"  # meta + 3 chunks durable, killed on the 5th append
        src = os.path.join(
            os.path.dirname(
                os.path.dirname(
                    os.path.dirname(os.path.abspath(__file__))
                )
            ),
            "src",
        )
        env["PYTHONPATH"] = os.pathsep.join(
            filter(None, [src, env.get("PYTHONPATH", "")])
        )
        proc = subprocess.run(
            [sys.executable, "-c", script],
            env=env,
            capture_output=True,
            timeout=120,
        )
        assert proc.returncode == -signal.SIGKILL, proc.stderr
        spec = jacobi_2d(grid=(32, 32), iterations=8)
        space = DesignSpace.default(spec, (2, 2))
        budget = _budget()
        with SearchCheckpoint(path) as ck:
            resumed = SearchDriver(
                evaluator=CandidateEvaluator(prune=False),
                chunk_size=8,
                checkpoint=ck,
                search_key="kill",
            )
            result = resumed.run(baseline_candidates(space), budget)
        assert resumed.report.replayed_chunks == 3
        fresh = SearchDriver(
            evaluator=CandidateEvaluator(prune=False), chunk_size=8
        ).run(baseline_candidates(space), budget)
        _assert_same_best(result, fresh)
        assert _signature_view(result.frontier) == _signature_view(
            fresh.frontier
        )


class TestSharding:
    @pytest.mark.parametrize("shards", [2, 3])
    def test_merged_shards_match_exhaustive(
        self, small_jacobi2d, shards
    ):
        designs = _mixed_candidates(
            small_jacobi2d, _space(small_jacobi2d)
        )
        budget = _budget()
        reference = CandidateEvaluator(prune=False).explore(
            designs, budget
        )
        partials = []
        streamed = 0
        for index in range(shards):
            driver = SearchDriver(
                evaluator=CandidateEvaluator(prune=False),
                chunk_size=8,
                screen="pareto",
                shard=(index, shards),
            )
            partials.append(driver.run(iter(designs), budget))
            streamed += driver.report.candidates
        assert streamed == len(designs)  # disjoint cover
        merged = merge_results(partials)
        _assert_same_best(merged, reference)
        assert _signature_view(merged.frontier) == _signature_view(
            pareto_front(list(reference.candidates))
        )

    def test_merge_empty_raises(self):
        with pytest.raises(DesignSpaceError, match="No shard"):
            merge_results([])


class TestOptimizerIntegration:
    @pytest.fixture()
    def spec(self):
        return jacobi_2d(grid=(64, 64), iterations=16)

    def _tiered(self, chunk_size=16, **kw):
        return SearchDriver(
            evaluator=CandidateEvaluator(prune=False, **kw),
            chunk_size=chunk_size,
        )

    def test_optimize_baseline_parity(self, spec):
        reference = optimize_baseline(spec, (2, 2))
        tiered = optimize_baseline(
            spec, (2, 2), driver=self._tiered()
        )
        _assert_same_best(tiered, reference)

    def test_optimize_pipe_shared_parity(self, spec):
        baseline = make_baseline_design(spec, (16, 16), (2, 2), 4)
        reference = optimize_pipe_shared(spec, baseline)
        tiered = optimize_pipe_shared(
            spec, baseline, driver=self._tiered()
        )
        _assert_same_best(tiered, reference)

    def test_optimize_heterogeneous_parity(self, spec):
        baseline = make_baseline_design(spec, (16, 16), (2, 2), 4)
        reference = optimize_heterogeneous(spec, baseline)
        tiered = optimize_heterogeneous(
            spec, baseline, driver=self._tiered()
        )
        _assert_same_best(tiered, reference)

    def test_optimize_full_parity(self, spec):
        kwargs = dict(unroll=2, max_kernels=8, max_fused_depth=8)
        reference = optimize_full(spec, **kwargs)
        tiered = optimize_full(spec, driver=self._tiered(), **kwargs)
        assert set(tiered) == {
            "baseline", "pipe-shared", "heterogeneous",
        }
        for kind, ref in reference.items():
            _assert_same_best(tiered[kind], ref)

    def test_pareto_explore_with_pareto_screen(self, spec):
        space = _space(spec, max_fused_depth=8)
        designs = _mixed_candidates(spec, space)
        budget = _budget()
        reference = pareto_explore(designs, budget)
        driver = SearchDriver(
            evaluator=CandidateEvaluator(prune=False),
            chunk_size=16,
            screen="pareto",
        )
        tiered = pareto_explore(iter(designs), budget, driver=driver)
        assert _signature_view(tiered) == _signature_view(reference)

    def test_pareto_explore_rejects_latency_screen(self, spec):
        driver = SearchDriver(chunk_size=16, screen="latency")
        with pytest.raises(DesignSpaceError, match="latency screen"):
            pareto_explore([], _budget(), driver=driver)

    def test_pareto_explore_custom_objectives_need_no_screen(
        self, spec
    ):
        def objectives(e):
            return (float(e.resources.total.dsp), e.predicted_cycles)

        space = _space(spec, max_fused_depth=8)
        designs = _mixed_candidates(spec, space)
        budget = _budget()
        with pytest.raises(DesignSpaceError, match="screen=None"):
            pareto_explore(
                designs,
                budget,
                objectives=objectives,
                driver=SearchDriver(chunk_size=16, screen="pareto"),
            )
        reference = pareto_explore(
            designs, budget, objectives=objectives
        )
        tiered = pareto_explore(
            iter(designs),
            budget,
            objectives=objectives,
            driver=SearchDriver(
                evaluator=CandidateEvaluator(prune=False),
                chunk_size=16,
                screen=None,
            ),
        )
        assert _signature_view(tiered) == _signature_view(reference)


@st.composite
def search_scenario(draw):
    """A small Table-3-style space plus tiered-search knobs."""
    grid = draw(st.sampled_from([(32, 32), (48, 48), (64, 64)]))
    iterations = draw(st.sampled_from([4, 8, 12]))
    counts = draw(st.sampled_from([(1, 1), (2, 2)]))
    max_depth = draw(st.integers(min_value=1, max_value=iterations))
    chunk_size = draw(st.sampled_from([1, 3, 8, 64, 1000]))
    screen = draw(st.sampled_from([None, "latency", "pareto"]))
    prune = draw(st.booleans())
    vectorize = draw(st.booleans())
    resume_at = draw(st.integers(min_value=0, max_value=3))
    return (
        grid, iterations, counts, max_depth, chunk_size, screen,
        prune, vectorize, resume_at,
    )


class TestTieredSearchProperty:
    @settings(max_examples=25, deadline=None)
    @given(search_scenario())
    def test_tiered_matches_exhaustive(self, scenario):
        (
            grid, iterations, counts, max_depth, chunk_size, screen,
            prune, vectorize, resume_at,
        ) = scenario
        spec = jacobi_2d(grid=grid, iterations=iterations)
        space = DesignSpace.default(
            spec, counts, max_fused_depth=max_depth
        )
        designs = _mixed_candidates(spec, space)
        budget = _budget()
        reference = CandidateEvaluator(prune=False).explore(
            designs, budget
        )
        driver = SearchDriver(
            evaluator=CandidateEvaluator(
                prune=prune, vectorize=vectorize
            ),
            chunk_size=chunk_size,
            screen=screen,
        )
        result = driver.run(iter(designs), budget)
        _assert_same_best(result, reference)
        if not prune and screen != "latency":
            # Frontier parity needs every feasible design scored
            # (pruning Tier-1 engines drop band points) and a
            # frontier-preserving screen (the latency screen keeps
            # only the optimum) — both documented.
            assert _signature_view(
                result.frontier
            ) == _signature_view(pareto_front(list(reference.candidates)))

    @settings(max_examples=10, deadline=None)
    @given(search_scenario())
    def test_interrupt_and_resume_matches(self, tmp_path_factory, scenario):
        (
            grid, iterations, counts, max_depth, chunk_size, screen,
            _prune, vectorize, resume_at,
        ) = scenario
        spec = jacobi_2d(grid=grid, iterations=iterations)
        space = DesignSpace.default(
            spec, counts, max_fused_depth=max_depth
        )
        designs = _mixed_candidates(spec, space)
        budget = _budget()
        path = tmp_path_factory.mktemp("search") / "ck.jsonl"

        def driver(ck):
            return SearchDriver(
                evaluator=CandidateEvaluator(
                    prune=False, vectorize=vectorize
                ),
                chunk_size=chunk_size,
                screen=screen,
                checkpoint=ck,
                search_key="prop",
            )

        with SearchCheckpoint(path) as ck:
            try:
                driver(ck).run(
                    iter(designs[: resume_at * chunk_size]), budget
                )
            except DesignSpaceError:
                pass  # truncated prefix may hold no feasible design
        with SearchCheckpoint(path) as ck:
            resumed = driver(ck)
            result = resumed.run(iter(designs), budget)
        assert resumed.report.replayed_chunks == min(
            resume_at,
            (len(designs) + chunk_size - 1) // chunk_size,
        )
        reference = SearchDriver(
            evaluator=CandidateEvaluator(
                prune=False, vectorize=vectorize
            ),
            chunk_size=chunk_size,
            screen=screen,
        ).run(iter(designs), budget)
        _assert_same_best(result, reference)
        assert _signature_view(result.frontier) == _signature_view(
            reference.frontier
        )
