"""Tests for design-space definition and enumeration."""

import pytest

from repro.dse.space import DesignSpace, fused_depth_candidates
from repro.errors import DesignSpaceError
from repro.stencil import jacobi_2d


class TestDepthCandidates:
    def test_dense_prefix(self):
        candidates = fused_depth_candidates(100, 1024)
        assert set(range(1, 33)) <= set(candidates)

    def test_includes_divisors(self):
        candidates = fused_depth_candidates(200, 1024)
        assert 128 in candidates  # divisor of 1024 beyond dense range

    def test_respects_max(self):
        assert max(fused_depth_candidates(50, 1024)) == 50

    def test_capped_by_iterations(self):
        assert max(fused_depth_candidates(100, 10)) == 10

    def test_sorted_unique(self):
        candidates = fused_depth_candidates(300, 1000)
        assert candidates == sorted(set(candidates))

    def test_invalid_max(self):
        with pytest.raises(DesignSpaceError):
            fused_depth_candidates(0, 100)

    def test_sqrt_divisor_scan_matches_naive_reference(self):
        # The sqrt-paired divisor iteration must enumerate exactly the
        # divisors the O(iterations) scan did.
        def naive(max_depth, iterations):
            limit = min(max_depth, iterations)
            depths = set(range(1, min(32, limit) + 1))
            depths.update(range(32, limit + 1, 4))
            depths.update(
                d
                for d in range(1, iterations + 1)
                if iterations % d == 0 and d <= limit
            )
            depths.add(limit)
            return sorted(depths)

        for iterations in (1, 7, 10, 36, 100, 1000, 1024, 1025):
            for limit in (1, 2, 31, 32, 33, 100, 999, 1024, 2048):
                assert fused_depth_candidates(
                    limit, iterations
                ) == naive(limit, iterations), (limit, iterations)


class TestDesignSpace:
    def test_default_space(self, paper_jacobi2d):
        space = DesignSpace.default(paper_jacobi2d, (4, 4), unroll=4)
        assert space.counts == (4, 4)
        shapes = list(space.tile_shapes())
        assert (128, 128) in shapes

    def test_tile_candidates_divide_grid(self, paper_jacobi2d):
        space = DesignSpace.default(paper_jacobi2d, (4, 4))
        for shape in space.tile_shapes():
            for extent, count, grid in zip(
                shape, (4, 4), paper_jacobi2d.grid_shape
            ):
                assert grid % (extent * count) == 0

    def test_size_estimate(self, paper_jacobi2d):
        space = DesignSpace.default(
            paper_jacobi2d, (4, 4), max_fused_depth=16
        )
        assert space.size_estimate == len(
            list(space.tile_shapes())
        ) * len(space.depth_candidates())

    def test_size_exact_without_enumeration(self, paper_jacobi2d):
        # `size` is computed from the candidate lists alone; pin it
        # against a full enumeration for several depth bounds.
        for max_depth in (1, 5, 16, 64):
            space = DesignSpace.default(
                paper_jacobi2d, (2, 2), max_fused_depth=max_depth
            )
            enumerated = [
                (tile, depth)
                for tile in space.tile_shapes()
                for depth in space.depth_candidates()
            ]
            assert space.size == len(enumerated)
            assert space.size_estimate == space.size

    def test_tile_shapes_is_lazy(self, paper_jacobi2d):
        space = DesignSpace.default(paper_jacobi2d, (4, 4))
        shapes = space.tile_shapes()
        assert iter(shapes) is shapes  # a generator, not a list
        first = next(shapes)
        assert first == tuple(c[0] for c in space.tile_candidates)

    def test_rank_validation(self, paper_jacobi2d):
        with pytest.raises(DesignSpaceError):
            DesignSpace(
                spec=paper_jacobi2d,
                counts=(4,),
                tile_candidates=((8,), (8,)),
                max_fused_depth=4,
            )

    def test_empty_candidates_rejected(self, paper_jacobi2d):
        with pytest.raises(DesignSpaceError):
            DesignSpace(
                spec=paper_jacobi2d,
                counts=(4, 4),
                tile_candidates=((8,), ()),
                max_fused_depth=4,
            )

    def test_infeasible_grid_rejected(self):
        spec = jacobi_2d(grid=(24, 24), iterations=8)
        with pytest.raises(DesignSpaceError):
            # min_tile 16 x 4 counts = 64 > 24: nothing divides.
            DesignSpace.default(spec, (4, 4), min_tile=16)
