"""Tests for sensitivity analysis."""

import pytest

from repro.dse.sensitivity import SensitivityAnalyzer
from repro.errors import DesignSpaceError
from repro.stencil import jacobi_2d
from repro.tiling import make_baseline_design, make_heterogeneous_design


@pytest.fixture(scope="module")
def designs():
    spec = jacobi_2d(grid=(512, 512), iterations=64)
    baseline = make_baseline_design(spec, (64, 64), (2, 2), 8, unroll=2)
    hetero = make_heterogeneous_design(
        spec, (128, 128), (2, 2), 16, unroll=2
    )
    return baseline, hetero


@pytest.fixture(scope="module")
def analyzer():
    return SensitivityAnalyzer()


class TestBandwidthSweep:
    def test_latency_decreases_with_bandwidth(self, analyzer, designs):
        baseline, _ = designs
        result = analyzer.sweep_bandwidth(
            baseline, [1.6e9, 6.4e9, 12.8e9, 25.6e9]
        )
        measured = [p.measured_cycles for p in result.points]
        assert measured == sorted(measured, reverse=True)

    def test_best_point_is_fastest(self, analyzer, designs):
        baseline, _ = designs
        result = analyzer.sweep_bandwidth(baseline, [1.6e9, 12.8e9])
        assert result.best().value == 12.8e9

    def test_model_underestimates_everywhere(self, analyzer, designs):
        _, hetero = designs
        result = analyzer.sweep_bandwidth(hetero, [3.2e9, 12.8e9])
        for point in result.points:
            assert point.model_error >= -0.01

    def test_empty_sweep_rejected(self, analyzer, designs):
        with pytest.raises(DesignSpaceError):
            analyzer.sweep_bandwidth(designs[0], [])


class TestPipeCostSweep:
    def test_sharing_design_sensitive(self, analyzer, designs):
        _, hetero = designs
        result = analyzer.sweep_pipe_cost(hetero, [1, 8, 32])
        measured = [p.measured_cycles for p in result.points]
        assert measured[-1] > measured[0]

    def test_baseline_insensitive(self, analyzer, designs):
        baseline, _ = designs
        result = analyzer.sweep_pipe_cost(baseline, [1, 32])
        assert result.measured_range() == pytest.approx(1.0)


class TestLaunchSweep:
    def test_latency_grows_with_stagger(self, analyzer, designs):
        baseline, _ = designs
        result = analyzer.sweep_launch_overhead(
            baseline, [0, 1000, 4000]
        )
        measured = [p.measured_cycles for p in result.points]
        assert measured == sorted(measured)

    def test_model_error_grows_with_stagger(self, analyzer, designs):
        """The stagger is exactly what the model omits, so the error
        must grow with it — the paper's explanation quantified."""
        baseline, _ = designs
        result = analyzer.sweep_launch_overhead(baseline, [0, 4000])
        assert result.points[1].model_error > result.points[0].model_error


class TestSpeedupSweep:
    def test_sharing_gain_grows_as_bandwidth_shrinks(
        self, analyzer, designs
    ):
        baseline, hetero = designs
        sweep = analyzer.speedup_vs_bandwidth(
            baseline, hetero, [1.6e9, 6.4e9, 25.6e9]
        )
        speedups = [s for _, s in sweep]
        assert speedups[0] > speedups[-1]
        assert all(s > 1.0 for s in speedups)
