"""Tests for validation helpers."""

import pytest

from repro.errors import SpecificationError
from repro.utils.validation import (
    check_dim_tuple,
    check_positive,
    check_positive_tuple,
    check_probability,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive("x", 3.5) == 3.5

    def test_rejects_zero(self):
        with pytest.raises(SpecificationError, match="x must be positive"):
            check_positive("x", 0)

    def test_rejects_negative(self):
        with pytest.raises(SpecificationError):
            check_positive("x", -1)


class TestCheckProbability:
    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_accepts_unit_interval(self, value):
        assert check_probability("p", value) == value

    @pytest.mark.parametrize("value", [-0.1, 1.1])
    def test_rejects_outside(self, value):
        with pytest.raises(SpecificationError):
            check_probability("p", value)


class TestDimTuples:
    def test_coerces_to_ints(self):
        assert check_dim_tuple("t", [1.0, 2.0], 2) == (1, 2)

    def test_rejects_wrong_rank(self):
        with pytest.raises(SpecificationError, match="must have 3 entries"):
            check_dim_tuple("t", (1, 2), 3)

    def test_positive_tuple_accepts(self):
        assert check_positive_tuple("t", (4, 5), 2) == (4, 5)

    def test_positive_tuple_rejects_zero(self):
        with pytest.raises(SpecificationError):
            check_positive_tuple("t", (4, 0), 2)
