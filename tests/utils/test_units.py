"""Tests for unit conversions."""

import pytest

from repro.errors import SpecificationError
from repro.utils.units import (
    bytes_per_cycle,
    cycles_to_seconds,
    gib,
    kib,
    mib,
    seconds_to_cycles,
)


class TestByteUnits:
    def test_kib(self):
        assert kib(1) == 1024

    def test_mib(self):
        assert mib(2) == 2 * 1024 * 1024

    def test_gib(self):
        assert gib(16) == 16 * 1024**3


class TestCycleConversions:
    def test_cycles_to_seconds(self):
        assert cycles_to_seconds(200e6, 200e6) == pytest.approx(1.0)

    def test_seconds_to_cycles(self):
        assert seconds_to_cycles(0.5, 200e6) == pytest.approx(1e8)

    def test_roundtrip(self):
        cycles = 123456.0
        freq = 150e6
        assert seconds_to_cycles(
            cycles_to_seconds(cycles, freq), freq
        ) == pytest.approx(cycles)

    def test_zero_frequency_rejected(self):
        with pytest.raises(SpecificationError):
            cycles_to_seconds(100, 0)
        with pytest.raises(SpecificationError):
            seconds_to_cycles(1, -1)


class TestBandwidth:
    def test_bytes_per_cycle(self):
        # 12.8 GB/s at 200 MHz = 64 bytes per cycle.
        assert bytes_per_cycle(12.8e9, 200e6) == pytest.approx(64.0)

    def test_rejects_nonpositive_bandwidth(self):
        with pytest.raises(SpecificationError):
            bytes_per_cycle(0, 200e6)
