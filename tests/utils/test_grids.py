"""Unit and property tests for nd-box geometry."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import SpecificationError
from repro.utils.grids import (
    Box,
    box_from_shape,
    clip_box,
    expand_box,
    iter_boxes,
    partition_extent,
    shrink_box,
    split_extent,
)


class TestBox:
    def test_shape_and_size(self):
        box = Box((1, 2), (4, 7))
        assert box.shape == (3, 5)
        assert box.size == 15
        assert box.ndim == 2

    def test_empty_box(self):
        assert Box((3,), (3,)).is_empty
        assert Box((3,), (3,)).size == 0
        assert not Box((3,), (4,)).is_empty

    def test_negative_extent_rejected(self):
        with pytest.raises(SpecificationError):
            Box((5,), (3,))

    def test_rank_mismatch_rejected(self):
        with pytest.raises(SpecificationError):
            Box((0, 0), (1,))

    def test_contains_point(self):
        box = Box((0, 0), (4, 4))
        assert box.contains_point((0, 0))
        assert box.contains_point((3, 3))
        assert not box.contains_point((4, 0))
        assert not box.contains_point((-1, 2))

    def test_contains_box(self):
        outer = Box((0, 0), (10, 10))
        assert outer.contains_box(Box((2, 2), (5, 5)))
        assert outer.contains_box(outer)
        assert not outer.contains_box(Box((5, 5), (11, 6)))

    def test_empty_box_contained_everywhere(self):
        assert Box((0,), (1,)).contains_box(Box((9,), (9,)))

    def test_intersect_overlapping(self):
        a = Box((0, 0), (5, 5))
        b = Box((3, 2), (8, 4))
        assert a.intersect(b) == Box((3, 2), (5, 4))

    def test_intersect_disjoint_is_empty(self):
        a = Box((0,), (3,))
        b = Box((5,), (9,))
        assert a.intersect(b).is_empty

    def test_overlaps(self):
        assert Box((0,), (3,)).overlaps(Box((2,), (5,)))
        assert not Box((0,), (3,)).overlaps(Box((3,), (5,)))

    def test_translate(self):
        assert Box((1, 1), (2, 3)).translate((10, -1)) == Box(
            (11, 0), (12, 2)
        )

    def test_slices(self):
        assert Box((1, 2), (3, 5)).slices() == (slice(1, 3), slice(2, 5))

    def test_local_slices(self):
        box = Box((10, 10), (12, 14))
        assert box.local_slices((9, 8)) == (slice(1, 3), slice(2, 6))

    def test_str(self):
        assert "[1,3)" in str(Box((1,), (3,)))


class TestBoxHelpers:
    def test_box_from_shape(self):
        assert box_from_shape((3, 4)) == Box((0, 0), (3, 4))

    def test_expand_box(self):
        assert expand_box(Box((2, 2), (4, 4)), (1, 2)) == Box(
            (1, 0), (5, 6)
        )

    def test_shrink_box(self):
        assert shrink_box(Box((0, 0), (10, 10)), (2, 3)) == Box(
            (2, 3), (8, 7)
        )

    def test_shrink_box_clamps_to_empty(self):
        shrunk = shrink_box(Box((0,), (4,)), (3,))
        assert shrunk.is_empty

    def test_clip_box(self):
        domain = Box((0, 0), (8, 8))
        assert clip_box(Box((-2, 3), (4, 12)), domain) == Box(
            (0, 3), (4, 8)
        )

    def test_expand_then_shrink_roundtrip(self):
        box = Box((5, 5), (9, 9))
        assert shrink_box(expand_box(box, (2, 2)), (2, 2)) == box


class TestSplitExtent:
    def test_even_split(self):
        assert split_extent(12, 4) == [3, 3, 3, 3]

    def test_uneven_split_front_loaded(self):
        assert split_extent(10, 3) == [4, 3, 3]

    def test_zero_length(self):
        assert split_extent(0, 3) == [0, 0, 0]

    def test_invalid_parts(self):
        with pytest.raises(SpecificationError):
            split_extent(10, 0)

    def test_negative_length(self):
        with pytest.raises(SpecificationError):
            split_extent(-1, 2)

    @given(st.integers(0, 1000), st.integers(1, 32))
    def test_sums_to_length(self, length, parts):
        result = split_extent(length, parts)
        assert sum(result) == length
        assert len(result) == parts
        assert max(result) - min(result) <= 1


class TestPartitionExtent:
    def test_proportional(self):
        assert partition_extent(100, [1.0, 1.0]) == [50, 50]

    def test_weighted(self):
        result = partition_extent(90, [1.0, 2.0])
        assert sum(result) == 90
        assert result[1] > result[0]

    def test_rejects_nonpositive_weight(self):
        with pytest.raises(SpecificationError):
            partition_extent(10, [1.0, 0.0])

    def test_rejects_empty_weights(self):
        with pytest.raises(SpecificationError):
            partition_extent(10, [])

    @given(
        st.integers(4, 500),
        st.lists(st.floats(0.1, 10.0), min_size=1, max_size=4),
    )
    def test_sums_exactly(self, length, weights):
        if length < len(weights):
            return
        result = partition_extent(length, weights)
        assert sum(result) == length
        assert all(r >= 1 for r in result)


class TestIterBoxes:
    def test_uniform_grid(self):
        boxes = dict(iter_boxes((0, 0), [[2, 2], [3, 3]]))
        assert len(boxes) == 4
        assert boxes[(0, 0)] == Box((0, 0), (2, 3))
        assert boxes[(1, 1)] == Box((2, 3), (4, 6))

    def test_heterogeneous_extents(self):
        boxes = dict(iter_boxes((10,), [[3, 5, 2]]))
        assert boxes[(0,)] == Box((10,), (13,))
        assert boxes[(1,)] == Box((13,), (18,))
        assert boxes[(2,)] == Box((18,), (20,))

    def test_boxes_partition_region(self):
        extents = [[3, 5], [2, 2, 4]]
        boxes = [b for _, b in iter_boxes((0, 0), extents)]
        total = sum(b.size for b in boxes)
        assert total == 8 * 8
        for i, a in enumerate(boxes):
            for b in boxes[i + 1 :]:
                assert not a.overlaps(b)

    def test_row_major_order(self):
        indices = [i for i, _ in iter_boxes((0, 0), [[1, 1], [1, 1]])]
        assert indices == [(0, 0), (0, 1), (1, 0), (1, 1)]
