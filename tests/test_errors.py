"""Tests for the exception hierarchy and package-level API surface."""

import pytest

import repro
from repro.errors import (
    CodegenError,
    DesignSpaceError,
    ExtractionError,
    FrontendError,
    ParseError,
    PipeError,
    ReproError,
    ResourceError,
    SimulationError,
    SpecificationError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            SpecificationError,
            FrontendError,
            ParseError,
            ExtractionError,
            ResourceError,
            DesignSpaceError,
            SimulationError,
            PipeError,
            CodegenError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_parse_error_is_frontend_error(self):
        assert issubclass(ParseError, FrontendError)

    def test_pipe_error_is_simulation_error(self):
        assert issubclass(PipeError, SimulationError)

    def test_parse_error_carries_location(self):
        err = ParseError("oops", line=3, column=7)
        assert "line 3" in str(err)
        assert err.line == 3
        assert err.column == 7

    def test_parse_error_without_location(self):
        assert str(ParseError("oops")) == "oops"

    def test_framework_failures_catchable_at_root(self):
        from repro.stencil import jacobi_2d

        with pytest.raises(ReproError):
            jacobi_2d(grid=(1, 1), iterations=1)


class TestPublicApi:
    def test_all_symbols_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__.count(".") == 2

    def test_quickstart_docstring_names_exist(self):
        # The module docstring's quickstart imports must be real.
        for name in (
            "jacobi_2d",
            "make_baseline_design",
            "optimize_heterogeneous",
            "simulate",
        ):
            assert hasattr(repro, name)
