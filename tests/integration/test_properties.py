"""Property-based tests (hypothesis) on the framework's core invariants.

The central property: for *any* linear stencil, grid, tiling, and fused
depth, every design kind executed by the functional executor matches
the naive reference bitwise.
"""

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.sim.functional import run_functional
from repro.stencil.pattern import FieldUpdate, StencilPattern, Tap
from repro.stencil.reference import run_reference
from repro.stencil.spec import StencilSpec
from repro.tiling import (
    make_baseline_design,
    make_heterogeneous_design,
    make_pipe_shared_design,
)

# -- strategies -------------------------------------------------------------


@st.composite
def random_patterns(draw, max_ndim=2, max_radius=2):
    """A random single-field linear stencil pattern."""
    ndim = draw(st.integers(1, max_ndim))
    radius = draw(st.integers(1, max_radius))
    num_taps = draw(st.integers(1, 5))
    offsets = {(0,) * ndim}
    for _ in range(num_taps):
        offsets.add(
            tuple(
                draw(st.integers(-radius, radius)) for _ in range(ndim)
            )
        )
    taps = tuple(
        Tap(
            "a",
            off,
            draw(
                st.floats(
                    -1.0, 1.0, allow_nan=False, allow_infinity=False
                )
            ),
        )
        for off in sorted(offsets)
    )
    return StencilPattern(
        name="random",
        ndim=ndim,
        fields=("a",),
        updates={"a": FieldUpdate(taps=taps)},
    )


@st.composite
def random_cases(draw, boundaries=("frozen",)):
    """(spec, design) pairs over all design kinds."""
    from repro.stencil.boundary import BoundaryPolicy

    boundary = BoundaryPolicy(draw(st.sampled_from(boundaries)))
    pattern = draw(random_patterns())
    ndim = pattern.ndim
    counts = tuple(draw(st.sampled_from([1, 2])) for _ in range(ndim))
    tile = tuple(
        draw(st.sampled_from([4, 6, 8])) for _ in range(ndim)
    )
    regions = tuple(draw(st.sampled_from([1, 2])) for _ in range(ndim))
    grid = tuple(
        t * c * g for t, c, g in zip(tile, counts, regions)
    )
    # Grids must comfortably exceed the frozen boundary layer.
    if any(g <= 2 * r for g, r in zip(grid, pattern.radius)):
        grid = tuple(
            max(g, 2 * r + 2) for g, r in zip(grid, pattern.radius)
        )
        regions = (1,) * ndim
        tile = grid
        counts = (1,) * ndim
    iterations = draw(st.integers(1, 6))
    fused = draw(st.integers(1, min(4, iterations)))
    spec = StencilSpec(
        name="random",
        pattern=pattern,
        grid_shape=grid,
        iterations=iterations,
        boundary=boundary,
    )
    kind = draw(st.sampled_from(["baseline", "pipe", "hetero"]))
    if kind == "baseline":
        design = make_baseline_design(spec, tile, counts, fused)
    elif kind == "pipe":
        design = make_pipe_shared_design(spec, tile, counts, fused)
    else:
        region_shape = tuple(
            t * c for t, c in zip(tile, counts)
        )
        design = make_heterogeneous_design(
            spec, region_shape, counts, fused
        )
    return spec, design


# -- properties -------------------------------------------------------------


class TestFunctionalEquivalence:
    @settings(
        max_examples=60,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(random_cases())
    def test_any_design_matches_reference_bitwise(self, case):
        spec, design = case
        ref = run_reference(spec)
        out = run_functional(design)
        for field in spec.pattern.fields:
            assert np.array_equal(ref[field], out[field])

    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(random_cases(boundaries=("frozen", "periodic")))
    def test_periodic_designs_match_reference_bitwise(self, case):
        """The bitwise invariant also holds under periodic wrapping."""
        spec, design = case
        ref = run_reference(spec)
        out = run_functional(design)
        for field in spec.pattern.fields:
            assert np.array_equal(ref[field], out[field])


class TestGeneratedCodeEquivalence:
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(random_cases())
    def test_generated_kernels_match_reference_bitwise(self, case):
        """The emitted executable kernels — running through real pipes
        under cooperative scheduling — agree with the reference for any
        linear stencil, tiling, and fused depth."""
        from repro.codegen.pyexec import execute_generated

        spec, design = case
        ref = run_reference(spec)
        out = execute_generated(design)
        for field in spec.pattern.fields:
            assert np.array_equal(ref[field], out[field])


class TestGeometryInvariants:
    @settings(max_examples=40, deadline=None)
    @given(random_cases())
    def test_region_tiles_partition(self, case):
        _, design = case
        total = sum(t.cells for t in design.tiles)
        assert total == math.prod(design.tile_grid.region_shape)

    @settings(max_examples=40, deadline=None)
    @given(random_cases())
    def test_compute_counts_consistent(self, case):
        _, design = case
        assert design.region_compute_cells() == (
            design.region_useful_cells()
            + design.region_redundant_cells()
        )
        assert design.region_redundant_cells() >= 0

    @settings(max_examples=40, deadline=None)
    @given(random_cases())
    def test_read_footprint_covers_first_iteration(self, case):
        _, design = case
        for tile in design.tiles:
            first = design.footprint_shape(tile, 1)
            read = design.tile_read_shape(tile)
            assert all(r >= f for r, f in zip(read, first))

    @settings(max_examples=40, deadline=None)
    @given(random_cases())
    def test_slowest_tile_maximal(self, case):
        _, design = case
        slowest = design.tile_compute_cells(design.slowest_tile())
        assert all(
            design.tile_compute_cells(t) <= slowest
            for t in design.tiles
        )


class TestModelSimulatorInvariants:
    @settings(max_examples=25, deadline=None)
    @given(random_cases())
    def test_model_never_exceeds_simulator(self, case):
        """The refined model omits launch stagger and lockstep waits,
        so it can never predict more cycles than the simulator measures."""
        from repro.model import PerformanceModel
        from repro.sim import simulate

        _, design = case
        predicted = PerformanceModel().predict_cycles(design)
        measured = simulate(design).total_cycles
        assert predicted <= measured * 1.0001

    @settings(max_examples=25, deadline=None)
    @given(random_cases())
    def test_breakdowns_sum(self, case):
        from repro.sim import simulate

        _, design = case
        result = simulate(design)
        bd = result.breakdown
        assert bd.total == pytest.approx(result.total_cycles)
