"""Round-trip property: codegen output re-parsed by our own frontend.

The generated update statement must linearize back to exactly the taps
of the pattern it was generated from — tying the code generator and the
feature extractor together through the shared pattern representation.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.codegen import update_statement
from repro.frontend import extract_pattern
from repro.stencil import get_benchmark
from repro.stencil.pattern import FieldUpdate, StencilPattern, Tap


@st.composite
def single_field_patterns(draw):
    ndim = draw(st.integers(1, 3))
    num_taps = draw(st.integers(1, 6))
    offsets = set()
    for _ in range(num_taps):
        offsets.add(
            tuple(draw(st.integers(-2, 2)) for _ in range(ndim))
        )
    taps = tuple(
        Tap(
            "a",
            off,
            draw(
                st.floats(
                    min_value=-4.0,
                    max_value=4.0,
                    allow_nan=False,
                    allow_infinity=False,
                ).filter(lambda c: abs(c) > 1e-6)
            ),
        )
        for off in sorted(offsets)
    )
    constant = draw(st.sampled_from([0.0, 0.5, 1.25]))
    return StencilPattern(
        name="roundtrip",
        ndim=ndim,
        fields=("a",),
        updates={"a": FieldUpdate(taps=taps, constant=constant)},
    )


def roundtrip(pattern):
    index_vars = [f"x{d}" for d in range(pattern.ndim)]
    decls = "".join(
        f"int x{d} = get_global_id({d});" for d in range(pattern.ndim)
    )
    stmt = update_statement(pattern, "a", index_vars)
    return extract_pattern(decls + stmt, field_map={"new_a": "buf_a"})


class TestRoundTrip:
    @settings(max_examples=80, deadline=None)
    @given(single_field_patterns())
    def test_taps_survive_roundtrip(self, pattern):
        recovered = roundtrip(pattern)
        original = {
            (t.offset): t.coeff for t in pattern.updates["a"].taps
        }
        (field,) = recovered.updates
        extracted = {
            (t.offset): t.coeff for t in recovered.updates[field].taps
        }
        assert set(extracted) == set(original)
        for offset, coeff in original.items():
            assert extracted[offset] == pytest.approx(coeff, rel=1e-6)

    @settings(max_examples=40, deadline=None)
    @given(single_field_patterns())
    def test_constant_survives_roundtrip(self, pattern):
        recovered = roundtrip(pattern)
        assert recovered.updates["buf_a"].constant if False else True
        assert recovered.updates[
            list(recovered.updates)[0]
        ].constant == pytest.approx(
            pattern.updates["a"].constant, abs=1e-6
        )

    @pytest.mark.parametrize(
        "name", ["jacobi-1d", "jacobi-2d", "jacobi-3d", "seidel-2d"]
    )
    def test_library_benchmarks_roundtrip(self, name):
        pattern = get_benchmark(name).pattern
        recovered = roundtrip(pattern)
        assert recovered.radius == pattern.radius
        original = {
            t.offset: t.coeff for t in pattern.updates["a"].taps
        }
        extracted = {
            t.offset: t.coeff
            for t in recovered.updates[
                list(recovered.updates)[0]
            ].taps
        }
        assert extracted.keys() == original.keys()
