"""End-to-end integration: source -> extraction -> DSE -> codegen -> execution."""

import numpy as np
import pytest

from repro import (
    StencilSpec,
    extract_features,
    generate_program,
    make_baseline_design,
    optimize_heterogeneous,
    run_functional,
    run_reference,
    simulate,
)
from repro.model import PerformanceModel

JACOBI_2D_SOURCE = """
__kernel void jacobi2d(__global float* A, __global float* Anew) {
    int i = get_global_id(0);
    int j = get_global_id(1);
    Anew[i][j] = 0.2f * (A[i][j] + A[i-1][j] + A[i+1][j]
                         + A[i][j-1] + A[i][j+1]);
}
"""


class TestSourceToExecution:
    """The paper's Figure 5 flow, end to end on real data."""

    @pytest.fixture(scope="class")
    def flow(self):
        # 1. Feature extraction from OpenCL source.
        features = extract_features(
            JACOBI_2D_SOURCE, name="jacobi-2d-user", field_map={"Anew": "A"}
        )
        # 2. Problem specification.
        spec = StencilSpec(
            name="jacobi-2d-user",
            pattern=features.pattern,
            grid_shape=(64, 64),
            iterations=12,
        )
        # 3. Baseline design + model-driven heterogeneous optimization.
        baseline = make_baseline_design(spec, (16, 16), (2, 2), 4)
        hetero = optimize_heterogeneous(spec, baseline).best.design
        return features, spec, baseline, hetero

    def test_extraction_recovers_shape(self, flow):
        features, _, _, _ = flow
        assert features.ndim == 2
        assert features.pattern.radius == (1, 1)
        assert features.pattern.points_per_cell() == 5

    def test_optimized_design_is_heterogeneous(self, flow):
        _, _, baseline, hetero = flow
        assert hetero.sharing
        assert hetero.tile_grid.region_shape == (32, 32)

    def test_functional_correctness_of_optimized_design(self, flow):
        _, spec, _, hetero = flow
        ref = run_reference(spec)
        out = run_functional(hetero)
        assert np.array_equal(ref["A"], out["A"])

    def test_simulated_speedup(self, flow):
        _, _, baseline, hetero = flow
        base = simulate(baseline).total_cycles
        het = simulate(hetero).total_cycles
        assert het < base

    def test_model_agrees_with_simulation_direction(self, flow):
        _, _, baseline, hetero = flow
        model = PerformanceModel()
        assert model.predict_cycles(hetero) < model.predict_cycles(
            baseline
        )

    def test_codegen_produces_program(self, flow):
        _, _, _, hetero = flow
        program = generate_program(hetero)
        assert program.num_kernels == 4
        assert "pipe float" in program.kernel_source
        assert "stencil_launch" in program.host_source

    def test_generated_update_matches_source_semantics(self, flow):
        """The kernel's emitted update statement re-extracts to the
        same taps that came from the user's source."""
        from repro.frontend import extract_pattern

        features, _, _, _ = flow
        from repro.codegen import update_statement

        stmt = update_statement(features.pattern, "A", ["x0", "x1"])
        decls = (
            "int x0 = get_global_id(0); int x1 = get_global_id(1);"
        )
        recovered = extract_pattern(
            decls + stmt, field_map={"new_A": "buf_A"}
        )
        original = {
            t.offset: t.coeff
            for t in features.pattern.updates["A"].taps
        }
        extracted = {
            t.offset: t.coeff
            for t in recovered.updates["buf_A"].taps
        }
        assert extracted == pytest.approx(original)


class TestCrossDesignConsistency:
    """All three designs compute identical results on identical input."""

    def test_all_designs_agree(self, small_jacobi2d):
        from repro.tiling import (
            make_heterogeneous_design,
            make_pipe_shared_design,
        )

        base = make_baseline_design(small_jacobi2d, (8, 8), (2, 2), 4)
        pipe = make_pipe_shared_design(small_jacobi2d, (8, 8), (2, 2), 4)
        het = make_heterogeneous_design(small_jacobi2d, (16, 16), (2, 2), 4)
        outs = [run_functional(d)["a"] for d in (base, pipe, het)]
        assert np.array_equal(outs[0], outs[1])
        assert np.array_equal(outs[1], outs[2])
