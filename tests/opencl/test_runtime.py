"""Tests for the emulated host runtime."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.opencl.runtime import HostRuntime


@pytest.fixture
def runtime():
    return HostRuntime()


class TestBuffers:
    def test_create_and_read(self, runtime):
        data = np.arange(8, dtype=np.float32)
        runtime.create_buffer("x", data)
        out = runtime.read_buffer("x")
        assert np.array_equal(out, data)

    def test_buffer_is_a_copy(self, runtime):
        data = np.zeros(4, dtype=np.float32)
        runtime.create_buffer("x", data)
        data[0] = 99
        assert runtime.read_buffer("x")[0] == 0

    def test_duplicate_name_rejected(self, runtime):
        runtime.create_buffer("x", np.zeros(1))
        with pytest.raises(SimulationError, match="already exists"):
            runtime.create_buffer("x", np.zeros(1))

    def test_unknown_buffer_rejected(self, runtime):
        with pytest.raises(SimulationError, match="unknown buffer"):
            runtime.buffer("ghost")

    def test_release(self, runtime):
        runtime.create_buffer("x", np.zeros(1))
        runtime.release_buffer("x")
        with pytest.raises(SimulationError):
            runtime.buffer("x")

    def test_device_memory_limit(self):
        from repro.opencl.platform import ADM_PCIE_7V3
        import dataclasses

        tiny_board = dataclasses.replace(ADM_PCIE_7V3, ddr_bytes=64)
        rt = HostRuntime(tiny_board)
        with pytest.raises(SimulationError, match="memory exhausted"):
            rt.create_buffer("big", np.zeros(1024, dtype=np.float32))


class TestPipes:
    def test_create_and_lookup(self, runtime):
        pipe = runtime.create_pipe("p", depth=4)
        assert runtime.pipe("p") is pipe

    def test_duplicate_pipe_rejected(self, runtime):
        runtime.create_pipe("p")
        with pytest.raises(SimulationError):
            runtime.create_pipe("p")

    def test_unknown_pipe_rejected(self, runtime):
        with pytest.raises(SimulationError):
            runtime.pipe("ghost")

    def test_pipes_view(self, runtime):
        runtime.create_pipe("a")
        runtime.create_pipe("b")
        assert set(runtime.pipes) == {"a", "b"}


class TestKernelsAndQueues:
    def test_launch_executes_kernel(self, runtime):
        runtime.create_buffer("x", np.zeros(4, dtype=np.float32))

        def fill(rt, value):
            rt.buffer("x")[:] = value

        runtime.register_kernel("fill", fill)
        queue = runtime.create_queue()
        queue.enqueue_kernel("fill", 7.0)
        assert np.all(runtime.read_buffer("x") == 7.0)

    def test_launch_records_sequence(self, runtime):
        runtime.register_kernel("noop", lambda rt: None)
        queue = runtime.create_queue()
        first = queue.enqueue_kernel("noop")
        second = queue.enqueue_kernel("noop")
        assert second.sequence == first.sequence + 1
        assert len(queue.launches) == 2

    def test_duplicate_kernel_rejected(self, runtime):
        runtime.register_kernel("k", lambda rt: None)
        with pytest.raises(SimulationError):
            runtime.register_kernel("k", lambda rt: None)

    def test_unknown_kernel_rejected(self, runtime):
        with pytest.raises(SimulationError):
            runtime.create_queue().enqueue_kernel("ghost")

    def test_barrier_and_finish_are_safe(self, runtime):
        queue = runtime.create_queue()
        queue.barrier()
        queue.finish()
