"""Tests for burst-transfer accounting."""

import pytest

from repro.errors import SpecificationError
from repro.opencl.memory import BurstModel, transfer_cycles
from repro.opencl.platform import ADM_PCIE_7V3


class TestTransferCycles:
    def test_zero_bytes_is_free(self):
        assert transfer_cycles(0, ADM_PCIE_7V3) == 0.0

    def test_scales_linearly_with_size(self):
        one = transfer_cycles(1024, ADM_PCIE_7V3)
        two = transfer_cycles(2048, ADM_PCIE_7V3)
        assert two == pytest.approx(2 * one)

    def test_bandwidth_shared_across_kernels(self):
        alone = transfer_cycles(4096, ADM_PCIE_7V3, sharing_kernels=1)
        shared = transfer_cycles(4096, ADM_PCIE_7V3, sharing_kernels=16)
        assert shared == pytest.approx(16 * alone)

    def test_non_burst_heavily_derated(self):
        burst = transfer_cycles(4096, ADM_PCIE_7V3, burst=True)
        scattered = transfer_cycles(4096, ADM_PCIE_7V3, burst=False)
        assert scattered > 5 * burst

    def test_negative_size_rejected(self):
        with pytest.raises(SpecificationError):
            transfer_cycles(-1, ADM_PCIE_7V3)

    def test_invalid_sharing_rejected(self):
        with pytest.raises(SpecificationError):
            transfer_cycles(1, ADM_PCIE_7V3, sharing_kernels=0)

    def test_absolute_value(self):
        # 54.4 effective bytes/cycle at default board: 5440 bytes = 100.
        cycles = transfer_cycles(5440, ADM_PCIE_7V3)
        assert cycles == pytest.approx(100.0)


class TestBurstModel:
    def test_roundtrip_is_read_plus_write(self):
        model = BurstModel(ADM_PCIE_7V3, sharing_kernels=4)
        assert model.roundtrip_cycles(1000, 500) == pytest.approx(
            model.read_cycles(1000) + model.write_cycles(500)
        )

    def test_bursts_needed(self):
        model = BurstModel(ADM_PCIE_7V3)
        assert model.bursts_needed(8192, burst_bytes=4096) == 2
        assert model.bursts_needed(1, burst_bytes=4096) == 1

    def test_bursts_needed_invalid(self):
        with pytest.raises(SpecificationError):
            BurstModel(ADM_PCIE_7V3).bursts_needed(1, burst_bytes=0)
