"""Tests for the board/platform description."""

import pytest

from repro.opencl.platform import ADM_PCIE_7V3, BoardSpec
from repro.fpga.resources import VIRTEX7_690T


class TestAdmPcie7v3:
    def test_matches_paper_setup(self):
        assert ADM_PCIE_7V3.device is VIRTEX7_690T
        assert ADM_PCIE_7V3.clock_hz == 200e6  # paper: 200 MHz
        assert ADM_PCIE_7V3.ddr_bytes == 16 * 1024**3  # 16 GB

    def test_bytes_per_cycle(self):
        assert ADM_PCIE_7V3.bytes_per_cycle == pytest.approx(64.0)

    def test_effective_bandwidth_derated(self):
        assert (
            ADM_PCIE_7V3.effective_bytes_per_cycle
            < ADM_PCIE_7V3.bytes_per_cycle
        )


class TestDerivation:
    def test_with_bandwidth(self):
        board = ADM_PCIE_7V3.with_bandwidth(6.4e9)
        assert board.bytes_per_cycle == pytest.approx(32.0)
        assert board.name == ADM_PCIE_7V3.name

    def test_with_clock(self):
        board = ADM_PCIE_7V3.with_clock(100e6)
        assert board.bytes_per_cycle == pytest.approx(128.0)

    def test_invalid_burst_efficiency(self):
        with pytest.raises(ValueError):
            BoardSpec(
                name="bad",
                device=VIRTEX7_690T,
                ddr_bytes=1,
                bandwidth_bytes_per_s=1e9,
                burst_efficiency=0.0,
            )

    def test_invalid_ddr(self):
        with pytest.raises(Exception):
            BoardSpec(
                name="bad",
                device=VIRTEX7_690T,
                ddr_bytes=0,
                bandwidth_bytes_per_s=1e9,
            )
