"""Tests for OpenCL 2.0 pipe (bounded FIFO) semantics."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import SpecificationError
from repro.opencl.pipes import Pipe, PipeClosed, PipeEmpty, PipeFull


class TestBasics:
    def test_fifo_order(self):
        pipe = Pipe("p")
        pipe.write_all([1, 2, 3])
        assert pipe.read_n(3) == [1, 2, 3]

    def test_len_tracks_occupancy(self):
        pipe = Pipe("p")
        pipe.write("x")
        assert len(pipe) == 1
        pipe.read()
        assert len(pipe) == 0

    def test_empty_read_raises(self):
        with pytest.raises(PipeEmpty):
            Pipe("p").read()

    def test_full_write_raises(self):
        pipe = Pipe("p", depth=2)
        pipe.write_all([1, 2])
        with pytest.raises(PipeFull):
            pipe.write(3)

    def test_depth_must_be_positive(self):
        with pytest.raises(SpecificationError):
            Pipe("p", depth=0)

    def test_read_n_insufficient(self):
        pipe = Pipe("p")
        pipe.write(1)
        with pytest.raises(PipeEmpty):
            pipe.read_n(2)

    def test_read_n_negative(self):
        with pytest.raises(Exception):
            Pipe("p").read_n(-1)


class TestTryOperations:
    def test_try_write_full(self):
        pipe = Pipe("p", depth=1)
        assert pipe.try_write(1)
        assert not pipe.try_write(2)
        assert len(pipe) == 1

    def test_try_read_empty_returns_none(self):
        assert Pipe("p").try_read() is None

    def test_try_read_returns_value(self):
        pipe = Pipe("p")
        pipe.write(42)
        assert pipe.try_read() == 42


class TestClose:
    def test_write_after_close_raises(self):
        pipe = Pipe("p")
        pipe.close()
        with pytest.raises(PipeClosed):
            pipe.write(1)

    def test_reads_drain_after_close(self):
        pipe = Pipe("p")
        pipe.write(7)
        pipe.close()
        assert pipe.read() == 7

    def test_try_write_after_close(self):
        pipe = Pipe("p")
        pipe.close()
        assert not pipe.try_write(1)

    def test_closed_flag(self):
        pipe = Pipe("p")
        assert not pipe.closed
        pipe.close()
        assert pipe.closed


class TestStatistics:
    def test_totals(self):
        pipe = Pipe("p")
        pipe.write_all(range(5))
        pipe.read_n(3)
        assert pipe.total_writes == 5
        assert pipe.total_reads == 3

    def test_max_occupancy(self):
        pipe = Pipe("p")
        pipe.write_all([1, 2, 3])
        pipe.drain()
        pipe.write(4)
        assert pipe.max_occupancy == 3

    def test_drain_empties(self):
        pipe = Pipe("p")
        pipe.write_all([1, 2])
        assert pipe.drain() == [1, 2]
        assert pipe.is_empty


class TestProperties:
    @given(st.lists(st.integers(), max_size=64))
    def test_fifo_preserves_sequence(self, items):
        pipe = Pipe("p", depth=max(1, len(items)))
        pipe.write_all(items)
        assert pipe.read_n(len(items)) == items

    @given(st.lists(st.integers(0, 1), min_size=1, max_size=200))
    def test_occupancy_never_exceeds_depth(self, ops):
        pipe = Pipe("p", depth=4)
        for op in ops:
            if op:
                pipe.try_write(0)
            else:
                pipe.try_read()
            assert len(pipe) <= 4
        assert pipe.max_occupancy <= 4
