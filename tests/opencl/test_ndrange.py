"""Tests for the NDRange/work-group hierarchy."""

import pytest

from repro.errors import SpecificationError
from repro.opencl.ndrange import NDRange, WorkGroup


class TestNDRange:
    def test_group_counts(self):
        nd = NDRange((8, 8), (4, 2))
        assert nd.num_groups == (2, 4)
        assert nd.total_groups == 8
        assert nd.total_items == 64

    def test_indivisible_rejected(self):
        with pytest.raises(SpecificationError, match="not divisible"):
            NDRange((10,), (4,))

    def test_nonpositive_rejected(self):
        with pytest.raises(SpecificationError):
            NDRange((0,), (1,))

    def test_single_group(self):
        nd = NDRange((4,), (4,))
        assert nd.total_groups == 1

    def test_groups_cover_index_space(self):
        nd = NDRange((4, 6), (2, 3))
        seen = set()
        for group in nd.groups():
            for item in group.items():
                assert item not in seen
                seen.add(item)
        assert len(seen) == 24
        assert seen == {(i, j) for i in range(4) for j in range(6)}

    def test_group_ids_row_major(self):
        nd = NDRange((4, 4), (2, 2))
        ids = [g.group_id for g in nd.groups()]
        assert ids == [(0, 0), (0, 1), (1, 0), (1, 1)]

    def test_group_offsets(self):
        nd = NDRange((4, 4), (2, 2))
        offsets = {g.group_id: g.global_offset for g in nd.groups()}
        assert offsets[(1, 1)] == (2, 2)


class TestWorkGroup:
    def test_num_items(self):
        group = WorkGroup((0,), (8,), (0,))
        assert group.num_items == 8

    def test_items_respect_offset(self):
        group = WorkGroup((1,), (3,), (10,))
        assert list(group.items()) == [(10,), (11,), (12,)]

    def test_3d_items_count(self):
        group = WorkGroup((0, 0, 0), (2, 2, 2), (0, 0, 0))
        assert len(list(group.items())) == 8
