"""Tests for the three design factory functions."""

import pytest

from repro.errors import SpecificationError
from repro.tiling import (
    DesignKind,
    make_baseline_design,
    make_heterogeneous_design,
    make_pipe_shared_design,
)


class TestBaselineFactory:
    def test_kind(self, baseline_design):
        assert baseline_design.kind is DesignKind.BASELINE
        assert not baseline_design.sharing

    def test_uniform_tiles(self, baseline_design):
        shapes = {t.shape for t in baseline_design.tiles}
        assert shapes == {(8, 8)}

    def test_rank_checked(self, small_jacobi2d):
        with pytest.raises(SpecificationError):
            make_baseline_design(small_jacobi2d, (8, 8, 8), (2, 2, 2), 2)


class TestPipeSharedFactory:
    def test_kind(self, pipe_design):
        assert pipe_design.kind is DesignKind.PIPE_SHARED
        assert pipe_design.sharing

    def test_auto_pipe_depth_applied(self, pipe_design):
        assert pipe_design.pipe_depth >= 8

    def test_explicit_pipe_depth_respected(self, small_jacobi2d):
        design = make_pipe_shared_design(
            small_jacobi2d, (8, 8), (2, 2), 4, pipe_depth=128
        )
        assert design.pipe_depth == 128

    def test_rank_checked(self, small_jacobi2d):
        with pytest.raises(SpecificationError):
            make_pipe_shared_design(small_jacobi2d, (8,), (2, 2), 2)


class TestHeterogeneousFactory:
    def test_kind(self, hetero_design):
        assert hetero_design.kind is DesignKind.HETEROGENEOUS
        assert hetero_design.sharing

    def test_region_preserved(self, hetero_design):
        assert hetero_design.tile_grid.region_shape == (16, 16)

    def test_balancing_applied_when_meaningful(self, small_jacobi2d):
        design = make_heterogeneous_design(
            small_jacobi2d, (32, 32), (4, 4), 8
        )
        extents = design.tile_grid.extents[0]
        assert extents[0] < extents[1]

    def test_min_extent_default_radius(self, small_jacobi3d):
        design = make_heterogeneous_design(
            small_jacobi3d, (16, 16, 16), (2, 2, 2), 3
        )
        for dim_extents in design.tile_grid.extents:
            assert all(e >= 1 for e in dim_extents)

    def test_workload_balance_improves(self, small_jacobi2d):
        """Heterogeneous tiling narrows the per-kernel workload spread
        relative to equal tiling with sharing."""
        equal = make_pipe_shared_design(
            small_jacobi2d, (8, 8), (4, 4), 6
        )
        hetero = make_heterogeneous_design(
            small_jacobi2d, (32, 32), (4, 4), 6
        )

        def spread(design):
            totals = [
                design.tile_compute_cells(t) for t in design.tiles
            ]
            return max(totals) / min(totals)

        assert spread(hetero) < spread(equal)

    def test_slowest_workload_reduced(self, small_jacobi2d):
        equal = make_pipe_shared_design(
            small_jacobi2d, (8, 8), (4, 4), 6
        )
        hetero = make_heterogeneous_design(
            small_jacobi2d, (32, 32), (4, 4), 6
        )
        assert hetero.tile_compute_cells(
            hetero.slowest_tile()
        ) < equal.tile_compute_cells(equal.slowest_tile())

    def test_rank_checked(self, small_jacobi2d):
        with pytest.raises(SpecificationError):
            make_heterogeneous_design(small_jacobi2d, (16,), (2, 2), 2)
