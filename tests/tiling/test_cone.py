"""Tests for iteration-fusion cone geometry."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import SpecificationError
from repro.tiling.cone import (
    cone_footprint_shape,
    cone_read_shape,
    cone_redundant_cells,
    cone_total_cells,
    cone_workloads,
)


class TestFootprint:
    def test_last_iteration_is_tile(self):
        shape = cone_footprint_shape((8, 8), (1, 1), (2, 2), 4, 4)
        assert shape == (8, 8)

    def test_first_iteration_widest(self):
        shape = cone_footprint_shape((8, 8), (1, 1), (2, 2), 4, 1)
        assert shape == (14, 14)  # 8 + 2*1*(4-1)

    def test_single_side_growth(self):
        shape = cone_footprint_shape((8,), (1,), (1,), 4, 1)
        assert shape == (11,)

    def test_no_growth_when_sides_zero(self):
        shape = cone_footprint_shape((8,), (1,), (0,), 4, 1)
        assert shape == (8,)

    def test_radius_two(self):
        shape = cone_footprint_shape((8,), (2,), (2,), 3, 1)
        assert shape == (16,)

    def test_iteration_bounds_enforced(self):
        with pytest.raises(SpecificationError):
            cone_footprint_shape((8,), (1,), (2,), 4, 0)
        with pytest.raises(SpecificationError):
            cone_footprint_shape((8,), (1,), (2,), 4, 5)

    def test_bad_side_multiplicity(self):
        with pytest.raises(SpecificationError):
            cone_footprint_shape((8,), (1,), (3,), 4, 1)

    def test_rank_mismatch(self):
        with pytest.raises(SpecificationError):
            cone_footprint_shape((8, 8), (1,), (2, 2), 4, 1)

    @given(
        st.integers(2, 32),
        st.integers(1, 3),
        st.sampled_from([0, 1, 2]),
        st.integers(1, 8),
    )
    def test_monotone_shrink(self, w, r, sides, h):
        shapes = [
            cone_footprint_shape((w,), (r,), (sides,), h, i)
            for i in range(1, h + 1)
        ]
        assert all(a >= b for (a,), (b,) in zip(shapes, shapes[1:]))
        assert shapes[-1] == (w,)


class TestReadShape:
    def test_full_overlap_read(self):
        assert cone_read_shape((8,), (1,), (2,), 4) == (16,)

    def test_pipe_halo_read(self):
        assert cone_read_shape((8,), (1,), (0,), 4, halo_sides=(2,)) == (
            10,
        )

    def test_mixed_sides(self):
        assert cone_read_shape((8,), (1,), (1,), 4, halo_sides=(1,)) == (
            13,
        )

    def test_halo_rank_mismatch(self):
        with pytest.raises(SpecificationError):
            cone_read_shape((8, 8), (1, 1), (1, 1), 4, halo_sides=(1,))

    def test_read_covers_first_footprint(self):
        # The read must provide one radius of context around the first
        # iteration's footprint on cone sides.
        read = cone_read_shape((8,), (1,), (2,), 4)
        first = cone_footprint_shape((8,), (1,), (2,), 4, 1)
        assert read[0] == first[0] + 2


class TestWorkloads:
    def test_sums_match_total(self):
        workloads = cone_workloads((8, 8), (1, 1), (2, 2), 4)
        assert sum(workloads) == cone_total_cells((8, 8), (1, 1), (2, 2), 4)

    def test_workloads_decrease(self):
        workloads = cone_workloads((8,), (1,), (2,), 5)
        assert workloads == sorted(workloads, reverse=True)

    def test_no_redundancy_without_growth(self):
        assert cone_redundant_cells((8, 8), (1, 1), (0, 0), 6) == 0

    def test_redundancy_positive_with_growth(self):
        assert cone_redundant_cells((8, 8), (1, 1), (2, 2), 4) > 0

    def test_redundancy_value_1d(self):
        # h=2, w=4, r=1, both sides: i=1 computes 6, i=2 computes 4.
        assert cone_redundant_cells((4,), (1,), (2,), 2) == 2

    @given(st.integers(1, 6), st.integers(1, 6))
    def test_redundancy_grows_with_depth(self, h1, h2):
        if h1 >= h2:
            h1, h2 = h2, h1 + 1
        r1 = cone_redundant_cells((8, 8), (1, 1), (2, 2), h1)
        r2 = cone_redundant_cells((8, 8), (1, 1), (2, 2), h2)
        assert r2 >= r1

    def test_redundancy_grows_with_dimension(self):
        """The paper's motivation: overlap cost explodes with D."""
        ratios = []
        for ndim in (1, 2, 3):
            shape = (8,) * ndim
            redundant = cone_redundant_cells(
                shape, (1,) * ndim, (2,) * ndim, 4
            )
            useful = 4 * 8**ndim
            ratios.append(redundant / useful)
        assert ratios[0] < ratios[1] < ratios[2]
