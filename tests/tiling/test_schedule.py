"""Tests for interior-first scheduling splits."""

import math


from repro.tiling.schedule import (
    dependent_fraction,
    split_independent_dependent,
)


class TestSplit:
    def test_sums_to_footprint(self, pipe_design):
        for tile in pipe_design.tiles:
            for i in range(1, pipe_design.fused_depth + 1):
                indep, dep = split_independent_dependent(
                    pipe_design, tile, i
                )
                footprint = math.prod(
                    pipe_design.footprint_shape(tile, i)
                )
                assert indep + dep == footprint

    def test_baseline_all_independent(self, baseline_design):
        for tile in baseline_design.tiles:
            indep, dep = split_independent_dependent(
                baseline_design, tile, 1
            )
            assert dep == 0

    def test_sharing_has_dependent_layer(self, pipe_design):
        tile = pipe_design.tile_grid.tile_at((0, 0))
        indep, dep = split_independent_dependent(pipe_design, tile, 2)
        assert dep > 0

    def test_dependent_layer_width(self, pipe_design):
        # Corner tile at the last iteration: footprint is the 8x8 tile,
        # dependent layer is one radius along the two shared sides.
        tile = pipe_design.tile_grid.tile_at((0, 0))
        h = pipe_design.fused_depth
        indep, dep = split_independent_dependent(pipe_design, tile, h)
        assert indep == 7 * 7
        assert dep == 64 - 49

    def test_fully_shared_tile(self, small_jacobi2d):
        from repro.tiling import make_pipe_shared_design

        design = make_pipe_shared_design(
            small_jacobi2d, (8, 8), (4, 4), 2
        )
        inner = design.tile_grid.tile_at((1, 1))
        indep, dep = split_independent_dependent(design, inner, 2)
        assert indep == 6 * 6
        assert dep == 64 - 36

    def test_dependent_fraction_bounds(self, pipe_design):
        for tile in pipe_design.tiles:
            frac = dependent_fraction(pipe_design, tile, 2)
            assert 0.0 <= frac < 1.0

    def test_dependent_fraction_zero_for_baseline(self, baseline_design):
        tile = baseline_design.tiles[0]
        assert dependent_fraction(baseline_design, tile, 1) == 0.0
