"""Tests for the workload-balancing solver."""


import pytest
from hypothesis import given, strategies as st

from repro.errors import SpecificationError
from repro.tiling.balancing import (
    balanced_extents,
    balanced_tile_grid,
    balancing_factors,
)
from repro.tiling.tile import TileGrid


class TestBalancedExtents:
    def test_sums_to_region(self):
        extents = balanced_extents(512, 4, 1, 63)
        assert sum(extents) == 512

    def test_boundary_tiles_smaller(self):
        extents = balanced_extents(512, 4, 1, 63)
        assert extents[0] < extents[1]
        assert extents[-1] < extents[-2]

    def test_symmetric(self):
        extents = balanced_extents(512, 4, 1, 63)
        assert extents == extents[::-1]

    def test_no_radius_means_equal(self):
        assert balanced_extents(100, 4, 0, 10) == [25, 25, 25, 25]

    def test_depth_one_means_equal(self):
        assert balanced_extents(100, 4, 1, 1) == [25, 25, 25, 25]

    def test_single_tile(self):
        assert balanced_extents(64, 1, 1, 8) == [64]

    def test_two_tiles_stay_equal(self):
        # Both tiles are boundary tiles: nothing to rebalance.
        assert balanced_extents(64, 2, 1, 8) == [32, 32]

    def test_respects_min_extent(self):
        extents = balanced_extents(20, 4, 2, 9, min_extent=3)
        assert all(e >= 3 for e in extents)
        assert sum(extents) == 20

    def test_infeasible_region_rejected(self):
        with pytest.raises(SpecificationError):
            balanced_extents(3, 4, 1, 2)

    def test_balance_quality(self):
        """Average per-iteration extents should be near-equal."""
        radius, depth = 1, 63
        extents = balanced_extents(512, 4, radius, depth)
        growth = radius * (depth - 1) / 2
        outer = [1, 0, 0, 1]
        effective = [e + growth * n for e, n in zip(extents, outer)]
        assert max(effective) - min(effective) <= growth * 0.1 + 2

    @given(
        st.integers(16, 2048),
        st.integers(1, 8),
        st.integers(0, 3),
        st.integers(1, 64),
    )
    def test_always_sums_and_positive(self, region, count, radius, depth):
        if region < count:
            return
        extents = balanced_extents(region, count, radius, depth)
        assert sum(extents) == region
        assert all(e >= 1 for e in extents)
        assert len(extents) == count


class TestBalancedTileGrid:
    def test_region_shape_preserved(self):
        grid = balanced_tile_grid((512, 512), (4, 4), (1, 1), 63)
        assert grid.region_shape == (512, 512)
        assert grid.counts == (4, 4)

    def test_rank_mismatch(self):
        with pytest.raises(SpecificationError):
            balanced_tile_grid((512,), (4, 4), (1, 1), 8)


class TestBalancingFactors:
    def test_uniform_grid_factors_one(self):
        grid = TileGrid.uniform((8, 8), (2, 2))
        factors = balancing_factors(grid)
        for dim_factors in factors:
            assert all(f == pytest.approx(1.0) for f in dim_factors)

    def test_factors_average_one(self):
        grid = balanced_tile_grid((512,), (4,), (1,), 63)
        (factors,) = balancing_factors(grid)
        assert sum(factors) / len(factors) == pytest.approx(1.0)

    def test_boundary_factors_below_one(self):
        grid = balanced_tile_grid((512,), (4,), (1,), 63)
        (factors,) = balancing_factors(grid)
        assert factors[0] < 1.0 < factors[1]
