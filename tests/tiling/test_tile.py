"""Tests for tile grids."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import SpecificationError
from repro.tiling.tile import TileGrid


class TestConstruction:
    def test_uniform(self):
        grid = TileGrid.uniform((8, 8), (2, 3))
        assert grid.counts == (2, 3)
        assert grid.region_shape == (16, 24)
        assert grid.parallelism == 6
        assert grid.is_uniform

    def test_heterogeneous(self):
        grid = TileGrid([[4, 8, 4], [6, 6]])
        assert grid.counts == (3, 2)
        assert grid.region_shape == (16, 12)
        assert not grid.is_uniform

    def test_empty_rejected(self):
        with pytest.raises(SpecificationError):
            TileGrid([])
        with pytest.raises(SpecificationError):
            TileGrid([[]])

    def test_nonpositive_extent_rejected(self):
        with pytest.raises(SpecificationError):
            TileGrid([[4, 0]])

    def test_uniform_rank_mismatch(self):
        with pytest.raises(SpecificationError):
            TileGrid.uniform((8, 8), (2,))


class TestTiles:
    def test_tile_count(self):
        assert len(TileGrid.uniform((4,), (5,)).tiles()) == 5

    def test_offsets_accumulate(self):
        grid = TileGrid([[3, 5, 2]])
        offsets = [t.offset for t in grid.tiles()]
        assert offsets == [(0,), (3,), (8,)]

    def test_outer_multiplicity_1d(self):
        grid = TileGrid.uniform((4,), (3,))
        outers = [t.outer for t in grid.tiles()]
        assert outers == [(1,), (0,), (1,)]

    def test_outer_multiplicity_single_tile(self):
        grid = TileGrid.uniform((4,), (1,))
        assert grid.tiles()[0].outer == (2,)

    def test_shared_complements_outer(self):
        for tile in TileGrid.uniform((4, 4), (3, 3)).tiles():
            assert all(
                o + s == 2 for o, s in zip(tile.outer, tile.shared)
            )

    def test_corner_detection_2d(self):
        grid = TileGrid.uniform((4, 4), (3, 3))
        corners = [t.index for t in grid.tiles() if t.is_corner]
        assert set(corners) == {(0, 0), (0, 2), (2, 0), (2, 2)}

    def test_tiles_partition_region(self):
        grid = TileGrid([[3, 5], [2, 6, 2]])
        total = sum(t.cells for t in grid.tiles())
        assert total == 8 * 10

    def test_tile_at(self):
        grid = TileGrid.uniform((4, 4), (2, 2))
        tile = grid.tile_at((1, 0))
        assert tile.offset == (4, 0)

    def test_tile_at_missing(self):
        with pytest.raises(SpecificationError):
            TileGrid.uniform((4,), (2,)).tile_at((5,))

    def test_box_property(self):
        tile = TileGrid([[3, 5]]).tiles()[1]
        assert tile.box.lo == (3,)
        assert tile.box.hi == (8,)


class TestNeighbors:
    def test_1d_chain(self):
        grid = TileGrid.uniform((4,), (4,))
        pairs = [(a.index, b.index) for a, b, _ in grid.neighbors()]
        assert set(pairs) == {((0,), (1,)), ((1,), (2,)), ((2,), (3,))}

    def test_2d_face_count(self):
        grid = TileGrid.uniform((4, 4), (3, 3))
        # 3x3 grid: 2*3 vertical + 3*2 horizontal = 12 faces.
        assert len(list(grid.neighbors())) == 12

    def test_neighbor_dim_recorded(self):
        grid = TileGrid.uniform((4, 4), (2, 1))
        faces = list(grid.neighbors())
        assert len(faces) == 1
        assert faces[0][2] == 0

    @given(st.integers(1, 4), st.integers(1, 4))
    def test_face_count_formula_2d(self, k0, k1):
        grid = TileGrid.uniform((2, 2), (k0, k1))
        expected = (k0 - 1) * k1 + k0 * (k1 - 1)
        assert len(list(grid.neighbors())) == expected
