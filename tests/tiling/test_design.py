"""Tests for the central StencilDesign abstraction."""


import pytest

from repro.errors import SpecificationError
from repro.tiling import (
    DesignKind,
    TileGrid,
    make_baseline_design,
    make_pipe_shared_design,
)
from repro.tiling.design import StencilDesign, auto_pipe_depth


class TestValidation:
    def test_depth_exceeding_iterations_rejected(self, small_jacobi2d):
        with pytest.raises(SpecificationError):
            make_baseline_design(small_jacobi2d, (8, 8), (2, 2), 100)

    def test_region_larger_than_grid_rejected(self, small_jacobi2d):
        with pytest.raises(SpecificationError):
            make_baseline_design(small_jacobi2d, (32, 32), (2, 2), 2)

    def test_rank_mismatch_rejected(self, small_jacobi2d):
        with pytest.raises(SpecificationError):
            make_baseline_design(small_jacobi2d, (8,), (2,), 2)

    def test_baseline_requires_uniform_grid(self, small_jacobi2d):
        with pytest.raises(SpecificationError):
            StencilDesign(
                kind=DesignKind.BASELINE,
                spec=small_jacobi2d,
                fused_depth=2,
                tile_grid=TileGrid([[4, 8], [8, 8]]),
            )


class TestConeSides:
    def test_baseline_all_sides_expand(self, baseline_design):
        for tile in baseline_design.tiles:
            assert baseline_design.cone_sides(tile) == (2, 2)
            assert baseline_design.halo_sides(tile) == (0, 0)

    def test_sharing_only_outer_sides_expand(self, pipe_design):
        corner = pipe_design.tile_grid.tile_at((0, 0))
        assert pipe_design.cone_sides(corner) == (1, 1)
        assert pipe_design.halo_sides(corner) == (1, 1)


class TestWorkloads:
    def test_baseline_tiles_symmetric(self, baseline_design):
        totals = {
            baseline_design.tile_compute_cells(t)
            for t in baseline_design.tiles
        }
        assert len(totals) == 1

    def test_pipe_corner_is_slowest(self, small_jacobi2d):
        design = make_pipe_shared_design(
            small_jacobi2d, (8, 8), (4, 4), 4
        )
        slowest = design.slowest_tile()
        assert slowest.is_corner

    def test_workloads_sum(self, baseline_design):
        tile = baseline_design.tiles[0]
        assert sum(baseline_design.tile_workloads(tile)) == (
            baseline_design.tile_compute_cells(tile)
        )

    def test_redundancy_ordering(self, small_jacobi2d):
        base = make_baseline_design(small_jacobi2d, (8, 8), (2, 2), 4)
        pipe = make_pipe_shared_design(small_jacobi2d, (8, 8), (2, 2), 4)
        assert pipe.redundancy_ratio() < base.redundancy_ratio()

    def test_useful_cells_per_region(self, pipe_design):
        assert pipe_design.region_useful_cells() == 4 * 16 * 16

    def test_region_totals_consistent(self, pipe_design):
        assert pipe_design.region_compute_cells() == (
            pipe_design.region_useful_cells()
            + pipe_design.region_redundant_cells()
        )


class TestMemoryFootprints:
    def test_baseline_read_shape(self, baseline_design):
        tile = baseline_design.tiles[0]
        assert baseline_design.tile_read_shape(tile) == (16, 16)

    def test_pipe_read_shape_smaller(self, pipe_design, baseline_design):
        corner = pipe_design.tile_grid.tile_at((0, 0))
        assert pipe_design.tile_read_cells(corner) < (
            baseline_design.tile_read_cells(
                baseline_design.tile_grid.tile_at((0, 0))
            )
        )

    def test_read_bytes_include_aux(self, small_hotspot2d, small_jacobi2d):
        hot = make_baseline_design(small_hotspot2d, (8, 8), (2, 2), 2)
        jac = make_baseline_design(small_jacobi2d, (8, 8), (2, 2), 2)
        t_hot = hot.tiles[0]
        t_jac = jac.tiles[0]
        assert hot.tile_read_bytes(t_hot) == 2 * jac.tile_read_bytes(t_jac)

    def test_write_bytes(self, baseline_design):
        tile = baseline_design.tiles[0]
        assert baseline_design.tile_write_bytes(tile) == 8 * 8 * 4


class TestPipeTraffic:
    def test_baseline_has_no_faces(self, baseline_design):
        assert baseline_design.pipe_faces == ()
        assert baseline_design.num_pipes == 0

    def test_face_count_2x2(self, pipe_design):
        assert len(pipe_design.pipe_faces) == 4
        assert pipe_design.num_pipes == 8

    def test_share_cells_zero_first_iteration(self, pipe_design):
        tile = pipe_design.tiles[0]
        assert pipe_design.tile_share_cells(tile, 1) == 0

    def test_share_cells_positive_later(self, pipe_design):
        tile = pipe_design.tiles[0]
        assert pipe_design.tile_share_cells(tile, 2) > 0

    def test_share_scales_with_fields(self, small_fdtd2d, small_jacobi2d):
        fdtd = make_pipe_shared_design(small_fdtd2d, (8, 8), (2, 2), 3)
        jac = make_pipe_shared_design(small_jacobi2d, (8, 8), (2, 2), 3)
        t_f = fdtd.tiles[0]
        t_j = jac.tiles[0]
        assert fdtd.tile_share_cells(t_f, 2) == 3 * jac.tile_share_cells(
            t_j, 2
        )

    def test_share_total_sums_iterations(self, pipe_design):
        tile = pipe_design.tiles[0]
        assert pipe_design.tile_share_total(tile) == sum(
            pipe_design.tile_share_cells(tile, i)
            for i in range(1, pipe_design.fused_depth + 1)
        )

    def test_auto_pipe_depth_power_of_two(self, pipe_design):
        depth = auto_pipe_depth(pipe_design)
        assert depth & (depth - 1) == 0

    def test_peak_face_transfer_zero_for_baseline(self, baseline_design):
        assert baseline_design.peak_face_transfer_cells() == 0


class TestBlockCounts:
    def test_num_blocks(self, baseline_design):
        # 32x32 grid, 16x16 regions, 8 iterations at h=4.
        assert baseline_design.num_spatial_regions() == 4
        assert baseline_design.num_temporal_blocks() == 2
        assert baseline_design.num_blocks() == 8

    def test_paper_nregion_formula(self, baseline_design):
        # Eq. 2 on an exactly-divisible design equals the integer count.
        assert baseline_design.num_blocks_paper() == pytest.approx(8.0)

    def test_ceil_on_indivisible_depth(self, small_jacobi2d):
        design = make_baseline_design(small_jacobi2d, (8, 8), (2, 2), 3)
        assert design.num_temporal_blocks() == 3  # ceil(8/3)


class TestConvenience:
    def test_with_fused_depth(self, baseline_design):
        deeper = baseline_design.with_fused_depth(2)
        assert deeper.fused_depth == 2
        assert deeper.kind is baseline_design.kind

    def test_describe_mentions_kind(self, hetero_design):
        assert "heterogeneous" in hetero_design.describe()

    def test_parallelism(self, baseline_design):
        assert baseline_design.parallelism == 4
