"""Program entries in the persistent design store + evaluator memo."""

from __future__ import annotations

import pytest

from repro.dse.constraints import ResourceBudget
from repro.fpga.resources import VIRTEX7_690T
from repro.program import (
    ProgramEvaluator,
    blur_sobel_threshold,
    program_candidates,
    stage_design_options,
)
from repro.store import DesignStore
from repro.store.backing import evaluation_context


def _designs(n=4):
    program = blur_sobel_threshold(
        grid=(32, 32), blur_iterations=2, iterations=1
    )
    options = {
        stage.name: stage_design_options(stage.spec)
        for stage in program.stages
    }
    out = []
    for design in program_candidates(program, options):
        out.append(design)
        if len(out) == n:
            break
    return out


def test_store_round_trip(tmp_path):
    designs = _designs()
    budget = ResourceBudget.from_device(VIRTEX7_690T)
    with DesignStore(tmp_path / "store") as store:
        first = ProgramEvaluator(store=store)
        results = first.evaluate_batch(designs, budget)
        assert first.stats.store_hits == 0
        store.flush()

        # A cold evaluator sharing the store resolves every program
        # from its persisted entry — no model recomputation.
        second = ProgramEvaluator(store=store)
        replayed = second.evaluate_batch(designs, budget)
        assert second.stats.store_hits == len(designs)
        for a, b in zip(results, replayed):
            assert a.design.signature() == b.design.signature()
            assert a.predicted_cycles == b.predicted_cycles
            assert a.resources.as_dict() == b.resources.as_dict()


def test_store_entries_keyed_by_program_signature(tmp_path):
    designs = _designs(2)
    budget = ResourceBudget.from_device(VIRTEX7_690T)
    with DesignStore(tmp_path / "store") as store:
        engine = ProgramEvaluator(store=store)
        engine.evaluate_batch(designs, budget)
        context = evaluation_context(
            engine.board, engine.fidelity, engine.estimator.flexcl
        )
        for design in designs:
            stored = store.lookup_design(design, context)
            assert stored is not None and stored.complete
            assert stored.cycles == pytest.approx(
                engine.predict_cycles(design)
            )


def test_memo_hits_on_reevaluation():
    designs = _designs(3)
    budget = ResourceBudget.from_device(VIRTEX7_690T)
    engine = ProgramEvaluator()
    engine.evaluate_batch(designs, budget)
    assert engine.stats.cache_hits == 0
    engine.evaluate_batch(designs, budget)
    assert engine.stats.cache_hits == len(designs)
    assert engine.cache_size() == len(designs)
    engine.clear_cache()
    assert engine.cache_size() == 0
