"""`repro program` command-line entry point."""

from __future__ import annotations

from repro.experiments.runner import main


def test_program_command_runs(capsys):
    assert (
        main(
            [
                "program",
                "--program",
                "blur-sobel-threshold",
                "--grid",
                "32x32",
                "--iterations",
                "1",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "blur-sobel-threshold" in out
    assert "coresident" in out
    assert "Predicted" in out


def test_program_command_emits_pipeline(tmp_path, capsys):
    assert (
        main(
            [
                "program",
                "--program",
                "blur-sobel-threshold",
                "--grid",
                "32x32",
                "--iterations",
                "1",
                "--output",
                str(tmp_path),
            ]
        )
        == 0
    )
    files = sorted(p.name for p in tmp_path.iterdir())
    assert any(name.endswith("_pipeline.cl") for name in files)
    assert any(name.endswith("_pipeline_host.c") for name in files)


def test_program_command_tiered_resume(tmp_path, capsys):
    argv = [
        "program",
        "--program",
        "blur-sobel-threshold",
        "--grid",
        "32x32",
        "--iterations",
        "1",
        "--tiered",
        "--chunk-size",
        "8",
        "--store",
        str(tmp_path),
    ]
    assert main(argv) == 0
    first = capsys.readouterr().out
    assert "0 replayed from checkpoint" in first
    assert main(argv) == 0
    second = capsys.readouterr().out
    assert "replayed from checkpoint" in second
    assert "0 tier-1 evaluations" in second
