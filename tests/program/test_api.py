"""High-level `synthesize(program=...)` entry point."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import ProgramSynthesisResult, synthesize
from repro.dse.search import SearchDriver
from repro.errors import SpecificationError
from repro.dse.evaluator import CandidateEvaluator
from repro.program import (
    ProgramEvaluator,
    blur_sobel_threshold,
    run_program_functional,
    run_program_reference,
)


def _program():
    return blur_sobel_threshold(
        grid=(32, 32), blur_iterations=2, iterations=1
    )


def test_program_synthesis_end_to_end():
    program = _program()
    result = synthesize(program=program)
    assert isinstance(result, ProgramSynthesisResult)
    assert result.program_spec is program
    assert result.design.schedule == "coresident"
    assert result.predicted_cycles > 0
    assert result.pipeline is not None
    assert result.pipeline.num_kernels >= len(program.stages)
    reference = run_program_reference(program)
    fused = run_program_functional(result.design)
    for name in program.topo_order():
        for field, expected in reference[name].items():
            assert np.array_equal(expected, fused[name][field])


def test_emit_false_skips_codegen():
    result = synthesize(program=_program(), emit=False)
    assert result.pipeline is None
    assert result.design is not None


def test_exactly_one_workload_required():
    with pytest.raises(SpecificationError, match="exactly one"):
        synthesize()
    with pytest.raises(SpecificationError, match="exactly one"):
        synthesize(benchmark="jacobi-2d", program=_program())


def test_driver_with_stage_engine_is_wrapped():
    stage_engine = CandidateEvaluator()
    driver = SearchDriver(evaluator=stage_engine, chunk_size=32)
    result = synthesize(program=_program(), driver=driver)
    assert isinstance(result.evaluator, ProgramEvaluator)
    assert result.evaluator.stage_engine is stage_engine
    baseline = synthesize(program=_program())
    assert (
        result.design.signature() == baseline.design.signature()
    )
    assert result.predicted_cycles == pytest.approx(
        baseline.predicted_cycles
    )


def test_timeshared_schedule_threads_through():
    result = synthesize(
        program=_program(), schedule="timeshared", emit=False
    )
    assert result.design.schedule == "timeshared"
