"""Fused pipeline codegen: stitching, namespacing, forwarding, errors."""

from __future__ import annotations

import re

import pytest

from repro.codegen import (
    forward_pipe_name,
    generate_program_pipeline,
    spill_buffer_name,
)
from repro.errors import CodegenError
from repro.program import (
    ProgramBuilder,
    ProgramDesign,
    blur_sobel_threshold,
    forwardable_edges,
    program_candidates,
    stage_design_options,
)
from repro.stencil.library import gaussian_blur_2d, jacobi_2d
from repro.tiling.baseline import make_baseline_design


def _program():
    return blur_sobel_threshold(
        grid=(32, 32), blur_iterations=2, iterations=1
    )


def _design(program, schedule="coresident"):
    options = {
        stage.name: stage_design_options(stage.spec)
        for stage in program.stages
    }
    return next(iter(program_candidates(program, options, schedule)))


def _aligned_design(program):
    stage_designs = tuple(
        (
            stage.name,
            make_baseline_design(stage.spec, (16, 16), (2, 2), 1),
        )
        for stage in program.stages
    )
    return ProgramDesign(program=program, stage_designs=stage_designs)


class TestPipeline:
    def test_every_stage_kernel_present_once(self):
        pipeline = generate_program_pipeline(_design(_program()))
        names = [
            name
            for stage in pipeline.stage_kernel_names.values()
            for name in stage.values()
        ]
        assert len(names) == len(set(names)) == pipeline.num_kernels
        for name in names:
            assert (
                len(
                    re.findall(
                        rf"__kernel void {name}\(",
                        pipeline.kernel_source,
                    )
                )
                == 1
            )

    def test_intra_stage_pipes_are_namespaced(self):
        pipeline = generate_program_pipeline(_design(_program()))
        # No bare pipe_* symbol survives; every halo pipe carries its
        # stage prefix.
        assert not re.search(r"\bpipe_\d", pipeline.kernel_source)

    def test_runtime_include_emitted_once(self):
        pipeline = generate_program_pipeline(_design(_program()))
        assert (
            pipeline.kernel_source.count('#include "stencil_runtime.h"')
            == 1
        )

    def test_grid_macros_undefined_between_stages(self):
        pipeline = generate_program_pipeline(_design(_program()))
        defines = len(
            re.findall(r"^#define W0 ", pipeline.kernel_source, re.M)
        )
        undefs = len(
            re.findall(r"^#undef W0$", pipeline.kernel_source, re.M)
        )
        assert defines == 3 and undefs == 3

    def test_forwarded_edges_get_pipes_not_buffers(self):
        design = _aligned_design(_program())
        forwarded = forwardable_edges(design)
        assert forwarded
        pipeline = generate_program_pipeline(design)
        assert pipeline.forwarded == forwarded
        for edge in forwarded:
            producer = design.design_for(edge.producer)
            for tile in producer.tiles:
                assert (
                    forward_pipe_name(edge, tile.index)
                    in pipeline.kernel_source
                )
            assert spill_buffer_name(edge) not in pipeline.host_source

    def test_timeshared_spills_every_edge(self):
        design = _design(_program(), schedule="timeshared")
        pipeline = generate_program_pipeline(design)
        assert pipeline.forwarded == ()
        for edge in design.program.edges:
            assert spill_buffer_name(edge) in pipeline.host_source

    def test_host_chains_stages_in_topo_order(self):
        pipeline = generate_program_pipeline(_design(_program()))
        positions = [
            pipeline.host_source.index(f"stencil_run_stage_{name}(")
            for name in ("blur", "sobel", "threshold")
        ]
        assert positions == sorted(positions)

    def test_duplicate_stage_workload_names_rejected(self):
        builder = ProgramBuilder("dup-workloads")
        builder.stage("one", gaussian_blur_2d(grid=(16, 16), iterations=1))
        builder.stage("two", gaussian_blur_2d(grid=(16, 16), iterations=1))
        builder.connect("one", "a", "two")
        program = builder.build()
        design = _design(program)
        with pytest.raises(CodegenError, match="collide"):
            generate_program_pipeline(design)

    def test_single_stage_program_generates(self):
        from repro.program import single_stage_program

        program = single_stage_program(
            jacobi_2d(grid=(32, 32), iterations=2)
        )
        pipeline = generate_program_pipeline(_design(program))
        assert pipeline.num_kernels >= 1
        assert pipeline.forwarded == ()
