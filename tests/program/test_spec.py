"""Program IR: DAG validation, topological order, signatures, builder."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ExtractionError, SpecificationError
from repro.program import (
    ProgramBuilder,
    ProgramSpec,
    ProgramStage,
    ProgramEdge,
    blur_sobel_threshold,
    fdtd_two_field,
    get_program,
    program_from_source,
    single_stage_program,
    split_kernels,
)
from repro.stencil.boundary import BoundaryPolicy
from repro.stencil.library import gaussian_blur_2d, jacobi_2d, sobel_x_2d


def _pair(grid=(16, 16)):
    builder = ProgramBuilder("pair")
    builder.stage("one", gaussian_blur_2d(grid=grid, iterations=2))
    builder.stage("two", sobel_x_2d(grid=grid, iterations=1))
    builder.connect("one", "a", "two")
    return builder.build()


class TestValidation:
    def test_empty_program_rejected(self):
        with pytest.raises(SpecificationError, match="at least one"):
            ProgramSpec(name="empty", stages=(), edges=())

    def test_duplicate_stage_names_rejected(self):
        spec = jacobi_2d(grid=(16, 16), iterations=2)
        with pytest.raises(SpecificationError, match="[Dd]uplicate"):
            ProgramSpec(
                name="dup",
                stages=(
                    ProgramStage("s", spec),
                    ProgramStage("s", spec),
                ),
                edges=(),
            )

    def test_unknown_producer_rejected(self):
        builder = ProgramBuilder("bad")
        builder.stage("one", gaussian_blur_2d(grid=(16, 16), iterations=1))
        builder.connect("ghost", "a", "one")
        with pytest.raises(SpecificationError, match="ghost"):
            builder.build()

    def test_unknown_consumer_rejected(self):
        builder = ProgramBuilder("bad")
        builder.stage("one", gaussian_blur_2d(grid=(16, 16), iterations=1))
        builder.connect("one", "a", "ghost")
        with pytest.raises(SpecificationError, match="ghost"):
            builder.build()

    def test_self_edge_rejected(self):
        builder = ProgramBuilder("bad")
        builder.stage("one", gaussian_blur_2d(grid=(16, 16), iterations=1))
        builder.connect("one", "a", "one")
        with pytest.raises(SpecificationError, match="itself"):
            builder.build()

    def test_unknown_field_rejected(self):
        builder = ProgramBuilder("bad")
        builder.stage("one", gaussian_blur_2d(grid=(16, 16), iterations=1))
        builder.stage("two", sobel_x_2d(grid=(16, 16), iterations=1))
        builder.connect("one", "nope", "two", target="a")
        with pytest.raises(SpecificationError, match="nope"):
            builder.build()

    def test_unknown_target_rejected(self):
        builder = ProgramBuilder("bad")
        builder.stage("one", gaussian_blur_2d(grid=(16, 16), iterations=1))
        builder.stage("two", sobel_x_2d(grid=(16, 16), iterations=1))
        builder.connect("one", "a", "two", target="nope")
        with pytest.raises(SpecificationError, match="nope"):
            builder.build()

    def test_grid_mismatch_rejected(self):
        builder = ProgramBuilder("bad")
        builder.stage("one", gaussian_blur_2d(grid=(16, 16), iterations=1))
        builder.stage("two", sobel_x_2d(grid=(32, 32), iterations=1))
        builder.connect("one", "a", "two")
        with pytest.raises(SpecificationError, match="grid"):
            builder.build()

    def test_dtype_mismatch_rejected(self):
        one = gaussian_blur_2d(grid=(16, 16), iterations=1)
        two = sobel_x_2d(grid=(16, 16), iterations=1)
        two = type(two)(
            name=two.name,
            pattern=two.pattern,
            grid_shape=two.grid_shape,
            iterations=two.iterations,
            dtype=np.float64,
        )
        builder = ProgramBuilder("bad")
        builder.stage("one", one)
        builder.stage("two", two)
        builder.connect("one", "a", "two")
        with pytest.raises(SpecificationError, match="dtype"):
            builder.build()

    def test_boundary_mismatch_rejected(self):
        one = gaussian_blur_2d(grid=(16, 16), iterations=1)
        two = sobel_x_2d(grid=(16, 16), iterations=1)
        two = type(two)(
            name=two.name,
            pattern=two.pattern,
            grid_shape=two.grid_shape,
            iterations=two.iterations,
            boundary=BoundaryPolicy.PERIODIC,
        )
        builder = ProgramBuilder("bad")
        builder.stage("one", one)
        builder.stage("two", two)
        builder.connect("one", "a", "two")
        with pytest.raises(SpecificationError, match="boundary"):
            builder.build()

    def test_double_feed_of_one_input_rejected(self):
        builder = ProgramBuilder("bad")
        builder.stage("a", gaussian_blur_2d(grid=(16, 16), iterations=1))
        builder.stage("b", sobel_x_2d(grid=(16, 16), iterations=1))
        builder.stage("c", jacobi_2d(grid=(16, 16), iterations=1))
        builder.connect("a", "a", "c")
        builder.connect("b", "a", "c")
        with pytest.raises(SpecificationError, match="fed by"):
            builder.build()

    def test_cycle_rejected(self):
        builder = ProgramBuilder("cyclic")
        builder.stage("one", gaussian_blur_2d(grid=(16, 16), iterations=1))
        builder.stage("two", sobel_x_2d(grid=(16, 16), iterations=1))
        builder.connect("one", "a", "two")
        builder.connect("two", "a", "one")
        with pytest.raises(SpecificationError, match="[Cc]ycl"):
            builder.build()


class TestStructure:
    def test_topo_order_is_declaration_stable(self):
        program = blur_sobel_threshold(grid=(16, 16), blur_iterations=1)
        assert program.topo_order() == ("blur", "sobel", "threshold")

    def test_edges_into_and_from(self):
        program = _pair()
        (edge,) = program.edges_into("two")
        assert edge == ProgramEdge("one", "a", "two", "a")
        assert program.edges_from("one") == (edge,)
        assert program.edges_into("one") == ()

    def test_terminal_stages(self):
        program = blur_sobel_threshold(grid=(16, 16), blur_iterations=1)
        assert program.terminal_stages() == ("threshold",)

    def test_signature_stable_and_content_addressed(self):
        a = _pair()
        b = _pair()
        assert a.signature() == b.signature()
        c = _pair(grid=(32, 32))
        assert a.signature() != c.signature()

    def test_single_stage_program(self):
        spec = jacobi_2d(grid=(16, 16), iterations=2)
        program = single_stage_program(spec)
        assert program.num_stages == 1
        assert program.topo_order() == (spec.name,)

    def test_describe_mentions_stages(self):
        text = fdtd_two_field(grid=(16, 16), iterations=2).describe()
        assert "e-update" in text and "h-update" in text


class TestLibrary:
    def test_get_program_overrides(self):
        program = get_program(
            "blur-sobel-threshold", grid=(32, 32), iterations=2
        )
        assert program.stage("sobel").spec.grid_shape == (32, 32)
        assert program.stage("sobel").spec.iterations == 2

    def test_get_program_unknown(self):
        with pytest.raises(SpecificationError, match="nope"):
            get_program("nope")

    def test_fdtd_aux_target_edge(self):
        program = fdtd_two_field(grid=(16, 16), iterations=2)
        (edge,) = program.edges_into("h-update")
        assert edge.field == "e" and edge.target == "e"
        assert "e" in program.stage("h-update").spec.pattern.aux


_TWO_KERNEL_SOURCE = """
__kernel void blur(__global float* a, __global float* out) {
    int i = get_global_id(0);
    int j = get_global_id(1);
    out[i][j] = 0.5f * a[i][j] + 0.25f * (a[i-1][j] + a[i+1][j]);
}

__kernel void edge(__global float* a, __global float* out) {
    int i = get_global_id(0);
    int j = get_global_id(1);
    out[i][j] = a[i][j+1] - a[i][j-1];
}
"""


class TestFrontend:
    def test_split_kernels(self):
        chunks = split_kernels(_TWO_KERNEL_SOURCE)
        assert [name for name, _ in chunks] == ["blur", "edge"]
        assert "__kernel" in chunks[1][1]

    def test_split_requires_kernels(self):
        with pytest.raises(ExtractionError):
            split_kernels("int main() { return 0; }")

    def test_program_from_source_wires_by_name(self):
        program = program_from_source(
            _TWO_KERNEL_SOURCE,
            grid_shape=(16, 16),
            iterations=2,
            field_map={"blur": {"out": "a"}, "edge": {"out": "a"}},
        )
        assert program.topo_order() == ("blur", "edge")
        (edge,) = program.edges_into("edge")
        assert edge.producer == "blur" and edge.target == "a"

    def test_program_from_source_stage_iterations(self):
        program = program_from_source(
            _TWO_KERNEL_SOURCE,
            grid_shape=(16, 16),
            iterations=2,
            stage_iterations={"edge": 1},
            field_map={"blur": {"out": "a"}, "edge": {"out": "a"}},
        )
        assert program.stage("blur").spec.iterations == 2
        assert program.stage("edge").spec.iterations == 1
