"""Program composition model: cycles, resources, bounds, batch engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.model.predictor import Fidelity, PerformanceModel
from repro.opencl.platform import ADM_PCIE_7V3
from repro.program import (
    RECONFIGURATION_CYCLES,
    ProgramDesign,
    ProgramEvaluator,
    blur_sobel_threshold,
    compose_cycles,
    compose_resources,
    forwardable_edges,
    forwarding_savings,
    lower_bound_program_batch,
    predict_program_batch,
    program_candidates,
    program_lower_bound,
    stage_design_options,
)
from repro.tiling.baseline import make_baseline_design


def _program(grid=(32, 32)):
    return blur_sobel_threshold(
        grid=grid, blur_iterations=2, iterations=1
    )


def _aligned_design(program, schedule="coresident"):
    stage_designs = tuple(
        (
            stage.name,
            make_baseline_design(stage.spec, (16, 16), (2, 2), 1),
        )
        for stage in program.stages
    )
    return ProgramDesign(
        program=program, stage_designs=stage_designs, schedule=schedule
    )


def _misaligned_design(program):
    shapes = {"blur": ((16, 16), (2, 2)), "sobel": ((32, 16), (1, 2)),
              "threshold": ((16, 16), (2, 2))}
    stage_designs = tuple(
        (
            stage.name,
            make_baseline_design(stage.spec, *shapes[stage.name], 1),
        )
        for stage in program.stages
    )
    return ProgramDesign(program=program, stage_designs=stage_designs)


class TestForwarding:
    def test_aligned_coresident_edges_forward(self):
        design = _aligned_design(_program())
        assert len(forwardable_edges(design)) == 2
        assert forwarding_savings(design) > 0.0

    def test_misaligned_tilings_spill(self):
        design = _misaligned_design(_program())
        forwarded = forwardable_edges(design)
        assert all(e.producer != "blur" for e in forwarded)

    def test_timeshared_never_forwards(self):
        design = _aligned_design(_program(), schedule="timeshared")
        assert forwardable_edges(design) == ()
        assert forwarding_savings(design) == 0.0


class TestComposition:
    def test_coresident_cycles_subtract_forwarding(self):
        design = _aligned_design(_program())
        cycles = (1e6, 2e6, 3e6)
        composed = compose_cycles(design, cycles)
        assert composed == pytest.approx(
            sum(cycles) - forwarding_savings(design)
        )

    def test_coresident_clamped_at_slowest_stage(self):
        design = _aligned_design(_program())
        cycles = (10.0, 10.0, 10.0)
        assert compose_cycles(design, cycles) == 10.0

    def test_timeshared_adds_reconfiguration(self):
        design = _aligned_design(_program(), schedule="timeshared")
        cycles = (1e6, 2e6, 3e6)
        assert compose_cycles(design, cycles) == pytest.approx(
            sum(cycles) + 2 * RECONFIGURATION_CYCLES
        )

    def test_resources_sum_when_coresident(self):
        engine = ProgramEvaluator()
        design = _aligned_design(_program())
        stage_res = [
            engine.stage_engine.resources(d) for _n, d in design.stage_designs
        ]
        composed = compose_resources("coresident", stage_res)
        assert composed.total.ff == sum(r.total.ff for r in stage_res)

    def test_resources_max_when_timeshared(self):
        engine = ProgramEvaluator()
        design = _aligned_design(_program(), schedule="timeshared")
        stage_res = [
            engine.stage_engine.resources(d) for _n, d in design.stage_designs
        ]
        composed = compose_resources("timeshared", stage_res)
        assert composed.total.ff == max(r.total.ff for r in stage_res)

    def test_lower_bound_admissible(self):
        engine = ProgramEvaluator()
        design = _aligned_design(_program())
        stage_preds = [
            engine.stage_engine.model.predict_cycles(d)
            for _n, d in design.stage_designs
        ]
        stage_bounds = [
            engine.stage_engine.lower_bound(d)
            for _n, d in design.stage_designs
        ]
        assert program_lower_bound(design, stage_bounds) <= compose_cycles(
            design, stage_preds
        )


class TestBatchEngine:
    def _candidates(self, n=6):
        program = _program()
        options = {
            stage.name: stage_design_options(stage.spec)
            for stage in program.stages
        }
        out = []
        for design in program_candidates(program, options):
            out.append(design)
            if len(out) == n:
                break
        return out

    def test_batch_matches_scalar_composition(self):
        designs = self._candidates()
        batch = predict_program_batch(designs)
        model = PerformanceModel(
            board=ADM_PCIE_7V3, fidelity=Fidelity.REFINED
        )
        for i, design in enumerate(designs):
            stage_cycles = [
                model.predict_cycles(d)
                for _n, d in design.stage_designs
            ]
            assert batch.total[i] == pytest.approx(
                compose_cycles(design, stage_cycles), rel=1e-12
            )
            assert batch.stage_cycles[i] == pytest.approx(
                tuple(stage_cycles)
            )

    def test_batch_resources_and_feasibility(self):
        designs = self._candidates()
        batch = predict_program_batch(designs)
        engine = ProgramEvaluator()
        limit = engine.resources(designs[0]).total.scaled(2.0)
        mask = batch.feasible(limit)
        assert mask.dtype == bool and len(mask) == len(designs)
        for i, design in enumerate(designs):
            assert batch.resources[i].as_dict() == engine.resources(
                design
            ).as_dict()

    def test_batch_lower_bounds_admissible(self):
        designs = self._candidates()
        bounds = lower_bound_program_batch(designs)
        totals = predict_program_batch(designs).total
        assert np.all(bounds <= totals + 1e-9)
