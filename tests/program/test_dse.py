"""Program-level DSE: tiered search, determinism, resume, sharding."""

from __future__ import annotations

import pytest

from repro.dse.constraints import ResourceBudget
from repro.dse.search import SearchDriver
from repro.errors import DesignSpaceError
from repro.fpga.resources import VIRTEX7_690T
from repro.program import (
    ProgramEvaluator,
    blur_sobel_threshold,
    fdtd_two_field,
    optimize_program,
    optimize_stages_independently,
    program_candidates,
    stage_design_options,
)
from repro.store import SearchCheckpoint


def _program():
    return blur_sobel_threshold(
        grid=(32, 32), blur_iterations=2, iterations=1
    )


class TestOptimizeProgram:
    def test_passthrough_finds_feasible_best(self):
        result = optimize_program(_program())
        assert result.best is not None
        assert result.best.design.schedule == "coresident"
        assert result.feasible > 0

    def test_unknown_schedule_rejected(self):
        with pytest.raises(DesignSpaceError, match="schedule"):
            optimize_program(_program(), schedule="quantum")

    def test_timeshared_never_beats_coresident_here(self):
        co = optimize_program(_program())
        ts = optimize_program(_program(), schedule="timeshared")
        assert (
            co.best.predicted_cycles
            <= ts.best.predicted_cycles
        )

    def test_driver_engine_must_be_program_evaluator(self):
        driver = SearchDriver(chunk_size=16)
        with pytest.raises(DesignSpaceError, match="ProgramEvaluator"):
            optimize_program(_program(), driver=driver)


class TestDeterminism:
    def test_tiered_matches_passthrough(self):
        exhaustive = optimize_program(_program())
        engine = ProgramEvaluator()
        driver = SearchDriver(evaluator=engine, chunk_size=16)
        tiered = optimize_program(_program(), driver=driver)
        assert (
            tiered.best.design.signature()
            == exhaustive.best.design.signature()
        )
        assert tiered.best.predicted_cycles == pytest.approx(
            exhaustive.best.predicted_cycles
        )

    @pytest.mark.parametrize("chunk_size", [7, 64])
    def test_chunk_size_invariance(self, chunk_size):
        baseline = optimize_program(_program())
        driver = SearchDriver(
            evaluator=ProgramEvaluator(), chunk_size=chunk_size
        )
        chunked = optimize_program(_program(), driver=driver)
        assert (
            chunked.best.design.signature()
            == baseline.best.design.signature()
        )

    def test_resume_replays_checkpointed_chunks(self, tmp_path):
        checkpoint_path = tmp_path / "searches.jsonl"
        with SearchCheckpoint(checkpoint_path) as checkpoint:
            driver = SearchDriver(
                evaluator=ProgramEvaluator(),
                chunk_size=16,
                checkpoint=checkpoint,
            )
            first = optimize_program(_program(), driver=driver)
            first_report = driver.report
            assert first_report.replayed_chunks == 0
        with SearchCheckpoint(checkpoint_path) as checkpoint:
            driver = SearchDriver(
                evaluator=ProgramEvaluator(),
                chunk_size=16,
                checkpoint=checkpoint,
            )
            second = optimize_program(_program(), driver=driver)
            report = driver.report
        assert report.replayed_chunks == report.chunks > 0
        assert report.tier1_evaluations == 0
        assert (
            second.best.design.signature()
            == first.best.design.signature()
        )

    def test_sharded_union_covers_global_best(self):
        global_best = optimize_program(_program())
        shard_bests = []
        for index in range(2):
            driver = SearchDriver(
                evaluator=ProgramEvaluator(),
                chunk_size=16,
                shard=(index, 2),
            )
            shard_bests.append(
                optimize_program(_program(), driver=driver).best
            )
        winner = min(shard_bests, key=lambda b: b.predicted_cycles)
        assert winner.predicted_cycles == pytest.approx(
            global_best.best.predicted_cycles
        )


class TestIndependentBaseline:
    def test_co_optimization_no_worse(self):
        program = _program()
        budget = ResourceBudget.from_device(VIRTEX7_690T)
        co = optimize_program(program, budget=budget)
        composed, per_stage = optimize_stages_independently(
            program, budget=budget
        )
        assert set(per_stage) == set(program.topo_order())
        if composed is not None:
            assert (
                co.best.predicted_cycles
                <= composed.predicted_cycles + 1e-9
            )

    def test_two_field_program_searchable(self):
        result = optimize_program(
            fdtd_two_field(grid=(32, 32), iterations=4)
        )
        assert result.best.design.num_stages == 2


class TestCandidateStream:
    def test_missing_stage_options_rejected(self):
        program = _program()
        options = {
            "blur": stage_design_options(program.stage("blur").spec)
        }
        with pytest.raises(DesignSpaceError, match="sobel"):
            list(program_candidates(program, options))

    def test_stream_is_deterministic(self):
        program = _program()
        options = {
            stage.name: stage_design_options(stage.spec)
            for stage in program.stages
        }
        first = [d.signature() for d in program_candidates(program, options)]
        second = [
            d.signature() for d in program_candidates(program, options)
        ]
        assert first == second and len(first) > 1
