"""Bitwise parity: fused program execution == stage-by-stage reference.

The contract: for every program design, running the mapped program
through the functional simulator (tiled, pipelined, per-stage backend
choice) produces byte-identical arrays to composing the per-stage
naive reference kernels — across design kinds, boundary policies, and
dtypes.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.program import (
    ProgramBuilder,
    ProgramFunctionalExecutor,
    blur_sobel_threshold,
    fdtd_two_field,
    program_candidates,
    run_program_functional,
    run_program_reference,
    stage_design_options,
)
from repro.sim.jit import find_compiler
from repro.stencil.boundary import BoundaryPolicy
from repro.stencil.pattern import FieldUpdate, StencilPattern, Tap
from repro.stencil.spec import StencilSpec
from repro.tiling.design import DesignKind


def _stage_spec(name, grid, iterations, dtype, boundary, coeffs):
    pattern = StencilPattern(
        name=name,
        ndim=2,
        fields=("a",),
        updates={
            "a": FieldUpdate(
                taps=(
                    Tap("a", (0, 0), coeffs[0]),
                    Tap("a", (-1, 0), coeffs[1]),
                    Tap("a", (0, 1), coeffs[2]),
                )
            )
        },
    )
    return StencilSpec(
        name=name,
        pattern=pattern,
        grid_shape=grid,
        iterations=iterations,
        dtype=dtype,
        boundary=boundary,
    )


def _two_stage(boundary, dtype, iterations):
    builder = ProgramBuilder("pair")
    builder.stage(
        "one",
        _stage_spec(
            "stage-one", (8, 8), iterations, dtype, boundary,
            (0.5, 0.25, 0.25),
        ),
    )
    builder.stage(
        "two",
        _stage_spec(
            "stage-two", (8, 8), 1, dtype, boundary, (0.6, 0.2, 0.2)
        ),
    )
    builder.connect("one", "a", "two")
    return builder.build()


def _assert_program_parity(program, design, backend=None, external=None):
    reference = run_program_reference(program, external=external)
    fused = run_program_functional(
        design, backend=backend, external=external
    )
    for name in program.topo_order():
        for field, expected in reference[name].items():
            actual = fused[name][field]
            assert actual.dtype == expected.dtype
            assert np.array_equal(expected, actual), (name, field)


class TestHypothesisParity:
    @settings(max_examples=25, deadline=None)
    @given(
        boundary=st.sampled_from(
            [BoundaryPolicy.FROZEN, BoundaryPolicy.PERIODIC]
        ),
        dtype=st.sampled_from([np.float32, np.float64]),
        kind=st.sampled_from(
            [DesignKind.BASELINE, DesignKind.PIPE_SHARED]
        ),
        iterations=st.integers(min_value=1, max_value=3),
        pick=st.integers(min_value=0, max_value=10**6),
    )
    def test_fused_matches_reference(
        self, boundary, dtype, kind, iterations, pick
    ):
        program = _two_stage(boundary, dtype, iterations)
        options = {
            stage.name: stage_design_options(stage.spec, kinds=(kind,))
            for stage in program.stages
        }
        candidates = list(program_candidates(program, options))
        design = candidates[pick % len(candidates)]
        _assert_program_parity(program, design)


class TestLibraryPrograms:
    @pytest.mark.parametrize(
        "schedule", ["coresident", "timeshared"]
    )
    def test_blur_sobel_threshold(self, schedule):
        program = blur_sobel_threshold(
            grid=(16, 16), blur_iterations=2, iterations=1
        )
        options = {
            stage.name: stage_design_options(stage.spec)
            for stage in program.stages
        }
        design = next(iter(program_candidates(program, options, schedule)))
        _assert_program_parity(program, design)

    def test_fdtd_two_field_aux_edge(self):
        program = fdtd_two_field(grid=(16, 16), iterations=3)
        options = {
            stage.name: stage_design_options(stage.spec)
            for stage in program.stages
        }
        design = next(iter(program_candidates(program, options)))
        _assert_program_parity(program, design)

    def test_external_inputs_thread_through_both_paths(self):
        program = blur_sobel_threshold(
            grid=(16, 16), blur_iterations=2, iterations=1
        )
        options = {
            stage.name: stage_design_options(stage.spec)
            for stage in program.stages
        }
        design = next(iter(program_candidates(program, options)))
        rng = np.random.default_rng(7)
        image = rng.normal(size=(16, 16)).astype(np.float32)
        _assert_program_parity(
            program, design, external={"blur": {"a": image}}
        )


@pytest.mark.skipif(
    find_compiler() is None, reason="no C compiler for the JIT backend"
)
class TestJitParity:
    def test_jit_stages_match_reference(self):
        program = blur_sobel_threshold(
            grid=(16, 16), blur_iterations=2, iterations=1
        )
        options = {
            stage.name: stage_design_options(stage.spec)
            for stage in program.stages
        }
        design = next(iter(program_candidates(program, options)))
        executor = ProgramFunctionalExecutor(design, backend="auto")
        fused = executor.run()
        assert set(executor.stage_backends) == set(program.topo_order())
        reference = run_program_reference(program)
        for name in program.topo_order():
            for field, expected in reference[name].items():
                assert np.array_equal(expected, fused[name][field])
