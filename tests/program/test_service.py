"""Program jobs through the synthesis service."""

from __future__ import annotations

import json

import pytest

from repro.errors import ServiceError
from repro.service import JobRequest, JobState, SynthesisService


def _request(**overrides):
    payload = {
        "program": "blur-sobel-threshold",
        "grid_shape": (32, 32),
        "iterations": 1,
    }
    payload.update(overrides)
    return JobRequest(**payload)


class TestJobRequest:
    def test_program_job_validates(self):
        request = _request()
        assert request.program == "blur-sobel-threshold"
        assert request.schedule == "coresident"

    def test_exactly_one_workload(self):
        with pytest.raises(ServiceError, match="exactly one"):
            JobRequest(benchmark="jacobi-2d", program="blur-sobel-threshold")
        with pytest.raises(ServiceError, match="exactly one"):
            JobRequest()

    def test_schedule_validated(self):
        with pytest.raises(ServiceError, match="schedule"):
            _request(schedule="quantum")

    def test_json_round_trip(self):
        request = _request(schedule="timeshared")
        parsed = JobRequest.from_json(
            json.loads(json.dumps(request.as_dict()))
        )
        assert parsed.program == request.program
        assert parsed.schedule == "timeshared"
        assert parsed.signature() == request.signature()

    def test_schedule_is_signature_relevant(self):
        assert (
            _request(schedule="coresident").signature()
            != _request(schedule="timeshared").signature()
        )


class TestService:
    def test_program_job_completes_with_payload(self):
        with SynthesisService(workers=1) as service:
            job, coalesced = service.submit(_request())
            assert not coalesced
            finished = service.wait(job.id, timeout=120.0)
        assert finished.state is JobState.DONE
        payload = finished.result
        assert payload["design"]["kind"] == "program"
        assert payload["design"]["schedule"] == "coresident"
        assert set(payload["design"]["stages"]) == {
            "blur",
            "sobel",
            "threshold",
        }
        assert payload["predicted_cycles"] > 0
        assert payload["program"]["num_kernels"] >= 3
        assert "__kernel" in payload["program"]["kernel_source"]

    def test_identical_program_jobs_coalesce(self):
        with SynthesisService(workers=1) as service:
            first, _ = service.submit(_request())
            second, coalesced = service.submit(_request())
            assert coalesced and second.id == first.id
            different, other_coalesced = service.submit(
                _request(schedule="timeshared")
            )
            assert not other_coalesced
            assert different.id != first.id
            service.wait(first.id, timeout=120.0)
            service.wait(different.id, timeout=120.0)
