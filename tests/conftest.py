"""Shared fixtures: small, fast specs and designs for the test suite."""

from __future__ import annotations

import os
import tempfile

import pytest

# Pin the default value-execution backend to the numpy interpreter for
# the suite: the functional tests assert on interpreter internals (pipe
# traffic), and the hypothesis suites would otherwise trigger one C
# compile per generated design.  The jit suites opt in explicitly via
# backend="jit" arguments, which take precedence over this env default.
os.environ.setdefault("REPRO_SIM_BACKEND", "numpy")
# Keep any kernels tests do compile out of the user's ~/.cache.
os.environ.setdefault(
    "REPRO_JIT_CACHE", tempfile.mkdtemp(prefix="repro-jit-cache-")
)

from repro.stencil import fdtd_2d, get_benchmark, hotspot_2d, jacobi_2d
from repro.tiling import (
    make_baseline_design,
    make_heterogeneous_design,
    make_pipe_shared_design,
)


@pytest.fixture
def small_jacobi2d():
    """A 32x32 Jacobi-2D spec, 8 iterations."""
    return jacobi_2d(grid=(32, 32), iterations=8)


@pytest.fixture
def small_jacobi1d():
    """A 64-cell Jacobi-1D spec, 12 iterations."""
    return get_benchmark("jacobi-1d", grid=(64,), iterations=12)


@pytest.fixture
def small_jacobi3d():
    """A 16^3 Jacobi-3D spec, 6 iterations."""
    return get_benchmark("jacobi-3d", grid=(16, 16, 16), iterations=6)


@pytest.fixture
def small_fdtd2d():
    """A 24x24 FDTD-2D spec (3 coupled fields), 5 iterations."""
    return fdtd_2d(grid=(24, 24), iterations=5)


@pytest.fixture
def small_hotspot2d():
    """A 32x32 HotSpot-2D spec (aux power input), 6 iterations."""
    return hotspot_2d(grid=(32, 32), iterations=6)


@pytest.fixture
def baseline_design(small_jacobi2d):
    """2x2 baseline design with h=4 on the small Jacobi-2D."""
    return make_baseline_design(small_jacobi2d, (8, 8), (2, 2), 4)


@pytest.fixture
def pipe_design(small_jacobi2d):
    """2x2 pipe-shared design with h=4 on the small Jacobi-2D."""
    return make_pipe_shared_design(small_jacobi2d, (8, 8), (2, 2), 4)


@pytest.fixture
def hetero_design(small_jacobi2d):
    """2x2 heterogeneous design with h=4 on the small Jacobi-2D."""
    return make_heterogeneous_design(small_jacobi2d, (16, 16), (2, 2), 4)


@pytest.fixture
def paper_jacobi2d():
    """Paper-scale Jacobi-2D spec (no arrays are allocated)."""
    return jacobi_2d()
