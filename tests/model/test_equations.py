"""Tests for the analytical model's individual equations (Section 4)."""


import pytest

from repro.fpga.flexcl import FlexCLEstimator
from repro.model.compute import (
    compute_latency_eq7,
    cycles_per_element_eq9,
    iteration_latencies,
    iteration_latency_eq8,
)
from repro.model.latency import num_regions_eq2, total_latency_eq1
from repro.model.memory import (
    memory_latency_eq4,
    read_latency_eq5,
    write_latency_eq6,
)
from repro.model.params import extract_parameters
from repro.model.sharing import overlap_lambda_eq11, share_latency_eq10
from repro.opencl.platform import ADM_PCIE_7V3
from repro.stencil import jacobi_2d
from repro.tiling import make_baseline_design, make_heterogeneous_design


@pytest.fixture
def params():
    spec = jacobi_2d()
    design = make_baseline_design(spec, (128, 128), (4, 4), 32, unroll=4)
    return extract_parameters(design, ADM_PCIE_7V3)


class TestEq2Regions:
    def test_matches_paper_example(self, params):
        # H=1024, W=2048^2, h=32, K=16, w=128^2 -> 512 regions.
        assert num_regions_eq2(params) == pytest.approx(512.0)

    def test_scales_inverse_with_depth(self, params):
        import dataclasses

        deeper = dataclasses.replace(params, fused_depth=64)
        assert num_regions_eq2(deeper) == pytest.approx(
            num_regions_eq2(params) * 32 / 64
        )


class TestEq5Eq6Memory:
    def test_read_footprint_includes_cone(self, params):
        # Read = (128 + 2*32)^2 cells * 4 B at BW/K.
        cells = (128 + 2 * 32) ** 2
        expected = cells * 4 / (
            params.bandwidth_bytes_per_cycle / params.parallelism
        )
        assert read_latency_eq5(params) == pytest.approx(expected)

    def test_write_is_tile_only(self, params):
        expected = 128 * 128 * 4 / (
            params.bandwidth_bytes_per_cycle / params.parallelism
        )
        assert write_latency_eq6(params) == pytest.approx(expected)

    def test_eq4_sum(self, params):
        assert memory_latency_eq4(params) == pytest.approx(
            read_latency_eq5(params) + write_latency_eq6(params)
        )

    def test_read_exceeds_write(self, params):
        assert read_latency_eq5(params) > write_latency_eq6(params)


class TestEq8Eq9Compute:
    def test_cycles_per_element(self, params):
        assert cycles_per_element_eq9(params) == pytest.approx(
            params.initiation_interval / 4
        )

    def test_last_iteration_is_tile_only(self, params):
        last = iteration_latency_eq8(params, params.fused_depth)
        expected = cycles_per_element_eq9(params) * 128 * 128
        assert last == pytest.approx(expected)

    def test_first_iteration_widest(self, params):
        first = iteration_latency_eq8(params, 1)
        expected = cycles_per_element_eq9(params) * (128 + 2 * 31) ** 2
        assert first == pytest.approx(expected)

    def test_latencies_monotone_decreasing(self, params):
        latencies = iteration_latencies(params)
        assert latencies == sorted(latencies, reverse=True)

    def test_eq7_without_sharing_is_plain_sum(self, params):
        assert compute_latency_eq7(params, sharing=False) == pytest.approx(
            sum(iteration_latencies(params))
        )

    def test_eq7_with_sharing_at_least_plain_sum(self, params):
        assert compute_latency_eq7(params, sharing=True) >= (
            compute_latency_eq7(params, sharing=False)
        )


class TestEq10Eq11Sharing:
    def test_share_latency_nonnegative(self, params):
        for i in range(1, params.fused_depth + 1):
            assert share_latency_eq10(params, i) >= 0.0

    def test_share_grows_toward_last_iteration(self, params):
        # The useful-cone face area grows as (h - i) shrinks.
        assert share_latency_eq10(params, params.fused_depth) >= (
            share_latency_eq10(params, 1)
        )

    def test_lambda_zero_when_hidden(self, params):
        # Jacobi-2D tiles: face transfers are far below cell counts.
        assert overlap_lambda_eq11(params, params.fused_depth) == 0.0

    def test_lambda_positive_when_exposed(self, params):
        import dataclasses

        slow_pipe = dataclasses.replace(
            params, pipe_cycles_per_word=1e6
        )
        assert overlap_lambda_eq11(slow_pipe, params.fused_depth) > 0.0

    def test_lambda_formula(self, params):
        import dataclasses

        slow = dataclasses.replace(params, pipe_cycles_per_word=1e4)
        i = params.fused_depth
        l_share = share_latency_eq10(slow, i)
        l_iter = iteration_latency_eq8(slow, i)
        assert overlap_lambda_eq11(slow, i) == pytest.approx(
            (l_share - l_iter) / l_iter
        )


class TestEq1Total:
    def test_total_is_regions_times_block(self, params):
        from repro.model.latency import slowest_kernel_latency_eq3

        assert total_latency_eq1(params, sharing=False) == pytest.approx(
            num_regions_eq2(params)
            * slowest_kernel_latency_eq3(params, sharing=False)
        )

    def test_launch_cycles_included(self, params):
        from repro.model.latency import slowest_kernel_latency_eq3

        block = slowest_kernel_latency_eq3(params, sharing=False)
        assert block >= params.launch_cycles


class TestParameterExtraction:
    def test_balancing_factors_unity_for_uniform(self, params):
        assert all(
            f == pytest.approx(1.0) for f in params.balancing_factors
        )

    def test_hetero_factors_below_one(self):
        spec = jacobi_2d()
        design = make_heterogeneous_design(
            spec, (512, 512), (4, 4), 63, unroll=4
        )
        params = extract_parameters(design)
        assert all(f < 1.0 for f in params.balancing_factors)

    def test_halo_growth(self, params):
        assert params.halo_growth == (2, 2)

    def test_report_overrides_respected(self):
        spec = jacobi_2d()
        design = make_baseline_design(spec, (128, 128), (4, 4), 32)
        report = FlexCLEstimator().estimate(
            spec.pattern, unroll=1, partitions=1
        )
        params = extract_parameters(design, report=report)
        assert params.initiation_interval == report.ii
