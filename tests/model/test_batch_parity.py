"""Property-based parity: vectorized batch engines vs scalar models.

The batch engines promise *bitwise* agreement with the scalar
implementations — not approximate closeness.  Every assertion here is
exact ``==`` on floats and ints; any drift in summation order or
dtype promotion inside :mod:`repro.model.batch` /
:mod:`repro.fpga.batch` fails this suite.
"""

import dataclasses

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DesignSpaceError
from repro.fpga.batch import estimate_batch
from repro.fpga.estimator import ResourceEstimator
from repro.fpga.flexcl import FlexCLEstimator
from repro.fpga.resources import VIRTEX7_690T
from repro.dse.constraints import ResourceBudget
from repro.model.batch import BatchPrediction, predict_batch
from repro.model.predictor import Fidelity, PerformanceModel
from repro.opencl.platform import ADM_PCIE_7V3
from repro.stencil import fdtd_2d, hotspot_2d, jacobi_1d, jacobi_2d, jacobi_3d
from repro.tiling import (
    make_baseline_design,
    make_heterogeneous_design,
    make_pipe_shared_design,
)

_SPECS = {
    "jacobi_1d": lambda: jacobi_1d(grid=(96,), iterations=8),
    "jacobi_2d": lambda: jacobi_2d(grid=(64, 64), iterations=8),
    "jacobi_3d": lambda: jacobi_3d(grid=(24, 24, 24), iterations=8),
    "hotspot_2d": lambda: hotspot_2d(grid=(64, 64), iterations=8),
    "fdtd_2d": lambda: fdtd_2d(grid=(64, 64), iterations=8),
}

_COMPONENTS = (
    "launch",
    "read",
    "write",
    "compute_useful",
    "compute_redundant",
    "share_exposed",
)


@st.composite
def design_strategy(draw):
    """One random design: spec, kind, tile geometry, depth, unroll."""
    spec = _SPECS[draw(st.sampled_from(sorted(_SPECS)))]()
    ndim = spec.ndim
    tile = tuple(
        draw(st.integers(min_value=2, max_value=12)) for _ in range(ndim)
    )
    counts = tuple(
        draw(st.integers(min_value=1, max_value=2)) for _ in range(ndim)
    )
    h = draw(st.integers(min_value=1, max_value=6))
    unroll = draw(st.integers(min_value=1, max_value=2))
    kind = draw(st.sampled_from(["baseline", "pipe_shared", "heterogeneous"]))
    if kind == "baseline":
        return make_baseline_design(spec, tile, counts, h, unroll=unroll)
    if kind == "pipe_shared":
        return make_pipe_shared_design(spec, tile, counts, h, unroll=unroll)
    region = tuple(t * c for t, c in zip(tile, counts))
    return make_heterogeneous_design(spec, region, counts, h, unroll=unroll)


def assert_model_parity(designs, fidelity, board=ADM_PCIE_7V3):
    """Batch prediction must equal per-design scalar prediction, bitwise."""
    flexcl = FlexCLEstimator()
    model = PerformanceModel(board=board, fidelity=fidelity, estimator=flexcl)
    batch = predict_batch(
        designs, board=board, fidelity=fidelity, flexcl=flexcl
    )
    assert isinstance(batch, BatchPrediction)
    assert len(batch) == len(designs)
    for i, design in enumerate(designs):
        scalar = model.predict(design)
        for component in _COMPONENTS:
            assert float(getattr(batch, component)[i]) == getattr(
                scalar, component
            ), (component, i, design.describe())
        assert float(batch.total[i]) == scalar.total
        assert batch.breakdown(i) == scalar


def assert_resource_parity(designs):
    """Batch estimate must equal the scalar estimator, field for field."""
    flexcl = FlexCLEstimator()
    estimator = ResourceEstimator(flexcl=flexcl)
    batch = estimate_batch(designs, flexcl=flexcl)
    assert len(batch) == len(designs)
    limit = ResourceBudget.from_device(VIRTEX7_690T).limit
    mask = batch.feasible(limit)
    for i, design in enumerate(designs):
        scalar = estimator.estimate(design)
        assert batch.design_resources(i) == scalar, (i, design.describe())
        assert bool(mask[i]) == scalar.total.fits_within(limit)


class TestRandomBatchParity:
    @settings(max_examples=20, deadline=None)
    @given(
        designs=st.lists(design_strategy(), min_size=1, max_size=6),
        fidelity=st.sampled_from([Fidelity.PAPER, Fidelity.REFINED]),
    )
    def test_prediction_bitwise_equal(self, designs, fidelity):
        assert_model_parity(designs, fidelity)

    @settings(max_examples=20, deadline=None)
    @given(designs=st.lists(design_strategy(), min_size=1, max_size=6))
    def test_resources_and_feasibility_equal(self, designs):
        assert_resource_parity(designs)

    @settings(max_examples=10, deadline=None)
    @given(
        design=design_strategy(),
        fidelity=st.sampled_from([Fidelity.PAPER, Fidelity.REFINED]),
        scale=st.sampled_from([0.5, 1.0, 2.0]),
    )
    def test_per_candidate_boards(self, design, fidelity, scale):
        base = ADM_PCIE_7V3
        boards = [
            base,
            base.with_bandwidth(base.bandwidth_bytes_per_s * scale),
            dataclasses.replace(base, pipe_cycles_per_word=3),
        ]
        batch = predict_batch(
            [design] * len(boards), board=boards, fidelity=fidelity
        )
        for i, board in enumerate(boards):
            scalar = PerformanceModel(board=board, fidelity=fidelity).predict(
                design
            )
            assert batch.breakdown(i) == scalar


class TestBatchShapes:
    def test_empty_batch(self):
        for fidelity in (Fidelity.PAPER, Fidelity.REFINED):
            batch = predict_batch([], fidelity=fidelity)
            assert len(batch) == 0
            assert batch.total.shape == (0,)
        resources = estimate_batch([])
        assert len(resources) == 0
        assert resources.feasible(
            ResourceBudget.from_device(VIRTEX7_690T).limit
        ).shape == (0,)

    def test_single_candidate(self):
        design = make_baseline_design(
            jacobi_2d(grid=(64, 64), iterations=8), (8, 8), (2, 2), 3
        )
        for fidelity in (Fidelity.PAPER, Fidelity.REFINED):
            assert_model_parity([design], fidelity)
        assert_resource_parity([design])

    def test_board_list_length_mismatch_rejected(self):
        design = make_baseline_design(
            jacobi_2d(grid=(64, 64), iterations=8), (8, 8), (2, 2), 2
        )
        try:
            predict_batch([design, design], board=[ADM_PCIE_7V3])
        except DesignSpaceError:
            pass
        else:
            raise AssertionError("length mismatch must raise")


class TestDegenerateCones:
    """Tiny tiles + deep fusion: cone faces collapse to zero extent."""

    def _designs(self):
        specs = [
            jacobi_2d(grid=(64, 64), iterations=8),
            jacobi_3d(grid=(24, 24, 24), iterations=8),
        ]
        designs = []
        for spec in specs:
            ndim = spec.ndim
            tiny = (2,) * ndim
            counts = (2,) * ndim
            for h in (4, 6, 8):
                designs.append(
                    make_pipe_shared_design(spec, tiny, counts, h)
                )
                designs.append(
                    make_baseline_design(spec, tiny, counts, h)
                )
        return designs

    def test_degenerate_parity_both_fidelities(self):
        designs = self._designs()
        for fidelity in (Fidelity.PAPER, Fidelity.REFINED):
            assert_model_parity(designs, fidelity)

    def test_degenerate_resources(self):
        assert_resource_parity(self._designs())
