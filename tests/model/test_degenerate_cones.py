"""Degenerate-cone edge cases for Eqs. 7, 10, and 11.

When the fused-iteration cone consumes a tile face entirely
(``w_d f_d - Δw_d (h - i) <= 0``) or an iteration computes nothing at
all (``L_iter_i = 0``), the sharing equations sit exactly on their
clamp boundaries.  These tests pin the agreed semantics so the scalar
and vectorized engines can both be audited against one reference:

- Eq. 10 clamps consumed faces to zero cells (never negative latency);
- Eq. 11 returns 0 for a no-op iteration with no transfer, and 1 (all
  exposed) when a transfer remains;
- Eq. 7 still charges the un-hideable transfer of a zero-compute
  iteration instead of losing it to the ``(1 + λ) * 0`` product.
"""

import dataclasses

import pytest

from repro.model.compute import compute_latency_eq7, iteration_latency_eq8
from repro.model.params import extract_parameters
from repro.model.sharing import overlap_lambda_eq11, share_latency_eq10
from repro.opencl.platform import ADM_PCIE_7V3
from repro.stencil import jacobi_2d
from repro.tiling import make_pipe_shared_design


@pytest.fixture
def params():
    spec = jacobi_2d()
    design = make_pipe_shared_design(spec, (16, 16), (4, 4), 8)
    return extract_parameters(design, ADM_PCIE_7V3)


class TestEq10DegenerateFaces:
    def test_fully_consumed_tile_shares_nothing(self, params):
        # Every extent is consumed: 4 - 2*(8-1) < 0 in both dims.
        p = dataclasses.replace(params, tile_shape=(4, 4))
        assert share_latency_eq10(p, iteration=1) == 0.0

    def test_consumed_face_clamps_to_zero_not_negative(self, params):
        # remaining = 3: extents are 4 - 6 = -2 (clamped) and 8 - 6 = 2.
        # Face j=0 spans dim 1 (2 cells); face j=1 spans dim 0 (0 cells).
        p = dataclasses.replace(
            params, tile_shape=(4, 8), fused_depth=4
        )
        expected = p.pipe_cycles_per_word * 2.0
        assert share_latency_eq10(p, iteration=1) == expected

    def test_share_latency_never_negative(self, params):
        for i in range(1, params.fused_depth + 1):
            assert share_latency_eq10(params, i) >= 0.0


class TestEq11DegenerateIterations:
    def _zero_iter_params(self, params):
        # A zero tile extent makes the *last* iteration compute zero
        # cells (remaining = 0) while the orthogonal face still holds
        # transferable cells.
        return dataclasses.replace(params, tile_shape=(0, 8))

    def test_zero_iter_with_transfer_is_fully_exposed(self, params):
        p = self._zero_iter_params(params)
        i = p.fused_depth
        assert iteration_latency_eq8(p, i) == 0.0
        assert share_latency_eq10(p, i) > 0.0
        assert overlap_lambda_eq11(p, i) == 1.0

    def test_zero_iter_without_transfer_is_free(self, params):
        p = dataclasses.replace(params, tile_shape=(0, 0))
        i = p.fused_depth
        assert iteration_latency_eq8(p, i) == 0.0
        assert share_latency_eq10(p, i) == 0.0
        assert overlap_lambda_eq11(p, i) == 0.0

    def test_hidden_transfer_has_zero_lambda(self, params):
        # Healthy geometry: transfers fit under compute.
        for i in range(1, params.fused_depth + 1):
            if share_latency_eq10(params, i) <= iteration_latency_eq8(
                params, i
            ):
                assert overlap_lambda_eq11(params, i) == 0.0


class TestEq7DegenerateContribution:
    def test_zero_compute_iteration_still_charges_transfer(self, params):
        p = dataclasses.replace(params, tile_shape=(0, 8))
        i = p.fused_depth
        l_share = share_latency_eq10(p, i)
        assert iteration_latency_eq8(p, i) == 0.0
        assert l_share > 0.0

        with_sharing = compute_latency_eq7(p, sharing=True)
        # The manual Eq. 7 sum with the degenerate iteration's exposed
        # transfer charged directly.
        expected = 0.0
        for it in range(1, p.fused_depth + 1):
            l_iter = iteration_latency_eq8(p, it)
            if l_iter <= 0.0:
                expected += max(0.0, share_latency_eq10(p, it))
                continue
            expected += (1.0 + overlap_lambda_eq11(p, it)) * l_iter
        assert with_sharing == expected
        assert with_sharing >= l_share

    def test_without_sharing_zero_iterations_are_free(self, params):
        p = dataclasses.replace(params, tile_shape=(0, 8))
        expected = sum(
            iteration_latency_eq8(p, it)
            for it in range(1, p.fused_depth + 1)
        )
        assert compute_latency_eq7(p, sharing=False) == expected

    def test_per_iteration_contribution_is_max_of_compute_and_share(
        self, params
    ):
        # With the Eq. 11 λ, each iteration contributes
        # max(L_iter, L_share) — including on the degenerate boundary.
        p = dataclasses.replace(params, tile_shape=(0, 8))
        expected = sum(
            max(
                iteration_latency_eq8(p, it),
                share_latency_eq10(p, it),
            )
            for it in range(1, p.fused_depth + 1)
        )
        assert compute_latency_eq7(p, sharing=True) == expected
