"""Tests for the assembled performance predictor."""

import pytest

from repro.model import (
    Fidelity,
    LatencyBreakdown,
    PerformanceModel,
    predict_latency,
)
from repro.stencil import jacobi_2d
from repro.tiling import (
    make_baseline_design,
    make_heterogeneous_design,
    make_pipe_shared_design,
)


@pytest.fixture(scope="module")
def paper_designs():
    spec = jacobi_2d()
    return {
        "baseline": make_baseline_design(
            spec, (128, 128), (4, 4), 32, unroll=4
        ),
        "pipe": make_pipe_shared_design(
            spec, (128, 128), (4, 4), 32, unroll=4
        ),
        "hetero": make_heterogeneous_design(
            spec, (512, 512), (4, 4), 63, unroll=4
        ),
    }


class TestLatencyBreakdown:
    def test_total_is_component_sum(self):
        bd = LatencyBreakdown(1, 2, 3, 4, 5, 6, 7)
        assert bd.total == 28

    def test_fractions_sum_to_one(self):
        bd = LatencyBreakdown(1, 2, 3, 4, 5, 6, 7)
        assert sum(bd.fractions().values()) == pytest.approx(1.0)

    def test_scaled(self):
        bd = LatencyBreakdown(1, 2, 3, 4, 5, 6, 7).scaled(2)
        assert bd.total == 56
        assert bd.read == 4

    def test_seconds(self):
        bd = LatencyBreakdown(0, 0, 0, 200e6, 0, 0)
        assert bd.seconds(200e6) == pytest.approx(1.0)

    def test_memory_and_compute_views(self):
        bd = LatencyBreakdown(
            launch=1,
            read=10,
            write=20,
            compute_useful=100,
            compute_redundant=50,
            share_exposed=0,
        )
        assert bd.memory == 30
        assert bd.compute == 150

    def test_as_dict_contains_total(self):
        d = LatencyBreakdown(1, 1, 1, 1, 1, 1).as_dict()
        assert d["total"] == 6


class TestFidelities:
    def test_refined_default(self):
        assert PerformanceModel().fidelity is Fidelity.REFINED

    def test_baseline_same_under_both_fidelities(self, paper_designs):
        """For a uniform exactly-divisible baseline the two fidelities
        agree (no balancing, integer region count)."""
        paper = PerformanceModel(fidelity=Fidelity.PAPER).predict_cycles(
            paper_designs["baseline"]
        )
        refined = PerformanceModel(
            fidelity=Fidelity.REFINED
        ).predict_cycles(paper_designs["baseline"])
        assert paper == pytest.approx(refined, rel=1e-9)

    def test_paper_mode_pessimistic_for_hetero(self, paper_designs):
        """Eq. 8's both-side growth overstates the sharing designs."""
        paper = PerformanceModel(fidelity=Fidelity.PAPER).predict_cycles(
            paper_designs["hetero"]
        )
        refined = PerformanceModel(
            fidelity=Fidelity.REFINED
        ).predict_cycles(paper_designs["hetero"])
        assert paper > refined


class TestPredictions:
    def test_hetero_beats_baseline(self, paper_designs):
        model = PerformanceModel()
        base = model.predict_cycles(paper_designs["baseline"])
        het = model.predict_cycles(paper_designs["hetero"])
        assert 1.1 < base / het < 2.5

    def test_pipe_beats_baseline(self, paper_designs):
        model = PerformanceModel()
        base = model.predict_cycles(paper_designs["baseline"])
        pipe = model.predict_cycles(paper_designs["pipe"])
        assert pipe < base

    def test_baseline_has_no_share_component(self, paper_designs):
        bd = PerformanceModel().predict(paper_designs["baseline"])
        assert bd.share_exposed == 0.0

    def test_hetero_removes_redundancy_share(self, paper_designs):
        model = PerformanceModel()
        base = model.predict(paper_designs["baseline"])
        het = model.predict(paper_designs["hetero"])
        assert het.compute_redundant < base.compute_redundant

    def test_breakdown_total_matches_predict_cycles(self, paper_designs):
        model = PerformanceModel()
        bd = model.predict(paper_designs["hetero"])
        assert bd.total == pytest.approx(
            model.predict_cycles(paper_designs["hetero"])
        )

    def test_convenience_wrapper(self, paper_designs):
        bd = predict_latency(paper_designs["baseline"])
        assert bd.total > 0

    def test_deeper_fusion_reduces_memory_share(self, paper_designs):
        model = PerformanceModel()
        spec = paper_designs["baseline"].spec
        shallow = make_baseline_design(spec, (128, 128), (4, 4), 4)
        deep = make_baseline_design(spec, (128, 128), (4, 4), 32)
        f_shallow = model.predict(shallow).fractions()
        f_deep = model.predict(deep).fractions()
        assert f_deep["read"] < f_shallow["read"]
