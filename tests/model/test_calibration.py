"""Tests for the off-line profiling calibrator."""

import dataclasses

import pytest

from repro.errors import SimulationError
from repro.model.calibration import OfflineProfiler, _linear_fit
from repro.opencl.platform import ADM_PCIE_7V3


class TestLinearFit:
    def test_exact_line(self):
        intercept, slope = _linear_fit([0, 1, 2], [5, 7, 9])
        assert intercept == pytest.approx(5.0)
        assert slope == pytest.approx(2.0)

    def test_requires_two_points(self):
        with pytest.raises(SimulationError):
            _linear_fit([1.0], [2.0])

    def test_degenerate_x_rejected(self):
        with pytest.raises(SimulationError):
            _linear_fit([3.0, 3.0], [1.0, 2.0])


class TestParameterRecovery:
    """Profiling against the simulator must recover the board's own
    constants — the consistency check between simulator and model."""

    @pytest.fixture(scope="class")
    def profiler(self):
        return OfflineProfiler(ADM_PCIE_7V3)

    def test_bandwidth_recovered(self, profiler):
        fitted = profiler.profile_bandwidth()
        true = ADM_PCIE_7V3.effective_bytes_per_cycle
        assert fitted == pytest.approx(true, rel=0.02)

    def test_launch_constants_recovered(self, profiler):
        base, stagger = profiler.profile_launch()
        assert base == pytest.approx(
            ADM_PCIE_7V3.kernel_launch_cycles, rel=0.02
        )
        assert stagger == pytest.approx(
            ADM_PCIE_7V3.launch_stagger_cycles, rel=0.02
        )

    def test_pipe_cost_recovered(self, profiler):
        fitted = profiler.profile_pipe_cost()
        assert fitted == pytest.approx(
            ADM_PCIE_7V3.pipe_cycles_per_word, rel=0.15
        )

    def test_calibrate_bundle(self, profiler):
        result = profiler.calibrate()
        assert result.bandwidth_bytes_per_cycle > 0
        assert result.launch_cycles > 0

    def test_recovers_modified_board(self):
        """Profile a board with different constants; the fit follows."""
        board = dataclasses.replace(
            ADM_PCIE_7V3,
            kernel_launch_cycles=9_000,
            launch_stagger_cycles=1_234,
        )
        base, stagger = OfflineProfiler(board).profile_launch()
        assert base == pytest.approx(9_000, rel=0.02)
        assert stagger == pytest.approx(1_234, rel=0.02)

    def test_recovers_halved_bandwidth(self):
        board = ADM_PCIE_7V3.with_bandwidth(6.4e9)
        fitted = OfflineProfiler(board).profile_bandwidth()
        assert fitted == pytest.approx(
            board.effective_bytes_per_cycle, rel=0.02
        )
