"""Tests for BRAM packing."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import SpecificationError
from repro.fpga.bram import (
    bram18_blocks,
    fifo_resources,
    local_array_blocks,
)


class TestBram18Blocks:
    def test_512_floats_fit_one_block(self):
        # 32-bit words use the 512x36 aspect.
        assert bram18_blocks(512, 32) == 1

    def test_513_floats_need_two(self):
        assert bram18_blocks(513, 32) == 2

    def test_narrow_words_pack_deeper(self):
        assert bram18_blocks(16384, 1) == 1
        assert bram18_blocks(2048, 9) == 1

    def test_wide_words_gang_blocks(self):
        # 64-bit words gang two RAMB18s side by side.
        assert bram18_blocks(512, 64) == 2

    def test_zero_words_zero_blocks(self):
        assert bram18_blocks(0, 32) == 0

    def test_partitioning_rounds_per_bank(self):
        # 1024 words in one bank: 2 blocks.  In 16 banks of 64 words:
        # 16 blocks (each bank rounds up to a whole primitive).
        assert bram18_blocks(1024, 32, partitions=1) == 2
        assert bram18_blocks(1024, 32, partitions=16) == 16

    def test_invalid_args(self):
        with pytest.raises(SpecificationError):
            bram18_blocks(-1, 32)
        with pytest.raises(SpecificationError):
            bram18_blocks(1, 0)
        with pytest.raises(SpecificationError):
            bram18_blocks(1, 32, partitions=0)

    @given(
        st.integers(1, 100_000),
        st.sampled_from([8, 16, 32, 64]),
        st.sampled_from([1, 2, 4, 8]),
    )
    def test_partitioning_never_reduces_blocks(self, words, bits, parts):
        assert bram18_blocks(words, bits, parts) >= bram18_blocks(
            words, bits, 1
        )

    @given(st.integers(0, 100_000), st.sampled_from([8, 16, 32, 64]))
    def test_capacity_sufficient(self, words, bits):
        # The blocks allocated must physically hold the payload.
        blocks = bram18_blocks(words, bits)
        assert blocks * 18 * 1024 >= words * bits


class TestLocalArrayBlocks:
    def test_double_buffering_doubles(self):
        single = local_array_blocks(1000, 4, double_buffered=False)
        double = local_array_blocks(1000, 4, double_buffered=True)
        assert double == 2 * single

    def test_zero_cells(self):
        assert local_array_blocks(0, 4) == 0


class TestFifoResources:
    def test_shallow_fifo_uses_no_bram(self):
        res = fifo_resources(16, 32)  # 512 bits -> SRL
        assert res.bram18 == 0
        assert res.lut > 0

    def test_deep_fifo_uses_bram(self):
        res = fifo_resources(1024, 32)
        assert res.bram18 >= 1

    def test_controller_overhead_present(self):
        assert fifo_resources(8, 8).ff >= 64

    def test_invalid_depth(self):
        with pytest.raises(SpecificationError):
            fifo_resources(0, 32)

    def test_threshold_boundary(self):
        at = fifo_resources(32, 32)  # exactly 1024 bits
        above = fifo_resources(33, 32)
        assert at.bram18 == 0
        assert above.bram18 >= 1
