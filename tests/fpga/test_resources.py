"""Tests for resource-vector algebra and device capacities."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ResourceError, SpecificationError
from repro.fpga.resources import VIRTEX7_690T, ResourceVector

vectors = st.builds(
    ResourceVector,
    st.integers(0, 10_000),
    st.integers(0, 10_000),
    st.integers(0, 10_000),
    st.integers(0, 10_000),
)


class TestAlgebra:
    def test_addition(self):
        a = ResourceVector(1, 2, 3, 4)
        b = ResourceVector(10, 20, 30, 40)
        assert a + b == ResourceVector(11, 22, 33, 44)

    def test_subtraction_floors_at_zero(self):
        a = ResourceVector(5, 5, 5, 5)
        b = ResourceVector(10, 2, 10, 2)
        assert a - b == ResourceVector(0, 3, 0, 3)

    def test_scaled_rounds_up(self):
        assert ResourceVector(3, 0, 0, 0).scaled(0.5).ff == 2

    def test_scaled_zero(self):
        assert ResourceVector(5, 5, 5, 5).scaled(0) == ResourceVector()

    def test_negative_scale_rejected(self):
        with pytest.raises(SpecificationError):
            ResourceVector().scaled(-1)

    def test_negative_component_rejected(self):
        with pytest.raises(SpecificationError):
            ResourceVector(ff=-1)

    def test_max_with(self):
        a = ResourceVector(1, 20, 3, 40)
        b = ResourceVector(10, 2, 30, 4)
        assert a.max_with(b) == ResourceVector(10, 20, 30, 40)

    def test_fits_within(self):
        small = ResourceVector(1, 1, 1, 1)
        big = ResourceVector(2, 2, 2, 2)
        assert small.fits_within(big)
        assert not big.fits_within(small)

    def test_fits_within_is_componentwise(self):
        a = ResourceVector(ff=10, lut=1)
        b = ResourceVector(ff=1, lut=10)
        assert not a.fits_within(b)
        assert not b.fits_within(a)

    def test_utilization(self):
        usage = ResourceVector(ff=50)
        cap = ResourceVector(ff=100, lut=10)
        util = usage.utilization(cap)
        assert util["ff"] == pytest.approx(0.5)
        assert util["lut"] == 0.0

    def test_as_dict(self):
        d = ResourceVector(1, 2, 3, 4).as_dict()
        assert d == {"ff": 1, "lut": 2, "dsp": 3, "bram18": 4}

    @given(vectors, vectors)
    def test_addition_commutative(self, a, b):
        assert a + b == b + a

    @given(vectors, vectors, vectors)
    def test_addition_associative(self, a, b, c):
        assert (a + b) + c == a + (b + c)

    @given(vectors, vectors)
    def test_sum_fits_iff_components(self, a, b):
        assert a.fits_within(a + b)

    @given(vectors)
    def test_scaling_by_one_is_identity(self, a):
        assert a.scaled(1.0) == a


class TestDevice:
    def test_virtex7_capacities(self):
        cap = VIRTEX7_690T.capacity
        assert cap.dsp == 3600
        assert cap.bram18 == 2940
        assert cap.lut == 433_200
        assert cap.ff == 866_400

    def test_check_fits_passes(self):
        VIRTEX7_690T.check_fits(ResourceVector(1, 1, 1, 1))

    def test_check_fits_raises_with_component_names(self):
        over = ResourceVector(dsp=4000)
        with pytest.raises(ResourceError, match="dsp"):
            VIRTEX7_690T.check_fits(over)

    def test_headroom(self):
        usage = ResourceVector(dsp=600)
        assert VIRTEX7_690T.headroom(usage).dsp == 3000
