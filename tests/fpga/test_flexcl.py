"""Tests for the FlexCL-style II estimator."""

import pytest

from repro.errors import SpecificationError
from repro.fpga.flexcl import FlexCLEstimator
from repro.stencil import get_benchmark


@pytest.fixture
def jacobi2d_pattern():
    return get_benchmark("jacobi-2d").pattern


class TestEstimate:
    def test_default_achieves_ii_one(self, jacobi2d_pattern):
        report = FlexCLEstimator().estimate(jacobi2d_pattern, unroll=1)
        assert report.ii == 1

    def test_cycles_per_element(self, jacobi2d_pattern):
        report = FlexCLEstimator().estimate(jacobi2d_pattern, unroll=4)
        assert report.cycles_per_element == pytest.approx(report.ii / 4)

    def test_forced_narrow_banking_raises_ii(self, jacobi2d_pattern):
        report = FlexCLEstimator().estimate(
            jacobi2d_pattern, unroll=4, partitions=1
        )
        # 5 taps x 4 PEs = 20 reads over 2 ports -> II = 10.
        assert report.ii == 10

    def test_partition_cap_limits_banking(self, jacobi2d_pattern):
        estimator = FlexCLEstimator(max_partitions=2)
        report = estimator.estimate(jacobi2d_pattern, unroll=8)
        assert report.partitions <= 2
        assert report.ii > 1

    def test_partitions_power_of_two(self, jacobi2d_pattern):
        report = FlexCLEstimator().estimate(jacobi2d_pattern, unroll=3)
        assert report.partitions & (report.partitions - 1) == 0

    def test_depth_grows_with_tap_count(self):
        narrow = get_benchmark("jacobi-1d").pattern  # 3 taps
        wide = get_benchmark("seidel-2d").pattern  # 9 taps
        est = FlexCLEstimator()
        assert (
            est.estimate(wide).depth >= est.estimate(narrow).depth
        )

    def test_invalid_unroll(self, jacobi2d_pattern):
        with pytest.raises(SpecificationError):
            FlexCLEstimator().estimate(jacobi2d_pattern, unroll=0)

    def test_invalid_partitions(self, jacobi2d_pattern):
        with pytest.raises(SpecificationError):
            FlexCLEstimator().estimate(jacobi2d_pattern, partitions=0)

    def test_invalid_max_partitions(self):
        with pytest.raises(SpecificationError):
            FlexCLEstimator(max_partitions=0)

    def test_reads_per_cycle_consistent(self, jacobi2d_pattern):
        report = FlexCLEstimator().estimate(jacobi2d_pattern, unroll=2)
        assert report.reads_per_cycle == pytest.approx(
            jacobi2d_pattern.points_per_cell() * 2 / report.ii
        )

    def test_multi_field_pattern(self):
        pattern = get_benchmark("fdtd-2d").pattern
        report = FlexCLEstimator().estimate(pattern, unroll=2)
        assert report.ii >= 1
        assert report.unroll == 2
