"""Tests for the design resource estimator."""

import pytest

from repro.fpga.estimator import ResourceEstimator, estimate_resources
from repro.stencil import jacobi_2d
from repro.tiling import make_baseline_design, make_heterogeneous_design


@pytest.fixture
def estimator():
    return ResourceEstimator()


@pytest.fixture
def paper_designs():
    spec = jacobi_2d()
    baseline = make_baseline_design(spec, (128, 128), (4, 4), 32, unroll=4)
    hetero = make_heterogeneous_design(
        spec, (512, 512), (4, 4), 63, unroll=4
    )
    return baseline, hetero


class TestComposition:
    def test_total_is_kernels_plus_pipes(self, estimator, hetero_design):
        res = estimator.estimate(hetero_design)
        assert res.total == res.kernels + res.pipes

    def test_baseline_has_no_pipe_resources(self, estimator, baseline_design):
        res = estimator.estimate(baseline_design)
        assert res.pipes.ff == 0
        assert res.pipes.bram18 == 0

    def test_sharing_design_has_pipe_resources(self, estimator, pipe_design):
        res = estimator.estimate(pipe_design)
        assert res.pipes.ff > 0

    def test_as_dict_structure(self, estimator, baseline_design):
        d = estimator.estimate(baseline_design).as_dict()
        assert set(d) == {"total", "kernels", "pipes"}
        assert d["total"]["dsp"] >= 0


class TestPaperClaims:
    def test_dsp_equal_across_designs(self, estimator, paper_designs):
        """Same parallelism and unroll -> identical DSP (Section 5.5)."""
        baseline, hetero = paper_designs
        assert (
            estimator.estimate(baseline).total.dsp
            == estimator.estimate(hetero).total.dsp
        )

    def test_hetero_saves_bram(self, estimator, paper_designs):
        """Pipe sharing shrinks buffers: 8-25 % BRAM saving."""
        baseline, hetero = paper_designs
        base_bram = estimator.estimate(baseline).total.bram18
        het_bram = estimator.estimate(hetero).total.bram18
        saving = 1 - het_bram / base_bram
        assert 0.05 < saving < 0.45

    def test_hetero_saves_lut(self, estimator, paper_designs):
        baseline, hetero = paper_designs
        assert (
            estimator.estimate(hetero).total.lut
            < estimator.estimate(baseline).total.lut
        )

    def test_fits_the_690t(self, estimator, paper_designs):
        from repro.fpga.resources import VIRTEX7_690T

        baseline, hetero = paper_designs
        estimator.check_fits(baseline, VIRTEX7_690T)
        estimator.check_fits(hetero, VIRTEX7_690T)


class TestScaling:
    def test_dsp_scales_with_unroll(self, small_jacobi2d, estimator):
        lo = make_baseline_design(small_jacobi2d, (8, 8), (2, 2), 4, unroll=1)
        hi = make_baseline_design(small_jacobi2d, (8, 8), (2, 2), 4, unroll=4)
        assert (
            estimator.estimate(hi).total.dsp
            == 4 * estimator.estimate(lo).total.dsp
        )

    def test_bram_grows_with_fused_depth(self, paper_jacobi2d, estimator):
        shallow = make_baseline_design(
            paper_jacobi2d, (128, 128), (4, 4), 4
        )
        deep = make_baseline_design(paper_jacobi2d, (128, 128), (4, 4), 64)
        assert (
            estimator.estimate(deep).total.bram18
            > estimator.estimate(shallow).total.bram18
        )

    def test_aux_arrays_cost_bram(self, estimator):
        from repro.stencil import hotspot_2d, jacobi_2d

        jac = make_baseline_design(
            jacobi_2d(grid=(256, 256), iterations=16), (64, 64), (2, 2), 4
        )
        hot = make_baseline_design(
            hotspot_2d(grid=(256, 256), iterations=16), (64, 64), (2, 2), 4
        )
        assert (
            estimator.estimate(hot).total.bram18
            > estimator.estimate(jac).total.bram18
        )

    def test_convenience_wrapper(self, baseline_design):
        assert estimate_resources(baseline_design).total.dsp > 0
