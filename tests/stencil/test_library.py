"""Tests for the benchmark library (Table 2 fidelity + structure)."""

import numpy as np
import pytest

from repro.errors import SpecificationError
from repro.stencil import (
    BENCHMARKS,
    PAPER_SUITE,
    get_benchmark,
    run_reference,
)
from repro.stencil.library import _fdtd_2d_pattern


#: (name, paper input size, paper iterations) from Table 2.
TABLE2 = [
    ("jacobi-1d", (131072,), 1024),
    ("jacobi-2d", (2048, 2048), 1024),
    ("jacobi-3d", (1024, 1024, 1024), 1024),
    ("hotspot-2d", (4096, 4096), 1000),
    ("hotspot-3d", (4096, 4096, 128), 1000),
    ("fdtd-2d", (2048, 2048), 500),
    ("fdtd-3d", (2048, 2048, 2048), 500),
]


class TestTable2Fidelity:
    @pytest.mark.parametrize("name,size,iters", TABLE2)
    def test_paper_defaults(self, name, size, iters):
        spec = get_benchmark(name)
        assert spec.grid_shape == size
        assert spec.iterations == iters

    def test_paper_suite_complete(self):
        assert len(PAPER_SUITE) == 7
        assert set(PAPER_SUITE) <= set(BENCHMARKS)

    @pytest.mark.parametrize("name", sorted(BENCHMARKS))
    def test_every_benchmark_builds(self, name):
        spec = BENCHMARKS[name]()
        assert spec.pattern.radius


class TestStructure:
    def test_jacobi_radii(self):
        assert get_benchmark("jacobi-1d").pattern.radius == (1,)
        assert get_benchmark("jacobi-2d").pattern.radius == (1, 1)
        assert get_benchmark("jacobi-3d").pattern.radius == (1, 1, 1)

    def test_jacobi_point_counts(self):
        assert get_benchmark("jacobi-1d").pattern.points_per_cell() == 3
        assert get_benchmark("jacobi-2d").pattern.points_per_cell() == 5
        assert get_benchmark("jacobi-3d").pattern.points_per_cell() == 7

    def test_hotspot_has_power_aux(self):
        for name in ("hotspot-2d", "hotspot-3d"):
            pattern = get_benchmark(name).pattern
            assert pattern.aux == ("power",)
            assert pattern.updates["a"].constant > 0  # ambient leak

    def test_hotspot_weights_stable(self):
        # Diffusion weights of the state field sum below 1 (leak to
        # ambient), keeping iteration bounded.
        pattern = get_benchmark("hotspot-2d").pattern
        state_coeffs = sum(
            t.coeff
            for t in pattern.updates["a"].taps
            if t.source == "a"
        )
        assert 0.9 < state_coeffs < 1.0

    def test_fdtd2d_fields(self):
        pattern = get_benchmark("fdtd-2d").pattern
        assert pattern.fields == ("ex", "ey", "hz")
        assert pattern.radius == (1, 1)

    def test_fdtd3d_fields(self):
        pattern = get_benchmark("fdtd-3d").pattern
        assert pattern.fields == ("ex", "ey", "ez", "hz")
        assert pattern.radius == (1, 1, 1)

    def test_fdtd2d_composition_matches_staged_sweeps(self):
        """The composed one-step taps must equal running the three
        Polybench sweeps sequentially."""
        rng = np.random.default_rng(7)
        shape = (10, 10)
        ex = rng.uniform(size=shape)
        ey = rng.uniform(size=shape)
        hz = rng.uniform(size=shape)
        # Staged float64 emulation on the interior.
        ey2 = ey.copy()
        ey2[1:, :] = ey[1:, :] - 0.5 * (hz[1:, :] - hz[:-1, :])
        ex2 = ex.copy()
        ex2[:, 1:] = ex[:, 1:] - 0.5 * (hz[:, 1:] - hz[:, :-1])
        hz2 = hz.copy()
        hz2[:-1, :-1] = hz[:-1, :-1] - 0.7 * (
            ex2[:-1, 1:] - ex2[:-1, :-1] + ey2[1:, :-1] - ey2[:-1, :-1]
        )
        # Composed pattern applied on the same interior cell (5, 5).
        pattern = _fdtd_2d_pattern()
        state = {"ex": ex, "ey": ey, "hz": hz}
        for fname, staged in (("ex", ex2), ("ey", ey2), ("hz", hz2)):
            composed = pattern.updates[fname].constant
            for tap in pattern.updates[fname].taps:
                composed += tap.coeff * state[tap.source][
                    5 + tap.offset[0], 5 + tap.offset[1]
                ]
            assert composed == pytest.approx(staged[5, 5], rel=1e-12)

    def test_gaussian_blur_weights_sum_to_one(self):
        pattern = get_benchmark("gaussian-blur-2d").pattern
        total = sum(t.coeff for t in pattern.updates["a"].taps)
        assert total == pytest.approx(1.0)

    def test_wide_star_radius_two(self):
        assert get_benchmark("wide-star-1d").pattern.radius == (2,)


class TestRegistry:
    def test_get_benchmark_with_overrides(self):
        spec = get_benchmark("jacobi-2d", grid=(16, 16), iterations=3)
        assert spec.grid_shape == (16, 16)
        assert spec.iterations == 3

    def test_unknown_name_rejected(self):
        with pytest.raises(SpecificationError, match="Unknown benchmark"):
            get_benchmark("does-not-exist")

    @pytest.mark.parametrize("name", sorted(BENCHMARKS))
    def test_small_instance_runs(self, name):
        spec = BENCHMARKS[name]()
        small = spec.with_grid(
            tuple(12 for _ in spec.grid_shape)
        ).with_iterations(2)
        out = run_reference(small)
        for field in spec.pattern.fields:
            assert np.isfinite(out[field]).all()
