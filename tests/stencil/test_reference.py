"""Tests for the golden reference executor."""

import dataclasses

import numpy as np
import pytest

from repro.stencil import (
    BoundaryPolicy,
    ReferenceExecutor,
    get_benchmark,
    jacobi_2d,
    run_reference,
)


class TestFrozenBoundary:
    def test_edges_stay_frozen(self, small_jacobi2d):
        state = small_jacobi2d.initial_state()
        out = run_reference(small_jacobi2d, state=state)
        assert np.array_equal(out["a"][0, :], state["a"][0, :])
        assert np.array_equal(out["a"][-1, :], state["a"][-1, :])
        assert np.array_equal(out["a"][:, 0], state["a"][:, 0])
        assert np.array_equal(out["a"][:, -1], state["a"][:, -1])

    def test_interior_changes(self, small_jacobi2d):
        state = small_jacobi2d.initial_state()
        out = run_reference(small_jacobi2d, state=state)
        assert not np.array_equal(out["a"][1:-1, 1:-1], state["a"][1:-1, 1:-1])

    def test_input_state_not_mutated(self, small_jacobi2d):
        state = small_jacobi2d.initial_state()
        snapshot = state["a"].copy()
        run_reference(small_jacobi2d, state=state)
        assert np.array_equal(state["a"], snapshot)

    def test_zero_iterations_is_identity(self, small_jacobi2d):
        state = small_jacobi2d.initial_state()
        out = run_reference(small_jacobi2d, iterations=0, state=state)
        assert np.array_equal(out["a"], state["a"])

    def test_iterations_compose(self, small_jacobi2d):
        two = run_reference(small_jacobi2d, iterations=2)
        one = run_reference(small_jacobi2d, iterations=1)
        one_more = run_reference(small_jacobi2d, iterations=1, state=one)
        assert np.array_equal(two["a"], one_more["a"])

    def test_uniform_field_is_fixed_point(self):
        # Jacobi weights sum to 1.0... only approximately (5 * 0.2), so
        # a constant field stays constant to float tolerance.
        spec = jacobi_2d(grid=(16, 16), iterations=4)
        state = {"a": np.full((16, 16), 0.5, dtype=np.float32)}
        out = run_reference(spec, state=state)
        np.testing.assert_allclose(out["a"], 0.5, rtol=1e-6)

    def test_values_stay_bounded(self, small_jacobi2d):
        # A convex-combination stencil cannot exceed its input range.
        out = run_reference(small_jacobi2d)
        assert out["a"].max() <= 1.0 + 1e-6
        assert out["a"].min() >= -1e-6

    def test_wide_radius_freezes_two_layers(self):
        spec = get_benchmark("wide-star-1d", grid=(32,), iterations=3)
        state = spec.initial_state()
        out = run_reference(spec, state=state)
        assert np.array_equal(out["a"][:2], state["a"][:2])
        assert np.array_equal(out["a"][-2:], state["a"][-2:])
        assert not np.array_equal(out["a"][2:-2], state["a"][2:-2])


class TestMultiField:
    def test_all_fields_advance(self, small_fdtd2d):
        state = small_fdtd2d.initial_state()
        out = run_reference(small_fdtd2d, state=state)
        for name in ("ex", "ey", "hz"):
            assert not np.array_equal(
                out[name][1:-1, 1:-1], state[name][1:-1, 1:-1]
            )

    def test_aux_input_affects_result(self, small_hotspot2d):
        base = run_reference(small_hotspot2d)
        hot_aux = {
            "power": np.full(
                small_hotspot2d.grid_shape, 0.5, dtype=np.float32
            )
        }
        heated = run_reference(small_hotspot2d, aux=hot_aux)
        assert heated["a"][1:-1, 1:-1].mean() > base["a"][1:-1, 1:-1].mean()


class TestOtherBoundaries:
    @pytest.mark.parametrize(
        "policy", [BoundaryPolicy.CLAMP, BoundaryPolicy.PERIODIC]
    )
    def test_every_cell_updates(self, policy):
        spec = dataclasses.replace(
            jacobi_2d(grid=(12, 12), iterations=1), boundary=policy
        )
        state = spec.initial_state()
        out = run_reference(spec, state=state)
        # With padding, even the corner is an average of in-range data.
        assert not np.array_equal(out["a"], state["a"])
        assert out["a"].shape == (12, 12)

    def test_periodic_translation_equivariance(self):
        spec = dataclasses.replace(
            jacobi_2d(grid=(16, 16), iterations=3),
            boundary=BoundaryPolicy.PERIODIC,
        )
        state = spec.initial_state()
        rolled = {"a": np.roll(state["a"], (3, 5), axis=(0, 1))}
        out_plain = run_reference(spec, state=state)
        out_rolled = run_reference(spec, state=rolled)
        np.testing.assert_allclose(
            np.roll(out_plain["a"], (3, 5), axis=(0, 1)),
            out_rolled["a"],
            rtol=1e-6,
        )

    def test_clamp_constant_fixed_point(self):
        spec = dataclasses.replace(
            jacobi_2d(grid=(10, 10), iterations=5),
            boundary=BoundaryPolicy.CLAMP,
        )
        state = {"a": np.full((10, 10), 0.25, dtype=np.float32)}
        out = run_reference(spec, state=state)
        np.testing.assert_allclose(out["a"], 0.25, rtol=1e-6)


class TestExecutorObject:
    def test_step_matches_run_one(self, small_jacobi2d):
        executor = ReferenceExecutor(small_jacobi2d)
        state = small_jacobi2d.initial_state()
        stepped = executor.step(state, {})
        ran = executor.run(iterations=1, state=state)
        assert np.array_equal(stepped["a"], ran["a"])

    def test_default_iterations_from_spec(self, small_jacobi2d):
        executor = ReferenceExecutor(small_jacobi2d)
        assert np.array_equal(
            executor.run()["a"],
            executor.run(iterations=small_jacobi2d.iterations)["a"],
        )
