"""Tests for stencil pattern declarations and stage composition."""

import pytest

from repro.errors import SpecificationError
from repro.stencil.pattern import (
    FieldUpdate,
    Stage,
    StencilPattern,
    Tap,
    compose_stages,
)


def star2d(coeff_center=0.2, coeff_nbr=0.2):
    taps = (
        Tap("a", (0, 0), coeff_center),
        Tap("a", (-1, 0), coeff_nbr),
        Tap("a", (1, 0), coeff_nbr),
        Tap("a", (0, -1), coeff_nbr),
        Tap("a", (0, 1), coeff_nbr),
    )
    return StencilPattern(
        name="star",
        ndim=2,
        fields=("a",),
        updates={"a": FieldUpdate(taps=taps)},
    )


class TestTap:
    def test_shifted(self):
        tap = Tap("a", (1, -1), 0.5)
        assert tap.shifted((2, 3)).offset == (3, 2)

    def test_scaled(self):
        assert Tap("a", (0,), 0.5).scaled(2.0).coeff == 1.0

    def test_offsets_coerced_to_ints(self):
        assert Tap("a", (1.0, 2.0), 1.0).offset == (1, 2)


class TestFieldUpdate:
    def test_requires_taps_or_constant(self):
        with pytest.raises(SpecificationError):
            FieldUpdate(taps=())

    def test_constant_only_allowed(self):
        update = FieldUpdate(taps=(), constant=1.0)
        assert update.constant == 1.0

    def test_inconsistent_ranks_rejected(self):
        with pytest.raises(SpecificationError):
            FieldUpdate(taps=(Tap("a", (0,), 1.0), Tap("a", (0, 0), 1.0)))

    def test_sources_in_order(self):
        update = FieldUpdate(
            taps=(
                Tap("b", (0,), 1.0),
                Tap("a", (0,), 1.0),
                Tap("b", (1,), 1.0),
            )
        )
        assert update.sources() == ("b", "a")


class TestStencilPattern:
    def test_radius(self):
        assert star2d().radius == (1, 1)

    def test_halo_growth_is_twice_radius(self):
        assert star2d().halo_growth == (2, 2)

    def test_asymmetric_radius(self):
        pattern = StencilPattern(
            name="asym",
            ndim=2,
            fields=("a",),
            updates={
                "a": FieldUpdate(
                    taps=(Tap("a", (-2, 0), 1.0), Tap("a", (0, 1), 1.0))
                )
            },
        )
        assert pattern.radius == (2, 1)

    def test_points_per_cell(self):
        assert star2d().points_per_cell() == 5

    def test_multiplies_per_cell_skips_unit_coeffs(self):
        pattern = StencilPattern(
            name="p",
            ndim=1,
            fields=("a",),
            updates={
                "a": FieldUpdate(
                    taps=(Tap("a", (0,), 1.0), Tap("a", (1,), 0.5))
                )
            },
        )
        assert pattern.multiplies_per_cell() == 1

    def test_adds_count_includes_constant(self):
        pattern = StencilPattern(
            name="p",
            ndim=1,
            fields=("a",),
            updates={
                "a": FieldUpdate(
                    taps=(Tap("a", (0,), 1.0), Tap("a", (1,), 1.0)),
                    constant=2.0,
                )
            },
        )
        assert pattern.adds_per_cell() == 2

    def test_flops_per_cell(self):
        assert star2d().flops_per_cell() == 5 + 4

    def test_unknown_source_rejected(self):
        with pytest.raises(SpecificationError, match="unknown source"):
            StencilPattern(
                name="bad",
                ndim=1,
                fields=("a",),
                updates={
                    "a": FieldUpdate(taps=(Tap("ghost", (0,), 1.0),))
                },
            )

    def test_updates_must_cover_fields(self):
        with pytest.raises(SpecificationError):
            StencilPattern(
                name="bad",
                ndim=1,
                fields=("a", "b"),
                updates={"a": FieldUpdate(taps=(Tap("a", (0,), 1.0),))},
            )

    def test_rank_mismatch_rejected(self):
        with pytest.raises(SpecificationError):
            StencilPattern(
                name="bad",
                ndim=2,
                fields=("a",),
                updates={"a": FieldUpdate(taps=(Tap("a", (0,), 1.0),))},
            )

    def test_aux_is_valid_source(self):
        pattern = StencilPattern(
            name="p",
            ndim=1,
            fields=("a",),
            aux=("power",),
            updates={
                "a": FieldUpdate(
                    taps=(Tap("a", (0,), 1.0), Tap("power", (0,), 0.1))
                )
            },
        )
        assert pattern.aux == ("power",)


class TestComposeStages:
    def test_identity_composition(self):
        stage = Stage(
            updates={"a": FieldUpdate(taps=(Tap("a", (0,), 1.0),))}
        )
        pattern = compose_stages("id", 1, ("a",), (stage,))
        taps = pattern.updates["a"].taps
        assert taps == (Tap("a", (0,), 1.0),)

    def test_two_shifts_compose_offsets(self):
        # a = a[+1]; then a = a[+1] again => a = a_original[+2].
        shift = Stage(
            updates={"a": FieldUpdate(taps=(Tap("a", (1,), 1.0),))}
        )
        pattern = compose_stages("shift2", 1, ("a",), (shift, shift))
        assert pattern.updates["a"].taps == (Tap("a", (2,), 1.0),)

    def test_coefficients_multiply_through(self):
        half = Stage(
            updates={"a": FieldUpdate(taps=(Tap("a", (0,), 0.5),))}
        )
        pattern = compose_stages("quarter", 1, ("a",), (half, half))
        assert pattern.updates["a"].taps[0].coeff == pytest.approx(0.25)

    def test_constants_propagate(self):
        inc = Stage(
            updates={
                "a": FieldUpdate(
                    taps=(Tap("a", (0,), 1.0),), constant=1.0
                )
            }
        )
        pattern = compose_stages("inc2", 1, ("a",), (inc, inc))
        assert pattern.updates["a"].constant == pytest.approx(2.0)

    def test_cross_field_dependency(self):
        # b reads the *updated* a: b' = a' = 2 * a_original.
        s1 = Stage(updates={"a": FieldUpdate(taps=(Tap("a", (0,), 2.0),))})
        s2 = Stage(updates={"b": FieldUpdate(taps=(Tap("a", (0,), 1.0),))})
        pattern = compose_stages("xfield", 1, ("a", "b"), (s1, s2))
        assert pattern.updates["b"].taps == (Tap("a", (0,), 2.0),)

    def test_unwritten_field_keeps_identity(self):
        s1 = Stage(updates={"a": FieldUpdate(taps=(Tap("b", (0,), 1.0),))})
        pattern = compose_stages("keep", 1, ("a", "b"), (s1,))
        assert pattern.updates["b"].taps == (Tap("b", (0,), 1.0),)

    def test_aux_taps_pass_through(self):
        s1 = Stage(
            updates={
                "a": FieldUpdate(
                    taps=(Tap("a", (0,), 1.0), Tap("p", (0,), 0.1))
                )
            }
        )
        pattern = compose_stages("auxed", 1, ("a",), (s1,), aux=("p",))
        sources = {t.source for t in pattern.updates["a"].taps}
        assert sources == {"a", "p"}

    def test_zero_coefficient_taps_pruned(self):
        s1 = Stage(
            updates={
                "a": FieldUpdate(
                    taps=(Tap("a", (0,), 1.0), Tap("a", (0,), -1.0)),
                    constant=1.0,
                )
            }
        )
        pattern = compose_stages("cancel", 1, ("a",), (s1,))
        assert pattern.updates["a"].taps == ()
        assert pattern.updates["a"].constant == 1.0

    def test_unknown_stage_field_rejected(self):
        s1 = Stage(updates={"z": FieldUpdate(taps=(Tap("z", (0,), 1.0),))})
        with pytest.raises(SpecificationError):
            compose_stages("bad", 1, ("a",), (s1,))

    def test_unknown_stage_source_rejected(self):
        s1 = Stage(updates={"a": FieldUpdate(taps=(Tap("q", (0,), 1.0),))})
        with pytest.raises(SpecificationError):
            compose_stages("bad", 1, ("a",), (s1,))
