"""Cross-check: OpenCL-source extraction vs library construction.

Every Table 2 benchmark exists twice in this repository — as an OpenCL
kernel (the paper's input format, extracted by the frontend) and as a
directly-constructed library pattern.  The two routes must produce the
same stencil.
"""

import numpy as np
import pytest

from repro.errors import SpecificationError
from repro.stencil.library import PAPER_SUITE, get_benchmark
from repro.stencil.sources import (
    KERNEL_SOURCES,
    extract_benchmark_pattern,
    get_kernel_source,
)


def tap_dict(pattern, field):
    return {
        (t.source, t.offset): t.coeff
        for t in pattern.updates[field].taps
    }


class TestCoverage:
    def test_every_paper_benchmark_has_source(self):
        assert set(KERNEL_SOURCES) == set(PAPER_SUITE)

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(SpecificationError):
            get_kernel_source("nope")


class TestCrossCheck:
    @pytest.mark.parametrize("name", sorted(KERNEL_SOURCES))
    def test_extracted_matches_library(self, name):
        extracted = extract_benchmark_pattern(name)
        library = get_benchmark(name).pattern
        assert set(extracted.fields) == set(library.fields)
        assert extracted.radius == library.radius
        assert tuple(sorted(extracted.aux)) == tuple(sorted(library.aux))
        for field in library.fields:
            lib_taps = tap_dict(library, field)
            ext_taps = tap_dict(extracted, field)
            assert set(ext_taps) == set(lib_taps), field
            for key, coeff in lib_taps.items():
                assert ext_taps[key] == pytest.approx(
                    coeff, rel=1e-5
                ), (field, key)
            assert extracted.updates[field].constant == pytest.approx(
                library.updates[field].constant, abs=1e-7
            )

    @pytest.mark.parametrize("name", ["jacobi-2d", "fdtd-2d"])
    def test_extracted_pattern_runs_identically(self, name):
        """Numerically: reference execution of the extracted pattern
        equals the library pattern's (same taps, same order semantics
        up to float tolerance for the composed coefficients)."""
        import dataclasses

        from repro.stencil.reference import run_reference

        spec = get_benchmark(name, grid=(16, 16), iterations=3)
        extracted_spec = dataclasses.replace(
            spec, pattern=extract_benchmark_pattern(name)
        )
        # Pin identical initial state: initial_state() draws randoms in
        # field order, and the two patterns may order fields differently.
        state = spec.initial_state()
        out_lib = run_reference(spec, state=state)
        out_ext = run_reference(extracted_spec, state=state)
        for field in spec.pattern.fields:
            # Tap order differs between the two construction routes,
            # so float32 accumulation differs in the last bits; near
            # zero-crossings (FDTD fields oscillate) that needs an
            # absolute tolerance.
            np.testing.assert_allclose(
                out_lib[field], out_ext[field], rtol=1e-4, atol=1e-5
            )


class TestSourceQuality:
    @pytest.mark.parametrize("name", sorted(KERNEL_SOURCES))
    def test_sources_are_full_kernels(self, name):
        source = get_kernel_source(name).source
        assert "__kernel void" in source
        assert "get_global_id(0)" in source
