"""Tests for StencilSpec."""

import numpy as np
import pytest

from repro.errors import SpecificationError
from repro.stencil import jacobi_2d, fdtd_2d


class TestSpecBasics:
    def test_ndim_from_pattern(self, small_jacobi2d):
        assert small_jacobi2d.ndim == 2

    def test_element_bytes_float32(self, small_jacobi2d):
        assert small_jacobi2d.element_bytes == 4

    def test_cell_state_bytes_multi_field(self, small_fdtd2d):
        assert small_fdtd2d.cell_state_bytes == 12  # 3 fields x 4 bytes

    def test_total_cells(self, small_jacobi2d):
        assert small_jacobi2d.total_cells == 32 * 32

    def test_footprint_bytes(self, small_fdtd2d):
        assert small_fdtd2d.footprint_bytes == 24 * 24 * 12

    def test_grid_too_small_rejected(self):
        with pytest.raises(SpecificationError, match="too small"):
            jacobi_2d(grid=(2, 32), iterations=1)

    def test_nonpositive_iterations_rejected(self):
        with pytest.raises(SpecificationError):
            jacobi_2d(grid=(16, 16), iterations=0)


class TestInitialState:
    def test_deterministic(self, small_jacobi2d):
        a = small_jacobi2d.initial_state()
        b = small_jacobi2d.initial_state()
        assert np.array_equal(a["a"], b["a"])

    def test_dtype_and_shape(self, small_jacobi2d):
        state = small_jacobi2d.initial_state()
        assert state["a"].dtype == np.float32
        assert state["a"].shape == (32, 32)

    def test_all_fields_present(self, small_fdtd2d):
        state = small_fdtd2d.initial_state()
        assert set(state) == {"ex", "ey", "hz"}

    def test_aux_state(self, small_hotspot2d):
        aux = small_hotspot2d.aux_state()
        assert set(aux) == {"power"}
        assert aux["power"].shape == (32, 32)

    def test_aux_differs_from_state_rng(self, small_hotspot2d):
        state = small_hotspot2d.initial_state()
        aux = small_hotspot2d.aux_state()
        assert not np.array_equal(state["a"], aux["power"])

    def test_different_seed_changes_state(self, small_jacobi2d):
        import dataclasses

        other = dataclasses.replace(small_jacobi2d, seed=99)
        assert not np.array_equal(
            small_jacobi2d.initial_state()["a"], other.initial_state()["a"]
        )


class TestSpecDerivation:
    def test_with_grid(self, small_jacobi2d):
        bigger = small_jacobi2d.with_grid((64, 64))
        assert bigger.grid_shape == (64, 64)
        assert bigger.name == small_jacobi2d.name

    def test_with_iterations(self, small_jacobi2d):
        assert small_jacobi2d.with_iterations(100).iterations == 100

    def test_describe_mentions_size(self, small_jacobi2d):
        text = small_jacobi2d.describe()
        assert "32 x 32" in text
        assert "jacobi-2d" in text

    def test_paper_scale_spec_allocates_nothing(self):
        # Building the 1 GiB-per-field paper spec must be instant and
        # allocation-free; only initial_state() materializes arrays.
        spec = fdtd_2d()
        assert spec.grid_shape == (2048, 2048)
        assert spec.footprint_bytes > 0
