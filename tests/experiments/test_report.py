"""Tests for report rendering (tables and ASCII charts)."""

from repro.experiments.report import (
    format_shape,
    render_series_chart,
    render_table,
)


class TestFormatShape:
    def test_multi(self):
        assert format_shape((4, 8)) == "4 x 8"

    def test_single(self):
        assert format_shape((7,)) == "7"


class TestSeriesChart:
    def test_extremes_plotted(self):
        chart = render_series_chart(
            [1, 2, 3, 4], [("M", [10.0, 20.0, 15.0, 40.0])]
        )
        lines = chart.splitlines()
        assert any("M" in line for line in lines)
        assert "4.000e+01" in chart
        assert "1.000e+01" in chart

    def test_two_series_markers(self):
        chart = render_series_chart(
            [1, 2], [("P", [1.0, 2.0]), ("M", [2.0, 4.0])]
        )
        assert "P" in chart
        assert "M" in chart

    def test_title(self):
        chart = render_series_chart(
            [1, 2], [("x", [1.0, 2.0])], title="hello"
        )
        assert chart.startswith("hello")

    def test_constant_series_does_not_crash(self):
        chart = render_series_chart([1, 2, 3], [("c", [5.0, 5.0, 5.0])])
        assert "c" in chart

    def test_empty_inputs(self):
        assert render_series_chart([], [], title="t") == "t"

    def test_axis_labels(self):
        chart = render_series_chart(
            [2, 64], [("m", [1.0, 3.0])]
        )
        assert "2" in chart.splitlines()[-1]
        assert "64" in chart.splitlines()[-1]


class TestRenderTable:
    def test_tuple_cells(self):
        text = render_table(["shape"], [((4, 4),)])
        assert "4x4" in text

    def test_zero_float(self):
        assert "0" in render_table(["x"], [(0.0,)])

    def test_tiny_float_scientific(self):
        assert "e-0" in render_table(["x"], [(1e-6,)])
