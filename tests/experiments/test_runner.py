"""Tests for the CLI runner."""

import pytest

from repro.experiments.runner import main


class TestCli:
    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "Stencil Benchmark Suite" in out

    def test_table3_subset(self, capsys):
        assert main(["table3", "--benchmarks", "jacobi-1d"]) == 0
        out = capsys.readouterr().out
        assert "jacobi-1d" in out
        assert "Heterogeneous" in out

    def test_figure7_subset(self, capsys):
        assert main(["figure7", "--benchmarks", "jacobi-2d"]) == 0
        out = capsys.readouterr().out
        assert "Validation of Performance Model" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure9"])

    def test_simulate_tool(self, capsys):
        assert main(["simulate", "--benchmark", "jacobi-1d"]) == 0
        out = capsys.readouterr().out
        assert "Total:" in out
        assert "Breakdown:" in out

    def test_simulate_baseline_design(self, capsys):
        assert (
            main(
                [
                    "simulate",
                    "--benchmark",
                    "jacobi-1d",
                    "--design",
                    "baseline",
                ]
            )
            == 0
        )
        assert "baseline" in capsys.readouterr().out

    def test_codegen_tool(self, capsys, tmp_path):
        assert (
            main(
                [
                    "codegen",
                    "--benchmark",
                    "jacobi-1d",
                    "--design",
                    "baseline",
                    "--output",
                    str(tmp_path),
                ]
            )
            == 0
        )
        assert (tmp_path / "jacobi_1d_baseline.cl").exists()
        assert (tmp_path / "jacobi_1d_baseline_host.c").exists()

    def test_calibrate_tool(self, capsys):
        assert main(["calibrate"]) == 0
        out = capsys.readouterr().out
        assert "effective bandwidth" in out
        assert "C_pipe" in out

    def test_optimize_tool(self, capsys):
        assert main(["optimize", "--benchmark", "jacobi-1d"]) == 0
        out = capsys.readouterr().out
        assert "baseline" in out
        assert "hetero" in out
        assert "speedup" in out
