"""Tests for the experiment harness (tables and figures)."""

import pytest

from repro.experiments import (
    PAPER_TABLE3,
    TABLE3_CONFIGS,
    render_table,
    run_table2,
)
from repro.experiments.figure6 import render_figure6, run_figure6
from repro.experiments.figure7 import (
    FIGURE7_BENCHMARKS,
    render_figure7,
    run_figure7,
)
from repro.experiments.table2 import render_table2
from repro.experiments.table3 import mean_speedup, render_table3, run_table3
from repro.stencil.library import PAPER_SUITE


class TestReport:
    def test_render_table_alignment(self):
        text = render_table(
            ["name", "value"], [("a", 1), ("long-name", 2.5)]
        )
        lines = text.splitlines()
        assert len({len(line) for line in lines}) == 1

    def test_render_table_title(self):
        text = render_table(["x"], [(1,)], title="My Table")
        assert text.startswith("My Table")

    def test_float_formatting(self):
        text = render_table(["x"], [(1.6547,), (1.5e9,)])
        assert "1.655" in text
        assert "1.500e+09" in text


class TestConfigs:
    def test_configs_cover_paper_suite(self):
        assert set(TABLE3_CONFIGS) == set(PAPER_SUITE)

    def test_paper_table3_complete(self):
        assert set(PAPER_TABLE3) == set(PAPER_SUITE)
        for row in PAPER_TABLE3.values():
            assert row.hetero_fused > row.baseline_fused
            assert row.speedup > 1.0

    @pytest.mark.parametrize("name", sorted(TABLE3_CONFIGS))
    def test_baselines_build_and_fit(self, name):
        from repro.fpga.estimator import ResourceEstimator
        from repro.fpga.resources import VIRTEX7_690T

        design = TABLE3_CONFIGS[name].baseline()
        ResourceEstimator().check_fits(design, VIRTEX7_690T)


class TestTable2:
    def test_rows_match_paper(self):
        rows = {r.benchmark: r for r in run_table2()}
        assert rows["jacobi-2d"].input_size == (2048, 2048)
        assert rows["jacobi-2d"].iterations == 1024
        assert rows["fdtd-2d"].fields == 3

    def test_render(self):
        text = render_table2(run_table2())
        assert "Polybench" in text
        assert "hotspot-3d" in text


class TestTable3:
    @pytest.fixture(scope="class")
    def rows(self):
        # One 2-D and the 1-D benchmark keep the test fast while
        # covering both geometry classes.
        return run_table3(benchmarks=("jacobi-1d", "fdtd-2d"))

    def test_speedup_positive(self, rows):
        for row in rows:
            assert row.speedup > 1.0

    def test_resources_within_slack(self, rows):
        for row in rows:
            assert row.hetero_resources.bram18 <= (
                row.baseline_resources.bram18 * 1.05 + 1
            )

    def test_dsp_identical(self, rows):
        for row in rows:
            assert (
                row.hetero_resources.dsp == row.baseline_resources.dsp
            )

    def test_hetero_deeper_fusion(self, rows):
        for row in rows:
            assert (
                row.heterogeneous.fused_depth >= row.baseline.fused_depth
            )

    def test_mean_speedup(self, rows):
        assert mean_speedup(rows) == pytest.approx(
            sum(r.speedup for r in rows) / len(rows)
        )

    def test_render(self, rows):
        text = render_table3(rows)
        assert "Heterogeneous" in text
        assert "Mean speedup" in text


class TestFigure6:
    @pytest.fixture(scope="class")
    def bars(self):
        return run_figure6(benchmarks=("jacobi-2d",))

    def test_three_designs_per_benchmark(self, bars):
        labels = [b.design_label for b in bars]
        assert labels == ["baseline", "pipe-shared", "heterogeneous"]

    def test_fractions_sum_to_one(self, bars):
        for bar in bars:
            assert sum(bar.fractions.values()) == pytest.approx(1.0)

    def test_redundancy_shrinks(self, bars):
        by_label = {b.design_label: b for b in bars}
        assert (
            by_label["heterogeneous"].fractions["compute_redundant"]
            < by_label["baseline"].fractions["compute_redundant"]
        )

    def test_total_improves(self, bars):
        by_label = {b.design_label: b for b in bars}
        assert (
            by_label["heterogeneous"].total_cycles
            < by_label["baseline"].total_cycles
        )

    def test_render(self, bars):
        assert "compute_redundant" in render_figure6(bars)


class TestFigure7:
    @pytest.fixture(scope="class")
    def series(self):
        return run_figure7(benchmarks=("jacobi-2d",))

    def test_model_underestimates(self, series):
        assert series[0].underestimates

    def test_error_in_paper_band(self, series):
        assert 0.02 < series[0].mean_abs_error < 0.30

    def test_sweep_covers_baseline_depth(self, series):
        assert 32 in series[0].depths

    def test_render(self, series):
        text = render_figure7(series)
        assert "Mean |error|" in text
        assert "underestimates=True" in text

    def test_benchmark_list_matches_paper_panels(self):
        assert len(FIGURE7_BENCHMARKS) == 6
