"""Tests for kernel assembly and program generation."""


from repro.codegen import (
    generate_program,
    pipe_name,
    tile_pipe_endpoints,
    update_statement,
)
from repro.codegen.kernel_gen import generate_kernel, kernel_name
from repro.codegen.pipe_gen import generate_pipe_declarations


class TestUpdateStatement:
    def test_jacobi_statement(self, small_jacobi2d):
        stmt = update_statement(small_jacobi2d.pattern, "a", ["x0", "x1"])
        assert stmt.startswith("new_a[x0][x1] =")
        assert stmt.count("buf_a") == 5
        assert "0.2f" in stmt

    def test_constant_appended(self, small_hotspot2d):
        stmt = update_statement(small_hotspot2d.pattern, "a", ["i", "j"])
        assert stmt.rstrip(";").split("+")[-1].strip().endswith("f")

    def test_aux_prefix(self, small_hotspot2d):
        stmt = update_statement(
            small_hotspot2d.pattern, "a", ["i", "j"], aux_prefix="p_"
        )
        assert "p_power[i][j]" in stmt

    def test_unit_coefficient_has_no_multiply(self):
        from repro.stencil.pattern import (
            FieldUpdate,
            StencilPattern,
            Tap,
        )

        pattern = StencilPattern(
            name="copy",
            ndim=1,
            fields=("a",),
            updates={"a": FieldUpdate(taps=(Tap("a", (1,), 1.0),))},
        )
        stmt = update_statement(pattern, "a", ["i"])
        assert stmt == "new_a[i] = buf_a[i + 1];"


class TestPipeDeclarations:
    def test_two_pipes_per_face(self, pipe_design):
        text = generate_pipe_declarations(pipe_design)
        assert text.count("pipe float") == pipe_design.num_pipes

    def test_depth_attribute(self, pipe_design):
        text = generate_pipe_declarations(pipe_design)
        assert f"xcl_reqd_pipe_depth({pipe_design.pipe_depth})" in text

    def test_baseline_has_none(self, baseline_design):
        text = generate_pipe_declarations(baseline_design)
        assert "pipe float" not in text

    def test_pipe_names_directional(self):
        assert pipe_name((0, 0), (0, 1), 1) == "pipe_0_0_to_0_1_d1"

    def test_endpoints_balanced(self, pipe_design):
        for tile in pipe_design.tiles:
            outgoing, incoming = tile_pipe_endpoints(pipe_design, tile)
            assert len(outgoing) == len(incoming)
            # A 2x2 corner tile touches two faces.
            assert len(outgoing) == 2


class TestKernelGeneration:
    def test_kernel_names_unique(self, pipe_design):
        names = {
            kernel_name(pipe_design, t) for t in pipe_design.tiles
        }
        assert len(names) == len(pipe_design.tiles)

    def test_kernel_has_local_buffers(self, pipe_design):
        tile = pipe_design.tiles[0]
        text = generate_kernel(pipe_design, tile)
        read_shape = pipe_design.tile_read_shape(tile)
        dims = "".join(f"[{e}]" for e in read_shape)
        assert f"__local float buf_a{dims};" in text
        assert f"__local float new_a{dims};" in text

    def test_kernel_braces_balanced(self, hetero_design):
        for tile in hetero_design.tiles:
            text = generate_kernel(hetero_design, tile)
            assert text.count("{") == text.count("}")

    def test_unroll_hint_emitted(self, small_jacobi2d):
        from repro.tiling import make_baseline_design

        design = make_baseline_design(
            small_jacobi2d, (8, 8), (2, 2), 2, unroll=8
        )
        text = generate_kernel(design, design.tiles[0])
        assert "opencl_unroll_hint(8)" in text

    def test_frozen_guard_present(self, pipe_design):
        text = generate_kernel(pipe_design, pipe_design.tiles[0])
        assert "W0 - 1" in text  # radius-1 frozen guard

    def test_sharing_kernels_touch_pipes(self, pipe_design):
        text = generate_kernel(pipe_design, pipe_design.tiles[0])
        assert "write_pipe_block(" in text
        assert "read_pipe_block(" in text

    def test_baseline_kernels_have_no_pipes(self, baseline_design):
        text = generate_kernel(baseline_design, baseline_design.tiles[0])
        assert "write_pipe_block" not in text


class TestProgram:
    def test_one_kernel_per_tile(self, hetero_design):
        program = generate_program(hetero_design)
        assert program.num_kernels == len(hetero_design.tiles)
        for name in program.kernel_names.values():
            assert f"__kernel void {name}(" in program.kernel_source

    def test_program_braces_balanced(self, hetero_design):
        program = generate_program(hetero_design)
        assert program.kernel_source.count("{") == (
            program.kernel_source.count("}")
        )

    def test_grid_size_defines(self, pipe_design):
        program = generate_program(pipe_design)
        assert "#define W0 32" in program.kernel_source

    def test_multi_field_buffers(self, small_fdtd2d):
        from repro.tiling import make_pipe_shared_design

        design = make_pipe_shared_design(small_fdtd2d, (6, 6), (2, 2), 2)
        program = generate_program(design)
        for field in ("ex", "ey", "hz"):
            assert f"buf_{field}" in program.kernel_source

    def test_aux_read_only_argument(self, small_hotspot2d):
        from repro.tiling import make_baseline_design

        design = make_baseline_design(
            small_hotspot2d, (8, 8), (2, 2), 2
        )
        program = generate_program(design)
        assert "__global const float *restrict g_power" in (
            program.kernel_source
        )


class TestHostProgram:
    def test_launches_every_kernel(self, hetero_design):
        program = generate_program(hetero_design)
        for name in program.kernel_names.values():
            assert f'stencil_launch(queue, "{name}"' in (
                program.host_source
            )

    def test_block_and_region_loops(self, pipe_design):
        program = generate_program(pipe_design)
        blocks = pipe_design.num_temporal_blocks()
        regions = pipe_design.num_spatial_regions()
        assert f"block < {blocks}" in program.host_source
        assert f"region < {regions}" in program.host_source

    def test_barrier_after_launches(self, pipe_design):
        program = generate_program(pipe_design)
        assert "clFinish(queue);" in program.host_source

    def test_ping_pong_swap(self, pipe_design):
        program = generate_program(pipe_design)
        assert "stencil_swap(&d_a, &d_a_out);" in program.host_source
