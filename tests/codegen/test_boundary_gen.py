"""Tests for the stencil boundary generator."""

import math


from repro.codegen.boundary_gen import (
    generate_boundary_macros,
    iteration_bounds,
)


class TestIterationBounds:
    def test_bounds_match_footprints(self, pipe_design):
        """The generated loop bounds must enumerate exactly the cells
        the design geometry says each iteration computes."""
        for tile in pipe_design.tiles:
            spec = iteration_bounds(pipe_design, tile)
            for i in range(1, pipe_design.fused_depth + 1):
                bounds = spec.bounds_at(i - 1)  # codegen is 0-based
                extent = math.prod(hi - lo for lo, hi in bounds)
                footprint = math.prod(
                    pipe_design.footprint_shape(tile, i)
                )
                assert extent == footprint

    def test_bounds_match_baseline_footprints(self, baseline_design):
        for tile in baseline_design.tiles:
            spec = iteration_bounds(baseline_design, tile)
            for i in range(1, baseline_design.fused_depth + 1):
                extent = math.prod(
                    hi - lo for lo, hi in spec.bounds_at(i - 1)
                )
                assert extent == math.prod(
                    baseline_design.footprint_shape(tile, i)
                )

    def test_bounds_stay_inside_buffer(self, hetero_design):
        for tile in hetero_design.tiles:
            spec = iteration_bounds(hetero_design, tile)
            for it in range(hetero_design.fused_depth):
                for (lo, hi), extent in zip(
                    spec.bounds_at(it), spec.buffer_shape
                ):
                    assert 0 <= lo <= hi <= extent

    def test_inputs_always_in_buffer(self, pipe_design):
        """Every computed cell's taps must be resident: the bounds keep
        one radius inside the buffer at every iteration."""
        radius = pipe_design.radius
        for tile in pipe_design.tiles:
            spec = iteration_bounds(pipe_design, tile)
            for it in range(pipe_design.fused_depth):
                for d, (lo, hi) in enumerate(spec.bounds_at(it)):
                    assert lo >= radius[d]
                    assert hi <= spec.buffer_shape[d] - radius[d]

    def test_pipe_sides_fixed_bounds(self, pipe_design):
        corner = pipe_design.tile_grid.tile_at((0, 0))
        spec = iteration_bounds(pipe_design, corner)
        # Low side (outer): shrinks per iteration; high side (shared):
        # fixed.
        assert spec.lo_step == (1, 1)
        assert spec.hi_step == (0, 0)


class TestMacros:
    def test_macros_present_per_dimension(self, pipe_design):
        tile = pipe_design.tiles[0]
        text = generate_boundary_macros(pipe_design, tile)
        for d in range(2):
            assert f"T_LO{d}(it)" in text
            assert f"T_HI{d}(it)" in text
            assert f"T_EXT{d}" in text

    def test_macros_evaluate_correctly(self, pipe_design):
        """Evaluate the generated C macro arithmetic in Python."""
        tile = pipe_design.tile_grid.tile_at((0, 0))
        spec = iteration_bounds(pipe_design, tile)
        text = generate_boundary_macros(pipe_design, tile)
        for line in text.splitlines():
            if line.startswith("#define T_LO0"):
                # '#define T_LO0(it) (base + step * (it))'
                expr = line.split("(it)", 1)[1].strip()
                for it in range(pipe_design.fused_depth):
                    value = eval(expr, {"it": it})
                    assert value == spec.bounds_at(it)[0][0]

    def test_custom_prefix(self, pipe_design):
        text = generate_boundary_macros(
            pipe_design, pipe_design.tiles[0], prefix="K"
        )
        assert "K_LO0(it)" in text
