"""Tests for source-emission helpers."""

from repro.codegen.emit import CodeWriter, float_literal, index_expression


class TestFloatLiteral:
    def test_integral_value(self):
        assert float_literal(1.0) == "1.0f"

    def test_fractional_value(self):
        assert float_literal(0.2) == "0.2f"

    def test_negative(self):
        assert float_literal(-0.5) == "-0.5f"

    def test_repr_roundtrip(self):
        text = float_literal(0.33333)
        assert float(text[:-1]) == 0.33333


class TestIndexExpression:
    def test_zero_offsets(self):
        assert index_expression(["i", "j"], [0, 0]) == "[i][j]"

    def test_positive_offset(self):
        assert index_expression(["i"], [2]) == "[i + 2]"

    def test_negative_offset(self):
        assert index_expression(["i", "j"], [-1, 3]) == "[i - 1][j + 3]"


class TestCodeWriter:
    def test_indentation(self):
        writer = CodeWriter()
        writer.open_block("if (x)")
        writer.line("y = 1;")
        writer.close_block()
        assert writer.render() == "if (x) {\n    y = 1;\n}\n"

    def test_nested_blocks(self):
        writer = CodeWriter()
        writer.open_block("for (;;)")
        writer.open_block("if (a)")
        writer.line("b;")
        writer.close_block()
        writer.close_block()
        text = writer.render()
        assert "        b;" in text
        assert text.count("{") == text.count("}")

    def test_comment(self):
        writer = CodeWriter()
        writer.comment("hello")
        assert writer.render() == "// hello\n"

    def test_blank_line(self):
        writer = CodeWriter()
        writer.line()
        writer.line("x;")
        assert writer.render() == "\nx;\n"

    def test_raw_reindents(self):
        inner = CodeWriter()
        inner.line("a;")
        outer = CodeWriter()
        outer.open_block("void f()")
        outer.raw(inner.render())
        outer.close_block()
        assert "    a;" in outer.render()

    def test_lines_helper(self):
        writer = CodeWriter()
        writer.lines(["a;", "b;"])
        assert writer.render() == "a;\nb;\n"

    def test_close_with_suffix(self):
        writer = CodeWriter()
        writer.open_block("do")
        writer.close_block(" while (0);")
        assert "} while (0);" in writer.render()
