"""Tests for the executable codegen backend (pygen + pyexec)."""

import numpy as np
import pytest

from repro.codegen.kernel_gen import kernel_name
from repro.codegen.pyexec import GeneratedDesignExecutor, execute_generated
from repro.codegen.pygen import (
    field_pipe_name,
    generate_python_kernel,
    generate_python_module,
)
from repro.errors import SpecificationError
from repro.sim.functional import run_functional
from repro.stencil import (
    BoundaryPolicy,
    get_benchmark,
    jacobi_2d,
    run_reference,
)
from repro.tiling import make_heterogeneous_design, make_pipe_shared_design


class TestModuleGeneration:
    def test_module_compiles(self, hetero_design):
        source = generate_python_module(hetero_design)
        compile(source, "<generated>", "exec")

    def test_one_function_per_tile(self, hetero_design):
        source = generate_python_module(hetero_design)
        for tile in hetero_design.tiles:
            assert f"def {kernel_name(hetero_design, tile)}(ctx):" in (
                source
            )

    def test_kernel_mentions_pipes(self, pipe_design):
        tile = pipe_design.tile_grid.tile_at((0, 0))
        source = generate_python_kernel(pipe_design, tile)
        assert "try_write" in source
        assert "try_read" in source
        assert "yield" in source

    def test_baseline_kernel_has_no_pipes(self, baseline_design):
        source = generate_python_kernel(
            baseline_design, baseline_design.tiles[0]
        )
        assert "try_write" not in source

    def test_taps_baked_into_source(self, small_jacobi2d, pipe_design):
        source = generate_python_kernel(pipe_design, pipe_design.tiles[0])
        assert "np.float32(0.2)" in source

    def test_field_pipe_names_unique(self, small_fdtd2d):
        design = make_pipe_shared_design(small_fdtd2d, (6, 6), (2, 2), 2)
        names = set()
        for face in design.pipe_faces:
            for field in small_fdtd2d.pattern.fields:
                names.add(
                    field_pipe_name(
                        face.low_index, face.high_index, face.dim, field
                    )
                )
        assert len(names) == len(design.pipe_faces) * 3


class TestBitwiseExecution:
    def test_baseline(self, small_jacobi2d, baseline_design):
        ref = run_reference(small_jacobi2d)
        out = execute_generated(baseline_design)
        assert np.array_equal(ref["a"], out["a"])

    def test_pipe_shared(self, small_jacobi2d, pipe_design):
        ref = run_reference(small_jacobi2d)
        out = execute_generated(pipe_design)
        assert np.array_equal(ref["a"], out["a"])

    def test_heterogeneous(self, small_jacobi2d, hetero_design):
        ref = run_reference(small_jacobi2d)
        out = execute_generated(hetero_design)
        assert np.array_equal(ref["a"], out["a"])

    def test_multi_field(self, small_fdtd2d):
        design = make_pipe_shared_design(small_fdtd2d, (6, 6), (2, 2), 3)
        ref = run_reference(small_fdtd2d)
        out = execute_generated(design)
        for field in small_fdtd2d.pattern.fields:
            assert np.array_equal(ref[field], out[field])

    def test_aux_inputs(self, small_hotspot2d):
        design = make_heterogeneous_design(
            small_hotspot2d, (16, 16), (2, 2), 3
        )
        ref = run_reference(small_hotspot2d)
        out = execute_generated(design)
        assert np.array_equal(ref["a"], out["a"])

    def test_3d(self, small_jacobi3d):
        design = make_pipe_shared_design(
            small_jacobi3d, (4, 4, 4), (2, 2, 2), 2
        )
        ref = run_reference(small_jacobi3d)
        out = execute_generated(design)
        assert np.array_equal(ref["a"], out["a"])

    def test_wide_radius(self):
        spec = get_benchmark("wide-star-1d", grid=(48,), iterations=5)
        design = make_pipe_shared_design(spec, (12,), (2,), 2)
        ref = run_reference(spec)
        out = execute_generated(design)
        assert np.array_equal(ref["a"], out["a"])

    def test_partial_last_block(self):
        spec = jacobi_2d(grid=(24, 24), iterations=7)
        design = make_pipe_shared_design(spec, (12, 12), (2, 2), 3)
        ref = run_reference(spec)
        out = execute_generated(design)
        assert np.array_equal(ref["a"], out["a"])

    def test_matches_functional_executor(self, small_jacobi2d, pipe_design):
        """Two independent implementations of the same design agree."""
        functional = run_functional(pipe_design)
        generated = execute_generated(pipe_design)
        assert np.array_equal(functional["a"], generated["a"])

    def test_custom_state(self, small_jacobi2d, hetero_design):
        state = {
            "a": np.arange(32 * 32, dtype=np.float32).reshape(32, 32)
            / 1024.0
        }
        ref = run_reference(small_jacobi2d, state=state)
        out = execute_generated(hetero_design, state=state)
        assert np.array_equal(ref["a"], out["a"])

    def test_explicit_iterations(self, small_jacobi2d, pipe_design):
        ref = run_reference(small_jacobi2d, iterations=5)
        out = execute_generated(pipe_design, iterations=5)
        assert np.array_equal(ref["a"], out["a"])


class TestValidation:
    def test_indivisible_region_rejected(self, small_jacobi2d):
        design = make_pipe_shared_design(small_jacobi2d, (7, 7), (2, 2), 2)
        with pytest.raises(SpecificationError, match="not divisible"):
            GeneratedDesignExecutor(design)

    def test_non_frozen_rejected(self, small_jacobi2d):
        import dataclasses

        periodic = dataclasses.replace(
            small_jacobi2d, boundary=BoundaryPolicy.PERIODIC
        )
        design = make_pipe_shared_design(periodic, (8, 8), (2, 2), 2)
        with pytest.raises(SpecificationError, match="FROZEN"):
            GeneratedDesignExecutor(design)

    def test_module_source_exposed(self, pipe_design):
        executor = GeneratedDesignExecutor(pipe_design)
        assert "Auto-generated executable stencil kernels" in (
            executor.module_source
        )
