"""Tests for the fused stencil operation generator."""


from repro.codegen.fused_gen import generate_fused_loop
from repro.codegen.pipe_gen import (
    generate_receive_block,
    generate_send_block,
)
from repro.tiling import make_pipe_shared_design


class TestFusedLoop:
    def test_loop_count_matches_depth(self, pipe_design):
        text = generate_fused_loop(pipe_design, pipe_design.tiles[0])
        assert f"it < {pipe_design.fused_depth}" in text

    def test_bounds_macros_used(self, pipe_design):
        text = generate_fused_loop(pipe_design, pipe_design.tiles[0])
        for d in range(2):
            assert f"T_LO{d}(it)" in text
            assert f"T_HI{d}(it)" in text

    def test_buffer_swap_emitted(self, pipe_design):
        text = generate_fused_loop(pipe_design, pipe_design.tiles[0])
        assert "swap_buffers(&buf_a, &new_a);" in text

    def test_receive_guarded_to_inner_iterations(self, pipe_design):
        text = generate_fused_loop(pipe_design, pipe_design.tiles[0])
        assert f"if (it + 1 < {pipe_design.fused_depth})" in text

    def test_baseline_has_no_pipe_io(self, baseline_design):
        text = generate_fused_loop(
            baseline_design, baseline_design.tiles[0]
        )
        assert "write_pipe_block" not in text
        assert "read_pipe_block" not in text

    def test_multi_field_updates_all_fields(self, small_fdtd2d):
        design = make_pipe_shared_design(small_fdtd2d, (6, 6), (2, 2), 2)
        text = generate_fused_loop(design, design.tiles[0])
        for field in ("ex", "ey", "hz"):
            assert f"new_{field}[" in text
            assert f"swap_buffers(&buf_{field}, &new_{field});" in text

    def test_braces_balanced(self, hetero_design):
        for tile in hetero_design.tiles:
            text = generate_fused_loop(hetero_design, tile)
            assert text.count("{") == text.count("}")


class TestPipeBlocks:
    def test_send_covers_all_outgoing(self, pipe_design):
        tile = pipe_design.tile_grid.tile_at((0, 0))
        text = generate_send_block(pipe_design, tile)
        # Corner tile of a 2x2 grid: two outgoing pipes.
        assert text.count("write_pipe_block(") == 2

    def test_receive_covers_all_incoming(self, pipe_design):
        tile = pipe_design.tile_grid.tile_at((0, 0))
        text = generate_receive_block(pipe_design, tile)
        assert text.count("read_pipe_block(") == 2

    def test_multi_field_multiplies_transfers(self, small_fdtd2d):
        design = make_pipe_shared_design(small_fdtd2d, (6, 6), (2, 2), 2)
        tile = design.tile_grid.tile_at((0, 0))
        text = generate_send_block(design, tile)
        assert text.count("write_pipe_block(") == 2 * 3  # 2 faces x 3 fields

    def test_directional_symbols(self, pipe_design):
        tile = pipe_design.tile_grid.tile_at((0, 0))
        send = generate_send_block(pipe_design, tile)
        recv = generate_receive_block(pipe_design, tile)
        assert "pipe_0_0_to_1_0_d0" in send
        assert "pipe_1_0_to_0_0_d0" in recv

    def test_no_faces_comment(self, baseline_design):
        text = generate_send_block(
            baseline_design, baseline_design.tiles[0]
        )
        assert "No outgoing pipes" in text
