"""Tests for operation counting."""

from repro.frontend import count_operations, parse_kernel_body
from repro.frontend.opcount import OperationCounts


def count(source):
    return count_operations(parse_kernel_body(source))


class TestCounts:
    def test_adds_and_muls(self):
        counts = count("B[i] = 0.2f * (A[i] + A[i-1] + A[i+1]);")
        assert counts.adds == 2
        assert counts.muls == 1
        assert counts.flops == 3

    def test_subs_counted_separately(self):
        counts = count("B[i] = A[i] - A[i-1];")
        assert counts.subs == 1
        assert counts.adds == 0

    def test_divisions(self):
        assert count("B[i] = A[i] / 3.0f;").divs == 1

    def test_reads_and_writes(self):
        counts = count("B[i] = A[i] + C[i];")
        assert counts.array_reads == 2
        assert counts.array_writes == 1

    def test_scalar_target_not_an_array_write(self):
        counts = count("t = A[i] + A[i+1];")
        assert counts.array_writes == 0
        assert counts.array_reads == 2

    def test_unary_transparent(self):
        counts = count("B[i] = -A[i];")
        assert counts.flops == 0

    def test_multi_statement_accumulates(self):
        counts = count("B[i] = A[i] + A[i-1]; C[i] = B[i] * 2.0f;")
        assert counts.adds == 1
        assert counts.muls == 1
        assert counts.array_writes == 2

    def test_addition_operator(self):
        total = OperationCounts(adds=1) + OperationCounts(
            adds=2, muls=3
        )
        assert total.adds == 3
        assert total.muls == 3

    def test_call_arguments_counted(self):
        counts = count("int i = f(A[i] + A[i+1]);")
        assert counts.adds == 1
