"""Tests for the OpenCL-C subset parser."""

import pytest

from repro.errors import ParseError
from repro.frontend.ast import (
    ArrayRef,
    BinOp,
    Call,
    Number,
    UnaryOp,
    VarRef,
)
from repro.frontend.parser import Parser, parse_kernel_body
from repro.frontend.lexer import tokenize


def parse_expr(source):
    return Parser(tokenize(source)).parse_expression()


class TestExpressions:
    def test_number(self):
        assert parse_expr("3.5") == Number(3.5)

    def test_variable(self):
        assert parse_expr("x") == VarRef("x")

    def test_precedence_mul_over_add(self):
        expr = parse_expr("a + b * c")
        assert isinstance(expr, BinOp) and expr.op == "+"
        assert isinstance(expr.right, BinOp) and expr.right.op == "*"

    def test_left_associativity(self):
        expr = parse_expr("a - b - c")
        assert expr.op == "-"
        assert isinstance(expr.left, BinOp)
        assert expr.left.op == "-"

    def test_parentheses_override(self):
        expr = parse_expr("(a + b) * c")
        assert expr.op == "*"
        assert isinstance(expr.left, BinOp) and expr.left.op == "+"

    def test_unary_minus(self):
        expr = parse_expr("-x")
        assert isinstance(expr, UnaryOp) and expr.op == "-"

    def test_nested_unary(self):
        expr = parse_expr("--x")
        assert isinstance(expr.operand, UnaryOp)

    def test_array_single_subscript(self):
        expr = parse_expr("A[i]")
        assert expr == ArrayRef("A", (VarRef("i"),))

    def test_array_multi_subscript(self):
        expr = parse_expr("A[i][j-1]")
        assert isinstance(expr, ArrayRef)
        assert len(expr.subscripts) == 2
        assert isinstance(expr.subscripts[1], BinOp)

    def test_call_with_args(self):
        expr = parse_expr("get_global_id(0)")
        assert expr == Call("get_global_id", (Number(0.0),))

    def test_call_no_args(self):
        assert parse_expr("barrier()") == Call("barrier", ())

    def test_division(self):
        expr = parse_expr("a / 2.0")
        assert expr.op == "/"

    def test_error_on_trailing_operator(self):
        with pytest.raises(ParseError):
            parse_expr("a +")


class TestStatements:
    def test_assignment(self):
        stmts = parse_kernel_body("B[i] = A[i];")
        assert len(stmts) == 1
        assert stmts[0].target == ArrayRef("B", (VarRef("i"),))

    def test_declaration_with_init(self):
        stmts = parse_kernel_body("int i = get_global_id(0);")
        assert len(stmts) == 1
        assert stmts[0].target == VarRef("i")
        assert stmts[0].declared_type == "int"

    def test_declaration_without_init_skipped(self):
        assert parse_kernel_body("float tmp;") == []

    def test_const_qualified_declaration(self):
        stmts = parse_kernel_body("const float c = 0.2f;")
        assert stmts[0].declared_type == "const float"

    def test_scalar_assignment(self):
        stmts = parse_kernel_body("c = 1.5;")
        assert stmts[0].target == VarRef("c")

    def test_multiple_statements_in_order(self):
        stmts = parse_kernel_body("a = 1.0; b = 2.0; c = 3.0;")
        assert [s.target.name for s in stmts] == ["a", "b", "c"]

    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse_kernel_body("a = 1.0")


class TestKernelBodies:
    def test_full_kernel_definition(self):
        source = """
        __kernel void jac(__global float* A, __global float* B) {
            int i = get_global_id(0);
            B[i] = 0.5f * (A[i-1] + A[i+1]);
        }
        """
        stmts = parse_kernel_body(source)
        assert len(stmts) == 2

    def test_bare_body(self):
        stmts = parse_kernel_body("B[i] = A[i] + 1.0;")
        assert len(stmts) == 1

    def test_unbalanced_braces(self):
        with pytest.raises(ParseError, match="Unbalanced"):
            parse_kernel_body("void f() { a = 1.0;")

    def test_comments_inside_body(self):
        stmts = parse_kernel_body(
            "// setup\nB[i] = A[i]; /* done */"
        )
        assert len(stmts) == 1
