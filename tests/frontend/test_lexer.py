"""Tests for the OpenCL-C subset tokenizer."""

import pytest

from repro.errors import ParseError
from repro.frontend.lexer import TokenKind, tokenize


def kinds(source):
    return [t.kind for t in tokenize(source)]


def texts(source):
    return [t.text for t in tokenize(source) if t.kind is not TokenKind.EOF]


class TestBasics:
    def test_empty_source_has_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind is TokenKind.EOF

    def test_identifiers(self):
        assert texts("alpha _beta g2") == ["alpha", "_beta", "g2"]

    def test_symbols(self):
        assert kinds("+-*/()[]=;,")[:-1] == [
            TokenKind.PLUS,
            TokenKind.MINUS,
            TokenKind.STAR,
            TokenKind.SLASH,
            TokenKind.LPAREN,
            TokenKind.RPAREN,
            TokenKind.LBRACKET,
            TokenKind.RBRACKET,
            TokenKind.ASSIGN,
            TokenKind.SEMICOLON,
            TokenKind.COMMA,
        ]

    def test_unexpected_character(self):
        with pytest.raises(ParseError, match="Unexpected character"):
            tokenize("a @ b")


class TestNumbers:
    def test_integer(self):
        assert texts("42") == ["42"]

    def test_float_with_suffix_absorbed(self):
        tokens = tokenize("0.25f")
        assert tokens[0].kind is TokenKind.NUMBER
        assert tokens[0].text == "0.25"

    def test_capital_suffix(self):
        assert texts("1.5F") == ["1.5"]

    def test_leading_dot(self):
        assert texts(".5") == [".5"]

    def test_scientific_notation(self):
        assert texts("1e-3 2.5E+2") == ["1e-3", "2.5E+2"]

    def test_number_then_ident(self):
        out = texts("2 * x")
        assert out == ["2", "*", "x"]


class TestComments:
    def test_line_comment_skipped(self):
        assert texts("a // comment here\n b") == ["a", "b"]

    def test_block_comment_skipped(self):
        assert texts("a /* multi\nline */ b") == ["a", "b"]

    def test_unterminated_block_comment(self):
        with pytest.raises(ParseError, match="Unterminated"):
            tokenize("a /* oops")


class TestPositions:
    def test_line_numbers_advance(self):
        tokens = tokenize("a\nb\nc")
        assert [t.line for t in tokens[:3]] == [1, 2, 3]

    def test_error_reports_position(self):
        with pytest.raises(ParseError, match="line 2"):
            tokenize("ok\n  @")
