"""Tests for the feature extractor (linearization + pattern recovery)."""

import numpy as np
import pytest

from repro.errors import ExtractionError
from repro.frontend import extract_features, extract_pattern

JACOBI_1D = """
__kernel void jac(__global float* A, __global float* B) {
    int i = get_global_id(0);
    B[i] = 0.33333f * (A[i-1] + A[i] + A[i+1]);
}
"""


class TestSingleStatement:
    def test_jacobi_taps(self):
        pattern = extract_pattern(JACOBI_1D, field_map={"B": "A"})
        taps = {t.offset: t.coeff for t in pattern.updates["A"].taps}
        assert set(taps) == {(-1,), (0,), (1,)}
        assert all(c == pytest.approx(0.33333) for c in taps.values())

    def test_auto_field_pairing_single_read(self):
        # B is written, A is the only state read: pairs automatically.
        pattern = extract_pattern(JACOBI_1D)
        assert pattern.fields == ("A",)

    def test_radius(self):
        assert extract_pattern(JACOBI_1D).radius == (1,)

    def test_ndim_from_global_ids(self):
        source = """
        int i = get_global_id(0);
        int j = get_global_id(1);
        B[i][j] = A[i][j-1] + A[i][j+1];
        """
        features = extract_features(source)
        assert features.ndim == 2
        assert features.index_vars == ("i", "j")

    def test_index_vars_inferred_without_global_id(self):
        features = extract_features("B[i][j] = A[i-1][j];")
        assert features.index_vars == ("i", "j")

    def test_constant_term(self):
        pattern = extract_pattern("B[i] = A[i] + 0.25f;")
        assert pattern.updates["A"].constant == pytest.approx(0.25)

    def test_subtraction_negates(self):
        pattern = extract_pattern("B[i] = A[i] - 0.5f * A[i-1];")
        taps = {t.offset: t.coeff for t in pattern.updates["A"].taps}
        assert taps[(-1,)] == pytest.approx(-0.5)

    def test_division_scales(self):
        pattern = extract_pattern("B[i] = (A[i-1] + A[i+1]) / 2.0f;")
        taps = {t.offset: t.coeff for t in pattern.updates["A"].taps}
        assert taps[(1,)] == pytest.approx(0.5)

    def test_unary_minus(self):
        pattern = extract_pattern("B[i] = -A[i];")
        assert pattern.updates["A"].taps[0].coeff == -1.0

    def test_duplicate_reads_merge(self):
        pattern = extract_pattern("B[i] = A[i] + A[i] + A[i-1];")
        taps = {t.offset: t.coeff for t in pattern.updates["A"].taps}
        assert taps[(0,)] == pytest.approx(2.0)

    def test_scalar_temporaries_inlined(self):
        source = """
        float c = 0.1f;
        float d = c * 2.0f;
        B[i] = d * A[i];
        """
        pattern = extract_pattern(source)
        assert pattern.updates["A"].taps[0].coeff == pytest.approx(0.2)

    def test_dtype_float64_detected(self):
        features = extract_features(
            "double c = 1.0; B[i] = c * A[i];"
        )
        assert features.dtype == np.dtype(np.float64)

    def test_dtype_defaults_float32(self):
        assert extract_features("B[i] = A[i];").dtype == np.dtype(
            np.float32
        )


class TestAuxInputs:
    def test_aux_excluded_from_fields(self):
        source = "T2[i] = T[i] + 0.1f * P[i];"
        pattern = extract_pattern(source, field_map={"T2": "T"}, aux=("P",))
        assert pattern.fields == ("T",)
        assert pattern.aux == ("P",)

    def test_auto_pairing_ignores_aux(self):
        source = "T2[i] = T[i] + 0.1f * P[i];"
        pattern = extract_pattern(source, aux=("P",))
        assert pattern.fields == ("T",)


class TestMultiStage:
    def test_in_place_multi_field(self):
        source = """
        int i = get_global_id(0);
        ey[i] = ey[i] - 0.5f * (hz[i] - hz[i-1]);
        hz[i] = hz[i] - 0.7f * (ey[i+1] - ey[i]);
        """
        pattern = extract_pattern(source)
        assert set(pattern.fields) == {"ey", "hz"}
        # hz's update must see the *composed* ey (which reads hz).
        hz_sources = {t.source for t in pattern.updates["hz"].taps}
        assert hz_sources == {"hz", "ey"}

    def test_stage_order_matters(self):
        forward = extract_pattern(
            "a[i] = 2.0f * a[i]; b[i] = a[i];", field_map={"b": "b"}
        )
        backward = extract_pattern(
            "b[i] = a[i]; a[i] = 2.0f * a[i];", field_map={"b": "b"}
        )
        f = {t.offset: t.coeff for t in forward.updates["b"].taps}
        g = {t.offset: t.coeff for t in backward.updates["b"].taps}
        assert f[(0,)] == pytest.approx(2.0)
        assert g[(0,)] == pytest.approx(1.0)


class TestErrors:
    def test_nonlinear_product_rejected(self):
        with pytest.raises(ExtractionError, match="Non-linear"):
            extract_pattern("B[i] = A[i] * A[i-1];")

    def test_division_by_array_rejected(self):
        with pytest.raises(ExtractionError, match="Non-linear"):
            extract_pattern("B[i] = 1.0f / A[i];")

    def test_unknown_scalar_rejected(self):
        with pytest.raises(ExtractionError, match="Unknown scalar"):
            extract_pattern("B[i] = alpha * A[i];")

    def test_offset_target_rejected(self):
        with pytest.raises(ExtractionError, match="offset zero"):
            extract_pattern("B[i+1] = A[i];")

    def test_complex_subscript_rejected(self):
        with pytest.raises(ExtractionError):
            extract_pattern("B[i] = A[2*i];")

    def test_no_update_statement_rejected(self):
        with pytest.raises(ExtractionError, match="no array update"):
            extract_features("int i = get_global_id(0);")

    def test_ambiguous_pairing_needs_field_map(self):
        with pytest.raises(ExtractionError, match="field_map"):
            extract_pattern("C[i] = A[i] + B[i];")

    def test_call_in_expression_rejected(self):
        with pytest.raises(ExtractionError, match="Unsupported call"):
            extract_pattern("B[i] = sqrt(A[i]);")

    def test_index_var_outside_subscript_rejected(self):
        with pytest.raises(ExtractionError, match="outside a subscript"):
            extract_pattern(
                "int i = get_global_id(0); B[i] = A[i] + i;"
            )


class TestOperationCounts:
    def test_counts_as_written(self):
        features = extract_features(JACOBI_1D, field_map={"B": "A"})
        assert features.counts.adds == 2
        assert features.counts.muls == 1
        assert features.counts.array_reads == 3
        assert features.counts.array_writes == 1
