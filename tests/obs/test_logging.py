"""Structured logging: namespace, levels, JSON-lines formatter."""

import io
import json
import logging

import pytest

from repro import obs
from repro.obs.log import ROOT_LOGGER, _HANDLER_TAG


@pytest.fixture(autouse=True)
def clean_repro_logger():
    """Drop our handlers and restore defaults after each test."""
    yield
    root = logging.getLogger(ROOT_LOGGER)
    for handler in list(root.handlers):
        if getattr(handler, _HANDLER_TAG, False):
            root.removeHandler(handler)
    root.setLevel(logging.NOTSET)
    root.propagate = True


class TestGetLogger:
    def test_names_nest_under_repro(self):
        assert obs.get_logger().name == "repro"
        assert obs.get_logger("dse").name == "repro.dse"
        assert obs.get_logger("repro.sim").name == "repro.sim"

    def test_same_name_same_logger(self):
        assert obs.get_logger("sim") is obs.get_logger("repro.sim")


class TestConfigureLogging:
    def test_level_argument(self):
        root = obs.configure_logging(level="debug", stream=io.StringIO())
        assert root.level == logging.DEBUG

    def test_level_from_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_LOG_LEVEL", "error")
        root = obs.configure_logging(stream=io.StringIO())
        assert root.level == logging.ERROR

    def test_argument_beats_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_LOG_LEVEL", "error")
        root = obs.configure_logging(level="info", stream=io.StringIO())
        assert root.level == logging.INFO

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError):
            obs.configure_logging(level="loud")

    def test_reconfigure_replaces_handler(self):
        obs.configure_logging(level="info", stream=io.StringIO())
        obs.configure_logging(level="info", stream=io.StringIO())
        root = logging.getLogger(ROOT_LOGGER)
        ours = [
            h for h in root.handlers if getattr(h, _HANDLER_TAG, False)
        ]
        assert len(ours) == 1

    def test_messages_reach_stream(self):
        stream = io.StringIO()
        obs.configure_logging(level="info", stream=stream)
        obs.get_logger("dse").info("explored %d candidates", 7)
        text = stream.getvalue()
        assert "explored 7 candidates" in text
        assert "repro.dse" in text

    def test_level_filters(self):
        stream = io.StringIO()
        obs.configure_logging(level="warning", stream=stream)
        obs.get_logger("sim").debug("hidden")
        obs.get_logger("sim").warning("shown")
        text = stream.getvalue()
        assert "hidden" not in text
        assert "shown" in text


class TestJsonLines:
    def test_records_are_json_objects(self):
        stream = io.StringIO()
        obs.configure_logging(
            level="info", json_lines=True, stream=stream
        )
        obs.get_logger("frontend").info("parsed %s", "jacobi-2d")
        (line,) = stream.getvalue().splitlines()
        record = json.loads(line)
        assert record["level"] == "INFO"
        assert record["logger"] == "repro.frontend"
        assert record["message"] == "parsed jacobi-2d"
        assert "time" in record

    def test_json_mode_from_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_LOG_JSON", "1")
        stream = io.StringIO()
        obs.configure_logging(level="info", stream=stream)
        obs.get_logger().info("hello")
        assert json.loads(stream.getvalue())["message"] == "hello"

    def test_exceptions_serialized(self):
        stream = io.StringIO()
        obs.configure_logging(
            level="info", json_lines=True, stream=stream
        )
        try:
            raise RuntimeError("bad tile")
        except RuntimeError:
            obs.get_logger().exception("evaluation failed")
        record = json.loads(stream.getvalue().splitlines()[0])
        assert "bad tile" in record["exc_info"]
        assert record["level"] == "ERROR"
