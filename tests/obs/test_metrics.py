"""Metrics registry: percentile math, thread-safety, evaluator feed."""

from concurrent.futures import ThreadPoolExecutor

import pytest

from repro import obs
from repro.obs.metrics import Histogram, MetricsRegistry, percentile


class TestCounterGauge:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        assert registry.counter("c") is counter

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("c").inc(-1)

    def test_gauge_last_write_wins(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(2)
        gauge.set(7.5)
        assert gauge.value == 7.5


class TestPercentiles:
    def test_known_distribution(self):
        values = list(range(1, 101))  # 1..100
        hist = Histogram("h")
        for v in values:
            hist.observe(v)
        summary = hist.summary()
        assert summary["count"] == 100
        assert summary["min"] == 1
        assert summary["max"] == 100
        assert summary["mean"] == pytest.approx(50.5)
        assert summary["p50"] == pytest.approx(50.5)
        assert summary["p90"] == pytest.approx(90.1)
        assert summary["p99"] == pytest.approx(99.01)

    def test_matches_numpy(self):
        np = pytest.importorskip("numpy")
        values = sorted([3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0])
        for q in (50, 90, 99):
            assert percentile(values, q) == pytest.approx(
                float(np.percentile(values, q))
            )

    def test_single_value(self):
        hist = Histogram("h")
        hist.observe(42.0)
        summary = hist.summary()
        assert summary["p50"] == 42.0
        assert summary["p99"] == 42.0

    def test_empty_summary(self):
        assert Histogram("h").summary() == {"count": 0, "sum": 0.0}

    def test_sampling_past_limit_is_flagged(self):
        hist = Histogram("h", sample_limit=10)
        for v in range(100):
            hist.observe(float(v))
        summary = hist.summary()
        assert summary["count"] == 100
        assert summary["max"] == 99.0  # exact even though sampled
        assert summary["sampled"] is True


class TestReservoirSampling:
    """Past ``sample_limit`` the histogram keeps a uniform reservoir,
    not the first N observations (which would freeze quantiles at the
    warm-up workload)."""

    def test_reservoir_is_not_first_n_biased(self):
        hist = Histogram("h", sample_limit=100)
        # 100 small values, then 900 large ones.  A first-N retention
        # would report p99 ~= 1.0 forever; a uniform reservoir must be
        # dominated by the large tail.
        for _ in range(100):
            hist.observe(1.0)
        for _ in range(900):
            hist.observe(1000.0)
        summary = hist.summary()
        assert summary["p50"] == 1000.0
        assert summary["p99"] == 1000.0

    def test_reservoir_is_deterministic_per_name(self):
        def fill(name):
            hist = Histogram(name, sample_limit=16)
            for v in range(500):
                hist.observe(float(v))
            return hist.summary()

        assert fill("svc.latency") == fill("svc.latency")

    def test_no_global_random_state_is_touched(self):
        import random

        random.seed(1234)
        before = random.getstate()
        hist = Histogram("h", sample_limit=8)
        for v in range(200):
            hist.observe(float(v))
        assert random.getstate() == before

    def test_quantile_ordering_invariant_holds_when_sampled(self):
        hist = Histogram("h", sample_limit=32)
        for v in range(1000):
            hist.observe(float(v % 97))
        summary = hist.summary()
        assert summary["p50"] <= summary["p90"] <= summary["p99"]
        assert summary["p99"] <= summary["max"]

    def test_under_limit_is_exact_and_unsampled(self):
        hist = Histogram("h", sample_limit=100)
        for v in range(50):
            hist.observe(float(v))
        summary = hist.summary()
        assert summary.get("sampled", False) is False
        assert summary["max"] == 49.0


class TestThreadSafety:
    def test_concurrent_counter_increments_are_exact(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits")
        per_thread, threads = 10_000, 8

        def hammer(_):
            for _ in range(per_thread):
                counter.inc()

        with ThreadPoolExecutor(max_workers=threads) as pool:
            list(pool.map(hammer, range(threads)))
        assert counter.value == per_thread * threads

    def test_concurrent_histogram_observations(self):
        hist = Histogram("h")

        def hammer(base):
            for v in range(1_000):
                hist.observe(base + v)

        with ThreadPoolExecutor(max_workers=4) as pool:
            list(pool.map(hammer, [0, 1000, 2000, 3000]))
        summary = hist.summary()
        assert summary["count"] == 4_000
        assert summary["min"] == 0.0
        assert summary["max"] == 3999.0

    def test_evaluator_thread_pool_feeds_exact_counters(self):
        """The engine's parallel path must not drop counter updates."""
        from repro.dse import CandidateEvaluator, ResourceBudget
        from repro.fpga.resources import VIRTEX7_690T
        from repro.stencil import jacobi_2d
        from repro.tiling import make_baseline_design

        obs.enable()
        spec = jacobi_2d(grid=(64, 64), iterations=16)
        base = make_baseline_design(spec, (16, 16), (2, 2), 4, unroll=2)
        candidates = [
            base.with_fused_depth(h) for h in range(1, 9)
        ] * 3  # repeats exercise the cache-hit path concurrently
        engine = CandidateEvaluator(max_workers=4)
        result = engine.explore(candidates, ResourceBudget.from_device(VIRTEX7_690T))
        counters = obs.get_registry().report()["counters"]
        assert counters["dse.candidates"] == len(candidates)
        assert counters["dse.candidates"] == result.stats.candidates
        assert counters["dse.evaluated"] == result.stats.evaluated
        assert counters["dse.cache_hits"] == result.stats.cache_hits
        assert (
            counters["dse.evaluated"] + counters["dse.cache_hits"]
            == len(candidates)
        )


class TestRegistryReport:
    def test_report_shape(self):
        registry = MetricsRegistry()
        registry.counter("a").inc(3)
        registry.gauge("b").set(1.5)
        registry.histogram("c").observe(2.0)
        report = registry.report()
        assert report["counters"] == {"a": 3}
        assert report["gauges"] == {"b": 1.5}
        assert report["histograms"]["c"]["count"] == 1

    def test_reset(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.reset()
        assert registry.report()["counters"] == {}

    def test_module_helpers_hit_default_registry(self):
        obs.enable()
        obs.inc("x", 2)
        obs.inc("x", 0)  # creates/keeps the metric without changing it
        obs.set_gauge("y", 9)
        obs.observe("z", 0.5)
        report = obs.get_registry().report()
        assert report["counters"]["x"] == 2
        assert report["gauges"]["y"] == 9.0
        assert report["histograms"]["z"]["count"] == 1
