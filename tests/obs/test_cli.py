"""End-to-end: CLI flags produce a merged trace and a run report."""

import json
import logging

import pytest

from repro.experiments.runner import main
from repro.obs.log import ROOT_LOGGER, _HANDLER_TAG


@pytest.fixture(autouse=True)
def clean_repro_logger():
    yield
    root = logging.getLogger(ROOT_LOGGER)
    for handler in list(root.handlers):
        if getattr(handler, _HANDLER_TAG, False):
            root.removeHandler(handler)
    root.setLevel(logging.NOTSET)
    root.propagate = True


class TestTraceOut:
    def test_simulate_writes_merged_trace(self, capsys, tmp_path):
        trace_path = tmp_path / "trace.json"
        assert (
            main(
                [
                    "simulate",
                    "--benchmark",
                    "jacobi-1d",
                    "--trace-out",
                    str(trace_path),
                ]
            )
            == 0
        )
        assert "Wrote trace" in capsys.readouterr().out
        trace = json.loads(trace_path.read_text())
        events = trace["traceEvents"]
        cats = {e.get("cat") for e in events}
        # One file, both worlds: DSE/CLI spans and simulator phases.
        assert "span" in cats
        assert "kernel-phase" in cats
        names = {e["name"] for e in events if e.get("cat") == "span"}
        assert "cli.simulate" in names
        assert "sim.run" in names


class TestMetricsOut:
    def test_optimize_reports_rates_and_latency(self, capsys, tmp_path):
        metrics_path = tmp_path / "metrics.json"
        assert (
            main(
                [
                    "optimize",
                    "--benchmark",
                    "jacobi-1d",
                    "--metrics-out",
                    str(metrics_path),
                ]
            )
            == 0
        )
        assert "Wrote metrics report" in capsys.readouterr().out
        report = json.loads(metrics_path.read_text())
        derived = report["derived"]
        assert 0.0 <= derived["dse.cache_hit_rate"] <= 1.0
        assert 0.0 <= derived["dse.prune_rate"] <= 1.0
        predict = report["metrics"]["histograms"]["model.predict"]
        assert predict["count"] > 0
        assert predict["p50"] <= predict["p90"] <= predict["p99"]

    def test_both_artifacts_from_one_run(self, capsys, tmp_path):
        trace_path = tmp_path / "t.json"
        metrics_path = tmp_path / "m.json"
        assert (
            main(
                [
                    "simulate",
                    "--benchmark",
                    "jacobi-1d",
                    "--trace-out",
                    str(trace_path),
                    "--metrics-out",
                    str(metrics_path),
                    "--log-level",
                    "warning",
                ]
            )
            == 0
        )
        capsys.readouterr()
        trace = json.loads(trace_path.read_text())
        report = json.loads(metrics_path.read_text())
        assert trace["traceEvents"]
        assert report["metrics"]["counters"]["sim.runs"] >= 1
        assert report["spans"]["count"] >= 1


class TestObservabilityOff:
    def test_plain_run_records_nothing(self, capsys):
        from repro import obs

        assert main(["simulate", "--benchmark", "jacobi-1d"]) == 0
        capsys.readouterr()
        assert not obs.enabled()
        assert obs.recorder.spans() == []
        assert obs.recorder.events() == []
