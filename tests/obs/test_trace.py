"""Trace contexts: minting, header round-trips, thread propagation.

Also the zero-cost regression guards: with observability disabled, the
instrumented hot paths must neither allocate a ``TraceContext`` nor
slow down past the no-op overhead bound.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro import obs
from repro.obs import trace as trace_mod
from repro.obs.trace import TraceContext


class TestTraceContext:
    def test_mint_is_unique_and_wellformed(self):
        a = TraceContext.mint()
        b = TraceContext.mint()
        assert a.trace_id != b.trace_id
        assert len(a.trace_id) == 32
        assert int(a.trace_id, 16) >= 0  # hex

    def test_header_round_trip(self):
        ctx = TraceContext.mint(user="alice", tier="gold")
        headers = ctx.to_headers()
        back = TraceContext.from_headers(headers)
        assert back.trace_id == ctx.trace_id
        assert back.baggage_dict() == {"user": "alice", "tier": "gold"}

    def test_parent_seq_is_not_propagated_over_http(self):
        # Span sequence ids are process-local; a context that crossed
        # the wire must not point at the sender's spans.
        ctx = TraceContext.mint().with_parent(42)
        back = TraceContext.from_headers(ctx.to_headers())
        assert back.parent_seq is None

    def test_baggage_values_survive_url_quoting(self):
        ctx = TraceContext.mint(note="a=b,c d%e")
        back = TraceContext.from_headers(ctx.to_headers())
        assert back.baggage_dict() == {"note": "a=b,c d%e"}

    @pytest.mark.parametrize(
        "headers",
        [
            {},
            {"X-Repro-Trace-Id": "nope"},
            {"X-Repro-Trace-Id": "abc"},  # too short
            {"X-Repro-Trace-Id": "Z" * 32},  # not hex
        ],
    )
    def test_absent_or_malformed_headers_decode_to_none(self, headers):
        assert TraceContext.from_headers(headers) is None

    def test_case_insensitive_dict_lookup(self):
        ctx = TraceContext.mint()
        headers = {"x-repro-trace-id": ctx.trace_id}
        back = TraceContext.from_headers(headers)
        assert back is not None and back.trace_id == ctx.trace_id


class TestActivation:
    def test_activation_installs_and_restores(self):
        outer = TraceContext.mint()
        inner = TraceContext.mint()
        assert trace_mod.current() is None
        with trace_mod.activate(outer):
            assert trace_mod.current() is outer
            with trace_mod.activate(inner):
                assert trace_mod.current() is inner
            assert trace_mod.current() is outer
        assert trace_mod.current() is None

    def test_activate_none_is_shared_noop(self):
        assert trace_mod.activate(None) is trace_mod.NOOP_ACTIVATION
        with trace_mod.activate(None):
            assert trace_mod.current() is None

    def test_context_is_thread_local(self):
        ctx = TraceContext.mint()
        seen = {}

        def probe():
            seen["other"] = trace_mod.current()

        with trace_mod.activate(ctx):
            thread = threading.Thread(target=probe)
            thread.start()
            thread.join()
        assert seen["other"] is None


class TestSpanStamping:
    def test_spans_record_active_trace_id(self):
        obs.enable()
        ctx = TraceContext.mint()
        with trace_mod.activate(ctx):
            with obs.span("outer"):
                with obs.span("inner"):
                    pass
        with obs.span("untraced"):
            pass
        by_name = {s.name: s for s in obs.recorder.spans()}
        assert by_name["outer"].trace_id == ctx.trace_id
        assert by_name["inner"].trace_id == ctx.trace_id
        assert by_name["untraced"].trace_id is None
        # Hierarchy is preserved alongside the stamp.
        assert by_name["inner"].parent_seq == by_name["outer"].seq

    def test_thread_root_span_parents_to_fork_point(self):
        obs.enable()
        ctx = TraceContext.mint()
        with trace_mod.activate(ctx):
            with obs.span("fanout"):
                forked = trace_mod.fork()

                def work():
                    with trace_mod.activate(forked):
                        with obs.span("pooled"):
                            pass

                thread = threading.Thread(target=work)
                thread.start()
                thread.join()
        by_name = {s.name: s for s in obs.recorder.spans()}
        assert by_name["pooled"].trace_id == ctx.trace_id
        assert by_name["pooled"].parent_seq == by_name["fanout"].seq
        assert by_name["pooled"].thread != by_name["fanout"].thread

    def test_fork_outside_context_is_none(self):
        assert trace_mod.fork() is None

    def test_filtered_chrome_trace_contains_only_the_request(self):
        obs.enable()
        ctx = TraceContext.mint()
        with trace_mod.activate(ctx):
            with obs.span("mine"):
                pass
        with obs.span("other"):
            pass
        trace = obs.build_chrome_trace(trace_id=ctx.trace_id)
        slices = [
            e for e in trace["traceEvents"] if e.get("ph") == "X"
        ]
        assert [e["name"] for e in slices] == ["mine"]
        assert all(
            e["args"]["trace_id"] == ctx.trace_id for e in slices
        )
        assert trace["otherData"]["trace_id"] == ctx.trace_id


class TestZeroCost:
    """Obs disabled => tracing must not allocate or slow the hot path."""

    def test_no_trace_context_allocation_on_hot_path(
        self, monkeypatch, small_jacobi2d
    ):
        """The evaluator hot path mints no TraceContext when obs is off."""
        from repro.dse import CandidateEvaluator, ResourceBudget
        from repro.fpga.resources import VIRTEX7_690T
        from repro.tiling import make_baseline_design

        def forbid(cls, **_kw):
            raise AssertionError(
                "TraceContext allocated with observability disabled"
            )

        monkeypatch.setattr(TraceContext, "mint", classmethod(forbid))
        monkeypatch.setattr(
            TraceContext,
            "__init__",
            lambda self, *a, **kw: forbid(type(self)),
        )
        assert not obs.enabled()
        designs = [
            make_baseline_design(small_jacobi2d, (8, 8), (2, 2), h)
            for h in (2, 3, 4)
        ]
        evaluator = CandidateEvaluator(max_workers=2)
        budget = ResourceBudget.from_device(VIRTEX7_690T)
        scored = evaluator.evaluate_batch(designs, budget)
        assert len(scored) == len(designs)
        assert any(s is not None for s in scored)

    def test_disabled_span_path_stays_noop(self):
        assert obs.span("anything") is obs.NOOP_SPAN

    def test_noop_overhead_bound_with_tracing_in_place(self):
        """Same bound as test_spans: tracing must not regress it."""
        n = 50_000

        def bare():
            start = time.perf_counter()
            for _ in range(n):
                pass
            return time.perf_counter() - start

        def instrumented():
            start = time.perf_counter()
            for _ in range(n):
                with obs.span("hot"):
                    pass
            return time.perf_counter() - start

        bare_t = min(bare() for _ in range(3))
        inst_t = min(instrumented() for _ in range(3))
        assert (inst_t - bare_t) / n < 2e-6
