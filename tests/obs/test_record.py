"""Flight records, the telemetry journal, and the ``obs top`` view."""

from __future__ import annotations

import io

from repro import obs
from repro.obs.record import (
    FLIGHT_KIND,
    SNAPSHOT_KIND,
    FlightRecord,
    TelemetryJournal,
    latest_snapshot,
    peak_rss_kb,
    read_telemetry,
    recent_flights,
    thread_cpu_s,
)
from repro.obs.top import load_from_journal, render_frame, run_top


def _flight(job_id="job-1", **kw):
    return FlightRecord(job_id=job_id, state="done", **kw).as_dict()


class TestFlightRecord:
    def test_as_dict_has_the_accounting_fields(self):
        flight = FlightRecord(
            job_id="j1",
            state="done",
            trace_id="ab" * 16,
            queue_wait_s=0.25,
            run_s=1.5,
            wall_s=2.0,
            cpu_s=1.2,
            peak_rss_delta_kb=512,
            evaluations=40,
            cache_hits=3,
            store_hits=2,
            coalesced=1,
            attempts=1,
            extra={"benchmark": "jacobi-2d"},
        ).as_dict()
        assert flight["job_id"] == "j1"
        assert flight["queue_wait_s"] == 0.25
        assert flight["cpu_s"] == 1.2
        assert flight["peak_rss_delta_kb"] == 512
        assert flight["evaluations"] == 40
        assert flight["benchmark"] == "jacobi-2d"  # extra is inlined

    def test_rusage_helpers_work_here(self):
        # These run on Linux CI; assert real values, not just None.
        rss = peak_rss_kb()
        assert rss is not None and rss > 0
        assert thread_cpu_s() >= 0.0


class TestTelemetryJournal:
    def test_flights_and_snapshots_round_trip(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        journal = TelemetryJournal(path)
        journal.record_flight(_flight("j1"))
        journal.record_flight(_flight("j2"))
        journal.snapshot({"counters": {"service.accepted": 2}})
        journal.close(final_snapshot=False)

        records = read_telemetry(path)
        kinds = [r["kind"] for r in records]
        assert kinds == [FLIGHT_KIND, FLIGHT_KIND, SNAPSHOT_KIND]
        assert all("ts" in r for r in records)
        assert recent_flights(records, limit=1)[0]["job_id"] == "j2"
        snap = latest_snapshot(records)
        assert snap["metrics"]["counters"]["service.accepted"] == 2

    def test_close_writes_a_final_snapshot(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        with TelemetryJournal(path) as journal:
            journal.record_flight(_flight())
        snap = latest_snapshot(read_telemetry(path))
        assert snap is not None and snap.get("final") is True

    def test_close_twice_and_append_after_close_are_safe(self, tmp_path):
        journal = TelemetryJournal(tmp_path / "t.jsonl")
        journal.close(final_snapshot=False)
        journal.close(final_snapshot=False)
        journal.record_flight(_flight())  # silently dropped
        assert read_telemetry(journal.path) == []

    def test_bounded_by_compaction(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        journal = TelemetryJournal(path, max_records=16)
        for i in range(64):
            journal.record_flight(_flight(f"j{i}"))
        journal.close(final_snapshot=False)
        records = read_telemetry(path)
        assert len(records) <= 17  # newest half + post-compaction appends
        # Compaction keeps the *newest* records.
        assert records[-1]["job_id"] == "j63"

    def test_torn_tail_is_skipped_by_reader(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        journal = TelemetryJournal(path)
        journal.record_flight(_flight("good"))
        journal.close(final_snapshot=False)
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"kind": "flight", "job_id": "torn')  # no newline
        records = read_telemetry(path)
        assert [r["job_id"] for r in records if r["kind"] == FLIGHT_KIND] == [
            "good"
        ]

    def test_reading_a_missing_file_is_empty(self, tmp_path):
        assert read_telemetry(tmp_path / "nope.jsonl") == []

    def test_periodic_snapshotter_appends(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        journal = TelemetryJournal(path, snapshot_interval_s=0.02)
        journal.start(registry=obs.get_registry())
        try:
            deadline = 100
            while deadline:
                records = read_telemetry(path)
                if any(r["kind"] == SNAPSHOT_KIND for r in records):
                    break
                deadline -= 1
                import time

                time.sleep(0.02)
            assert deadline, "snapshotter never fired"
        finally:
            journal.close(final_snapshot=False)


class TestTop:
    def _journal_with_data(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        journal = TelemetryJournal(path)
        journal.record_flight(
            _flight(
                "job-42",
                queue_wait_s=0.001,
                run_s=0.5,
                cpu_s=0.4,
                evaluations=12,
            )
        )
        journal.snapshot(
            {
                "counters": {"service.accepted": 1, "service.completed": 1},
                "gauges": {"service.queue_depth": 0},
                "histograms": {
                    "service.job_wall_s": {
                        "count": 1,
                        "mean": 0.5,
                        "p50": 0.5,
                        "p90": 0.5,
                        "p99": 0.5,
                    }
                },
            }
        )
        journal.close(final_snapshot=False)
        return path

    def test_load_from_journal_normalizes(self, tmp_path):
        path = self._journal_with_data(tmp_path)
        data = load_from_journal(path)
        assert data["counters"]["service.accepted"] == 1
        assert data["histograms"]["service.job_wall_s"]["count"] == 1
        assert data["flights"][0]["job_id"] == "job-42"

    def test_render_frame_is_plain_text(self, tmp_path):
        frame = render_frame(load_from_journal(self._journal_with_data(tmp_path)))
        assert "repro obs top" in frame
        assert "job-42" in frame
        assert "service.job_wall_s" in frame
        assert "\x1b" not in frame  # clearing is the loop's business

    def test_render_frame_shows_slo_breach(self):
        data = {
            "source": "test",
            "ts": None,
            "counters": {},
            "gauges": {},
            "histograms": {},
            "service": {"accepted": 5, "completed": 4, "failed": 1},
            "slo": {
                "service.slo.queue_saturation": 0.5,
                "service.slo.reject_rate": 0.0,
                "service.slo.p99_job_wall_s": 300.0,
                "service.slo.p99_target_s": 120.0,
                "service.slo.p99_within_target": 0.0,
            },
            "flights": [],
        }
        frame = render_frame(data)
        assert "BREACH" in frame
        assert "accepted=5" in frame

    def test_run_top_journal_frames(self, tmp_path):
        path = self._journal_with_data(tmp_path)
        out = io.StringIO()
        code = run_top(journal=path, interval_s=0.0, frames=2, stream=out)
        assert code == 0
        assert out.getvalue().count("repro obs top") == 2

    def test_run_top_unreachable_url_exits_nonzero(self):
        out = io.StringIO()
        code = run_top(
            url="http://127.0.0.1:1",  # nothing listens on port 1
            frames=1,
            stream=out,
        )
        assert code == 1
        assert "source unavailable" in out.getvalue()

    def test_run_top_requires_exactly_one_source(self, tmp_path):
        import pytest

        with pytest.raises(ValueError):
            run_top()
        with pytest.raises(ValueError):
            run_top(journal=tmp_path / "x", url="http://h")
