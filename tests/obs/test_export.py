"""Exporters: Chrome-trace schema, JSON-lines round-trip, run report."""

import json

from repro import obs
from repro.sim import simulate


def _validate_chrome_schema(trace):
    """Assert the minimal Chrome-tracing/Perfetto JSON contract."""
    assert isinstance(trace["traceEvents"], list)
    for event in trace["traceEvents"]:
        assert "name" in event and "ph" in event and "pid" in event
        if event["ph"] == "X":
            assert isinstance(event["ts"], (int, float))
            assert isinstance(event["dur"], (int, float))
            assert event["dur"] >= 0
            assert "tid" in event
        elif event["ph"] == "M":
            assert event["name"] in ("process_name", "thread_name")
            assert "name" in event["args"]
    json.dumps(trace)  # must be serializable as-is


class TestChromeTrace:
    def test_spans_become_complete_events(self):
        obs.enable()
        with obs.span("outer", role="test"):
            with obs.span("inner"):
                pass
        trace = obs.build_chrome_trace()
        _validate_chrome_schema(trace)
        slices = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert {e["name"] for e in slices} == {"outer", "inner"}
        assert all(e["cat"] == "span" for e in slices)
        outer = next(e for e in slices if e["name"] == "outer")
        assert outer["args"]["role"] == "test"

    def test_combined_trace_has_spans_and_sim_phases(
        self, pipe_design, tmp_path
    ):
        obs.enable()
        with obs.span("dse.fake"):
            simulate(pipe_design)
        path = obs.export_chrome_trace(tmp_path / "trace.json")
        trace = json.loads(path.read_text())
        _validate_chrome_schema(trace)
        cats = {e.get("cat") for e in trace["traceEvents"]}
        assert "span" in cats
        assert "kernel-phase" in cats
        # Simulator events live in their own Chrome process.
        span_pids = {
            e["pid"]
            for e in trace["traceEvents"]
            if e.get("cat") == "span"
        }
        phase_pids = {
            e["pid"]
            for e in trace["traceEvents"]
            if e.get("cat") == "kernel-phase"
        }
        assert span_pids.isdisjoint(phase_pids)

    def test_standalone_sim_trace_unchanged(self, pipe_design):
        """`to_chrome_trace` keeps its historical schema, obs off."""
        from repro.sim.trace import to_chrome_trace

        result = simulate(pipe_design)
        trace = to_chrome_trace(result)
        _validate_chrome_schema(trace)
        assert trace["displayTimeUnit"] == "ms"
        assert trace["otherData"]["num_blocks"] == result.num_blocks
        assert obs.recorder.events() == []  # nothing recorded globally

    def test_event_capture_can_be_disabled(self, pipe_design):
        obs.enable(capture_events=False)
        simulate(pipe_design)
        assert obs.recorder.events() == []
        # Metrics still flow in metrics-only mode.
        counters = obs.get_registry().report()["counters"]
        assert counters["sim.runs"] == 1


class TestJsonLines:
    def test_round_trip(self, tmp_path):
        obs.enable()
        with obs.span("work", k=3):
            obs.inc("jobs", 2)
            obs.observe("latency", 0.25)
        obs.set_gauge("depth", 4)
        path = obs.export_jsonl(tmp_path / "events.jsonl")
        records = obs.read_jsonl(path)
        by_type = {}
        for record in records:
            by_type.setdefault(record["type"], []).append(record)
        (span_rec,) = by_type["span"]
        assert span_rec["name"] == "work"
        assert span_rec["attrs"] == {"k": 3}
        assert span_rec["duration_s"] >= 0
        metric_names = {r["name"] for r in by_type["metric"]}
        assert {"jobs", "depth", "latency", "work"} <= metric_names
        hist = next(
            r
            for r in by_type["metric"]
            if r["kind"] == "histogram" and r["name"] == "latency"
        )
        assert hist["summary"]["count"] == 1


class TestRunReport:
    def test_derived_rates(self):
        obs.enable()
        obs.inc("dse.candidates", 10)
        obs.inc("dse.cache_hits", 3)
        obs.inc("dse.pruned", 2)
        obs.inc("dse.infeasible", 1)
        report = obs.run_report()
        assert report["schema"] == obs.REPORT_SCHEMA
        assert report["derived"]["dse.cache_hit_rate"] == 0.3
        assert report["derived"]["dse.prune_rate"] == 0.2
        assert report["derived"]["dse.infeasible_rate"] == 0.1

    def test_span_aggregates(self):
        obs.enable()
        for _ in range(3):
            with obs.span("phase.a"):
                pass
        report = obs.run_report()
        assert report["spans"]["count"] == 3
        assert report["spans"]["by_name"]["phase.a"]["count"] == 3
        assert report["spans"]["dropped"] == {"spans": 0, "events": 0}

    def test_export_is_valid_json(self, tmp_path):
        obs.enable()
        with obs.span("s"):
            pass
        path = obs.export_run_report(tmp_path / "report.json")
        loaded = json.loads(path.read_text())
        assert loaded["schema"] == obs.REPORT_SCHEMA

    def test_markdown_rendering(self):
        obs.enable()
        obs.inc("dse.candidates", 4)
        obs.inc("dse.cache_hits", 2)
        with obs.span("model.predict"):
            pass
        text = obs.render_report_markdown()
        assert "# Run report" in text
        assert "dse.cache_hit_rate: 50.0%" in text
        assert "model.predict" in text


class TestRecorderBounds:
    def test_span_drops_are_counted(self, monkeypatch):
        obs.enable()
        monkeypatch.setattr(obs.recorder, "max_spans", 2)
        for _ in range(5):
            with obs.span("s"):
                pass
        assert len(obs.recorder.spans()) == 2
        assert obs.recorder.drop_counts()["spans"] == 3
        assert obs.run_report()["spans"]["dropped"]["spans"] == 3

    def test_event_drops_are_counted(self, monkeypatch):
        obs.enable()
        monkeypatch.setattr(obs.recorder, "max_events", 3)
        obs.record_chrome_events(
            [{"name": str(i), "ph": "M", "pid": 0} for i in range(5)]
        )
        assert len(obs.recorder.events()) == 3
        assert obs.recorder.drop_counts()["events"] == 2
