"""Prometheus text exposition: rendering and the validating parser."""

from __future__ import annotations

import math

import pytest

from repro import obs
from repro.obs.prom import (
    CONTENT_TYPE,
    ExpositionError,
    metric_name,
    parse_prometheus,
    render_prometheus,
)


def _samples(parsed, family):
    return {
        (s.name, tuple(sorted(s.labels))): s.value
        for s in parsed[family]["samples"]
    }


class TestMetricName:
    def test_dots_become_underscores_with_namespace(self):
        assert metric_name("service.queue_depth") == "repro_service_queue_depth"

    def test_suffix_appended(self):
        assert metric_name("service.accepted", "_total") == (
            "repro_service_accepted_total"
        )

    def test_invalid_characters_sanitized(self):
        name = metric_name("weird-metric/with spaces")
        assert name == "repro_weird_metric_with_spaces"


class TestRender:
    def test_counter_gets_total_suffix(self):
        obs.enable()
        obs.inc("service.accepted", 3)
        text = render_prometheus(obs.get_registry())
        assert "# TYPE repro_service_accepted_total counter" in text
        assert "repro_service_accepted_total 3" in text

    def test_gauge_rendered_plain(self):
        obs.enable()
        obs.set_gauge("service.queue_depth", 7)
        text = render_prometheus(obs.get_registry())
        assert "# TYPE repro_service_queue_depth gauge" in text
        assert "repro_service_queue_depth 7" in text

    def test_histogram_rendered_as_summary_with_quantiles(self):
        obs.enable()
        for v in (0.1, 0.2, 0.3, 0.4):
            obs.observe("service.job_wall_s", v)
        text = render_prometheus(obs.get_registry())
        assert "# TYPE repro_service_job_wall_s summary" in text
        assert 'repro_service_job_wall_s{quantile="0.5"}' in text
        assert 'repro_service_job_wall_s{quantile="0.9"}' in text
        assert 'repro_service_job_wall_s{quantile="0.99"}' in text
        assert "repro_service_job_wall_s_count 4" in text
        assert "repro_service_job_wall_s_sum 1.0" in text

    def test_extra_gauges_appear(self):
        text = render_prometheus(
            obs.get_registry(),
            extra_gauges={"service.slo.reject_rate": 0.25},
        )
        assert "# TYPE repro_service_slo_reject_rate gauge" in text
        assert "repro_service_slo_reject_rate 0.25" in text

    def test_empty_histogram_skipped(self):
        obs.get_registry().histogram("service.never_observed")
        text = render_prometheus(obs.get_registry())
        assert "never_observed" not in text

    def test_content_type_is_exposition_004(self):
        assert "version=0.0.4" in CONTENT_TYPE


class TestRoundTrip:
    def test_render_then_parse(self):
        obs.enable()
        obs.inc("service.accepted", 2)
        obs.set_gauge("service.queue_depth", 1)
        for v in (0.5, 1.5):
            obs.observe("service.job_wall_s", v)
        text = render_prometheus(
            obs.get_registry(),
            extra_gauges={"service.slo.queue_saturation": 0.125},
        )
        parsed = parse_prometheus(text)
        assert parsed["repro_service_accepted_total"]["type"] == "counter"
        assert parsed["repro_service_queue_depth"]["type"] == "gauge"
        assert parsed["repro_service_job_wall_s"]["type"] == "summary"
        assert (
            parsed["repro_service_slo_queue_saturation"]["type"] == "gauge"
        )
        samples = _samples(parsed, "repro_service_job_wall_s")
        assert samples[("repro_service_job_wall_s_count", ())] == 2.0
        assert samples[("repro_service_job_wall_s_sum", ())] == 2.0
        quantiles = {
            labels[0][1]
            for (name, labels) in samples
            if name == "repro_service_job_wall_s"
        }
        assert quantiles == {"0.5", "0.9", "0.99"}

    def test_quantiles_are_ordered(self):
        obs.enable()
        for v in range(100):
            obs.observe("service.job_wall_s", float(v))
        parsed = parse_prometheus(render_prometheus(obs.get_registry()))
        by_q = {
            dict(s.labels)["quantile"]: s.value
            for s in parsed["repro_service_job_wall_s"]["samples"]
            if s.name == "repro_service_job_wall_s"
        }
        assert by_q["0.5"] <= by_q["0.9"] <= by_q["0.99"]


class TestParserValidation:
    def test_sample_without_type_rejected(self):
        with pytest.raises(ExpositionError):
            parse_prometheus("repro_orphan 1\n")

    def test_bad_metric_name_rejected(self):
        with pytest.raises(ExpositionError):
            parse_prometheus("# TYPE 9bad counter\n9bad_total 1\n")

    def test_bad_value_rejected(self):
        text = "# TYPE repro_x gauge\nrepro_x banana\n"
        with pytest.raises(ExpositionError):
            parse_prometheus(text)

    def test_type_after_samples_rejected(self):
        text = (
            "# TYPE repro_x gauge\n"
            "repro_x 1\n"
            "# TYPE repro_x counter\n"
        )
        with pytest.raises(ExpositionError):
            parse_prometheus(text)

    def test_declared_but_empty_family_rejected(self):
        with pytest.raises(ExpositionError):
            parse_prometheus("# TYPE repro_ghost gauge\n")

    def test_special_float_values_parse(self):
        text = "# TYPE repro_x gauge\nrepro_x NaN\n"
        parsed = parse_prometheus(text)
        [sample] = parsed["repro_x"]["samples"]
        assert math.isnan(sample.value)

    def test_help_and_comments_ignored(self):
        text = (
            "# HELP repro_x something dotted.name\n"
            "# TYPE repro_x gauge\n"
            "# just a comment\n"
            "repro_x 4\n"
        )
        parsed = parse_prometheus(text)
        assert parsed["repro_x"]["samples"][0].value == 4.0
