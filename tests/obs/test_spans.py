"""Spans: nesting, attributes, the no-op fast path, auto-histograms."""

import threading
import time

from repro import obs


class TestNesting:
    def test_parent_child_linkage(self):
        obs.enable()
        with obs.span("outer"):
            with obs.span("inner"):
                pass
        spans = {s.name: s for s in obs.recorder.spans()}
        assert spans["inner"].parent_seq == spans["outer"].seq
        assert spans["outer"].parent_seq is None

    def test_three_levels_and_siblings(self):
        obs.enable()
        with obs.span("a"):
            with obs.span("b"):
                with obs.span("c"):
                    pass
            with obs.span("d"):
                pass
        spans = {s.name: s for s in obs.recorder.spans()}
        assert spans["c"].parent_seq == spans["b"].seq
        assert spans["b"].parent_seq == spans["a"].seq
        assert spans["d"].parent_seq == spans["a"].seq

    def test_stacks_are_per_thread(self):
        obs.enable()
        ready = threading.Barrier(2)

        def worker(name):
            ready.wait()
            with obs.span(name):
                time.sleep(0.01)

        threads = [
            threading.Thread(target=worker, args=(f"t{i}",))
            for i in range(2)
        ]
        with obs.span("main"):
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        spans = {s.name: s for s in obs.recorder.spans()}
        # Worker spans overlap the main span in time but are NOT its
        # children: parentage follows the thread's own stack.
        assert spans["t0"].parent_seq is None
        assert spans["t1"].parent_seq is None

    def test_current_span_seq(self):
        obs.enable()
        assert obs.current_span_seq() is None
        with obs.span("x") as handle:
            assert obs.current_span_seq() == handle.seq
        assert obs.current_span_seq() is None


class TestAttributes:
    def test_constructor_and_set(self):
        obs.enable()
        with obs.span("work", tile=(4, 4)) as handle:
            handle.set(feasible=7)
        (record,) = obs.recorder.spans()
        assert record.attrs == {"tile": (4, 4), "feasible": 7}

    def test_exception_marks_span_and_propagates(self):
        obs.enable()
        try:
            with obs.span("boom"):
                raise ValueError("no")
        except ValueError:
            pass
        (record,) = obs.recorder.spans()
        assert record.attrs["error"] == "ValueError"

    def test_duration_and_ordering(self):
        obs.enable()
        with obs.span("timed"):
            time.sleep(0.005)
        (record,) = obs.recorder.spans()
        assert record.duration_s >= 0.004
        assert record.end_s >= record.start_s >= 0.0


class TestDisabled:
    def test_span_is_shared_noop(self):
        assert obs.span("anything") is obs.NOOP_SPAN
        assert obs.span("other", key=1) is obs.NOOP_SPAN

    def test_nothing_recorded(self):
        with obs.span("ghost") as handle:
            handle.set(x=1)
        assert obs.recorder.spans() == []
        assert obs.get_registry().report()["histograms"] == {}

    def test_metrics_helpers_noop(self):
        obs.inc("c", 5)
        obs.set_gauge("g", 1.0)
        obs.observe("h", 2.0)
        report = obs.get_registry().report()
        assert report["counters"] == {}
        assert report["gauges"] == {}
        assert report["histograms"] == {}

    def test_noop_overhead_is_bounded(self):
        """The disabled path must stay within noise of a bare loop."""
        n = 50_000

        def bare():
            start = time.perf_counter()
            for _ in range(n):
                pass
            return time.perf_counter() - start

        def instrumented():
            start = time.perf_counter()
            for _ in range(n):
                with obs.span("hot"):
                    pass
                obs.inc("hot.count")
            return time.perf_counter() - start

        bare_t = min(bare() for _ in range(3))
        inst_t = min(instrumented() for _ in range(3))
        # Allowing generous CI noise: the no-op span + counter must
        # cost well under 2 microseconds per iteration.
        assert (inst_t - bare_t) / n < 2e-6


class TestAutoHistogram:
    def test_span_feeds_like_named_histogram(self):
        obs.enable()
        for _ in range(4):
            with obs.span("model.predict"):
                pass
        summary = obs.get_registry().histogram("model.predict").summary()
        assert summary["count"] == 4
        assert summary["min"] >= 0.0

    def test_metrics_only_mode_skips_recorder(self):
        obs.enable(capture_spans=False)
        with obs.span("quiet"):
            pass
        assert obs.recorder.spans() == []
        assert obs.get_registry().histogram("quiet").count == 1
