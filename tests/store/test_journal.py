"""Crash-safety tests for the append-only journal and snapshots."""

import json
import os
import signal
import subprocess
import sys
import tempfile

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.errors import StoreError
from repro.store import (
    CRASH_ENV,
    Journal,
    canonical_json,
    decode_record,
    encode_record,
    load_snapshot,
    write_snapshot,
)
from repro.store.journal import replay_latest


class TestEncoding:
    def test_round_trip(self):
        record = {"key": "k", "value": [1, 2.5, "x"], "nested": {"a": 1}}
        assert decode_record(encode_record(record)) == record

    def test_canonical_json_is_key_order_independent(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json(
            {"a": 2, "b": 1}
        )

    def test_canonical_json_rejects_nan(self):
        with pytest.raises(StoreError):
            canonical_json({"x": float("nan")})

    def test_canonical_json_rejects_non_serializable(self):
        with pytest.raises(StoreError):
            canonical_json({"x": object()})

    def test_decode_rejects_garbage(self):
        assert decode_record("not json at all") is None
        assert decode_record("") is None
        assert decode_record('{"crc":"00000000"}') is None
        assert decode_record('{"data":{}}') is None

    def test_decode_rejects_crc_mismatch(self):
        line = encode_record({"key": "k", "n": 1})
        tampered = line.replace('"n":1', '"n":2')
        assert decode_record(line) is not None
        assert decode_record(tampered) is None

    def test_decode_rejects_non_dict_payload(self):
        import zlib

        payload = canonical_json([1, 2, 3])
        crc = zlib.crc32(payload.encode()) & 0xFFFFFFFF
        assert decode_record(f'{{"crc":"{crc:08x}","data":{payload}}}') is None


class TestJournal:
    def test_append_and_reopen(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with Journal(path) as journal:
            journal.append({"key": "a", "n": 1})
            journal.append({"key": "b", "n": 2})
            assert len(journal) == 2
        with Journal(path) as journal:
            assert journal.records() == [
                {"key": "a", "n": 1},
                {"key": "b", "n": 2},
            ]
            assert journal.recovered_drops == 0

    def test_append_batch(self, tmp_path):
        with Journal(tmp_path / "j.jsonl", sync="always") as journal:
            journal.append_batch([{"key": str(i)} for i in range(5)])
            journal.append_batch([])
            assert len(journal) == 5

    def test_unknown_sync_mode(self, tmp_path):
        with pytest.raises(StoreError):
            Journal(tmp_path / "j.jsonl", sync="sometimes")

    def test_closed_journal_raises(self, tmp_path):
        journal = Journal(tmp_path / "j.jsonl")
        journal.close()
        journal.close()  # idempotent
        with pytest.raises(StoreError):
            journal.append({"key": "a"})

    def test_torn_tail_is_truncated(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with Journal(path) as journal:
            journal.append({"key": "a", "n": 1})
            journal.append({"key": "b", "n": 2})
        # Tear the file mid-record, as a crash during write would.
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(encode_record({"key": "c", "n": 3})[:10])
        with Journal(path) as journal:
            assert [r["key"] for r in journal.records()] == ["a", "b"]
            assert journal.recovered_drops == 1
        # The repair is durable: a second open sees a clean file.
        with Journal(path) as journal:
            assert journal.recovered_drops == 0
            assert len(journal) == 2

    def test_bit_flip_in_tail_record_is_dropped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with Journal(path) as journal:
            journal.append({"key": "a", "n": 1})
            journal.append({"key": "b", "n": 2})
        lines = path.read_text().splitlines()
        lines[-1] = lines[-1].replace('"n":2', '"n":7')  # breaks the CRC
        path.write_text("\n".join(lines) + "\n")
        with Journal(path) as journal:
            assert [r["key"] for r in journal.records()] == ["a"]
            assert journal.recovered_drops == 1

    def test_torn_drop_reported_via_metrics(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with Journal(path) as journal:
            journal.append({"key": "a"})
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"crc":"feedface","data":')
        obs.enable()
        with Journal(path):
            pass
        counters = obs.get_registry().report()["counters"]
        assert counters["store.torn_dropped"] == 1

    def test_interior_corruption_raises(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with Journal(path) as journal:
            for key in ("a", "b", "c"):
                journal.append({"key": key})
        lines = path.read_text().splitlines()
        lines[0] = "X" + lines[0][1:]
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(StoreError, match="corrupt"):
            Journal(path)

    def test_truncate_empties_file(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with Journal(path) as journal:
            journal.append({"key": "a"})
            journal.truncate()
            assert len(journal) == 0
        assert path.read_text() == ""

    @settings(max_examples=30, deadline=None)
    @given(
        records=st.lists(
            st.dictionaries(
                st.text(min_size=1, max_size=4),
                st.one_of(st.integers(), st.text(max_size=6)),
                max_size=3,
            ),
            min_size=1,
            max_size=6,
        ),
        cut=st.integers(min_value=0, max_value=400),
    )
    def test_any_tail_truncation_recovers_a_prefix(self, records, cut):
        """Chopping the file at any byte never loses a *committed* prefix."""
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "j.jsonl")
            with Journal(path) as journal:
                journal.append_batch(records)
            size = os.path.getsize(path)
            with open(path, "r+b") as handle:
                handle.truncate(min(cut, size))
            with Journal(path) as journal:
                recovered = journal.records()
            assert recovered == records[: len(recovered)]


class TestReplay:
    def test_latest_record_wins(self):
        folded = replay_latest(
            [
                {"key": "a", "n": 1},
                {"key": "b", "n": 2},
                {"key": "a", "n": 3},
                {"no_key_field": True},
            ]
        )
        assert folded == {
            "a": {"key": "a", "n": 3},
            "b": {"key": "b", "n": 2},
        }


class TestSnapshot:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "snap.jsonl"
        entries = {
            "a": {"key": "a", "n": 1},
            "b": {"key": "b", "n": 2},
        }
        write_snapshot(path, entries)
        assert load_snapshot(path) == entries

    def test_missing_file_is_empty(self, tmp_path):
        assert load_snapshot(tmp_path / "none.jsonl") == {}

    def test_byte_identical_for_equal_states(self, tmp_path):
        entries = {"b": {"key": "b"}, "a": {"key": "a"}}
        write_snapshot(tmp_path / "one.jsonl", entries)
        write_snapshot(tmp_path / "two.jsonl", dict(reversed(entries.items())))
        assert (tmp_path / "one.jsonl").read_bytes() == (
            tmp_path / "two.jsonl"
        ).read_bytes()

    def test_schema_mismatch_raises(self, tmp_path):
        path = tmp_path / "snap.jsonl"
        path.write_text(
            encode_record({"schema": "repro.store/999", "entries": 0}) + "\n"
        )
        with pytest.raises(StoreError, match="schema"):
            load_snapshot(path)

    def test_entry_count_mismatch_raises(self, tmp_path):
        path = tmp_path / "snap.jsonl"
        path.write_text(
            encode_record({"schema": "repro.store/1", "entries": 5}) + "\n"
        )
        with pytest.raises(StoreError, match="declares"):
            load_snapshot(path)

    def test_corrupt_line_raises(self, tmp_path):
        path = tmp_path / "snap.jsonl"
        write_snapshot(path, {"a": {"key": "a"}})
        path.write_text(path.read_text() + "garbage\n")
        with pytest.raises(StoreError, match="corrupt"):
            load_snapshot(path)

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "snap.jsonl"
        path.write_text("\n")
        with pytest.raises(StoreError, match="header"):
            load_snapshot(path)


class TestCrashInjector:
    def test_sigkill_leaves_recoverable_torn_tail(self, tmp_path):
        """The armed fault injector tears a write exactly like a crash."""
        path = tmp_path / "j.jsonl"
        script = (
            "from repro.store import Journal\n"
            f"journal = Journal({str(path)!r}, sync='always')\n"
            "for i in range(10):\n"
            "    journal.append({'key': str(i), 'n': i})\n"
        )
        env = dict(os.environ)
        env[CRASH_ENV] = "4"
        env["PYTHONPATH"] = os.pathsep.join(
            filter(None, [_src_dir(), env.get("PYTHONPATH", "")])
        )
        proc = subprocess.run(
            [sys.executable, "-c", script],
            env=env,
            capture_output=True,
            timeout=60,
        )
        assert proc.returncode == -signal.SIGKILL
        with Journal(path) as journal:
            # Records 0..2 committed whole; the 4th append was torn.
            assert [r["key"] for r in journal.records()] == ["0", "1", "2"]
            assert journal.recovered_drops == 1


def _src_dir() -> str:
    here = os.path.dirname(os.path.abspath(__file__))
    return os.path.join(os.path.dirname(os.path.dirname(here)), "src")


class TestCompaction:
    def test_compact_folds_journal_into_snapshot(self, tmp_path):
        from repro.store.index import SNAPSHOT_NAME, compact

        journal = Journal(tmp_path / "journal.jsonl")
        journal.append({"key": "a", "n": 1})
        journal.append({"key": "a", "n": 2})
        journal.append({"key": "b", "n": 1})
        folded, total = compact(tmp_path, journal)
        assert (folded, total) == (3, 2)
        assert len(journal) == 0
        snapshot = load_snapshot(tmp_path / SNAPSHOT_NAME)
        assert snapshot["a"]["n"] == 2

    def test_crash_between_snapshot_and_truncate_is_idempotent(
        self, tmp_path
    ):
        """Replaying journal records already in the snapshot is harmless."""
        from repro.store.index import SNAPSHOT_NAME, compact

        journal = Journal(tmp_path / "journal.jsonl")
        journal.append({"key": "a", "n": 1})
        # Simulate the crash: snapshot written, journal NOT truncated.
        write_snapshot(
            tmp_path / SNAPSHOT_NAME, replay_latest(journal.records())
        )
        folded, total = compact(tmp_path, journal)
        assert (folded, total) == (1, 1)
        assert load_snapshot(tmp_path / SNAPSHOT_NAME)["a"]["n"] == 1

    def test_report_includes_compaction_counters(self, tmp_path):
        from repro.store.index import compact

        obs.enable()
        journal = Journal(tmp_path / "journal.jsonl")
        journal.append({"key": "a"})
        compact(tmp_path, journal)
        report = obs.run_report()
        assert report["metrics"]["counters"]["store.compactions"] == 1
        assert "store.compact" in report["spans"]["by_name"]
        journal.close()


class TestDerivedRates:
    def test_store_hit_rate_in_run_report(self):
        obs.enable()
        obs.inc("store.hits", 3)
        obs.inc("store.misses", 1)
        report = obs.run_report()
        assert report["derived"]["store.hit_rate"] == pytest.approx(0.75)

    def test_no_rate_without_probes(self):
        obs.enable()
        obs.inc("dse.candidates", 0)
        report = obs.run_report()
        assert "store.hit_rate" not in report["derived"]


def test_journal_lines_are_plain_jsonl(tmp_path):
    """The on-disk format stays greppable: one JSON object per line."""
    path = tmp_path / "j.jsonl"
    with Journal(path) as journal:
        journal.append({"key": "a", "n": 1})
    (line,) = path.read_text().splitlines()
    wrapper = json.loads(line)
    assert set(wrapper) == {"crc", "data"}
    assert wrapper["data"] == {"key": "a", "n": 1}
