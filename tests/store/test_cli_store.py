"""CLI tests: the ``store`` subcommand and crash-resumable experiments."""

import json
import os
import pathlib
import signal
import subprocess
import sys

import pytest

from repro.experiments.runner import main
from repro.fpga.flexcl import FlexCLEstimator
from repro.model.predictor import Fidelity
from repro.opencl.platform import ADM_PCIE_7V3
from repro.store import CRASH_ENV, DesignStore, evaluation_context
from repro.tiling import make_baseline_design

_REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]


def _seed_store(tmp_path, small_jacobi2d) -> str:
    """Create a CLI-layout store with one recorded entry."""
    design = make_baseline_design(small_jacobi2d, (8, 8), (2, 2), 4)
    context = evaluation_context(
        ADM_PCIE_7V3, Fidelity.REFINED, FlexCLEstimator()
    )
    with DesignStore(tmp_path / "store" / "results") as store:
        store.record_design(design, context, cycles=10.0)
    return str(tmp_path / "store")


class TestStoreSubcommand:
    def test_stats(self, tmp_path, small_jacobi2d, capsys):
        root = _seed_store(tmp_path, small_jacobi2d)
        assert main(["store", "stats", "--store", root]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["entries"] == 1
        assert stats["schema"] == "repro.store/1"

    def test_compact(self, tmp_path, small_jacobi2d, capsys):
        root = _seed_store(tmp_path, small_jacobi2d)
        assert main(["store", "compact", "--store", root]) == 0
        out = capsys.readouterr().out
        assert "folded 1 journal record(s)" in out
        assert (pathlib.Path(root) / "results" / "snapshot.jsonl").exists()

    def test_gc(self, tmp_path, small_jacobi2d, capsys):
        root = _seed_store(tmp_path, small_jacobi2d)
        assert main(["store", "gc", "--store", root]) == 0
        assert "dropped 0" in capsys.readouterr().out

    def test_invalidate(self, tmp_path, small_jacobi2d, capsys):
        root = _seed_store(tmp_path, small_jacobi2d)
        assert main(["store", "invalidate", "--store", root]) == 0
        assert "Invalidated 1 entry" in capsys.readouterr().out
        main(["store", "stats", "--store", root])
        assert json.loads(capsys.readouterr().out)["entries"] == 0

    def test_action_required(self, capsys):
        with pytest.raises(SystemExit):
            main(["store"])
        assert "requires an action" in capsys.readouterr().err

    def test_unknown_action_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["store", "defragment", "--store", "/tmp/x"])

    def test_store_dir_required(self, capsys):
        with pytest.raises(SystemExit):
            main(["store", "stats"])
        assert "--store" in capsys.readouterr().err


def _run_cli(args, crash_after=None, timeout=300):
    env = dict(os.environ)
    env.pop(CRASH_ENV, None)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(
            None,
            [str(_REPO_ROOT / "src"), env.get("PYTHONPATH", "")],
        )
    )
    if crash_after is not None:
        env[CRASH_ENV] = str(crash_after)
    return subprocess.run(
        [sys.executable, "-m", "repro.experiments"] + args,
        env=env,
        capture_output=True,
        text=True,
        timeout=timeout,
        cwd=str(_REPO_ROOT),
    )


def _report_text(stdout: str) -> str:
    """The experiment report minus the run-dependent store summary."""
    return "\n".join(
        line
        for line in stdout.splitlines()
        if not line.startswith("Store ")
    )


class TestCrashResume:
    def test_sigkilled_sweep_resumes_byte_identical(self, tmp_path):
        """The tentpole guarantee, end to end at the CLI.

        A ``table3`` run is SIGKILLed mid-write by the fault injector
        (tearing a journal record on the way down), resumed from the
        same ``--store``, and must emit a byte-identical report to an
        uninterrupted run — while actually warm-starting.
        """
        args = ["table3", "--benchmarks", "jacobi-1d"]
        crashed_dir = tmp_path / "crashed"
        fresh_dir = tmp_path / "fresh"

        crashed = _run_cli(
            args + ["--store", str(crashed_dir)], crash_after=40
        )
        assert crashed.returncode == -signal.SIGKILL

        resumed = _run_cli(args + ["--store", str(crashed_dir)])
        assert resumed.returncode == 0, resumed.stderr

        uninterrupted = _run_cli(args + ["--store", str(fresh_dir)])
        assert uninterrupted.returncode == 0, uninterrupted.stderr

        assert _report_text(resumed.stdout) == _report_text(
            uninterrupted.stdout
        )
        # The resume genuinely warm-started from the recovered journal.
        (summary,) = [
            line
            for line in resumed.stdout.splitlines()
            if line.startswith("Store ")
        ]
        hits = int(summary.split("(")[1].split(" hits")[0])
        assert hits > 0

        # The torn record was detected and dropped, not served.
        stats = _run_cli(["store", "stats", "--store", str(crashed_dir)])
        assert stats.returncode == 0
        assert json.loads(stats.stdout)["entries"] > 0
