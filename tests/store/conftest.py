"""Store tests touch the process-global metrics registry; isolate them."""

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def clean_obs():
    """Start every test disabled and empty; leave no state behind."""
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()
