"""Tests for sweep checkpointing and the checkpointed executor."""

import pytest

from repro.errors import StoreError
from repro.opencl.platform import ADM_PCIE_7V3
from repro.sim.executor import SimulationExecutor
from repro.store import CheckpointedExecutor, DesignStore, SweepCheckpoint
from repro.tiling import make_baseline_design


@pytest.fixture
def design(small_jacobi2d):
    return make_baseline_design(small_jacobi2d, (8, 8), (2, 2), 4)


class TestSweepCheckpoint:
    def test_run_computes_once(self, tmp_path):
        calls = []

        def compute():
            calls.append(1)
            return {"x": 1.5}

        with SweepCheckpoint(tmp_path / "c.jsonl") as checkpoint:
            assert checkpoint.run("step", compute) == {"x": 1.5}
            assert checkpoint.run("step", compute) == {"x": 1.5}
        assert len(calls) == 1

    def test_resume_returns_recorded_payload(self, tmp_path):
        path = tmp_path / "c.jsonl"
        with SweepCheckpoint(path) as checkpoint:
            checkpoint.run("step", lambda: [1.0, {"a": 0.25}])
        with SweepCheckpoint(path) as checkpoint:
            # A resumed sweep must never recompute a completed step.
            value = checkpoint.run(
                "step", lambda: pytest.fail("recomputed a durable step")
            )
            assert value == [1.0, {"a": 0.25}]
            assert len(checkpoint) == 1

    def test_get_and_put(self, tmp_path):
        with SweepCheckpoint(tmp_path / "c.jsonl") as checkpoint:
            assert checkpoint.get("missing") is None
            assert checkpoint.get("missing", default=7) == 7
            checkpoint.put("k", 3.25)
            assert checkpoint.get("k") == 3.25

    def test_durable_before_run_returns(self, tmp_path):
        path = tmp_path / "c.jsonl"
        checkpoint = SweepCheckpoint(path)
        checkpoint.run("step", lambda: 42)
        # No flush/close: the record must already be on disk (fsynced).
        with SweepCheckpoint(path) as other:
            assert other.get("step") == 42
        checkpoint.close()

    def test_torn_tail_recovered(self, tmp_path):
        path = tmp_path / "c.jsonl"
        with SweepCheckpoint(path) as checkpoint:
            checkpoint.put("a", 1)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"crc":"00000000","data"')
        with SweepCheckpoint(path) as checkpoint:
            assert checkpoint.recovered_drops == 1
            assert checkpoint.get("a") == 1


class TestCheckpointedExecutor:
    def test_passthrough_matches_simulator(self, design):
        plain = SimulationExecutor(ADM_PCIE_7V3)
        front = CheckpointedExecutor(ADM_PCIE_7V3)
        assert front.checkpoint is None
        assert front.total_cycles(design) == plain.run(design).total_cycles

    def test_checkpointed_matches_simulator(self, tmp_path, design):
        plain = SimulationExecutor(ADM_PCIE_7V3)
        result = plain.run(design)
        with SweepCheckpoint(tmp_path / "c.jsonl") as checkpoint:
            front = CheckpointedExecutor(ADM_PCIE_7V3, checkpoint)
            assert front.total_cycles(design) == result.total_cycles
            total, fractions = front.breakdown(design)
            assert total == result.total_cycles
            assert fractions == result.breakdown.fractions()

    def test_resume_skips_simulation(self, tmp_path, design):
        path = tmp_path / "c.jsonl"
        with SweepCheckpoint(path) as checkpoint:
            front = CheckpointedExecutor(ADM_PCIE_7V3, checkpoint)
            expected = front.total_cycles(design)
        with SweepCheckpoint(path) as checkpoint:
            front = CheckpointedExecutor(ADM_PCIE_7V3, checkpoint)
            front._executor = None  # any simulation would crash
            assert front.total_cycles(design) == expected

    def test_board_keys_do_not_collide(self, tmp_path, design):
        slow = ADM_PCIE_7V3.with_bandwidth(
            ADM_PCIE_7V3.bandwidth_bytes_per_s / 4
        )
        with SweepCheckpoint(tmp_path / "c.jsonl") as checkpoint:
            fast_front = CheckpointedExecutor(ADM_PCIE_7V3, checkpoint)
            slow_front = CheckpointedExecutor(slow, checkpoint)
            assert fast_front.total_cycles(design) != slow_front.total_cycles(
                design
            )

    def test_malformed_breakdown_payload_raises(self, tmp_path, design):
        with SweepCheckpoint(tmp_path / "c.jsonl") as checkpoint:
            front = CheckpointedExecutor(ADM_PCIE_7V3, checkpoint)
            checkpoint.put(
                front._key("sim.breakdown", design), [1.0, "not-a-dict"]
            )
            with pytest.raises(StoreError, match="breakdown"):
                front.breakdown(design)


class TestSensitivityResume:
    def test_interrupted_sweep_resumes_identically(self, tmp_path, design):
        from repro.dse.sensitivity import SensitivityAnalyzer

        bandwidths = [4e9, 8e9, 16e9]
        store_root = tmp_path / "s"
        checkpoint_path = tmp_path / "c.jsonl"
        with DesignStore(store_root) as store, SweepCheckpoint(
            checkpoint_path
        ) as checkpoint:
            cold = SensitivityAnalyzer(store=store, checkpoint=checkpoint)
            first = cold.sweep_bandwidth(design, bandwidths)
            assert cold.stats().evaluated == len(bandwidths)
        with DesignStore(store_root) as store, SweepCheckpoint(
            checkpoint_path
        ) as checkpoint:
            resumed = SensitivityAnalyzer(
                store=store, checkpoint=checkpoint
            )
            second = resumed.sweep_bandwidth(design, bandwidths)
            # Predictions come from the store, measurements from the
            # checkpoint: nothing re-evaluates, values are identical.
            assert resumed.stats().evaluated == 0
            assert resumed.stats().store_hits == len(bandwidths)
        assert second == first
