"""Tests for the content-addressed design store and its evaluator wiring."""

import dataclasses

import pytest

from repro.dse import CandidateEvaluator, ResourceBudget
from repro.errors import StoreError
from repro.fpga.estimator import ResourceEstimator
from repro.fpga.flexcl import FlexCLEstimator
from repro.fpga.resources import VIRTEX7_690T
from repro.model.predictor import Fidelity
from repro.opencl.platform import ADM_PCIE_7V3
from repro.store import (
    DesignStore,
    SNAPSHOT_NAME,
    STORE_SCHEMA,
    design_key,
    evaluation_context,
)
from repro.store.journal import Journal
from repro.tiling import make_baseline_design


@pytest.fixture
def design(small_jacobi2d):
    return make_baseline_design(small_jacobi2d, (8, 8), (2, 2), 4)


@pytest.fixture
def context():
    return evaluation_context(
        ADM_PCIE_7V3, Fidelity.REFINED, FlexCLEstimator()
    )


@pytest.fixture
def budget():
    return ResourceBudget.from_device(VIRTEX7_690T)


class TestContentAddressing:
    def test_context_changes_with_board(self, context):
        board = ADM_PCIE_7V3.with_bandwidth(
            ADM_PCIE_7V3.bandwidth_bytes_per_s / 2
        )
        assert (
            evaluation_context(board, Fidelity.REFINED, FlexCLEstimator())
            != context
        )

    def test_context_changes_with_fidelity(self, context):
        assert (
            evaluation_context(
                ADM_PCIE_7V3, Fidelity.PAPER, FlexCLEstimator()
            )
            != context
        )

    def test_context_changes_with_flexcl_config(self, context):
        flexcl = FlexCLEstimator(max_partitions=4)
        assert (
            evaluation_context(ADM_PCIE_7V3, Fidelity.REFINED, flexcl)
            != context
        )

    def test_context_stable_across_equal_configs(self, context):
        assert (
            evaluation_context(
                dataclasses.replace(ADM_PCIE_7V3),
                Fidelity.REFINED,
                FlexCLEstimator(),
            )
            == context
        )

    def test_key_changes_with_design(self, design, context):
        other = design.with_fused_depth(design.fused_depth + 1)
        assert design_key(design.signature(), context) != design_key(
            other.signature(), context
        )


class TestDesignStore:
    def test_round_trip_across_reopen(self, tmp_path, design, context):
        estimator = ResourceEstimator()
        resources = estimator.estimate(design)
        with DesignStore(tmp_path / "s") as store:
            assert store.lookup_design(design, context) is None
            store.record_design(
                design, context, cycles=123.5, resources=resources
            )
        with DesignStore(tmp_path / "s") as store:
            stored = store.lookup_design(design, context)
        assert stored is not None and stored.complete
        assert stored.cycles == 123.5
        assert stored.resources == resources

    def test_partial_entries_merge_upgrade(self, tmp_path, design, context):
        resources = ResourceEstimator().estimate(design)
        with DesignStore(tmp_path / "s") as store:
            store.record_design(design, context, cycles=7.0)
            stored = store.lookup_design(design, context)
            assert stored.cycles == 7.0 and stored.resources is None
            assert not stored.complete
            store.record_design(design, context, resources=resources)
            stored = store.lookup_design(design, context)
        assert stored.complete
        assert stored.cycles == 7.0
        assert stored.resources == resources

    def test_empty_record_is_a_noop(self, tmp_path, design, context):
        with DesignStore(tmp_path / "s") as store:
            store.record_design(design, context)
            assert len(store) == 0

    def test_other_context_never_served(self, tmp_path, design, context):
        other = evaluation_context(
            ADM_PCIE_7V3, Fidelity.PAPER, FlexCLEstimator()
        )
        with DesignStore(tmp_path / "s") as store:
            store.record_design(design, context, cycles=9.0)
            assert store.lookup_design(design, other) is None
            assert store.hits == 0
            assert store.misses == 1

    def test_other_schema_version_not_served(
        self, tmp_path, design, context
    ):
        root = tmp_path / "s"
        with DesignStore(root) as store:
            store.record_design(design, context, cycles=1.0)
        # Rewrite the journal entry under a foreign schema version.
        key = design_key(design.signature(), context)
        with Journal(root / "journal.jsonl") as journal:
            journal.append(
                {"key": key, "v": "repro.store/999", "ctx": context}
            )
        with DesignStore(root) as store:
            assert store.lookup_design(design, context) is None

    def test_batched_writes_flush_on_close(self, tmp_path, design, context):
        root = tmp_path / "s"
        store = DesignStore(root, batch_size=100)
        store.record_design(design, context, cycles=1.0)
        assert (root / "journal.jsonl").read_text() == ""
        store.close()
        assert len((root / "journal.jsonl").read_text().splitlines()) == 1

    def test_batch_size_validation(self, tmp_path):
        with pytest.raises(StoreError):
            DesignStore(tmp_path / "s", batch_size=0)

    def test_corrupt_snapshot_raises_store_error(self, tmp_path):
        root = tmp_path / "s"
        root.mkdir()
        (root / SNAPSHOT_NAME).write_text("garbage\n")
        with pytest.raises(StoreError):
            DesignStore(root)

    def test_stats_summary(self, tmp_path, design, context):
        with DesignStore(tmp_path / "s") as store:
            store.record_design(design, context, cycles=1.0)
            store.lookup_design(design, context)
            stats = store.stats_summary()
        assert stats["schema"] == STORE_SCHEMA
        assert stats["entries"] == 1
        assert stats["complete_entries"] == 0
        assert stats["contexts"] == {context: 1}
        assert stats["runtime"]["writes"] == 1
        assert stats["runtime"]["hits"] == 1

    def test_compact_preserves_entries(self, tmp_path, design, context):
        root = tmp_path / "s"
        with DesignStore(root) as store:
            store.record_design(design, context, cycles=4.0)
            outcome = store.compact()
        assert outcome == {"journal_folded": 1, "snapshot_entries": 1}
        with DesignStore(root) as store:
            assert store.lookup_design(design, context).cycles == 4.0
            assert len(store._journal) == 0

    def test_gc_drops_foreign_schema(self, tmp_path, design, context):
        root = tmp_path / "s"
        with DesignStore(root) as store:
            store.record_design(design, context, cycles=1.0)
        key = design_key(design.signature(), context)
        with Journal(root / "journal.jsonl") as journal:
            journal.append({"key": key + "x", "v": "old/0", "ctx": "c"})
        with DesignStore(root) as store:
            assert len(store) == 2
            assert store.gc() == 1
            assert len(store) == 1
        with DesignStore(root) as store:
            assert store.lookup_design(design, context) is not None

    def test_gc_keep_context(self, tmp_path, design, context):
        other = evaluation_context(
            ADM_PCIE_7V3, Fidelity.PAPER, FlexCLEstimator()
        )
        with DesignStore(tmp_path / "s") as store:
            store.record_design(design, context, cycles=1.0)
            store.record_design(design, other, cycles=2.0)
            assert store.gc(keep_context=context) == 1
            assert store.lookup_design(design, context) is not None
            assert store.lookup_design(design, other) is None

    def test_invalidate_one_context(self, tmp_path, design, context):
        other = evaluation_context(
            ADM_PCIE_7V3, Fidelity.PAPER, FlexCLEstimator()
        )
        with DesignStore(tmp_path / "s") as store:
            store.record_design(design, context, cycles=1.0)
            store.record_design(design, other, cycles=2.0)
            assert store.invalidate(context=other) == 1
            assert store.invalidated == 1
            assert store.lookup_design(design, context) is not None

    def test_invalidate_everything(self, tmp_path, design, context):
        root = tmp_path / "s"
        with DesignStore(root) as store:
            store.record_design(design, context, cycles=1.0)
            assert store.invalidate() == 1
        with DesignStore(root) as store:
            assert len(store) == 0

    def test_unwritable_root_raises_store_error(self, tmp_path):
        blocker = tmp_path / "file"
        blocker.write_text("")
        with pytest.raises(StoreError):
            DesignStore(blocker / "s")


class TestEvaluatorIntegration:
    def _candidates(self, design):
        return [design.with_fused_depth(h) for h in (1, 2, 4, 8)]

    def test_warm_start_skips_model_evaluations(
        self, tmp_path, design, budget
    ):
        root = tmp_path / "s"
        with DesignStore(root) as store:
            cold = CandidateEvaluator(store=store)
            cold_result = cold.explore(self._candidates(design), budget)
            assert cold.stats.evaluated == len(self._candidates(design))
            assert cold.stats.store_hits == 0
        with DesignStore(root) as store:
            warm = CandidateEvaluator(store=store)
            warm_result = warm.explore(self._candidates(design), budget)
            assert warm.stats.evaluated == 0
            assert warm.stats.store_hits == len(self._candidates(design))
        assert (
            warm_result.best.design.signature()
            == cold_result.best.design.signature()
        )
        assert (
            warm_result.best.predicted_cycles
            == cold_result.best.predicted_cycles
        )
        assert warm_result.best.resources == cold_result.best.resources

    def test_predict_cycles_warm_start(self, tmp_path, design):
        root = tmp_path / "s"
        with DesignStore(root) as store:
            cold = CandidateEvaluator(store=store)
            expected = cold.predict_cycles(design)
        with DesignStore(root) as store:
            warm = CandidateEvaluator(store=store)
            assert warm.predict_cycles(design) == expected
            assert warm.stats.store_hits == 1
            assert warm.stats.evaluated == 0
            # Second call is a plain memo hit?  No: store-served
            # predictions stay store-backed (the model cache has no
            # value for them), so the store answers again.
            assert warm.predict_cycles(design) == expected
            assert warm.stats.evaluated == 0

    def test_parallel_batch_writes_through_consistently(
        self, tmp_path, design, budget
    ):
        candidates = self._candidates(design) * 2
        root = tmp_path / "s"
        with DesignStore(root) as store:
            parallel = CandidateEvaluator(store=store, max_workers=4)
            parallel.explore(candidates, budget)
        serial = CandidateEvaluator()
        expected = serial.explore(candidates, budget)
        with DesignStore(root) as store:
            warm = CandidateEvaluator(store=store)
            warmed = warm.explore(candidates, budget)
            assert warm.stats.evaluated == 0
        assert (
            warmed.best.predicted_cycles == expected.best.predicted_cycles
        )

    def test_store_disabled_paths_unchanged(self, design, budget):
        engine = CandidateEvaluator()
        assert engine.store is None and engine.store_context is None
        result = engine.explore(self._candidates(design), budget)
        assert engine.stats.store_hits == 0
        assert result.best is not None

    def test_differing_fidelity_does_not_share_entries(
        self, tmp_path, design, budget
    ):
        root = tmp_path / "s"
        with DesignStore(root) as store:
            refined = CandidateEvaluator(
                store=store, fidelity=Fidelity.REFINED
            )
            refined.explore(self._candidates(design), budget)
        with DesignStore(root) as store:
            paper = CandidateEvaluator(store=store, fidelity=Fidelity.PAPER)
            paper.explore(self._candidates(design), budget)
            assert paper.stats.store_hits == 0
            assert paper.stats.evaluated == len(self._candidates(design))


class TestMemoBounding:
    def test_max_memo_entries_validation(self):
        from repro.errors import DesignSpaceError

        with pytest.raises(DesignSpaceError):
            CandidateEvaluator(max_memo_entries=0)

    def test_memo_is_bounded(self, design, budget):
        engine = CandidateEvaluator(max_memo_entries=2)
        candidates = [design.with_fused_depth(h) for h in (1, 2, 4, 8)]
        engine.explore(candidates, budget)
        assert engine.cache_size() == 2

    def test_eviction_preserves_results(self, design, budget):
        unbounded = CandidateEvaluator()
        bounded = CandidateEvaluator(max_memo_entries=1)
        candidates = [design.with_fused_depth(h) for h in (1, 2, 4, 8)]
        expected = unbounded.explore(candidates, budget)
        actual = bounded.explore(candidates, budget)
        assert [e.predicted_cycles for e in actual.candidates] == [
            e.predicted_cycles for e in expected.candidates
        ]

    def test_evicted_design_reloads_from_store(
        self, tmp_path, design, budget
    ):
        with DesignStore(tmp_path / "s") as store:
            engine = CandidateEvaluator(store=store, max_memo_entries=1)
            a = design.with_fused_depth(1)
            b = design.with_fused_depth(2)
            assert engine.evaluate(a, budget) is not None
            assert engine.evaluate(b, budget) is not None  # evicts a
            assert engine.evaluate(a, budget) is not None
            assert engine.stats.evaluated == 2
            assert engine.stats.store_hits == 1

    def test_lru_order_keeps_hot_entries(self, design, budget):
        engine = CandidateEvaluator(max_memo_entries=2)
        a = design.with_fused_depth(1)
        b = design.with_fused_depth(2)
        c = design.with_fused_depth(4)
        engine.evaluate(a, budget)
        engine.evaluate(b, budget)
        engine.evaluate(a, budget)  # refresh a; b is now LRU
        engine.evaluate(c, budget)  # evicts b
        engine.evaluate(a, budget)
        assert engine.stats.cache_hits == 2
        assert engine.stats.evaluated == 3
