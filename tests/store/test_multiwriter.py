"""Multi-writer design store: per-writer journals, merge, compaction.

The process-sharded service gives every replica its own writer slot
(``journal-<writer>.jsonl``) in one shared store directory.  These
tests pin the coordination contract: writers never interleave bytes,
a reopened store sees the union of every journal, same-key records
merge by completeness, a sibling's torn tail is a live write frontier
(tolerated, never repaired), and offline maintenance folds every
journal into one snapshot.
"""

import pytest

from repro.errors import StoreError
from repro.fpga.estimator import ResourceEstimator
from repro.fpga.flexcl import FlexCLEstimator
from repro.model.predictor import Fidelity
from repro.opencl.platform import ADM_PCIE_7V3
from repro.store import DesignStore, SNAPSHOT_NAME, evaluation_context
from repro.tiling import make_baseline_design


@pytest.fixture
def design(small_jacobi2d):
    return make_baseline_design(small_jacobi2d, (8, 8), (2, 2), 4)


@pytest.fixture
def other_design(small_jacobi2d):
    return make_baseline_design(small_jacobi2d, (16, 16), (2, 2), 4)


@pytest.fixture
def context():
    return evaluation_context(
        ADM_PCIE_7V3, Fidelity.REFINED, FlexCLEstimator()
    )


def _journals(root):
    return sorted(p.name for p in root.glob("journal*.jsonl"))


class TestWriterSlots:
    def test_writer_names_the_journal(self, tmp_path):
        with DesignStore(tmp_path / "s", writer="replica-0") as store:
            assert store.writer == "replica-0"
        assert _journals(tmp_path / "s") == ["journal-replica-0.jsonl"]

    def test_writer_name_validation(self, tmp_path):
        for bad in ("", "a/b", "a b", "a\nb", "..", "x" * 65):
            with pytest.raises(StoreError):
                DesignStore(tmp_path / "s", writer=bad)

    def test_default_writer_keeps_legacy_journal(self, tmp_path):
        with DesignStore(tmp_path / "s"):
            pass
        assert _journals(tmp_path / "s") == ["journal.jsonl"]


class TestMultiWriterMerge:
    def test_disjoint_writers_union_on_reopen(
        self, tmp_path, design, other_design, context
    ):
        resources = ResourceEstimator().estimate(design)
        with DesignStore(tmp_path / "s", writer="a") as a:
            a.record_design(design, context, cycles=1.0)
        with DesignStore(tmp_path / "s", writer="b") as b:
            b.record_design(
                other_design, context, cycles=2.0, resources=resources
            )
        with DesignStore(tmp_path / "s") as merged:
            assert len(merged) == 2
            assert merged.lookup_design(design, context).cycles == 1.0
            assert (
                merged.lookup_design(other_design, context).cycles == 2.0
            )

    def test_open_writer_sees_finished_siblings(
        self, tmp_path, design, context
    ):
        with DesignStore(tmp_path / "s", writer="a") as a:
            a.record_design(design, context, cycles=3.0)
        with DesignStore(tmp_path / "s", writer="b") as b:
            assert b.lookup_design(design, context).cycles == 3.0
            assert b.stats_summary()["sibling_journals"] == 1

    def test_same_key_merges_by_completeness(
        self, tmp_path, design, context
    ):
        # Writer a knows the cycles, writer b knows the resources —
        # no global order exists, so the merge fills the gaps instead
        # of picking a winner.
        resources = ResourceEstimator().estimate(design)
        with DesignStore(tmp_path / "s", writer="a") as a:
            a.record_design(design, context, cycles=7.0)
        with DesignStore(tmp_path / "s", writer="b") as b:
            b.record_design(design, context, resources=resources)
        with DesignStore(tmp_path / "s") as merged:
            stored = merged.lookup_design(design, context)
        assert stored.complete
        assert stored.cycles == 7.0
        assert stored.resources == resources

    def test_torn_sibling_tail_is_tolerated(
        self, tmp_path, design, other_design, context
    ):
        with DesignStore(tmp_path / "s", writer="a") as a:
            a.record_design(design, context, cycles=5.0)
        journal_a = tmp_path / "s" / "journal-a.jsonl"
        intact = journal_a.read_bytes()
        # A torn tail is what a concurrent writer's in-flight append
        # looks like: everything before it is valid, the tail is not.
        journal_a.write_bytes(intact + b'{"torn": ')
        with DesignStore(tmp_path / "s", writer="b") as b:
            assert b.lookup_design(design, context).cycles == 5.0
        # Tolerant read never repairs someone else's file.
        assert journal_a.read_bytes() == intact + b'{"torn": '


class TestMultiWriterMaintenance:
    def test_compact_folds_every_journal(
        self, tmp_path, design, other_design, context
    ):
        with DesignStore(tmp_path / "s", writer="a") as a:
            a.record_design(design, context, cycles=1.0)
        with DesignStore(tmp_path / "s", writer="b") as b:
            b.record_design(other_design, context, cycles=2.0)
        with DesignStore(tmp_path / "s", writer="a") as a:
            report = a.compact()
        assert report["snapshot_entries"] == 2
        assert (tmp_path / "s" / SNAPSHOT_NAME).exists()
        # Foreign journals are folded into the snapshot and removed.
        assert _journals(tmp_path / "s") == ["journal-a.jsonl"]
        with DesignStore(tmp_path / "s") as merged:
            assert len(merged) == 2

    def test_invalidate_does_not_resurrect_from_siblings(
        self, tmp_path, design, context
    ):
        with DesignStore(tmp_path / "s", writer="a") as a:
            a.record_design(design, context, cycles=1.0)
        with DesignStore(tmp_path / "s", writer="b") as b:
            assert b.invalidate(context) == 1
        # journal-a.jsonl still named the dropped entry; a rewrite
        # that left it behind would bring the entry back on reopen.
        with DesignStore(tmp_path / "s") as merged:
            assert merged.lookup_design(design, context) is None
