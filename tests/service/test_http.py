"""HTTP surface + client, end to end on a real socket (port 0).

Includes the acceptance flows: byte-identical repeat results, overload
(429 + Retry-After), and a server restart answering from the persistent
store without re-running the model.
"""

from __future__ import annotations

import io
import json
import threading
import urllib.error
import urllib.request

import pytest

from repro import obs
from repro.errors import ServiceError, ServiceOverloadError
from repro.service import (
    JobFailedError,
    JobRequest,
    ServiceClient,
    SynthesisService,
    make_server,
    write_result_program,
)
from repro.service.http import _Handler
from repro.store import DesignStore

from tests.service.conftest import echo_pipeline

WAIT_S = 60.0


@pytest.fixture
def served():
    """A live server+client on an OS-assigned port; always torn down."""
    resources = []

    def build(**service_kw):
        service_kw.setdefault("workers", 2)
        service = SynthesisService(**service_kw)
        server = make_server(service, port=0)
        thread = threading.Thread(
            target=server.serve_forever, daemon=True
        )
        thread.start()
        host, port = server.server_address[:2]
        client = ServiceClient(f"http://{host}:{port}")
        resources.append((server, service))
        return service, client

    yield build
    for server, service in resources:
        server.shutdown()
        server.server_close()
        service.shutdown(drain=False, timeout=10.0)


def _get_raw(client: ServiceClient, path: str):
    with urllib.request.urlopen(client.base_url + path, timeout=10) as r:
        return r.status, r.read()


class TestRoutes:
    def test_health(self, served):
        _, client = served(pipeline=echo_pipeline)
        health = client.health()
        assert health["status"] == "ok"
        assert health["queue_capacity"] == 64

    def test_submit_and_wait(self, served):
        _, client = served(pipeline=echo_pipeline)
        job = client.submit(benchmark="jacobi-2d")
        assert job["state"] in ("queued", "running", "done")
        assert job["coalesced"] is False
        result = client.wait(job["id"], timeout_s=WAIT_S)
        assert result["echo"]["benchmark"] == "jacobi-2d"

    def test_job_status_view(self, served):
        _, client = served(pipeline=echo_pipeline)
        job = client.submit(benchmark="jacobi-2d", priority=2)
        status = client.job(job["id"])
        assert status["id"] == job["id"]
        assert status["request"]["priority"] == 2

    def test_unknown_job_404(self, served):
        _, client = served(pipeline=echo_pipeline)
        with pytest.raises(ServiceError, match="unknown job"):
            client.job("job-424242")
        with pytest.raises(ServiceError, match="unknown job"):
            client.result("job-424242")

    def test_unknown_route_404(self, served):
        _, client = served(pipeline=echo_pipeline)
        payload = client._call("GET", "/nope")
        assert payload["_status"] == 404
        assert "no such route" in payload["error"]

    def test_malformed_payload_400(self, served):
        _, client = served(pipeline=echo_pipeline)
        with pytest.raises(ServiceError, match="unknown job field"):
            client.submit(benchmark="jacobi-2d", bogus_field=1)
        with pytest.raises(ServiceError, match="design"):
            client.submit(benchmark="jacobi-2d", design="quantum")

    def test_failed_job_409(self, served):
        def broken(_job, _evaluator):
            raise ServiceError("synthetic failure")

        _, client = served(pipeline=broken)
        job = client.submit(benchmark="jacobi-2d")
        with pytest.raises(JobFailedError) as excinfo:
            client.wait(job["id"], timeout_s=WAIT_S)
        assert "synthetic failure" in str(excinfo.value)
        assert excinfo.value.job["state"] == "failed"

    def test_cancel_via_delete(self, served):
        # One busy worker keeps the second job queued until the
        # cancellation lands.
        release = threading.Event()
        entered = threading.Event()

        def gated(job, _evaluator):
            entered.set()
            release.wait(WAIT_S)
            return {"ok": True}

        _, client = served(pipeline=gated, workers=1)
        blocker = client.submit(benchmark="jacobi-1d")
        assert entered.wait(WAIT_S)
        queued = client.submit(benchmark="jacobi-2d")
        cancelled = client.cancel(queued["id"])
        assert cancelled["id"] == queued["id"]
        release.set()
        with pytest.raises(JobFailedError, match="cancelled"):
            client.wait(queued["id"], timeout_s=WAIT_S)
        client.wait(blocker["id"], timeout_s=WAIT_S)

    def test_metricsz_reports_service_stats(self, served):
        _, client = served(pipeline=echo_pipeline)
        job = client.submit(benchmark="jacobi-2d")
        client.wait(job["id"], timeout_s=WAIT_S)
        metrics = client.metrics()
        assert metrics["service"]["completed"] == 1
        assert "evaluator" in metrics
        assert metrics["schema"].startswith("repro.run_report")


class TestOverload:
    def test_429_with_retry_after(self, served):
        release = threading.Event()
        entered = threading.Event()

        def gated(job, _evaluator):
            entered.set()
            release.wait(WAIT_S)
            return {"ok": True}

        _, client = served(pipeline=gated, workers=1, queue_depth=1)
        client.submit(benchmark="jacobi-1d")
        assert entered.wait(WAIT_S)
        client.submit(benchmark="jacobi-2d")
        with pytest.raises(ServiceOverloadError) as excinfo:
            client.submit(benchmark="jacobi-3d")
        assert excinfo.value.retry_after_s >= 1.0
        release.set()


class TestDeterminism:
    def test_repeat_results_are_byte_identical(self, served):
        _, client = served()
        request = dict(
            benchmark="jacobi-2d", grid_shape=[32, 32], iterations=4
        )
        first = client.submit(**request)
        client.wait(first["id"], timeout_s=120.0)
        second = client.submit(**request)
        client.wait(second["id"], timeout_s=120.0)
        assert first["id"] != second["id"]
        _, raw_first = _get_raw(client, f"/jobs/{first['id']}/result")
        _, raw_second = _get_raw(client, f"/jobs/{second['id']}/result")
        # The payloads differ only in the job id envelope.
        body_first = json.loads(raw_first)["result"]
        body_second = json.loads(raw_second)["result"]
        canon = lambda body: json.dumps(body, sort_keys=True)  # noqa: E731
        assert canon(body_first) == canon(body_second)

    def test_inflight_coalescing_over_http(self, served):
        release = threading.Event()
        entered = threading.Event()

        def gated(job, _evaluator):
            entered.set()
            release.wait(WAIT_S)
            return {"echo": job.request.content()}

        service, client = served(pipeline=gated, workers=1)
        first = client.submit(benchmark="jacobi-2d")
        assert entered.wait(WAIT_S)
        second = client.submit(benchmark="jacobi-2d")
        assert second["coalesced"] is True
        assert second["id"] == first["id"]
        assert service.stats.deduped == 1
        release.set()
        client.wait(first["id"], timeout_s=WAIT_S)


class TestRestartWarmPath:
    def test_restarted_server_answers_from_store(self, served, tmp_path):
        request = dict(
            benchmark="jacobi-2d", grid_shape=[32, 32], iterations=4
        )
        store = DesignStore(tmp_path / "results")
        service, client = served(store=store, workers=1)
        result_cold = client.synthesize(timeout_s=120.0, **request)
        assert service.evaluator.stats.evaluated > 0
        service.shutdown(drain=True, timeout=WAIT_S)
        store.close()

        # A brand-new process-equivalent: fresh store handle, fresh
        # service, same directory.
        store2 = DesignStore(tmp_path / "results")
        service2, client2 = served(store=store2, workers=1)
        result_warm = client2.synthesize(timeout_s=120.0, **request)
        assert service2.evaluator.stats.evaluated == 0
        assert service2.evaluator.stats.store_hits > 0
        assert json.dumps(result_warm, sort_keys=True) == json.dumps(
            result_cold, sort_keys=True
        )
        store2.close()


class TestWriteResultProgram:
    def test_writes_generated_sources(self, served, tmp_path):
        _, client = served()
        result = client.synthesize(
            timeout_s=120.0,
            benchmark="jacobi-2d",
            grid_shape=[32, 32],
            iterations=4,
        )
        paths = write_result_program(result, tmp_path, "jac2d")
        assert [p.name for p in paths] == ["jac2d.cl", "jac2d_host.c"]
        assert "__kernel" in paths[0].read_text()


def test_request_signature_used_for_http_dedup(served):
    """Scheduling knobs must not defeat HTTP-level coalescing."""
    release = threading.Event()
    entered = threading.Event()

    def gated(job, _evaluator):
        entered.set()
        release.wait(WAIT_S)
        return {"ok": True}

    _, client = served(pipeline=gated, workers=1)
    first = client.submit(benchmark="jacobi-2d", priority=0)
    assert entered.wait(WAIT_S)
    second = client.submit(
        benchmark="jacobi-2d", priority=5, timeout_s=99.0
    )
    assert second["coalesced"] is True
    assert second["id"] == first["id"]
    release.set()
    client.wait(first["id"], timeout_s=WAIT_S)


def test_job_request_fixture_alignment(small_request):
    """The conftest request matches what the HTTP layer builds."""
    via_json = JobRequest.from_json(
        {
            "benchmark": "jacobi-2d",
            "grid_shape": [32, 32],
            "iterations": 4,
        }
    )
    assert via_json.signature() == small_request.signature()


class TestDrainStatusCodes:
    """A drain refuses new work (503) but bad payloads stay 400."""

    def _post_raw(self, client, body: bytes):
        request = urllib.request.Request(
            client.base_url + "/jobs",
            data=body,
            method="POST",
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(request, timeout=10) as reply:
                return reply.status, reply.read()
        except urllib.error.HTTPError as exc:
            return exc.code, exc.read()

    def test_drain_rejects_valid_but_keeps_400_for_malformed(
        self, served
    ):
        release = threading.Event()
        entered = threading.Event()

        def gated(job, _evaluator):
            entered.set()
            while not release.wait(0.005):
                job.check_cancelled()
            return {"ok": True}

        service, client = served(pipeline=gated, workers=1)
        client.submit(benchmark="jacobi-2d")
        assert entered.wait(WAIT_S)
        drainer = threading.Thread(
            target=service.shutdown,
            kwargs={"drain": True, "timeout": WAIT_S},
            daemon=True,
        )
        drainer.start()
        deadline = WAIT_S
        while not service.draining and deadline > 0:
            threading.Event().wait(0.01)
            deadline -= 0.01
        assert service.draining
        rejected_before = service.stats.rejected

        # New valid work is refused: 503 with the lifecycle message.
        # A drain is not load shedding, so ``rejected`` (the admission
        # control counter) must not move.
        status, body = self._post_raw(
            client, json.dumps({"benchmark": "jacobi-1d"}).encode()
        )
        assert status == 503
        assert b"shutting down" in body
        assert service.stats.rejected == rejected_before

        # A malformed payload was never admissible in the first place:
        # the status is chosen by exception type, not by service state.
        status, body = self._post_raw(client, b"{not json")
        assert status == 400
        assert service.stats.rejected == rejected_before

        release.set()
        drainer.join(WAIT_S)
        assert not drainer.is_alive()


class TestClientValidation:
    def test_zero_submit_attempts_is_a_service_error(self, served):
        _, client = served(pipeline=echo_pipeline)
        with pytest.raises(ServiceError, match="max_submit_attempts"):
            client.synthesize(
                max_submit_attempts=0, benchmark="jacobi-2d"
            )

    def test_negative_submit_attempts_is_a_service_error(self, served):
        _, client = served(pipeline=echo_pipeline)
        with pytest.raises(ServiceError, match="got -3"):
            client.synthesize(
                max_submit_attempts=-3, benchmark="jacobi-2d"
            )


class TestClientDisconnect:
    """A client hanging up mid-reply is routine, never a traceback."""

    class _RstSocket:
        """Readable request; the write side was reset by the peer."""

        def __init__(self, data: bytes):
            self._data = data

        def makefile(self, mode, *_args, **_kwargs):
            assert "r" in mode
            return io.BytesIO(self._data)

        def sendall(self, _data):
            raise BrokenPipeError("peer reset the connection")

    def test_broken_pipe_mid_reply_is_counted_not_raised(self):
        obs.enable(capture_events=False)
        service = SynthesisService(workers=1, pipeline=echo_pipeline)
        fake_server = type("S", (), {"service": service})()
        counter = obs.get_registry().counter(
            "service.http.client_disconnects"
        )
        before = counter.value
        try:
            # Runs setup/handle/finish synchronously: any unguarded
            # BrokenPipeError would propagate right here.
            _Handler(
                self._RstSocket(
                    b"GET /nope HTTP/1.1\r\nHost: t\r\n\r\n"
                ),
                ("127.0.0.1", 54321),
                fake_server,
            )
        finally:
            service.shutdown(drain=False, timeout=10.0)
        assert counter.value == before + 1
