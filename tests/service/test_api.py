"""The one-call facade: repro.api.synthesize."""

from __future__ import annotations

import pytest

from repro import CandidateEvaluator, synthesize
from repro.api import default_baseline_parameters
from repro.errors import SpecificationError
from repro.stencil import get_benchmark
from repro.tiling import DesignKind

JACOBI_1D_SRC = """
__kernel void jac(__global float* A, __global float* B) {
    int i = get_global_id(0);
    B[i] = 0.33333f * (A[i-1] + A[i] + A[i+1]);
}
"""


class TestInputResolution:
    def test_requires_exactly_one_input(self):
        with pytest.raises(SpecificationError):
            synthesize()
        with pytest.raises(SpecificationError):
            synthesize(JACOBI_1D_SRC, benchmark="jacobi-1d")

    def test_source_requires_scope(self):
        with pytest.raises(SpecificationError, match="grid_shape"):
            synthesize(JACOBI_1D_SRC)

    def test_rejects_unknown_design_kind(self):
        with pytest.raises(SpecificationError, match="design kind"):
            synthesize(benchmark="jacobi-2d", design="quantum")


class TestBenchmarkPath:
    def test_full_pipeline_small(self):
        synth = synthesize(
            benchmark="jacobi-2d", grid_shape=(32, 32), iterations=4
        )
        assert synth.spec.grid_shape == (32, 32)
        assert synth.design.kind is DesignKind.HETEROGENEOUS
        assert synth.predicted_cycles > 0
        assert synth.dse.evaluated > 0
        assert "__kernel" in synth.program.kernel_source
        assert "stencil_host" in synth.program.host_source

    def test_emit_false_skips_codegen(self):
        synth = synthesize(
            benchmark="jacobi-2d",
            grid_shape=(32, 32),
            iterations=4,
            emit=False,
        )
        assert synth.program is None

    def test_baseline_kind_scores_baseline(self):
        synth = synthesize(
            benchmark="jacobi-2d",
            grid_shape=(32, 32),
            iterations=4,
            design="baseline",
            emit=False,
        )
        assert synth.design is synth.baseline

    def test_pipe_shared_kind(self):
        synth = synthesize(
            benchmark="jacobi-2d",
            grid_shape=(32, 32),
            iterations=4,
            design="pipe-shared",
            emit=False,
        )
        assert synth.design.kind is DesignKind.PIPE_SHARED

    def test_explicit_baseline_parameters_respected(self):
        synth = synthesize(
            benchmark="jacobi-2d",
            grid_shape=(64, 64),
            iterations=8,
            tile_shape=(16, 16),
            counts=(2, 2),
            fused_depth=4,
            unroll=2,
            emit=False,
        )
        assert synth.baseline.tile_grid.extents == (
            (16, 16), (16, 16)
        )
        assert synth.baseline.fused_depth == 4
        assert synth.baseline.unroll == 2

    def test_shared_evaluator_reuses_scores(self):
        engine = CandidateEvaluator()
        first = synthesize(
            benchmark="jacobi-2d",
            grid_shape=(32, 32),
            iterations=4,
            evaluator=engine,
            emit=False,
        )
        evaluated_once = engine.stats.evaluated
        second = synthesize(
            benchmark="jacobi-2d",
            grid_shape=(32, 32),
            iterations=4,
            evaluator=engine,
            emit=False,
        )
        assert second.evaluator is engine
        # The repeat resolved entirely from the memo.
        assert engine.stats.evaluated == evaluated_once
        assert engine.stats.cache_hits > 0
        assert (
            second.predicted_cycles == first.predicted_cycles
        )


class TestSourcePath:
    def test_opencl_source_in_design_out(self):
        synth = synthesize(
            JACOBI_1D_SRC,
            name="jac1d",
            grid_shape=(256,),
            iterations=8,
            emit=False,
        )
        assert synth.spec.name == "jac1d"
        assert synth.spec.pattern.radius == (1,)
        assert synth.design.kind is DesignKind.HETEROGENEOUS
        assert synth.predicted_cycles > 0

    def test_source_matches_equivalent_benchmark(self):
        from_source = synthesize(
            JACOBI_1D_SRC, grid_shape=(256,), iterations=8, emit=False
        )
        from_library = synthesize(
            benchmark="jacobi-1d",
            grid_shape=(256,),
            iterations=8,
            emit=False,
        )
        assert (
            from_source.predicted_cycles
            == from_library.predicted_cycles
        )


class TestDefaultBaselineParameters:
    @pytest.mark.parametrize(
        "name,grid",
        [
            ("jacobi-1d", (64,)),
            ("jacobi-2d", (32, 32)),
            ("jacobi-3d", (16, 16, 16)),
            ("fdtd-2d", (24, 24)),
            ("hotspot-2d", (32, 32)),
        ],
    )
    def test_defaults_are_always_constructible(self, name, grid):
        spec = get_benchmark(name, grid=grid, iterations=4)
        synth = synthesize(
            benchmark=name, grid_shape=grid, iterations=4, emit=False
        )
        assert synth.spec.name == spec.name
        assert synth.dse.feasible > 0

    def test_defaults_shape(self):
        spec = get_benchmark("jacobi-2d", grid=(64, 64), iterations=20)
        tile, counts, depth = default_baseline_parameters(spec)
        assert len(tile) == len(counts) == 2
        assert all(t >= 3 for t in tile)  # at least 2*radius + 1
        assert depth == 8  # capped
