"""Concurrent DesignStore access from the service worker pool.

The acceptance property is exactly-once evaluation per unique design
signature: N worker threads racing over overlapping jobs must resolve
duplicates through the evaluator memo / the persistent store, never by
re-running the model for a signature it already scored.
"""

from __future__ import annotations

import threading

import pytest

from repro.errors import ServiceOverloadError
from repro.service import JobRequest, JobState, SynthesisService
from repro.store import DesignStore

WAIT_S = 120.0

#: Three distinct tiny workloads; every thread submits all of them.
#: Disjoint specs → disjoint candidate signatures, so service-level
#: coalescing alone must deliver exactly-once model evaluation.
REQUESTS = [
    {"benchmark": "jacobi-1d", "grid_shape": (64,), "iterations": 4},
    {"benchmark": "jacobi-2d", "grid_shape": (32, 32), "iterations": 4},
    {
        "benchmark": "jacobi-3d",
        "grid_shape": (16, 16, 16),
        "iterations": 4,
    },
]


def _storm(service: SynthesisService, threads: int = 6):
    """Submit every request from `threads` racing submitters."""
    jobs, errors = [], []
    lock = threading.Lock()
    start = threading.Barrier(threads)

    def submitter():
        start.wait()
        for spec in REQUESTS:
            try:
                job, _ = service.submit(JobRequest(**spec))
                with lock:
                    jobs.append(job)
            except ServiceOverloadError as exc:  # pragma: no cover
                with lock:
                    errors.append(exc)

    workers = [
        threading.Thread(target=submitter) for _ in range(threads)
    ]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join(WAIT_S)
    return jobs, errors


@pytest.fixture
def store(tmp_path):
    handle = DesignStore(tmp_path / "results")
    yield handle
    handle.close()


class TestExactlyOnceEvaluation:
    def test_worker_pool_storm_never_reevaluates(self, store):
        service = SynthesisService(
            store=store, workers=4, queue_depth=256
        )
        try:
            jobs, errors = _storm(service, threads=6)
            assert not errors
            for job in jobs:
                service.wait(job.id, timeout=WAIT_S)
                assert job.state is JobState.DONE, job.error
            # 6 threads x 3 requests; every duplicate either coalesced
            # onto an in-flight job or warm-started from memo/store.
            assert service.stats.requests == 18
            stats = service.evaluator.stats
            # Exactly-once: the three unique workloads are disjoint
            # design spaces, so every candidate signature was scored
            # by the model exactly once — reruns hit the memo.
            assert stats.evaluated == len(store)
            assert stats.cache_hits + service.stats.deduped > 0
            # Distinct payloads per unique signature.
            unique = {job.signature: job.result for job in jobs}
            assert len(unique) == len(REQUESTS)
        finally:
            service.shutdown(drain=True, timeout=WAIT_S)

    def test_fresh_service_same_store_is_pure_warm_path(self, store):
        # Phase 1: cold store, populate it.
        cold = SynthesisService(store=store, workers=2)
        try:
            jobs, errors = _storm(cold, threads=4)
            assert not errors
            for job in jobs:
                cold.wait(job.id, timeout=WAIT_S)
                assert job.state is JobState.DONE, job.error
            cold_results = {
                job.signature: job.result for job in jobs
            }
            assert cold.evaluator.stats.evaluated > 0
        finally:
            cold.shutdown(drain=True, timeout=WAIT_S)

        # Phase 2: new service (fresh memo) over the same store; a
        # full storm must be answered without one model evaluation.
        warm = SynthesisService(store=store, workers=4)
        try:
            jobs, errors = _storm(warm, threads=6)
            assert not errors
            for job in jobs:
                warm.wait(job.id, timeout=WAIT_S)
                assert job.state is JobState.DONE, job.error
            assert warm.evaluator.stats.evaluated == 0
            assert warm.evaluator.stats.store_hits > 0
            # Byte-equivalent results across service generations.
            import json

            for job in jobs:
                assert json.dumps(
                    job.result, sort_keys=True
                ) == json.dumps(
                    cold_results[job.signature], sort_keys=True
                )
        finally:
            warm.shutdown(drain=True, timeout=WAIT_S)

    def test_store_writes_survive_concurrent_flush(self, store):
        # Drain-shutdown flushes while workers may still be writing;
        # the store contents must match a serial reference run.
        service = SynthesisService(store=store, workers=4)
        try:
            jobs, _ = _storm(service, threads=4)
            for job in jobs:
                service.wait(job.id, timeout=WAIT_S)
        finally:
            service.shutdown(drain=True, timeout=WAIT_S)
        persisted = len(store)
        assert persisted > 0

        reference = SynthesisService(workers=1)  # no store
        try:
            evaluated = 0
            for spec in REQUESTS:
                job, _ = reference.submit(JobRequest(**spec))
                reference.wait(job.id, timeout=WAIT_S)
                assert job.state is JobState.DONE, job.error
            evaluated = reference.evaluator.stats.evaluated
        finally:
            reference.shutdown(drain=True, timeout=WAIT_S)
        assert persisted == evaluated
