"""Asyncio front door: byte parity with the threaded server, fan-in.

The decisive test runs BOTH front doors over the *same* service
instance and compares raw response bytes route by route — same job
ids, same payloads, so any divergence is the transport's fault.
"""

from __future__ import annotations

import http.client
import json
import socket
import threading

import pytest

from repro import obs
from repro.service import (
    AsyncFrontDoor,
    JobRequest,
    ServiceClient,
    SynthesisService,
    make_async_server,
    make_server,
)

from tests.service.conftest import echo_pipeline

WAIT_S = 60.0


@pytest.fixture
def async_served():
    """A live asyncio server+client on an OS port; always torn down."""
    resources = []

    def build(**service_kw):
        service_kw.setdefault("workers", 2)
        service = SynthesisService(**service_kw)
        door = make_async_server(service, port=0)
        host, port = door.server_address
        client = ServiceClient(f"http://{host}:{port}")
        resources.append((door, service))
        return service, client

    yield build
    for door, service in resources:
        door.shutdown()
        service.shutdown(drain=False, timeout=10.0)


def _raw(address, method, path, body=None, headers=None):
    """One raw request; returns (status, headers, body bytes)."""
    conn = http.client.HTTPConnection(*address, timeout=10)
    try:
        conn.request(method, path, body=body, headers=headers or {})
        reply = conn.getresponse()
        return reply.status, dict(reply.getheaders()), reply.read()
    finally:
        conn.close()


class TestByteParityWithThreadedServer:
    def test_every_route_byte_identical(self):
        # One service, both front doors: identical state behind each.
        service = SynthesisService(workers=2, pipeline=echo_pipeline)
        threaded = make_server(service, port=0)
        threading.Thread(
            target=threaded.serve_forever, daemon=True
        ).start()
        door = make_async_server(service, port=0)
        try:
            job, _ = service.submit(JobRequest(benchmark="jacobi-2d"))
            service.wait(job.id, timeout=WAIT_S)
            submit_body = json.dumps(
                {"benchmark": "jacobi-1d"}
            ).encode()
            probes = [
                ("GET", f"/jobs/{job.id}", None),
                ("GET", f"/jobs/{job.id}/result", None),
                ("GET", "/jobs/nope", None),
                ("GET", "/not-a-route", None),
                ("POST", "/jobs", b"{not json"),
            ]
            for method, path, body in probes:
                t_status, t_headers, t_body = _raw(
                    threaded.server_address[:2], method, path, body
                )
                a_status, a_headers, a_body = _raw(
                    door.server_address, method, path, body
                )
                assert (t_status, t_body) == (a_status, a_body), path
                assert (
                    t_headers["Content-Type"]
                    == a_headers["Content-Type"]
                )
            # Submission is answered identically up to the job id
            # (each submit mints a new one); check the shape fields.
            t_status, _, t_body = _raw(
                threaded.server_address[:2], "POST", "/jobs", submit_body
            )
            a_status, _, a_body = _raw(
                door.server_address, "POST", "/jobs", submit_body
            )
            assert t_status == a_status == 202
            t_payload, a_payload = (
                json.loads(t_body), json.loads(a_body)
            )
            assert (
                t_payload["job"].keys() == a_payload["job"].keys()
            )
            # /healthz carries live clocks (uptime, avg_job_s) so the
            # bytes move between two reads; the *shape* cannot.
            t_status, _, t_body = _raw(
                threaded.server_address[:2], "GET", "/healthz", None
            )
            a_status, _, a_body = _raw(
                door.server_address, "GET", "/healthz", None
            )
            assert t_status == a_status == 200
            assert (
                json.loads(t_body).keys() == json.loads(a_body).keys()
            )
        finally:
            threaded.shutdown()
            threaded.server_close()
            door.shutdown()
            service.shutdown(drain=False, timeout=10.0)


class TestAsyncTransport:
    def test_client_round_trip(self, async_served):
        _, client = async_served(pipeline=echo_pipeline)
        result = client.synthesize(benchmark="jacobi-2d")
        assert result["echo"]["benchmark"] == "jacobi-2d"

    def test_keep_alive_serves_many_requests_per_connection(
        self, async_served
    ):
        service, client = async_served(pipeline=echo_pipeline)
        job, _ = service.submit(JobRequest(benchmark="jacobi-2d"))
        service.wait(job.id, timeout=WAIT_S)
        host, port = (
            client.base_url.replace("http://", "").split(":")
        )
        conn = http.client.HTTPConnection(host, int(port), timeout=10)
        try:
            for _ in range(10):
                conn.request("GET", f"/jobs/{job.id}")
                reply = conn.getresponse()
                payload = json.loads(reply.read())
                assert reply.status == 200
                assert payload["state"] == "done"
        finally:
            conn.close()

    def test_trace_headers_propagate_any_casing(self, async_served):
        service, client = async_served(pipeline=echo_pipeline)
        host, port = (
            client.base_url.replace("http://", "").split(":")
        )
        body = json.dumps({"benchmark": "jacobi-2d"}).encode()
        trace_id = "ab" * 16  # 32 hex chars, as mint() produces
        status, _, reply = _raw(
            (host, int(port)),
            "POST",
            "/jobs",
            body,
            headers={"x-repro-TRACE-id": trace_id},
        )
        assert status == 202
        job_id = json.loads(reply)["job"]["id"]
        job = service.job(job_id)
        assert job.trace is not None
        assert job.trace.trace_id == trace_id

    def test_oversized_body_413(self, async_served):
        _, client = async_served(pipeline=echo_pipeline)
        host, port = (
            client.base_url.replace("http://", "").split(":")
        )
        conn = http.client.HTTPConnection(host, int(port), timeout=10)
        try:
            conn.request(
                "POST",
                "/jobs",
                body=b"x",
                headers={"Content-Length": str(64 * 1024 * 1024)},
            )
            assert conn.getresponse().status == 413
        finally:
            conn.close()

    def test_malformed_request_line_400(self, async_served):
        _, client = async_served(pipeline=echo_pipeline)
        host, port = (
            client.base_url.replace("http://", "").split(":")
        )
        with socket.create_connection(
            (host, int(port)), timeout=10
        ) as raw:
            raw.sendall(b"NOT A REQUEST\r\n\r\n")
            reply = raw.recv(4096)
        assert reply.startswith(b"HTTP/1.1 400 ")

    def test_client_disconnect_counted_not_crashed(self, async_served):
        obs.enable(capture_events=False)
        service, client = async_served(pipeline=echo_pipeline)
        host, port = (
            client.base_url.replace("http://", "").split(":")
        )
        # Open a request then slam the connection before the reply.
        for _ in range(3):
            with socket.create_connection(
                (host, int(port)), timeout=10
            ) as raw:
                raw.sendall(
                    b"GET /healthz HTTP/1.1\r\nHost: x\r\n"
                    b"Content-Length: 5\r\n\r\n"
                )
                # RST on close: pending body never arrives.
                raw.setsockopt(
                    socket.SOL_SOCKET,
                    socket.SO_LINGER,
                    b"\x01\x00\x00\x00\x00\x00\x00\x00",
                )
        # The server is still perfectly healthy afterwards.
        assert client.health()["status"] == "ok"

    def test_concurrent_pollers_share_the_loop(self, async_served):
        service, client = async_served(pipeline=echo_pipeline)
        job, _ = service.submit(JobRequest(benchmark="jacobi-2d"))
        service.wait(job.id, timeout=WAIT_S)
        host, port = (
            client.base_url.replace("http://", "").split(":")
        )
        errors = []

        def poll():
            try:
                conn = http.client.HTTPConnection(
                    host, int(port), timeout=30
                )
                for _ in range(5):
                    conn.request("GET", f"/jobs/{job.id}")
                    reply = conn.getresponse()
                    assert reply.status == 200
                    json.loads(reply.read())
                conn.close()
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [
            threading.Thread(target=poll, daemon=True)
            for _ in range(32)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(WAIT_S)
        assert not errors


class TestLifecycle:
    def test_start_is_idempotent_and_shutdown_joins(self):
        service = SynthesisService(
            workers=1, pipeline=echo_pipeline
        )
        door = AsyncFrontDoor(service, port=0)
        try:
            first = door.start()
            assert door.start() == first
        finally:
            door.shutdown()
            door.shutdown()  # idempotent
            service.shutdown(drain=False, timeout=10.0)

    def test_bind_failure_surfaces_as_service_error(self):
        service = SynthesisService(
            workers=1, pipeline=echo_pipeline
        )
        blocker = socket.socket()
        blocker.bind(("127.0.0.1", 0))
        blocker.listen(1)
        port = blocker.getsockname()[1]
        door = AsyncFrontDoor(service, port=port)
        try:
            with pytest.raises(Exception):
                door.start()
        finally:
            blocker.close()
            door.shutdown()
            service.shutdown(drain=False, timeout=10.0)
