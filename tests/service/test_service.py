"""SynthesisService lifecycle: dedup, retry, timeout, drain, overload.

Most tests inject a pipeline (the documented test seam) so they run in
milliseconds; ``TestRealPipeline`` covers the genuine facade path on a
tiny workload.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro import obs
from repro.errors import (
    ServiceError,
    ServiceOverloadError,
    SpecificationError,
    TransientServiceError,
)
from repro.service import JobRequest, JobState

from tests.service.conftest import echo_pipeline

WAIT_S = 30.0


class _GatedPipeline:
    """Pipeline that blocks until released (or forever, for cancels)."""

    def __init__(self):
        self.release = threading.Event()
        self.entered = threading.Event()
        self.calls = 0

    def __call__(self, job, _evaluator):
        self.calls += 1
        self.entered.set()
        while not self.release.wait(0.005):
            job.check_cancelled()
        return {"echo": job.request.content()}


class TestBasicLifecycle:
    def test_runs_job_to_done(self, service_factory, small_request):
        service = service_factory(pipeline=echo_pipeline)
        job, coalesced = service.submit(small_request)
        assert not coalesced
        assert service.wait(job.id, timeout=WAIT_S) is job
        assert job.state is JobState.DONE
        assert job.result == {"echo": small_request.content()}
        assert service.stats.completed == 1

    def test_job_ids_are_sequential(self, service_factory):
        service = service_factory(pipeline=echo_pipeline)
        a, _ = service.submit(JobRequest(benchmark="jacobi-1d"))
        b, _ = service.submit(JobRequest(benchmark="jacobi-2d"))
        assert a.id == "job-000001"
        assert b.id == "job-000002"

    def test_default_timeout_applied(self, service_factory):
        service = service_factory(
            pipeline=echo_pipeline, default_timeout_s=123.0
        )
        job, _ = service.submit(JobRequest(benchmark="jacobi-1d"))
        assert job.request.timeout_s == 123.0
        # ... without perturbing the dedup signature.
        assert job.signature == JobRequest(
            benchmark="jacobi-1d"
        ).signature()

    def test_unknown_job_queries(self, service_factory):
        service = service_factory(pipeline=echo_pipeline)
        assert service.job("job-999999") is None
        assert service.wait("job-999999") is None
        assert service.cancel("job-999999") is None


class TestDedup:
    def test_identical_inflight_requests_coalesce(self, service_factory):
        gate = _GatedPipeline()
        service = service_factory(pipeline=gate, workers=1)
        request = JobRequest(benchmark="jacobi-2d")
        first, coalesced_first = service.submit(request)
        assert gate.entered.wait(WAIT_S)
        second, coalesced_second = service.submit(
            JobRequest(benchmark="jacobi-2d")
        )
        assert not coalesced_first
        assert coalesced_second
        assert second is first
        gate.release.set()
        service.wait(first.id, timeout=WAIT_S)
        assert gate.calls == 1
        assert first.coalesced == 1
        assert service.stats.requests == 2
        assert service.stats.accepted == 1
        assert service.stats.deduped == 1

    def test_different_requests_do_not_coalesce(self, service_factory):
        service = service_factory(pipeline=echo_pipeline)
        a, _ = service.submit(JobRequest(benchmark="jacobi-1d"))
        b, _ = service.submit(JobRequest(benchmark="jacobi-2d"))
        assert a is not b
        assert service.stats.deduped == 0

    def test_repeat_after_completion_is_a_new_job(
        self, service_factory
    ):
        service = service_factory(pipeline=echo_pipeline)
        request = JobRequest(benchmark="jacobi-2d")
        first, _ = service.submit(request)
        service.wait(first.id, timeout=WAIT_S)
        second, coalesced = service.submit(request)
        assert not coalesced
        assert second is not first
        service.wait(second.id, timeout=WAIT_S)
        assert second.result == first.result

    def test_dedup_metrics_mirrored_to_obs(self, service_factory):
        obs.enable(capture_events=False)
        gate = _GatedPipeline()
        service = service_factory(pipeline=gate, workers=1)
        first, _ = service.submit(JobRequest(benchmark="jacobi-2d"))
        assert gate.entered.wait(WAIT_S)
        service.submit(JobRequest(benchmark="jacobi-2d"))
        gate.release.set()
        service.wait(first.id, timeout=WAIT_S)
        report = obs.run_report()
        counters = report["metrics"]["counters"]
        assert counters["service.requests"] == 2
        assert counters["service.dedup"] == 1
        assert report["derived"]["service.dedup_rate"] == 0.5


class TestFailureModes:
    def test_model_errors_fail_fast(self, service_factory):
        def broken(_job, _evaluator):
            raise SpecificationError("bad workload")

        service = service_factory(pipeline=broken, retry_backoff_s=0.0)
        job, _ = service.submit(JobRequest(benchmark="jacobi-2d"))
        service.wait(job.id, timeout=WAIT_S)
        assert job.state is JobState.FAILED
        assert "bad workload" in job.error
        assert job.attempts == 1
        assert service.stats.retries == 0

    def test_transient_errors_retry_then_succeed(self, service_factory):
        attempts = []

        def flaky(job, _evaluator):
            attempts.append(job.id)
            if len(attempts) < 3:
                raise TransientServiceError("blip")
            return {"ok": True}

        service = service_factory(
            pipeline=flaky, max_retries=3, retry_backoff_s=0.001
        )
        job, _ = service.submit(JobRequest(benchmark="jacobi-2d"))
        service.wait(job.id, timeout=WAIT_S)
        assert job.state is JobState.DONE
        assert job.attempts == 3
        assert service.stats.retries == 2

    def test_transient_errors_exhaust_retries(self, service_factory):
        def always_flaky(_job, _evaluator):
            raise TransientServiceError("still down")

        service = service_factory(
            pipeline=always_flaky, max_retries=2, retry_backoff_s=0.001
        )
        job, _ = service.submit(JobRequest(benchmark="jacobi-2d"))
        service.wait(job.id, timeout=WAIT_S)
        assert job.state is JobState.FAILED
        assert job.attempts == 3  # 1 try + 2 retries
        assert "transient failure persisted" in job.error

    def test_unexpected_exception_does_not_kill_worker(
        self, service_factory
    ):
        def crash(_job, _evaluator):
            raise RuntimeError("boom")

        service = service_factory(pipeline=crash, workers=1)
        job, _ = service.submit(JobRequest(benchmark="jacobi-2d"))
        service.wait(job.id, timeout=WAIT_S)
        assert job.state is JobState.FAILED
        assert "internal error" in job.error
        # The lone worker survived and still runs the next job.
        follow_up, _ = service.submit(JobRequest(benchmark="jacobi-1d"))
        service.wait(follow_up.id, timeout=WAIT_S)


class TestCancellationAndTimeouts:
    def test_cancel_while_queued(self, service_factory):
        gate = _GatedPipeline()
        service = service_factory(pipeline=gate, workers=1)
        blocker, _ = service.submit(JobRequest(benchmark="jacobi-1d"))
        assert gate.entered.wait(WAIT_S)
        queued, _ = service.submit(JobRequest(benchmark="jacobi-2d"))
        service.cancel(queued.id)
        gate.release.set()
        service.wait(queued.id, timeout=WAIT_S)
        assert queued.state is JobState.CANCELLED
        assert queued.error == "cancelled while queued"
        service.wait(blocker.id, timeout=WAIT_S)
        assert blocker.state is JobState.DONE

    def test_cancel_while_running(self, service_factory):
        gate = _GatedPipeline()  # never released: only a cancel ends it
        service = service_factory(pipeline=gate, workers=1)
        job, _ = service.submit(JobRequest(benchmark="jacobi-2d"))
        assert gate.entered.wait(WAIT_S)
        service.cancel(job.id)
        service.wait(job.id, timeout=WAIT_S)
        assert job.state is JobState.CANCELLED
        assert service.stats.cancelled == 1
        assert not job.timed_out

    def test_timeout_cancels_running_job(self, service_factory):
        gate = _GatedPipeline()  # never released: only the deadline
        service = service_factory(pipeline=gate, workers=1)
        job, _ = service.submit(
            JobRequest(benchmark="jacobi-2d", timeout_s=0.05)
        )
        service.wait(job.id, timeout=WAIT_S)
        assert job.state is JobState.CANCELLED
        assert job.timed_out
        assert service.stats.timeouts == 1
        assert "timeout" in job.error


class TestAdmissionControl:
    def test_overload_rejects_with_retry_after(self, service_factory):
        gate = _GatedPipeline()
        service = service_factory(
            pipeline=gate, workers=1, queue_depth=1
        )
        running, _ = service.submit(JobRequest(benchmark="jacobi-1d"))
        assert gate.entered.wait(WAIT_S)
        service.submit(JobRequest(benchmark="jacobi-2d"))  # fills queue
        with pytest.raises(ServiceOverloadError) as excinfo:
            service.submit(JobRequest(benchmark="jacobi-3d"))
        assert excinfo.value.retry_after_s >= 1.0
        assert service.stats.rejected == 1
        gate.release.set()
        service.wait(running.id, timeout=WAIT_S)

    def test_rejected_request_not_tracked(self, service_factory):
        gate = _GatedPipeline()
        service = service_factory(
            pipeline=gate, workers=1, queue_depth=1
        )
        service.submit(JobRequest(benchmark="jacobi-1d"))
        assert gate.entered.wait(WAIT_S)
        queued, _ = service.submit(JobRequest(benchmark="jacobi-2d"))
        with pytest.raises(ServiceOverloadError):
            service.submit(JobRequest(benchmark="jacobi-3d"))
        # The rejected signature is not in flight: resubmitting later
        # must not coalesce onto a phantom job.
        gate.release.set()
        service.wait(queued.id, timeout=WAIT_S)
        job, coalesced = service.submit(
            JobRequest(benchmark="jacobi-3d")
        )
        assert not coalesced
        service.wait(job.id, timeout=WAIT_S)
        assert job.state is JobState.DONE


class TestShutdown:
    def test_drain_finishes_queued_jobs(self, service_factory):
        service = service_factory(pipeline=echo_pipeline, workers=1)
        jobs = [
            service.submit(JobRequest(benchmark=name))[0]
            for name in ("jacobi-1d", "jacobi-2d", "jacobi-3d")
        ]
        service.shutdown(drain=True, timeout=WAIT_S)
        assert all(job.state is JobState.DONE for job in jobs)

    def test_abort_cancels_queued_jobs(self, service_factory):
        gate = _GatedPipeline()
        service = service_factory(pipeline=gate, workers=1)
        running, _ = service.submit(JobRequest(benchmark="jacobi-1d"))
        assert gate.entered.wait(WAIT_S)
        queued, _ = service.submit(JobRequest(benchmark="jacobi-2d"))
        service.shutdown(drain=False, timeout=WAIT_S)
        assert queued.state is JobState.CANCELLED
        assert running.state is JobState.CANCELLED

    def test_submit_after_shutdown_raises(self, service_factory):
        service = service_factory(pipeline=echo_pipeline)
        service.shutdown(drain=True, timeout=WAIT_S)
        assert service.draining
        with pytest.raises(ServiceError, match="shutting down"):
            service.submit(JobRequest(benchmark="jacobi-2d"))

    def test_shutdown_is_idempotent(self, service_factory):
        service = service_factory(pipeline=echo_pipeline)
        service.shutdown(drain=True, timeout=WAIT_S)
        service.shutdown(drain=True, timeout=WAIT_S)  # no raise

    def test_context_manager_drains(self, small_request):
        from repro.service import SynthesisService

        with SynthesisService(
            pipeline=echo_pipeline, workers=1
        ) as service:
            job, _ = service.submit(small_request)
        assert job.state is JobState.DONE


class TestHistoryBound:
    def test_finished_jobs_evicted_oldest_first(self, service_factory):
        service = service_factory(
            pipeline=echo_pipeline, workers=1, max_history=2
        )
        jobs = []
        for name in ("jacobi-1d", "jacobi-2d", "jacobi-3d"):
            job, _ = service.submit(JobRequest(benchmark=name))
            service.wait(job.id, timeout=WAIT_S)
            jobs.append(job)
        # One more submission triggers the trim of the oldest entry.
        extra, _ = service.submit(JobRequest(benchmark="fdtd-2d"))
        service.wait(extra.id, timeout=WAIT_S)
        assert service.job(jobs[0].id) is None
        assert service.job(extra.id) is extra


class TestRealPipeline:
    def test_tiny_real_synthesis(self, service_factory, small_request):
        service = service_factory(workers=1)
        job, _ = service.submit(small_request)
        service.wait(job.id, timeout=120.0)
        assert job.state is JobState.DONE, job.error
        result = job.result
        assert result["design"]["kind"] == "heterogeneous"
        assert result["predicted_cycles"] > 0
        assert "__kernel" in result["program"]["kernel_source"]
        assert service.evaluator.stats.evaluated > 0

    def test_health_snapshot(self, service_factory):
        service = service_factory(pipeline=echo_pipeline)
        health = service.health()
        assert health["status"] == "ok"
        assert health["workers"] == 2
        assert health["queue_capacity"] == 64
        assert not health["store_attached"]


def test_avg_job_time_feeds_retry_after(service_factory):
    gate = _GatedPipeline()
    service = service_factory(pipeline=gate, workers=1, queue_depth=1)
    service._avg_job_s = 40.0  # pretend jobs are slow
    service.submit(JobRequest(benchmark="jacobi-1d"))
    assert gate.entered.wait(WAIT_S)
    service.submit(JobRequest(benchmark="jacobi-2d"))
    with pytest.raises(ServiceOverloadError) as excinfo:
        service.submit(JobRequest(benchmark="jacobi-3d"))
    # backlog(queue=1 + running=1) * 40s / 1 worker, clamped to 60s.
    assert excinfo.value.retry_after_s == 60.0
    gate.release.set()


class TestRetryBackoffCancellation:
    def test_cancel_wakes_a_job_out_of_backoff(self, service_factory):
        # A pipeline that always fails transiently parks the job in
        # the retry backoff; a cancel must wake it immediately instead
        # of letting the worker sleep out the full delay.
        attempted = threading.Event()

        def flaky(_job, _evaluator):
            attempted.set()
            raise TransientServiceError("synthetic transient")

        service = service_factory(
            pipeline=flaky,
            workers=1,
            max_retries=5,
            retry_backoff_s=30.0,  # way beyond the test budget
        )
        job, _ = service.submit(JobRequest(benchmark="jacobi-2d"))
        assert attempted.wait(WAIT_S)
        begin = time.monotonic()
        service.cancel(job.id)
        assert job.wait(WAIT_S)
        assert job.state is JobState.CANCELLED
        assert time.monotonic() - begin < 5.0

    def test_deadline_bounds_the_backoff(self, service_factory):
        # No explicit cancel: the job's own timeout must cap the
        # backoff sleep, so the worker frees up at the deadline, not
        # 30 seconds later.
        def flaky(_job, _evaluator):
            raise TransientServiceError("synthetic transient")

        service = service_factory(
            pipeline=flaky,
            workers=1,
            max_retries=5,
            retry_backoff_s=30.0,
        )
        begin = time.monotonic()
        job, _ = service.submit(
            JobRequest(benchmark="jacobi-2d", timeout_s=0.3)
        )
        assert job.wait(WAIT_S)
        assert job.state is JobState.CANCELLED
        assert job.timed_out
        assert time.monotonic() - begin < 5.0


class TestHealthUnderLoad:
    def test_health_does_not_stall_submissions(self, service_factory):
        # The first health check resolves the simulator backend (it
        # may probe a compiler).  Make that pathologically slow and
        # prove submissions still flow: the probe runs outside the
        # service lock.
        service = service_factory(pipeline=echo_pipeline)
        probing = threading.Event()

        def slow_report():
            probing.set()
            time.sleep(2.0)
            return {"requested": "slow", "resolved": "slow"}

        service._sim_backend_report = slow_report
        checker = threading.Thread(target=service.health, daemon=True)
        checker.start()
        assert probing.wait(WAIT_S)
        begin = time.monotonic()
        job, _ = service.submit(JobRequest(benchmark="jacobi-2d"))
        assert job.wait(WAIT_S)
        assert job.state is JobState.DONE
        assert time.monotonic() - begin < 1.0
        checker.join(WAIT_S)

    def test_sim_backend_report_is_cached(self, service_factory):
        service = service_factory(pipeline=echo_pipeline)
        first = service.health()["sim_backend"]
        sentinel = {"requested": "cached", "resolved": "cached"}
        service._sim_report = sentinel
        assert service.health()["sim_backend"] is sentinel
        assert first is not sentinel
