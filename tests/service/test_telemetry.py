"""End-to-end telemetry: trace propagation, flight records, Prometheus.

The acceptance flow for the observability release: a client-minted
trace context must survive HTTP transport, the job queue, and the
worker thread pool, so that the search-tier and store spans of one job
form a single merged trace; every finished job must carry a flight
record; and a Prometheus scrape of a live service must parse cleanly —
all without perturbing synthesis results.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro import obs
from repro.errors import ServiceError
from repro.obs.trace import TraceContext
from repro.service import (
    JobRequest,
    ServiceClient,
    SynthesisService,
    make_server,
)
from repro.store import DesignStore

from tests.service.conftest import echo_pipeline

WAIT_S = 60.0

REQUEST = dict(benchmark="jacobi-2d", grid_shape=[32, 32], iterations=4)


@pytest.fixture
def served():
    """A live server+client on an OS-assigned port; always torn down."""
    resources = []

    def build(**service_kw):
        service_kw.setdefault("workers", 2)
        service = SynthesisService(**service_kw)
        server = make_server(service, port=0)
        thread = threading.Thread(
            target=server.serve_forever, daemon=True
        )
        thread.start()
        host, port = server.server_address[:2]
        client = ServiceClient(f"http://{host}:{port}")
        resources.append((server, service))
        return service, client

    yield build
    for server, service in resources:
        server.shutdown()
        server.server_close()
        service.shutdown(drain=False, timeout=10.0)


def _canon(payload) -> str:
    return json.dumps(payload, sort_keys=True)


class TestTracePropagation:
    def test_client_trace_spans_search_and_store_across_threads(
        self, served, tmp_path
    ):
        """The acceptance path: one trace_id from client to store spans."""
        obs.enable()
        store = DesignStore(tmp_path / "results")
        try:
            service, client = served(
                store=store, workers=1, tiered=True, search_chunk_size=8
            )
            ctx = TraceContext.mint(suite="acceptance")
            job = client.submit(trace=ctx, **REQUEST)
            client.wait(job["id"], timeout_s=120.0)

            trace = client.trace(job["id"])
            assert trace["otherData"]["trace_id"] == ctx.trace_id
            slices = [
                e for e in trace["traceEvents"] if e.get("ph") == "X"
            ]
            assert slices, "merged trace has no spans"
            names = {e["name"] for e in slices}
            assert "search.tier0" in names
            assert "search.tier1" in names
            assert "store.lookup" in names
            # Every span in the merged trace carries the *client's*
            # trace id even though it ran on a service worker thread.
            assert all(
                e["args"]["trace_id"] == ctx.trace_id for e in slices
            )
            worker_tids = {e["tid"] for e in slices}
            assert threading.get_ident() not in worker_tids
        finally:
            store.close()

    def test_server_mints_when_client_sends_no_headers(self, served):
        """Bare HTTP posts still get a complete job trace while recording."""
        obs.enable()
        service, client = served(pipeline=echo_pipeline)
        job, _ = service.submit(JobRequest(benchmark="jacobi-2d"))
        assert job.trace is not None
        assert job.trace.baggage_dict() == {"origin": "service.submit"}

    def test_trace_endpoint_404_without_a_context(self, served):
        """No observability, no headers => an explanatory 404."""
        service, client = served(pipeline=echo_pipeline)
        job, _ = service.submit(JobRequest(benchmark="jacobi-2d"))
        assert job.trace is None  # obs disabled: nothing allocated
        with pytest.raises(ServiceError, match="no trace recorded"):
            client.trace(job.id)

    def test_trace_endpoint_404_for_unknown_job(self, served):
        _, client = served(pipeline=echo_pipeline)
        with pytest.raises(ServiceError, match="unknown job"):
            client.trace("job-424242")


class TestFlightRecords:
    def test_every_finished_job_has_an_accounting_record(
        self, served, tmp_path
    ):
        obs.enable()
        store = DesignStore(tmp_path / "results")
        try:
            service, client = served(store=store, workers=1)
            job = client.submit(**REQUEST)
            client.wait(job["id"], timeout_s=120.0)
            flight = client.flight(job["id"])
            assert flight["job_id"] == job["id"]
            assert flight["state"] == "done"
            assert flight["trace_id"]  # service- or client-minted
            assert flight["queue_wait_s"] >= 0.0
            assert flight["run_s"] > 0.0
            assert flight["wall_s"] >= flight["run_s"]
            assert flight["cpu_s"] >= 0.0
            assert flight["evaluations"] > 0  # cold store: real work
            assert flight["attempts"] == 1
            assert "peak_rss_delta_kb" in flight
        finally:
            store.close()

    def test_flight_rides_beside_the_result_not_inside(self, served):
        _, client = served(pipeline=echo_pipeline)
        job = client.submit(benchmark="jacobi-2d")
        result = client.wait(job["id"], timeout_s=WAIT_S)
        assert "flight" not in result
        assert client.flight(job["id"]) is not None

    def test_flights_land_in_the_telemetry_journal(self, served, tmp_path):
        journal = obs.TelemetryJournal(tmp_path / "telemetry.jsonl")
        service, client = served(
            pipeline=echo_pipeline, telemetry=journal
        )
        job = client.submit(benchmark="jacobi-2d")
        client.wait(job["id"], timeout_s=WAIT_S)
        service.shutdown(drain=True, timeout=WAIT_S)
        records = obs.read_telemetry(tmp_path / "telemetry.jsonl")
        flights = [r for r in records if r["kind"] == "flight"]
        assert [f["job_id"] for f in flights] == [job["id"]]
        # shutdown() closed the journal with a final metrics snapshot.
        assert any(r["kind"] == "snapshot" for r in records)


class TestPrometheusScrape:
    def test_scrape_parses_and_carries_slo_gauges(self, served):
        obs.enable()
        _, client = served(pipeline=echo_pipeline)
        job = client.submit(benchmark="jacobi-2d")
        client.wait(job["id"], timeout_s=WAIT_S)
        text = client.metrics_prometheus()
        parsed = obs.parse_prometheus(text)  # raises on bad exposition
        for family in (
            "repro_service_slo_queue_saturation",
            "repro_service_slo_reject_rate",
            "repro_service_slo_p99_job_wall_s",
            "repro_service_slo_p99_target_s",
            "repro_service_slo_p99_within_target",
        ):
            assert parsed[family]["type"] == "gauge"
        assert "repro_service_accepted_total" in parsed
        assert parsed["repro_service_job_wall_s"]["type"] == "summary"

    def test_json_metricsz_includes_slo_block(self, served):
        _, client = served(pipeline=echo_pipeline)
        report = client.metrics()
        assert "service.slo.p99_target_s" in report["slo"]

    def test_healthz_has_the_capacity_fields(self, served):
        _, client = served(pipeline=echo_pipeline)
        health = client.health()
        assert health["uptime_s"] >= 0.0
        assert health["workers_busy"] >= 0
        assert health["queue_depth"] >= 0
        assert health["telemetry_attached"] is False


class TestByteIdentity:
    def test_results_identical_with_and_without_telemetry(
        self, served, tmp_path
    ):
        """Full instrumentation must not perturb synthesis output."""
        # Run A: observability recording + telemetry journal attached.
        obs.enable()
        journal = obs.TelemetryJournal(tmp_path / "telemetry.jsonl")
        _, client_a = served(workers=1, telemetry=journal)
        result_a = client_a.synthesize(timeout_s=120.0, **REQUEST)

        # Run B: everything off — the plain service.
        obs.disable()
        obs.reset()
        _, client_b = served(workers=1)
        result_b = client_b.synthesize(timeout_s=120.0, **REQUEST)

        assert _canon(result_a) == _canon(result_b)
