"""Shared helpers for the synthesis-service suite.

Service tests exercise real threads, so every fixture keeps the work
small (tiny grids, injected pipelines) and shuts the service down even
when an assertion fires mid-test.  Obs state is isolated per test
because the service mirrors its counters into the global registry.
"""

from __future__ import annotations

import contextlib

import pytest

from repro import obs
from repro.service import JobRequest, SynthesisService


@pytest.fixture(autouse=True)
def clean_obs():
    """Start every test disabled and empty; leave no state behind."""
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


@pytest.fixture
def small_request():
    """A real but tiny synthesis request (32x32 Jacobi-2D, 4 iters)."""
    return JobRequest(
        benchmark="jacobi-2d", grid_shape=(32, 32), iterations=4
    )


@pytest.fixture
def service_factory():
    """Build services that are always shut down at test exit."""
    services = []

    def build(**kw) -> SynthesisService:
        kw.setdefault("workers", 2)
        service = SynthesisService(**kw)
        services.append(service)
        return service

    yield build
    for service in services:
        with contextlib.suppress(Exception):
            service.shutdown(drain=False, timeout=10.0)


def echo_pipeline(job, _evaluator):
    """Injected job body: instant, deterministic, content-keyed."""
    return {"echo": job.request.content()}
