"""Process-sharded service: exactly-once, parity, cancel, restart.

Each test spawns real replica processes (spawn start method), so the
workloads stay tiny.  The parity tests are the acceptance criterion:
an N-replica run must produce byte-identical result payloads to the
single-process service for the same requests.
"""

from __future__ import annotations

import time

import pytest

from repro import obs
from repro.obs.trace import TraceContext
from repro.service import (
    JobRequest,
    JobState,
    ShardedSynthesisService,
    SynthesisService,
)
from repro.service.routes import handle_request, to_json_bytes
from repro.store import DesignStore

WAIT_S = 120.0

#: Three real-but-tiny stencil requests with distinct signatures.
DISJOINT = [
    {"benchmark": "jacobi-1d", "grid_shape": (64,), "iterations": 4},
    {"benchmark": "jacobi-2d", "grid_shape": (32, 32), "iterations": 4},
    {
        "benchmark": "jacobi-3d",
        "grid_shape": (16, 16, 16),
        "iterations": 4,
    },
]

#: A CPU-heavy joint-DSE request (seconds, hundreds of cancel points).
HEAVY = {
    "program": "blur-sobel-threshold",
    "grid_shape": (128, 128),
    "iterations": 8,
}


@pytest.fixture
def sharded_factory(tmp_path):
    """Build sharded services over a shared tmp store; always stopped."""
    services = []

    def build(**kw) -> ShardedSynthesisService:
        kw.setdefault("worker_processes", 2)
        kw.setdefault("store_root", tmp_path / "store")
        service = ShardedSynthesisService(**kw)
        services.append(service)
        return service

    yield build
    for service in services:
        try:
            service.shutdown(drain=False, timeout=30.0)
        except Exception:
            pass


def _run_all(service, specs):
    jobs = [service.submit(JobRequest(**spec))[0] for spec in specs]
    for job in jobs:
        service.wait(job.id, timeout=WAIT_S)
    return jobs


class TestParity:
    def test_disjoint_workload_byte_identical_to_single_process(
        self, sharded_factory, tmp_path
    ):
        single = SynthesisService(workers=1)
        try:
            reference = {
                spec["benchmark"]: to_json_bytes(job.result)
                for spec, job in zip(
                    DISJOINT, _run_all(single, DISJOINT)
                )
            }
        finally:
            single.shutdown(drain=True, timeout=WAIT_S)

        service = sharded_factory(worker_processes=2)
        for spec, job in zip(DISJOINT, _run_all(service, DISJOINT)):
            assert job.state is JobState.DONE, job.error
            assert (
                to_json_bytes(job.result)
                == reference[spec["benchmark"]]
            )

    def test_overlapping_workload_repeats_byte_identical(
        self, sharded_factory
    ):
        # The same requests resubmitted after completion: different
        # replicas may answer, but the payload bytes cannot move.
        service = sharded_factory(worker_processes=2)
        first = _run_all(service, DISJOINT)
        second = _run_all(service, DISJOINT)
        for a, b in zip(first, second):
            assert a.state is JobState.DONE and b.state is JobState.DONE
            assert to_json_bytes(a.result) == to_json_bytes(b.result)

    def test_shared_store_converges_to_single_process_contents(
        self, sharded_factory, tmp_path
    ):
        # Exactly-once through content addressing: N replicas writing
        # the same workload into one store leave exactly the records a
        # single process would — no duplicates, no divergence.
        single_root = tmp_path / "single-store"
        store = DesignStore(single_root)
        single = SynthesisService(store=store, workers=1)
        try:
            _run_all(single, DISJOINT)
        finally:
            single.shutdown(drain=True, timeout=WAIT_S)
            store.close()
        with DesignStore(single_root) as reference:
            expected = len(reference)
        assert expected > 0

        service = sharded_factory(worker_processes=2)
        _run_all(service, DISJOINT + DISJOINT)  # overlap on purpose
        service.shutdown(drain=True, timeout=WAIT_S)
        with DesignStore(service._replicas[0]._config.store_root) as (
            merged
        ):
            assert len(merged) == expected


class TestLifecycle:
    def test_health_reports_replicas(self, sharded_factory):
        service = sharded_factory(worker_processes=2)
        _run_all(service, DISJOINT[:1])
        health = service.health()
        assert health["worker_processes"] == 2
        replicas = health["replicas"]
        assert len(replicas) == 2
        assert all(r["alive"] for r in replicas)
        assert sum(r["jobs"] for r in replicas) == 1

    def test_evaluator_stats_aggregate_across_processes(
        self, sharded_factory
    ):
        service = sharded_factory(worker_processes=2)
        _run_all(service, DISJOINT)
        stats = service.evaluator_stats()
        assert stats["evaluated"] > 0
        # The metrics route reads the same aggregate (the dispatcher's
        # own evaluator never ran anything).
        response = handle_request(service, "GET", "/metricsz", {})
        assert response.status == 200
        assert b'"evaluated"' in response.body
        assert service.evaluator.stats.evaluated == 0

    def test_worker_processes_validation(self):
        with pytest.raises(Exception):
            ShardedSynthesisService(worker_processes=0)

    def test_replica_death_is_retried_transparently(
        self, sharded_factory
    ):
        service = sharded_factory(worker_processes=1, max_retries=2)
        # Kill the replica out from under the service; the next job
        # must restart it and still finish.
        service._replicas[0].process.kill()
        service._replicas[0].process.join(10.0)
        job, _ = service.submit(JobRequest(**DISJOINT[0]))
        service.wait(job.id, timeout=WAIT_S)
        assert job.state is JobState.DONE, job.error
        assert service._replicas[0].restarts >= 1
        assert service.health()["replicas"][0]["alive"]


class TestCancellation:
    def test_cancel_crosses_the_process_boundary(self, sharded_factory):
        service = sharded_factory(worker_processes=1)
        job, _ = service.submit(JobRequest(**HEAVY))
        deadline = time.monotonic() + WAIT_S
        while (
            job.state is JobState.QUEUED
            and time.monotonic() < deadline
        ):
            time.sleep(0.01)
        begin = time.monotonic()
        service.cancel(job.id)
        service.wait(job.id, timeout=WAIT_S)
        assert job.state is JobState.CANCELLED
        # The replica noticed at a candidate boundary, not at the end
        # of the job: cancellation latency is bounded by the poll
        # period plus one candidate, far below the job's runtime.
        assert time.monotonic() - begin < 10.0
        assert not job.timed_out

    def test_deadline_ships_to_the_replica(self, sharded_factory):
        service = sharded_factory(worker_processes=1)
        job, _ = service.submit(
            JobRequest(**dict(HEAVY, timeout_s=0.2))
        )
        service.wait(job.id, timeout=WAIT_S)
        assert job.state is JobState.CANCELLED
        assert job.timed_out
        assert "timeout" in (job.error or "")


class TestTraceShipping:
    def test_replica_spans_appear_in_the_job_trace(self, tmp_path):
        obs.enable(capture_events=False, capture_spans=True)
        service = ShardedSynthesisService(
            store_root=tmp_path / "store", worker_processes=1
        )
        try:
            trace = TraceContext.mint()
            job, _ = service.submit(
                JobRequest(**DISJOINT[1]), trace=trace
            )
            service.wait(job.id, timeout=WAIT_S)
            assert job.state is JobState.DONE, job.error
            response = handle_request(
                service, "GET", f"/jobs/{job.id}/trace", {}
            )
            assert response.status == 200
            body = response.body.decode("utf-8")
            # Replica-side spans were grafted in under their replica's
            # synthetic thread name, aligned to this process's clock.
            assert "replica-0:" in body
            assert "service.job" in body
        finally:
            service.shutdown(drain=False, timeout=30.0)
