"""Bounded priority queue: ordering, admission control, close modes."""

from __future__ import annotations

import pytest

from repro.errors import ServiceError, ServiceOverloadError
from repro.service import Job, JobQueue, JobRequest


def _job(job_id: str, priority: int = 0) -> Job:
    request = JobRequest(benchmark="jacobi-2d", priority=priority)
    return Job(id=job_id, request=request,
               signature=request.signature())


class TestOrdering:
    def test_higher_priority_first(self):
        queue = JobQueue(max_depth=8)
        queue.put(_job("low", priority=0))
        queue.put(_job("high", priority=5))
        queue.put(_job("mid", priority=2))
        assert [queue.get().id for _ in range(3)] == [
            "high", "mid", "low"
        ]

    def test_fifo_within_priority(self):
        queue = JobQueue(max_depth=8)
        for n in range(4):
            queue.put(_job(f"job-{n}", priority=1))
        assert [queue.get().id for _ in range(4)] == [
            "job-0", "job-1", "job-2", "job-3"
        ]


class TestAdmission:
    def test_rejects_when_full_with_retry_hint(self):
        queue = JobQueue(max_depth=2)
        queue.put(_job("a"))
        queue.put(_job("b"))
        with pytest.raises(ServiceOverloadError) as excinfo:
            queue.put(_job("c"), retry_after_s=7.5)
        assert excinfo.value.retry_after_s == 7.5
        assert len(queue) == 2

    def test_frees_capacity_after_get(self):
        queue = JobQueue(max_depth=1)
        queue.put(_job("a"))
        queue.get()
        queue.put(_job("b"))  # no raise

    def test_invalid_depth(self):
        with pytest.raises(ServiceError):
            JobQueue(max_depth=0)


class TestClose:
    def test_put_after_close_raises(self):
        queue = JobQueue()
        queue.close()
        with pytest.raises(ServiceError):
            queue.put(_job("late"))

    def test_drain_close_hands_out_remaining(self):
        queue = JobQueue()
        queue.put(_job("a"))
        queue.put(_job("b"))
        assert queue.close(drain=True) == []
        assert queue.get().id == "a"
        assert queue.get().id == "b"
        assert queue.get() is None  # workers exit

    def test_abort_close_returns_stranded(self):
        queue = JobQueue()
        queue.put(_job("a"))
        queue.put(_job("b"))
        stranded = queue.close(drain=False)
        assert sorted(job.id for job in stranded) == ["a", "b"]
        assert queue.get() is None
