"""Job model: request validation, signatures, lifecycle state."""

from __future__ import annotations

import time

import pytest

from repro.errors import JobCancelledError, ServiceError
from repro.service import Job, JobRequest, JobState


class TestJobRequestValidation:
    def test_needs_exactly_one_input(self):
        with pytest.raises(ServiceError):
            JobRequest()
        with pytest.raises(ServiceError):
            JobRequest(benchmark="jacobi-2d", source="B[i] = A[i];")

    def test_rejects_unknown_design(self):
        with pytest.raises(ServiceError):
            JobRequest(benchmark="jacobi-2d", design="magic")

    def test_rejects_non_positive_timeout(self):
        with pytest.raises(ServiceError):
            JobRequest(benchmark="jacobi-2d", timeout_s=0)

    def test_from_json_rejects_unknown_fields(self):
        with pytest.raises(ServiceError, match="bencmark"):
            JobRequest.from_json({"bencmark": "jacobi-2d"})

    def test_from_json_rejects_non_object(self):
        with pytest.raises(ServiceError):
            JobRequest.from_json(["jacobi-2d"])

    def test_from_json_rejects_bad_shapes(self):
        with pytest.raises(ServiceError):
            JobRequest.from_json(
                {"benchmark": "jacobi-2d", "grid_shape": ["x", "y"]}
            )
        with pytest.raises(ServiceError):
            JobRequest.from_json(
                {"benchmark": "jacobi-2d", "tile_shape": []}
            )

    def test_from_json_roundtrip(self):
        request = JobRequest.from_json(
            {
                "benchmark": "jacobi-2d",
                "grid_shape": [64, 64],
                "iterations": 8,
                "design": "pipe-shared",
                "priority": 3,
                "timeout_s": 10.5,
            }
        )
        assert request.grid_shape == (64, 64)
        assert request.design == "pipe-shared"
        assert request.priority == 3
        rebuilt = JobRequest.from_json(request.as_dict())
        assert rebuilt.signature() == request.signature()


class TestSignatures:
    def test_identical_content_identical_signature(self):
        a = JobRequest(benchmark="jacobi-2d", grid_shape=(32, 32))
        b = JobRequest(benchmark="jacobi-2d", grid_shape=(32, 32))
        assert a.signature() == b.signature()

    def test_content_changes_signature(self):
        a = JobRequest(benchmark="jacobi-2d", grid_shape=(32, 32))
        b = JobRequest(benchmark="jacobi-2d", grid_shape=(64, 64))
        c = JobRequest(benchmark="jacobi-2d", grid_shape=(32, 32),
                       design="baseline")
        assert a.signature() != b.signature()
        assert a.signature() != c.signature()

    def test_scheduling_knobs_do_not_change_signature(self):
        a = JobRequest(benchmark="jacobi-2d")
        b = JobRequest(benchmark="jacobi-2d", priority=9, timeout_s=5.0)
        assert a.signature() == b.signature()

    def test_field_map_order_is_canonical(self):
        src = "B[i] = A[i-1] + C[i+1];"
        a = JobRequest(source=src, field_map={"B": "A", "D": "C"})
        b = JobRequest(source=src, field_map={"D": "C", "B": "A"})
        assert a.signature() == b.signature()


class TestJobLifecycle:
    def _job(self, **request_kw) -> Job:
        request = JobRequest(benchmark="jacobi-2d", **request_kw)
        return Job(id="job-000001", request=request,
                   signature=request.signature())

    def test_states_finished(self):
        assert not JobState.QUEUED.finished
        assert not JobState.RUNNING.finished
        assert JobState.DONE.finished
        assert JobState.FAILED.finished
        assert JobState.CANCELLED.finished

    def test_cancel_raises_at_checkpoint(self):
        job = self._job()
        job.check_cancelled()  # no-op before cancel
        job.cancel()
        with pytest.raises(JobCancelledError):
            job.check_cancelled()

    def test_deadline_marks_timed_out(self):
        job = self._job(timeout_s=0.01)
        job.arm_deadline()
        time.sleep(0.03)
        with pytest.raises(JobCancelledError):
            job.check_cancelled()
        assert job.timed_out

    def test_no_deadline_without_arming(self):
        job = self._job(timeout_s=0.01)
        time.sleep(0.03)
        job.check_cancelled()  # clock only starts when the job runs

    def test_wait_follows_mark_finished(self):
        job = self._job()
        assert not job.wait(timeout=0)
        job.mark_finished()
        assert job.wait(timeout=0)

    def test_as_dict_is_json_shaped(self):
        job = self._job()
        data = job.as_dict()
        assert data["id"] == "job-000001"
        assert data["state"] == "queued"
        assert data["has_result"] is False
        assert data["request"]["benchmark"] == "jacobi-2d"
