"""Tests for the smaller simulator components."""

import pytest

from repro.errors import SimulationError
from repro.model.predictor import LatencyBreakdown
from repro.opencl.platform import ADM_PCIE_7V3
from repro.sim.kernel import KernelPhase, KernelTimeline, PhaseRecord
from repro.sim.launch import LaunchScheduler
from repro.sim.memsys import MemorySystem
from repro.sim.pipe_sim import halo_transfer_cycles, peak_packets_in_flight


class TestKernelTimeline:
    def test_zero_length_records_dropped(self):
        tl = KernelTimeline((0,))
        tl.add(KernelPhase.READ, 5.0, 5.0)
        assert tl.records == []

    def test_phase_totals(self):
        tl = KernelTimeline((0,))
        tl.add(KernelPhase.COMPUTE, 0, 10, iteration=1)
        tl.add(KernelPhase.COMPUTE, 12, 20, iteration=2)
        tl.add(KernelPhase.WRITE, 20, 25)
        totals = tl.phase_totals()
        assert totals[KernelPhase.COMPUTE] == 18
        assert totals[KernelPhase.WRITE] == 5

    def test_start_end(self):
        tl = KernelTimeline((0,))
        tl.add(KernelPhase.LAUNCH, 2, 4)
        tl.add(KernelPhase.READ, 4, 9)
        assert tl.start == 2
        assert tl.end == 9

    def test_empty_timeline(self):
        tl = KernelTimeline((0,))
        assert tl.start == 0.0
        assert tl.end == 0.0

    def test_phase_record_duration(self):
        record = PhaseRecord(KernelPhase.READ, 3.0, 7.5)
        assert record.duration == 4.5


class TestLaunchScheduler:
    def test_stagger_spacing(self):
        scheduler = LaunchScheduler(ADM_PCIE_7V3)
        times = scheduler.launch_times(4)
        diffs = {b - a for a, b in zip(times, times[1:])}
        assert diffs == {float(ADM_PCIE_7V3.launch_stagger_cycles)}

    def test_first_launch_is_base_latency(self):
        times = LaunchScheduler(ADM_PCIE_7V3).launch_times(1)
        assert times == [float(ADM_PCIE_7V3.kernel_launch_cycles)]

    def test_launch_order_row_major(self):
        scheduler = LaunchScheduler(ADM_PCIE_7V3)
        order = scheduler.launch_order([(1, 0), (0, 1), (0, 0)])
        assert order == [(0, 0), (0, 1), (1, 0)]


class TestMemorySystem:
    def test_traffic_accumulates(self):
        mem = MemorySystem(ADM_PCIE_7V3, 4)
        mem.read_cycles(100)
        mem.read_cycles(200)
        mem.write_cycles(50)
        assert mem.bytes_read == 300
        assert mem.bytes_written == 50

    def test_sharing_slows_transfers(self):
        alone = MemorySystem(ADM_PCIE_7V3, 1).read_cycles(4096)
        shared = MemorySystem(ADM_PCIE_7V3, 8).read_cycles(4096)
        assert shared == pytest.approx(8 * alone)

    def test_invalid_sharing(self):
        with pytest.raises(SimulationError):
            MemorySystem(ADM_PCIE_7V3, 0)


class TestPipeSim:
    def test_transfer_cycles_scale_with_cpipe(self, pipe_design):
        import dataclasses

        tile = pipe_design.tiles[0]
        fast = halo_transfer_cycles(pipe_design, tile, 2, ADM_PCIE_7V3)
        slow_board = dataclasses.replace(
            ADM_PCIE_7V3, pipe_cycles_per_word=4
        )
        slow = halo_transfer_cycles(pipe_design, tile, 2, slow_board)
        assert slow == pytest.approx(4 * fast)

    def test_first_iteration_free(self, pipe_design):
        tile = pipe_design.tiles[0]
        assert halo_transfer_cycles(
            pipe_design, tile, 1, ADM_PCIE_7V3
        ) == 0.0

    def test_peak_packets(self, pipe_design, baseline_design):
        assert peak_packets_in_flight(pipe_design) > 0
        assert peak_packets_in_flight(baseline_design) == 0


class TestBreakdownScaling:
    def test_wait_component_scales(self):
        bd = LatencyBreakdown(0, 0, 0, 10, 0, 0, wait=5).scaled(3)
        assert bd.wait == 15
        assert bd.total == 45
