"""Tests for the region-block execution engine."""

import pytest

from repro.fpga.flexcl import FlexCLEstimator
from repro.opencl.platform import ADM_PCIE_7V3
from repro.sim.engine import RegionBlockEngine
from repro.sim.kernel import KernelPhase
from repro.tiling import make_pipe_shared_design


def run_block(design, board=ADM_PCIE_7V3):
    report = FlexCLEstimator().estimate(design.spec.pattern, design.unroll)
    return RegionBlockEngine(design, board, report).run()


class TestBaselineBlock:
    def test_block_positive(self, baseline_design):
        result = run_block(baseline_design)
        assert result.block_cycles > 0

    def test_all_kernels_have_timelines(self, baseline_design):
        result = run_block(baseline_design)
        assert set(result.timelines) == {
            t.index for t in baseline_design.tiles
        }

    def test_no_pipe_waits_in_baseline(self, baseline_design):
        result = run_block(baseline_design)
        for tl in result.timelines.values():
            assert tl.time_in(KernelPhase.PIPE_WAIT) == 0.0

    def test_launch_stagger_orders_kernels(self, baseline_design):
        result = run_block(baseline_design)
        launches = sorted(
            tl.time_in(KernelPhase.LAUNCH)
            for tl in result.timelines.values()
        )
        # Strictly increasing by the stagger interval.
        diffs = {
            round(b - a) for a, b in zip(launches, launches[1:])
        }
        assert diffs == {ADM_PCIE_7V3.launch_stagger_cycles}

    def test_critical_kernel_is_last_launched(self, baseline_design):
        # Symmetric workloads: the barrier is set by launch order.
        result = run_block(baseline_design)
        assert result.critical_index == max(result.timelines)

    def test_breakdown_components_sum_to_block(self, baseline_design):
        result = run_block(baseline_design)
        critical = result.breakdowns[result.critical_index]
        assert critical.total == pytest.approx(result.block_cycles)

    def test_noncritical_kernels_wait(self, baseline_design):
        result = run_block(baseline_design)
        waits = [
            bd.wait
            for idx, bd in result.breakdowns.items()
            if idx != result.critical_index
        ]
        assert all(w > 0 for w in waits)


class TestSharingBlock:
    def test_phases_in_order(self, pipe_design):
        result = run_block(pipe_design)
        for tl in result.timelines.values():
            kinds = [r.phase for r in tl.records]
            assert kinds[0] is KernelPhase.LAUNCH
            assert kinds[1] is KernelPhase.READ
            assert KernelPhase.COMPUTE in kinds
            assert kinds[-1] in (
                KernelPhase.WRITE,
                KernelPhase.BARRIER_WAIT,
            )

    def test_iteration_count_recorded(self, pipe_design):
        result = run_block(pipe_design)
        tl = next(iter(result.timelines.values()))
        iterations = {
            r.iteration
            for r in tl.records
            if r.phase is KernelPhase.COMPUTE
        }
        assert iterations == set(range(1, pipe_design.fused_depth + 1))

    def test_timeline_monotone(self, pipe_design):
        result = run_block(pipe_design)
        for tl in result.timelines.values():
            for record in tl.records:
                assert record.end >= record.start

    def test_sharing_block_faster_than_baseline(
        self, baseline_design, pipe_design
    ):
        base = run_block(baseline_design)
        pipe = run_block(pipe_design)
        assert pipe.block_cycles < base.block_cycles

    def test_redundant_compute_attributed(self, baseline_design):
        result = run_block(baseline_design)
        bd = result.breakdowns[result.critical_index]
        assert bd.compute_redundant > 0

    def test_inner_tile_has_no_redundancy(self, small_jacobi2d):
        design = make_pipe_shared_design(
            small_jacobi2d, (8, 8), (4, 4), 2
        )
        result = run_block(design)
        inner = result.breakdowns[(1, 1)]
        assert inner.compute_redundant == 0

    def test_memsys_traffic_recorded(self, pipe_design):
        report = FlexCLEstimator().estimate(
            pipe_design.spec.pattern, pipe_design.unroll
        )
        engine = RegionBlockEngine(pipe_design, ADM_PCIE_7V3, report)
        engine.run()
        total_read = sum(
            pipe_design.tile_read_bytes(t) for t in pipe_design.tiles
        )
        assert engine.memsys.bytes_read == total_read
