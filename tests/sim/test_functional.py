"""Tests for the functional executor: the bitwise-match oracle."""

import numpy as np
import pytest

from repro.errors import SpecificationError
from repro.sim.functional import FunctionalExecutor, run_functional
from repro.stencil import (
    BoundaryPolicy,
    get_benchmark,
    jacobi_2d,
    run_reference,
)
from repro.tiling import (
    make_baseline_design,
    make_heterogeneous_design,
    make_pipe_shared_design,
)


def assert_bitwise_match(spec, design):
    ref = run_reference(spec)
    out = run_functional(design)
    for field in spec.pattern.fields:
        assert np.array_equal(ref[field], out[field]), field


class TestBitwiseEquivalence:
    def test_baseline(self, small_jacobi2d, baseline_design):
        assert_bitwise_match(small_jacobi2d, baseline_design)

    def test_pipe_shared(self, small_jacobi2d, pipe_design):
        assert_bitwise_match(small_jacobi2d, pipe_design)

    def test_heterogeneous(self, small_jacobi2d, hetero_design):
        assert_bitwise_match(small_jacobi2d, hetero_design)

    def test_1d(self, small_jacobi1d):
        design = make_heterogeneous_design(small_jacobi1d, (32,), (4,), 3)
        assert_bitwise_match(small_jacobi1d, design)

    def test_3d(self, small_jacobi3d):
        design = make_pipe_shared_design(
            small_jacobi3d, (4, 4, 4), (2, 2, 2), 2
        )
        assert_bitwise_match(small_jacobi3d, design)

    def test_multi_field_fdtd(self, small_fdtd2d):
        design = make_pipe_shared_design(small_fdtd2d, (6, 6), (2, 2), 3)
        assert_bitwise_match(small_fdtd2d, design)

    def test_aux_input_hotspot(self, small_hotspot2d):
        design = make_heterogeneous_design(
            small_hotspot2d, (16, 16), (2, 2), 3
        )
        assert_bitwise_match(small_hotspot2d, design)

    def test_wide_radius(self):
        spec = get_benchmark("wide-star-1d", grid=(48,), iterations=6)
        design = make_pipe_shared_design(spec, (12,), (2,), 3)
        assert_bitwise_match(spec, design)

    def test_indivisible_depth_partial_last_block(self):
        # 7 iterations at h=3: two full blocks plus a 1-iteration tail.
        spec = jacobi_2d(grid=(24, 24), iterations=7)
        design = make_pipe_shared_design(spec, (12, 12), (2, 2), 3)
        assert_bitwise_match(spec, design)

    def test_multiple_regions(self):
        # 48x48 grid with a 16x16 region: 9 regions per block.
        spec = jacobi_2d(grid=(48, 48), iterations=4)
        design = make_heterogeneous_design(spec, (16, 16), (2, 2), 2)
        assert_bitwise_match(spec, design)

    def test_asymmetric_tile_grid(self):
        spec = jacobi_2d(grid=(24, 36), iterations=4)
        design = make_pipe_shared_design(spec, (12, 6), (2, 6), 2)
        assert_bitwise_match(spec, design)

    def test_deep_fusion_beyond_tile_size(self):
        # h large relative to the tile: cones overlap tiles entirely.
        spec = jacobi_2d(grid=(32, 32), iterations=12)
        design = make_baseline_design(spec, (8, 8), (2, 2), 6)
        assert_bitwise_match(spec, design)


class TestIterationControl:
    def test_explicit_iterations(self, small_jacobi2d, pipe_design):
        ref = run_reference(small_jacobi2d, iterations=5)
        out = run_functional(pipe_design, iterations=5)
        assert np.array_equal(ref["a"], out["a"])

    def test_zero_iterations_identity(self, small_jacobi2d, pipe_design):
        state = small_jacobi2d.initial_state()
        out = run_functional(pipe_design, state=state, iterations=0)
        assert np.array_equal(out["a"], state["a"])

    def test_custom_state_and_aux(self, small_hotspot2d):
        design = make_pipe_shared_design(
            small_hotspot2d, (16, 16), (2, 2), 2
        )
        state = {
            "a": np.random.default_rng(3)
            .uniform(size=(32, 32))
            .astype(np.float32)
        }
        aux = {"power": np.zeros((32, 32), dtype=np.float32)}
        ref = run_reference(small_hotspot2d, state=state, aux=aux)
        out = run_functional(design, state=state, aux=aux)
        assert np.array_equal(ref["a"], out["a"])

    def test_input_not_mutated(self, small_jacobi2d, pipe_design):
        state = small_jacobi2d.initial_state()
        snapshot = state["a"].copy()
        run_functional(pipe_design, state=state)
        assert np.array_equal(state["a"], snapshot)


class TestPipeUsage:
    def test_pipes_created_for_sharing(self, small_jacobi2d, pipe_design):
        executor = FunctionalExecutor(pipe_design)
        executor.run()
        assert executor.pipes
        for pipe in executor.pipes.values():
            assert pipe.total_writes == pipe.total_reads > 0

    def test_no_pipes_for_baseline(self, baseline_design):
        executor = FunctionalExecutor(baseline_design)
        executor.run()
        assert executor.pipes == {}

    def test_no_pipes_when_depth_one(self, small_jacobi2d):
        design = make_pipe_shared_design(small_jacobi2d, (16, 16), (2, 2), 1)
        executor = FunctionalExecutor(design)
        executor.run()
        assert executor.pipes == {}


class TestValidation:
    def test_indivisible_region_rejected(self, small_jacobi2d):
        design = make_pipe_shared_design(small_jacobi2d, (7, 7), (2, 2), 2)
        with pytest.raises(SpecificationError, match="not divisible"):
            FunctionalExecutor(design)

    def test_clamp_boundary_rejected(self, small_jacobi2d):
        import dataclasses

        clamped = dataclasses.replace(
            small_jacobi2d, boundary=BoundaryPolicy.CLAMP
        )
        design = make_pipe_shared_design(clamped, (8, 8), (2, 2), 2)
        with pytest.raises(SpecificationError, match="CLAMP"):
            FunctionalExecutor(design)
