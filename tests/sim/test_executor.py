"""Tests for the whole-run simulation executor."""

import pytest

from repro.opencl.platform import ADM_PCIE_7V3
from repro.sim import SimulationExecutor, simulate
from repro.stencil import jacobi_2d
from repro.tiling import (
    make_baseline_design,
    make_heterogeneous_design,
    make_pipe_shared_design,
)


class TestScaling:
    def test_total_is_blocks_times_block(self, baseline_design):
        result = simulate(baseline_design)
        assert result.total_cycles == pytest.approx(
            result.block.block_cycles * result.num_blocks
        )

    def test_num_blocks_matches_design(self, baseline_design):
        result = simulate(baseline_design)
        assert result.num_blocks == baseline_design.num_blocks()

    def test_seconds_at_board_clock(self, baseline_design):
        result = simulate(baseline_design)
        assert result.seconds == pytest.approx(
            result.total_cycles / 200e6
        )

    def test_throughput(self, baseline_design):
        result = simulate(baseline_design)
        useful = 32 * 32 * 8
        assert result.throughput_updates_per_cycle == pytest.approx(
            useful / result.total_cycles
        )

    def test_kernel_breakdowns_scaled(self, baseline_design):
        result = simulate(baseline_design)
        per_kernel = result.kernel_breakdowns()
        critical = per_kernel[result.block.critical_index]
        assert critical.total == pytest.approx(result.total_cycles)


class TestDesignComparisons:
    def test_paper_scale_speedup_band(self):
        """Jacobi-2D at paper scale: heterogeneous wins by 1.1-2x."""
        spec = jacobi_2d()
        base = make_baseline_design(spec, (128, 128), (4, 4), 32, unroll=4)
        het = make_heterogeneous_design(
            spec, (512, 512), (4, 4), 64, unroll=4
        )
        speedup = (
            simulate(base).total_cycles / simulate(het).total_cycles
        )
        assert 1.1 < speedup < 2.0

    def test_pipe_between_baseline_and_hetero(self):
        spec = jacobi_2d()
        base = make_baseline_design(spec, (128, 128), (4, 4), 32, unroll=4)
        pipe = make_pipe_shared_design(
            spec, (128, 128), (4, 4), 32, unroll=4
        )
        het = make_heterogeneous_design(
            spec, (512, 512), (4, 4), 32, unroll=4
        )
        t_base = simulate(base).total_cycles
        t_pipe = simulate(pipe).total_cycles
        t_het = simulate(het).total_cycles
        assert t_het < t_pipe < t_base

    def test_deterministic(self, hetero_design):
        a = simulate(hetero_design).total_cycles
        b = simulate(hetero_design).total_cycles
        assert a == b

    def test_custom_board(self, baseline_design):
        slow_board = ADM_PCIE_7V3.with_bandwidth(1e9)
        slow = SimulationExecutor(slow_board).run(baseline_design)
        fast = SimulationExecutor(ADM_PCIE_7V3).run(baseline_design)
        assert slow.total_cycles > fast.total_cycles

    def test_report_override(self, baseline_design):
        from repro.fpga.flexcl import FlexCLEstimator

        slow_report = FlexCLEstimator().estimate(
            baseline_design.spec.pattern,
            baseline_design.unroll,
            partitions=1,
        )
        executor = SimulationExecutor()
        slow = executor.run(baseline_design, report=slow_report)
        fast = executor.run(baseline_design)
        assert slow.total_cycles > fast.total_cycles

    def test_breakdown_fractions_sane(self, hetero_design):
        result = simulate(hetero_design)
        fractions = result.breakdown.fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)
        assert fractions["compute_useful"] > 0


class TestPrefetchExtension:
    def test_prefetch_never_slower(self, baseline_design):
        executor = SimulationExecutor()
        plain = executor.run(baseline_design)
        fast = executor.run(baseline_design, prefetch_reads=True)
        assert fast.total_cycles <= plain.total_cycles
        assert fast.prefetched and not plain.prefetched

    def test_prefetch_bounded_by_fetch_stage(self, baseline_design):
        """Pipelining cannot beat the longer of the two stages."""
        executor = SimulationExecutor()
        fast = executor.run(baseline_design, prefetch_reads=True)
        block = fast.block.block_cycles
        # At least one stage of every block remains on the critical path.
        assert fast.total_cycles >= block
        assert fast.total_cycles >= (
            fast.num_blocks * block / 2
        )

    def test_single_block_unchanged(self, small_jacobi2d):
        from repro.tiling import make_baseline_design

        design = make_baseline_design(
            small_jacobi2d.with_grid((16, 16)), (8, 8), (2, 2), 8
        )
        assert design.num_blocks() == 1
        executor = SimulationExecutor()
        plain = executor.run(design)
        fast = executor.run(design, prefetch_reads=True)
        assert fast.total_cycles == pytest.approx(plain.total_cycles)
