"""JIT backend parity: jit == numpy == reference, bit for bit.

The compiled backend's whole contract is bitwise equality with the
interpreter (docs/SIM.md); every test here compares all three
executors on the same design.  The suite is skipped wholesale when the
host has no usable C compiler — the fallback behavior for that case is
covered (with a monkeypatched compiler probe) in test_jit_backend.py.
"""

import dataclasses
import os

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings

from repro.sim import jit
from repro.sim.functional import run_functional
from repro.stencil import (
    BoundaryPolicy,
    get_benchmark,
    jacobi_2d,
    run_reference,
)
from repro.tiling import (
    make_baseline_design,
    make_heterogeneous_design,
    make_pipe_shared_design,
)

from tests.integration.test_properties import random_cases

needs_cc = pytest.mark.skipif(
    jit.find_compiler() is None, reason="no working C compiler"
)

pytestmark = needs_cc


@pytest.fixture(scope="module", autouse=True)
def _isolated_cache(tmp_path_factory):
    """Compile into a throwaway cache; never touch ``~/.cache``."""
    root = tmp_path_factory.mktemp("jit-cache")
    previous = os.environ.get(jit.CACHE_ENV)
    os.environ[jit.CACHE_ENV] = str(root)
    jit.clear_memo()
    yield
    if previous is None:
        os.environ.pop(jit.CACHE_ENV, None)
    else:
        os.environ[jit.CACHE_ENV] = previous
    jit.clear_memo()


def assert_three_way_match(spec, design):
    ref = run_reference(spec)
    interpreted = run_functional(design, backend="numpy")
    compiled = jit.run_jit(design)
    for field in spec.pattern.fields:
        assert np.array_equal(ref[field], interpreted[field]), field
        assert np.array_equal(ref[field], compiled[field]), field


def periodic(spec):
    return dataclasses.replace(spec, boundary=BoundaryPolicy.PERIODIC)


MAKERS = {
    "baseline": lambda spec, h: make_baseline_design(
        spec, (8, 8), (2, 2), h
    ),
    "pipe-shared": lambda spec, h: make_pipe_shared_design(
        spec, (8, 8), (2, 2), h
    ),
    "heterogeneous": lambda spec, h: make_heterogeneous_design(
        spec, (16, 16), (2, 2), h
    ),
}


class TestDesignKindsAndBoundaries:
    @pytest.mark.parametrize("kind", sorted(MAKERS))
    @pytest.mark.parametrize("boundary", ["frozen", "periodic"])
    @pytest.mark.parametrize("fused", [1, 3])
    def test_jacobi2d(self, kind, boundary, fused):
        spec = jacobi_2d(grid=(32, 32), iterations=6)
        if boundary == "periodic":
            spec = periodic(spec)
        assert_three_way_match(spec, MAKERS[kind](spec, fused))

    def test_1d(self, small_jacobi1d):
        design = make_heterogeneous_design(small_jacobi1d, (32,), (4,), 3)
        assert_three_way_match(small_jacobi1d, design)

    def test_3d(self, small_jacobi3d):
        design = make_pipe_shared_design(
            small_jacobi3d, (4, 4, 4), (2, 2, 2), 2
        )
        assert_three_way_match(small_jacobi3d, design)

    def test_multi_field_fdtd(self, small_fdtd2d):
        design = make_pipe_shared_design(small_fdtd2d, (6, 6), (2, 2), 3)
        assert_three_way_match(small_fdtd2d, design)

    def test_aux_input_hotspot(self, small_hotspot2d):
        design = make_heterogeneous_design(
            small_hotspot2d, (16, 16), (2, 2), 3
        )
        assert_three_way_match(small_hotspot2d, design)

    def test_wide_radius(self):
        spec = get_benchmark("wide-star-1d", grid=(48,), iterations=6)
        design = make_pipe_shared_design(spec, (12,), (2,), 3)
        assert_three_way_match(spec, design)

    def test_float64(self):
        spec = dataclasses.replace(
            jacobi_2d(grid=(24, 24), iterations=5), dtype="float64"
        )
        design = make_pipe_shared_design(spec, (6, 6), (2, 2), 2)
        assert_three_way_match(spec, design)

    def test_periodic_3d(self):
        spec = periodic(
            get_benchmark("jacobi-3d", grid=(12, 12, 12), iterations=4)
        )
        design = make_pipe_shared_design(
            spec, (3, 3, 3), (2, 2, 2), 2
        )
        assert_three_way_match(spec, design)


class TestEdgeCases:
    def test_zero_iterations_returns_initial_state(self, small_jacobi2d):
        design = make_baseline_design(small_jacobi2d, (8, 8), (2, 2), 4)
        out = jit.run_jit(design, iterations=0)
        for name, grid in small_jacobi2d.initial_state().items():
            assert np.array_equal(grid, out[name])

    def test_nondivisible_fused_tail(self):
        # 7 iterations at h=3 -> blocks of 3, 3, 1.
        spec = jacobi_2d(grid=(32, 32), iterations=7)
        design = make_heterogeneous_design(spec, (16, 16), (2, 2), 3)
        assert_three_way_match(spec, design)

    def test_explicit_state_and_iterations(self, small_jacobi2d):
        design = make_baseline_design(small_jacobi2d, (8, 8), (2, 2), 4)
        state = {
            name: grid * 2.0
            for name, grid in small_jacobi2d.initial_state().items()
        }
        interpreted = run_functional(
            design, state=state, iterations=3, backend="numpy"
        )
        compiled = jit.run_jit(design, state=state, iterations=3)
        for field in small_jacobi2d.pattern.fields:
            assert np.array_equal(interpreted[field], compiled[field])

    def test_caller_arrays_not_mutated(self, small_jacobi2d):
        design = make_baseline_design(small_jacobi2d, (8, 8), (2, 2), 4)
        state = small_jacobi2d.initial_state()
        snapshot = {k: v.copy() for k, v in state.items()}
        jit.run_jit(design, state=state)
        for name, grid in snapshot.items():
            assert np.array_equal(grid, state[name])


class TestPropertyParity:
    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(random_cases())
    def test_random_frozen_designs(self, case):
        spec, design = case
        assert_three_way_match(spec, design)

    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(random_cases(boundaries=("frozen", "periodic")))
    def test_random_periodic_designs(self, case):
        spec, design = case
        assert_three_way_match(spec, design)
