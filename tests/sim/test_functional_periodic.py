"""Tests for tiled execution under the PERIODIC boundary policy."""

import dataclasses

import numpy as np
import pytest

from repro.errors import SpecificationError
from repro.sim.functional import FunctionalExecutor, run_functional
from repro.stencil import (
    BoundaryPolicy,
    get_benchmark,
    jacobi_2d,
    run_reference,
)
from repro.tiling import (
    make_baseline_design,
    make_heterogeneous_design,
    make_pipe_shared_design,
)


def periodic(spec):
    return dataclasses.replace(spec, boundary=BoundaryPolicy.PERIODIC)


def assert_match(spec, design):
    ref = run_reference(spec)
    out = run_functional(design)
    for field in spec.pattern.fields:
        assert np.array_equal(ref[field], out[field]), field


class TestPeriodicBitwise:
    def test_baseline(self):
        spec = periodic(jacobi_2d(grid=(32, 32), iterations=6))
        assert_match(spec, make_baseline_design(spec, (8, 8), (2, 2), 3))

    def test_pipe_shared(self):
        spec = periodic(jacobi_2d(grid=(32, 32), iterations=6))
        assert_match(
            spec, make_pipe_shared_design(spec, (8, 8), (2, 2), 3)
        )

    def test_heterogeneous(self):
        spec = periodic(jacobi_2d(grid=(32, 32), iterations=6))
        assert_match(
            spec, make_heterogeneous_design(spec, (16, 16), (2, 2), 3)
        )

    def test_1d_wraparound(self):
        spec = periodic(
            get_benchmark("jacobi-1d", grid=(48,), iterations=7)
        )
        assert_match(spec, make_pipe_shared_design(spec, (12,), (2,), 3))

    def test_3d(self):
        spec = periodic(
            get_benchmark("jacobi-3d", grid=(12, 12, 12), iterations=4)
        )
        assert_match(
            spec, make_pipe_shared_design(spec, (6, 6, 6), (2, 2, 2), 2)
        )

    def test_deep_cone_wraps_multiple_times(self):
        # Cone margin r*h exceeds the grid extent: ghost gathers wrap
        # more than once.
        spec = periodic(jacobi_2d(grid=(12, 12), iterations=16))
        design = make_baseline_design(spec, (6, 6), (2, 2), 16)
        assert_match(spec, design)

    def test_translation_equivariance(self):
        """Tiled periodic execution commutes with cyclic shifts."""
        spec = periodic(jacobi_2d(grid=(24, 24), iterations=4))
        design = make_pipe_shared_design(spec, (12, 12), (2, 2), 2)
        state = spec.initial_state()
        rolled = {"a": np.roll(state["a"], (5, 7), axis=(0, 1))}
        out_plain = run_functional(design, state=state)
        out_rolled = run_functional(design, state=rolled)
        assert np.array_equal(
            np.roll(out_plain["a"], (5, 7), axis=(0, 1)),
            out_rolled["a"],
        )


class TestClampRejected:
    def test_clamp_rejected_with_reason(self):
        spec = dataclasses.replace(
            jacobi_2d(grid=(16, 16), iterations=2),
            boundary=BoundaryPolicy.CLAMP,
        )
        design = make_baseline_design(spec, (8, 8), (2, 2), 2)
        with pytest.raises(SpecificationError, match="CLAMP"):
            FunctionalExecutor(design)
