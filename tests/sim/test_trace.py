"""Tests for the Chrome-tracing exporter."""

import json

import pytest

from repro.sim import simulate
from repro.sim.kernel import KernelPhase
from repro.sim.trace import to_chrome_trace, write_chrome_trace


@pytest.fixture(scope="module")
def result():
    from repro.stencil import jacobi_2d
    from repro.tiling import make_pipe_shared_design

    spec = jacobi_2d(grid=(32, 32), iterations=8)
    return simulate(make_pipe_shared_design(spec, (8, 8), (2, 2), 4))


class TestTraceStructure:
    def test_has_trace_events(self, result):
        trace = to_chrome_trace(result)
        assert trace["traceEvents"]
        assert trace["displayTimeUnit"] == "ms"

    def test_one_thread_per_kernel(self, result):
        trace = to_chrome_trace(result)
        threads = {
            e["tid"]
            for e in trace["traceEvents"]
            if e.get("name") == "thread_name"
        }
        assert len(threads) == 4

    def test_phase_events_complete_type(self, result):
        trace = to_chrome_trace(result)
        phases = [
            e
            for e in trace["traceEvents"]
            if e.get("cat") == "kernel-phase"
        ]
        assert phases
        for event in phases:
            assert event["ph"] == "X"
            assert event["dur"] >= 0
            assert event["ts"] >= 0

    def test_all_phase_kinds_named(self, result):
        trace = to_chrome_trace(result)
        names = {
            e["name"]
            for e in trace["traceEvents"]
            if e.get("cat") == "kernel-phase"
        }
        assert str(KernelPhase.COMPUTE) in names
        assert str(KernelPhase.READ) in names

    def test_timestamps_in_microseconds(self, result):
        trace = to_chrome_trace(result)
        compute = [
            e
            for e in trace["traceEvents"]
            if e.get("cat") == "kernel-phase"
        ]
        max_ts = max(e["ts"] + e["dur"] for e in compute)
        expected = (
            result.block.block_cycles * 1e6 / result.board.clock_hz
        )
        assert max_ts == pytest.approx(expected)

    def test_metadata(self, result):
        trace = to_chrome_trace(result)
        assert trace["otherData"]["num_blocks"] == result.num_blocks


class TestWrite:
    def test_write_round_trips(self, result, tmp_path):
        path = write_chrome_trace(result, tmp_path / "trace.json")
        loaded = json.loads(path.read_text())
        assert loaded["traceEvents"]
