"""JIT backend plumbing: selection, caching, fallback, and wiring.

Parity itself is covered in test_jit_parity.py; this module tests the
machinery around the compiled kernels — backend resolution order, the
disk cache and in-process memo, the no-compiler fallback (simulated by
pointing ``CC`` at ``/bin/false``), the executor/checkpoint/api
surfaces, and the warm-cache contract on a scaled-down Figure 7 sweep.
"""

import dataclasses

import numpy as np
import pytest

from repro import obs
from repro.errors import BackendUnavailable
from repro.opencl.platform import ADM_PCIE_7V3
from repro.sim import jit
from repro.sim.executor import SimulationExecutor
from repro.sim.functional import FunctionalExecutor, run_functional
from repro.stencil import jacobi_2d, run_reference
from repro.store.checkpoint import CheckpointedExecutor
from repro.tiling import make_baseline_design

needs_cc = pytest.mark.skipif(
    jit.find_compiler() is None, reason="no working C compiler"
)


def counters():
    return obs.get_registry().report()["counters"]


@pytest.fixture(autouse=True)
def clean_jit(tmp_path, monkeypatch):
    """Isolated cache, no memo/probe carry-over, no process default."""
    monkeypatch.setenv(jit.CACHE_ENV, str(tmp_path / "jit-cache"))
    jit.set_default_backend(None)
    jit.clear_memo()
    jit.clear_probe_cache()
    obs.disable()
    obs.reset()
    yield
    jit.set_default_backend(None)
    jit.clear_memo()
    jit.clear_probe_cache()
    obs.disable()
    obs.reset()


@pytest.fixture
def no_compiler(monkeypatch):
    """Force compiler discovery to fail (CC is exclusive when set)."""
    monkeypatch.setenv("CC", "/bin/false")
    jit.clear_probe_cache()
    yield
    jit.clear_probe_cache()


@pytest.fixture
def design(small_jacobi2d):
    return make_baseline_design(small_jacobi2d, (8, 8), (2, 2), 4)


class TestResolutionOrder:
    def test_numpy_always_resolves(self):
        assert jit.resolve_backend("numpy") == "numpy"

    @needs_cc
    def test_auto_resolves_jit_with_compiler(self):
        assert jit.resolve_backend("auto") == "jit"

    def test_auto_resolves_numpy_without_compiler(self, no_compiler):
        assert jit.resolve_backend("auto") == "numpy"

    def test_jit_request_without_compiler_falls_back(self, no_compiler):
        obs.enable()
        assert jit.resolve_backend("jit") == "numpy"
        assert counters()["sim.jit.fallbacks"] == 1

    def test_arg_beats_process_default(self):
        jit.set_default_backend("auto")
        assert jit.requested_backend("numpy") == "numpy"

    def test_process_default_beats_env(self, monkeypatch):
        monkeypatch.setenv(jit.BACKEND_ENV, "auto")
        jit.set_default_backend("numpy")
        assert jit.requested_backend() == "numpy"

    def test_env_beats_builtin_auto(self, monkeypatch):
        monkeypatch.setenv(jit.BACKEND_ENV, "numpy")
        assert jit.requested_backend() == "numpy"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="Unknown sim backend"):
            jit.requested_backend("fortran")
        with pytest.raises(ValueError, match="Unknown sim backend"):
            jit.set_default_backend("fortran")

    def test_backend_report_without_compiler(self, no_compiler):
        report = jit.backend_report("jit")
        assert report == {
            "requested": "jit",
            "resolved": "numpy",
            "compiler": None,
        }

    @needs_cc
    def test_backend_report_with_compiler(self):
        report = jit.backend_report("auto")
        assert report["requested"] == "auto"
        assert report["resolved"] == "jit"
        assert report["compiler"]


class TestCompilerProbe:
    def test_cc_env_is_exclusive(self, monkeypatch):
        monkeypatch.setenv("CC", "/nonexistent-compiler")
        jit.clear_probe_cache()
        assert jit.find_compiler() is None

    @needs_cc
    def test_fingerprint_is_stable(self):
        first = jit.find_compiler()
        second = jit.find_compiler()
        assert first.fingerprint == second.fingerprint


@needs_cc
class TestKernelCache:
    def test_memo_then_disk_then_build(self, design):
        obs.enable()
        jit.get_kernel(design)
        after_build = counters()
        assert after_build["sim.jit.compiles"] == 1
        assert after_build["sim.jit.cache_misses"] == 1

        jit.get_kernel(design)
        after_memo = counters()
        assert after_memo["sim.jit.compiles"] == 1
        assert after_memo["sim.jit.memo_hits"] == 1

        jit.clear_memo()  # new process, warm disk cache
        jit.get_kernel(design)
        after_disk = counters()
        assert after_disk["sim.jit.compiles"] == 1
        assert after_disk["sim.jit.cache_hits"] == 1

    def test_clear_forces_rebuild(self, design):
        obs.enable()
        jit.get_kernel(design)
        cache = jit.KernelCache()
        assert cache.clear() > 0
        jit.clear_memo()
        jit.get_kernel(design)
        assert counters()["sim.jit.compiles"] == 2

    def test_key_invalidation_axes(self):
        base = dict(
            design_signature="d",
            spec_signature="s",
            dtype_name="float32",
            codegen_version=1,
            compiler_fingerprint="cc",
        )
        key = jit.kernel_key(**base)
        assert key == jit.kernel_key(**base)
        for axis, changed in [
            ("design_signature", "d2"),
            ("spec_signature", "s2"),
            ("dtype_name", "float64"),
            ("codegen_version", 2),
            ("compiler_fingerprint", "clang"),
        ]:
            assert key != jit.kernel_key(**{**base, axis: changed}), axis

    def test_source_artifact_kept_beside_object(self, design):
        kernel = jit.get_kernel(design)
        cache = jit.KernelCache()
        sources = list(cache.root.glob("*.c"))
        assert len(sources) == 1
        assert "repro_jit_run" in sources[0].read_text()
        assert kernel.so_path.startswith(str(cache.root))


class TestFallback:
    def test_run_functional_falls_back_identically(
        self, no_compiler, small_jacobi2d, design
    ):
        obs.enable()
        out = run_functional(design, backend="jit")
        ref = run_reference(small_jacobi2d)
        for field in small_jacobi2d.pattern.fields:
            assert np.array_equal(ref[field], out[field])
        assert counters()["sim.jit.fallbacks"] >= 1
        assert counters()["sim.numpy.runs"] == 1

    def test_executor_reports_numpy_when_unavailable(
        self, no_compiler, design
    ):
        executor = FunctionalExecutor(design, backend="jit")
        executor.run()
        assert executor.active_backend == "numpy"

    def test_get_kernel_raises_without_compiler(
        self, no_compiler, design
    ):
        with pytest.raises(BackendUnavailable, match="no working C"):
            jit.get_kernel(design)

    @needs_cc
    def test_clamp_boundary_stays_on_interpreter(self):
        from repro.stencil import BoundaryPolicy, hotspot_2d

        spec = dataclasses.replace(
            hotspot_2d(grid=(16, 16), iterations=3),
            boundary=BoundaryPolicy.CLAMP,
        )
        design = make_baseline_design(spec, (8, 8), (2, 2), 3)
        assert jit.unsupported_reason(design, np.dtype("float32"))
        with pytest.raises(BackendUnavailable, match="CLAMP"):
            jit.get_kernel(design)

    @needs_cc
    def test_mixed_aux_dtype_stays_on_interpreter(self):
        from repro.stencil import hotspot_2d

        spec = hotspot_2d(grid=(16, 16), iterations=3)
        design = make_baseline_design(spec, (8, 8), (2, 2), 3)
        aux = {
            name: grid.astype(np.float64)
            for name, grid in spec.aux_state().items()
        }
        expected = run_functional(design, aux=aux, backend="numpy")
        executor = FunctionalExecutor(design, backend="jit")
        out = executor.run(aux=aux)
        assert executor.active_backend == "numpy"
        for field in spec.pattern.fields:
            assert np.array_equal(expected[field], out[field])


@needs_cc
class TestExecutorWiring:
    def test_functional_executor_active_backend(
        self, small_jacobi2d, design
    ):
        executor = FunctionalExecutor(design, backend="jit")
        out = executor.run()
        assert executor.active_backend == "jit"
        ref = run_reference(small_jacobi2d)
        for field in small_jacobi2d.pattern.fields:
            assert np.array_equal(ref[field], out[field])

    def test_simulation_executor_execute_and_result_stamp(
        self, small_jacobi2d, design
    ):
        executor = SimulationExecutor(ADM_PCIE_7V3, backend="jit")
        assert executor.resolved_backend() == "jit"
        out = executor.execute(design)
        ref = run_reference(small_jacobi2d)
        for field in small_jacobi2d.pattern.fields:
            assert np.array_equal(ref[field], out[field])
        assert executor.run(design).sim_backend == "jit"
        numpy_executor = SimulationExecutor(ADM_PCIE_7V3, backend="numpy")
        assert numpy_executor.run(design).sim_backend == "numpy"

    def test_trace_events_stamp_backend(self, design):
        from repro.sim.trace import to_chrome_trace

        result = SimulationExecutor(ADM_PCIE_7V3, backend="jit").run(
            design
        )
        trace = to_chrome_trace(result)
        assert trace["otherData"]["sim_backend"] == "jit"
        kernel_events = [
            e
            for e in trace["traceEvents"]
            if e.get("args", {}).get("backend")
        ]
        assert kernel_events
        assert all(
            e["args"]["backend"] == "jit" for e in kernel_events
        )

    def test_checkpointed_executor_passthrough(
        self, small_jacobi2d, design
    ):
        executor = CheckpointedExecutor(ADM_PCIE_7V3, sim_backend="jit")
        assert executor.resolved_backend() == "jit"
        out = executor.execute(design)
        ref = run_reference(small_jacobi2d)
        for field in small_jacobi2d.pattern.fields:
            assert np.array_equal(ref[field], out[field])

    def test_api_synthesize_reports_backend(self):
        from repro.api import synthesize

        result = synthesize(
            benchmark="jacobi-2d",
            grid_shape=(16, 16),
            iterations=4,
            design="baseline",
            emit=False,
            sim_backend="numpy",
        )
        assert result.sim_backend == "numpy"

    def test_service_health_reports_backend(self):
        from repro.service import SynthesisService

        service = SynthesisService(
            board=ADM_PCIE_7V3, workers=1, sim_backend="jit"
        )
        try:
            report = service.health()["sim_backend"]
            assert report["requested"] == "jit"
            assert report["resolved"] == "jit"
            assert report["compiler"]
        finally:
            service.shutdown()


@dataclasses.dataclass(frozen=True)
class _SmallConfig:
    """Stand-in for a Table 3 config, scaled to test size."""

    name: str
    tile_shape: tuple
    counts: tuple
    fused_depth: int
    unroll: int

    def spec(self):
        return jacobi_2d(grid=(32, 32), iterations=16)

    def baseline(self):
        return make_baseline_design(
            self.spec(), self.tile_shape, self.counts, self.fused_depth
        )


@needs_cc
class TestWarmCacheFigure7:
    def test_second_sweep_skips_all_compiles(self, monkeypatch):
        from repro.experiments import figure7

        config = _SmallConfig("jacobi-2d", (8, 8), (2, 2), 4, 1)
        monkeypatch.setattr(
            figure7, "TABLE3_CONFIGS", {"jacobi-2d": config}
        )
        obs.enable()
        first = figure7.run_figure7(
            benchmarks=("jacobi-2d",),
            check_execution=True,
            sim_backend="jit",
        )
        cold = counters()
        assert cold["sim.jit.compiles"] == len(first[0].depths)
        assert cold.get("sim.jit.cache_hits", 0) == 0

        jit.clear_memo()  # simulate a fresh process on a warm cache
        second = figure7.run_figure7(
            benchmarks=("jacobi-2d",),
            check_execution=True,
            sim_backend="jit",
        )
        warm = counters()
        assert warm["sim.jit.compiles"] == cold["sim.jit.compiles"]
        assert warm["sim.jit.cache_hits"] == len(second[0].depths)
        assert first == second
