"""Documentation regression: every tutorial code block must run."""

import contextlib
import io
import pathlib
import re

import pytest

DOCS = pathlib.Path(__file__).parent.parent / "docs"
README = pathlib.Path(__file__).parent.parent / "README.md"


class TestTutorial:
    def test_all_python_blocks_execute(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        text = (DOCS / "TUTORIAL.md").read_text()
        blocks = re.findall(r"```python\n(.*?)```", text, re.S)
        assert len(blocks) >= 5
        namespace = {}
        with contextlib.redirect_stdout(io.StringIO()):
            for block in blocks:
                exec(block, namespace)  # noqa: S102 - doc check

    def test_model_doc_references_real_symbols(self):
        """Every backticked dotted path in docs/MODEL.md must import."""
        import importlib

        text = (DOCS / "MODEL.md").read_text()
        for match in re.findall(r"`(repro\.[a-z_.]+)`", text):
            parts = match.split(".")
            for split in range(len(parts), 1, -1):
                try:
                    module = importlib.import_module(
                        ".".join(parts[:split])
                    )
                except ImportError:
                    continue
                obj = module
                ok = True
                for attr in parts[split:]:
                    if not hasattr(obj, attr):
                        ok = False
                        break
                    obj = getattr(obj, attr)
                if ok:
                    break
            else:
                pytest.fail(f"Dangling doc reference: {match}")


class TestReadme:
    def test_quickstart_snippet_runs(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        text = README.read_text()
        blocks = re.findall(r"```python\n(.*?)```", text, re.S)
        assert blocks
        # The first block is the quickstart; trim the paper-scale call
        # to something test-sized by substituting the grid.
        snippet = blocks[0].replace(
            "spec = jacobi_2d()",
            "spec = jacobi_2d(grid=(256, 256), iterations=32)",
        ).replace("(128, 128), (4, 4), 32", "(64, 64), (2, 2), 8")
        with contextlib.redirect_stdout(io.StringIO()):
            exec(snippet, {})  # noqa: S102 - doc check

    def test_example_scripts_listed_exist(self):
        text = README.read_text()
        root = README.parent
        for match in re.findall(r"python (examples/[a-z_]+\.py)", text):
            assert (root / match).exists(), match
