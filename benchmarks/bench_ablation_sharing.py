"""Ablation: pipe-based data sharing on/off at equal tiling.

Isolates contribution #1 (Section 3.1): at the *same* tile grid and
fusion depth, replacing overlapped cones with pipe sharing removes the
interior redundant computation and its latency.
"""

import pytest

from repro.experiments.configs import TABLE3_CONFIGS
from repro.sim import simulate
from repro.tiling import make_pipe_shared_design


@pytest.mark.parametrize("name", ["jacobi-2d", "jacobi-3d", "hotspot-2d"])
def test_sharing_ablation(benchmark, record, name):
    config = TABLE3_CONFIGS[name]
    baseline = config.baseline()
    shared = make_pipe_shared_design(
        baseline.spec,
        config.tile_shape,
        config.counts,
        config.fused_depth,
        config.unroll,
    )

    def run_pair():
        return simulate(baseline), simulate(shared)

    base_result, shared_result = benchmark.pedantic(
        run_pair, rounds=1, iterations=1
    )
    speedup = base_result.total_cycles / shared_result.total_cycles
    assert speedup > 1.0
    # Redundancy drops at iso-tiling.
    assert shared.redundancy_ratio() < baseline.redundancy_ratio()
    record(
        "Ablation: pipe sharing (iso-tiling)",
        f"{name:11s} redundancy {baseline.redundancy_ratio():.2f} -> "
        f"{shared.redundancy_ratio():.2f}, speedup {speedup:.2f}x",
    )
