"""Figure 7 regeneration: analytical model vs simulated measurement.

Asserts, per panel, the paper's validation claims: the model
underestimates (unmodeled kernel-launch stagger), tracks the trend, and
its average error sits in the paper's ~12 % band.
"""

import pytest

from repro.experiments.figure7 import FIGURE7_BENCHMARKS, run_figure7


@pytest.mark.parametrize("name", FIGURE7_BENCHMARKS)
def test_figure7_panel(benchmark, record, name):
    (series,) = benchmark.pedantic(
        run_figure7, args=([name],), rounds=1, iterations=1
    )
    assert series.underestimates
    assert series.mean_abs_error < 0.30
    best_h = series.depths[
        min(
            range(len(series.depths)),
            key=lambda i: series.measured[i],
        )
    ]
    record(
        "Figure 7",
        f"{name:11s} mean |err| {series.mean_abs_error:5.1%} "
        f"(paper ~12%), measured-best h={best_h}, "
        f"model-optimal within 2%: {series.optimal_depth_match}",
    )


def test_figure7_average_error(record):
    """Across all six panels the average error lands near the paper's."""
    series = run_figure7()
    mean = sum(s.mean_abs_error for s in series) / len(series)
    assert 0.05 < mean < 0.20
    matches = sum(1 for s in series if s.optimal_depth_match)
    assert matches >= 4  # paper: 6/6; flat optima make exact ties close
    record(
        "Figure 7",
        f"overall mean |error| {mean:.1%} (paper ~12%); "
        f"optimal-h agreement {matches}/6",
    )
