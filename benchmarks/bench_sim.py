"""Benchmarks of the value-execution simulator backends.

Compares the numpy interpreter (:mod:`repro.sim.functional`) against
the compiled JIT backend (:mod:`repro.sim.jit`) on two workloads:

- a deep-fusion heterogeneous design on a 1024x1024 Jacobi-2D grid
  (the headline case the JIT subsystem was built for), and
- a scaled replica of the deepest-fusion Table 3 design (the same
  tile partition, cone depth, and unroll on a one-region grid — the
  full paper-scale grid does not fit in memory).

Bitwise parity between the two backends is asserted before any
timing is reported: a case that diverges aborts the run instead of
publishing a speedup for a wrong answer.  Compile time is measured
separately from execution time (the disk cache amortizes it across
processes; see docs/SIM.md).

Standalone usage (CI runs this with ``--min-speedup 3``)::

    python benchmarks/bench_sim.py --min-speedup 3 \
        --json-out bench-sim.json

``--min-speedup`` applies to the headline Jacobi-2D case; the Table 3
replica is reported but not gated (its halo-exchange-heavy 1-D shape
is interpreter-friendly).
"""

import argparse
import json
import sys
import time

import numpy as np
import pytest

from repro.experiments.configs import TABLE3_CONFIGS
from repro.sim import jit
from repro.sim.functional import run_functional
from repro.stencil import jacobi_2d
from repro.tiling import make_heterogeneous_design


def _cells(spec):
    total = 1
    for extent in spec.grid_shape:
        total *= extent
    return total * spec.iterations


def compare_backends(name, spec, design):
    """Time numpy vs jit on one design; parity-gate the result.

    Returns a JSON-able dict with wall times, cells/s, compile time,
    and the speedup.  Raises ``AssertionError`` on any bitwise
    divergence between the backends — before any timing is returned.
    """
    compiler = jit.find_compiler()
    if compiler is None:
        raise RuntimeError("bench_sim needs a working C compiler")

    started = time.perf_counter()
    kernel = jit.get_kernel(design)
    compile_s = time.perf_counter() - started

    started = time.perf_counter()
    interpreted = run_functional(design, backend="numpy")
    numpy_s = time.perf_counter() - started

    started = time.perf_counter()
    compiled = kernel.run()
    jit_s = time.perf_counter() - started

    # Parity gate: no timing leaves this function for a wrong answer.
    for field in spec.pattern.fields:
        assert np.array_equal(interpreted[field], compiled[field]), (
            f"{name}: jit diverged from numpy on field {field!r}"
        )

    updates = _cells(spec)
    return {
        "case": name,
        "benchmark": spec.name,
        "grid": list(spec.grid_shape),
        "iterations": spec.iterations,
        "fused_depth": design.fused_depth,
        "cell_updates": updates,
        "compiler": compiler.version,
        "compile_s": compile_s,
        "numpy_s": numpy_s,
        "jit_s": jit_s,
        "numpy_cells_per_s": updates / numpy_s,
        "jit_cells_per_s": updates / jit_s,
        "speedup": numpy_s / jit_s,
        "parity": "bitwise",
    }


def headline_case(grid=1024, iterations=128, fused_depth=32):
    """Deep-fusion Jacobi-2D on a ``grid``^2 domain.

    The partition mirrors Table 3's jacobi-2d row (4x4 parallelism,
    h=32) at a region size that keeps the interpreter honest: many
    small tiles are exactly where the per-tile Python dispatch
    overhead dominates and where the compiled loops pull ahead.
    """
    spec = jacobi_2d(grid=(grid, grid), iterations=iterations)
    region = (grid // 4, grid // 4)
    design = make_heterogeneous_design(
        spec, region, (4, 4), fused_depth, 4
    )
    return "jacobi-2d-deep-fusion", spec, design


def table3_replica_case():
    """Scaled replica of the deepest-fusion Table 3 design."""
    config = max(
        TABLE3_CONFIGS.values(), key=lambda c: c.fused_depth
    )
    region = tuple(
        t * c for t, c in zip(config.tile_shape, config.counts)
    )
    spec = (
        config.spec()
        .with_grid(region)
        .with_iterations(2 * config.fused_depth)
    )
    design = make_heterogeneous_design(
        spec, region, config.counts, config.fused_depth, config.unroll
    )
    name = f"table3-{config.name}-replica-h{config.fused_depth}"
    return name, spec, design


# -- pytest-benchmark entry points ------------------------------------------

needs_cc = pytest.mark.skipif(
    jit.find_compiler() is None, reason="no working C compiler"
)


@needs_cc
def test_jit_vs_numpy_headline(record):
    name, spec, design = headline_case(
        grid=512, iterations=64, fused_depth=32
    )
    result = compare_backends(name, spec, design)
    assert result["speedup"] > 1.0
    record(
        "Simulator backends",
        f"{name} ({result['grid']}, {result['iterations']} iters): "
        f"numpy {result['numpy_s']:.2f}s, jit {result['jit_s']:.3f}s "
        f"({result['jit_cells_per_s'] / 1e6:.0f} Mcells/s), "
        f"speedup {result['speedup']:.1f}x, bitwise parity",
    )


@needs_cc
def test_jit_vs_numpy_table3_replica(record):
    name, spec, design = table3_replica_case()
    result = compare_backends(name, spec, design)
    assert result["speedup"] > 1.0
    record(
        "Simulator backends",
        f"{name}: numpy {result['numpy_s']:.2f}s, "
        f"jit {result['jit_s']:.3f}s, "
        f"speedup {result['speedup']:.1f}x, bitwise parity",
    )


# -- standalone CLI ---------------------------------------------------------

def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--grid",
        type=int,
        default=1024,
        help="headline Jacobi-2D grid extent (default 1024)",
    )
    parser.add_argument(
        "--iterations",
        type=int,
        default=128,
        help="headline iteration count (default 128)",
    )
    parser.add_argument(
        "--fused-depth",
        type=int,
        default=32,
        help="headline fused-iteration depth (default 32)",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help=(
            "fail when the headline case's jit speedup over numpy "
            "falls below this factor (CI uses 3; local target is 10)"
        ),
    )
    parser.add_argument(
        "--json-out",
        default=None,
        metavar="PATH",
        help="write the case results as JSON to PATH",
    )
    args = parser.parse_args(argv)

    cases = [
        headline_case(args.grid, args.iterations, args.fused_depth),
        table3_replica_case(),
    ]
    results = []
    for name, spec, design in cases:
        result = compare_backends(name, spec, design)
        results.append(result)
        print(
            f"{result['case']}: numpy {result['numpy_s']:.2f}s "
            f"({result['numpy_cells_per_s'] / 1e6:.0f} Mcells/s), "
            f"jit {result['jit_s']:.3f}s "
            f"({result['jit_cells_per_s'] / 1e6:.0f} Mcells/s), "
            f"compile {result['compile_s']:.2f}s, "
            f"speedup {result['speedup']:.1f}x [bitwise parity]"
        )
    if args.json_out:
        with open(args.json_out, "w") as handle:
            json.dump({"cases": results}, handle, indent=1)
        print(f"Wrote {args.json_out}")
    if args.min_speedup is not None:
        headline = results[0]
        assert headline["speedup"] >= args.min_speedup, (
            f"headline speedup {headline['speedup']:.2f}x below the "
            f"required {args.min_speedup}x"
        )
        print(
            f"Speedup floor OK: {headline['speedup']:.1f}x >= "
            f"{args.min_speedup}x"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
