"""Table 3 regeneration: baseline vs heterogeneous, per benchmark.

One benchmark per suite entry; each run performs the full flow (DSE for
the heterogeneous design under the baseline's resource budget, cycle
simulation of both designs, resource estimation) and asserts the
paper's qualitative claims:

- the heterogeneous design is faster (paper band: 1.19x - 2.05x);
- DSP usage is identical (same parallelism and unroll);
- BRAM does not grow (pipe sharing replaces overlap storage);
- the optimizer deepens the iteration fusion.
"""

import pytest

from repro.experiments.configs import PAPER_TABLE3
from repro.experiments.table3 import run_table3
from repro.stencil.library import PAPER_SUITE


@pytest.mark.parametrize("name", PAPER_SUITE)
def test_table3_row(benchmark, record, name):
    (row,) = benchmark.pedantic(
        run_table3,
        args=([name],),
        rounds=1,
        iterations=1,
    )
    paper = PAPER_TABLE3[name]
    assert row.speedup > 1.0
    assert 1.0 < row.speedup < 2.5
    assert row.hetero_resources.dsp == row.baseline_resources.dsp
    assert row.hetero_resources.bram18 <= (
        row.baseline_resources.bram18 * 1.05 + 1
    )
    assert row.heterogeneous.fused_depth >= row.baseline.fused_depth
    record(
        "Table 3",
        f"{name:11s} h {row.baseline.fused_depth:>4d} -> "
        f"{row.heterogeneous.fused_depth:<4d} "
        f"BRAM {row.baseline_resources.bram18:>5d} -> "
        f"{row.hetero_resources.bram18:<5d} "
        f"speedup {row.speedup:.2f}x (paper {paper.speedup:.2f}x)",
    )
