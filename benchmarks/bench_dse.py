"""Benchmarks of the design-space exploration itself.

Times the optimizer's search modes and asserts the headline DSE
outcome: the model-chosen heterogeneous design beats the paper-reported
baseline when both are *measured* on the simulator.  The engine
benchmark additionally compares the legacy serial evaluation path
against the cached + pruned :class:`CandidateEvaluator` modes and
asserts both return the same best design.
"""

import time

from repro import obs
from repro.dse import (
    CandidateEvaluator,
    optimize_baseline,
    optimize_full,
    optimize_heterogeneous,
)
from repro.experiments.configs import TABLE3_CONFIGS
from repro.sim import simulate
from repro.stencil import jacobi_2d


def test_heterogeneous_search(benchmark, record):
    config = TABLE3_CONFIGS["jacobi-2d"]
    baseline = config.baseline()
    result = benchmark.pedantic(
        optimize_heterogeneous,
        args=(baseline.spec, baseline),
        rounds=1,
        iterations=1,
    )
    best = result.best.design
    speedup = (
        simulate(baseline).total_cycles / simulate(best).total_cycles
    )
    assert speedup > 1.0
    record(
        "DSE",
        f"jacobi-2d hetero search: {result.evaluated} candidates, "
        f"{result.feasible} feasible, best h={best.fused_depth}, "
        f"measured speedup {speedup:.2f}x",
    )


def test_baseline_search(benchmark, record):
    spec = jacobi_2d()
    result = benchmark.pedantic(
        optimize_baseline,
        args=(spec, (4, 4)),
        kwargs={"unroll": 4, "max_fused_depth": 48},
        rounds=1,
        iterations=1,
    )
    assert result.feasible > 0
    record(
        "DSE",
        f"jacobi-2d baseline search: {result.evaluated} candidates, "
        f"best {result.best.design.describe()}",
    )


def test_engine_speedup(benchmark, record, metrics_delta):
    """Serial vs cached+pruned ``optimize_full`` — parity and speedup."""
    spec = jacobi_2d(grid=(256, 256), iterations=32)
    kwargs = dict(unroll=2, max_kernels=8, max_fused_depth=16)

    start = time.perf_counter()
    serial = optimize_full(spec, **kwargs)
    t_serial = time.perf_counter() - start

    engine = CandidateEvaluator(prune=True)
    start = time.perf_counter()
    pruned = optimize_full(spec, evaluator=engine, **kwargs)
    t_pruned = time.perf_counter() - start

    metrics_delta.mark()  # engine rates cover the warm pass only
    warm = benchmark.pedantic(
        optimize_full,
        args=(spec,),
        kwargs=dict(evaluator=engine, **kwargs),
        rounds=1,
        iterations=1,
    )
    t_warm = benchmark.stats.stats.mean

    for kind, serial_result in serial.items():
        for other in (pruned[kind], warm[kind]):
            assert (
                other.best.design.signature()
                == serial_result.best.design.signature()
            )
            assert (
                other.best.predicted_cycles
                == serial_result.best.predicted_cycles
            )
    assert t_serial / t_warm > 2.0
    cache_hit_rate = metrics_delta.rate("dse.cache_hits", "dse.candidates")
    prune_rate = metrics_delta.rate("dse.pruned", "dse.candidates")
    if obs.enabled():
        # The warm pass answers every non-pruned candidate from the
        # signature cache, so the registry must see a real hit rate.
        assert cache_hit_rate > 0.25
    benchmark.extra_info["cache_hit_rate"] = round(cache_hit_rate, 4)
    benchmark.extra_info["prune_rate"] = round(prune_rate, 4)
    record(
        "DSE",
        f"jacobi-2d full search engine: serial {t_serial:.2f}s, "
        f"pruned {t_pruned:.2f}s ({t_serial / t_pruned:.2f}x), "
        f"warm cache {t_warm:.2f}s ({t_serial / t_warm:.2f}x); "
        f"cache hit-rate {cache_hit_rate:.1%}, "
        f"prune rate {prune_rate:.1%} (metrics registry)",
    )
