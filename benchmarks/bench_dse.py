"""Benchmarks of the design-space exploration itself.

Times the optimizer's two search modes and asserts the headline DSE
outcome: the model-chosen heterogeneous design beats the paper-reported
baseline when both are *measured* on the simulator.
"""

from repro.dse import optimize_baseline, optimize_heterogeneous
from repro.experiments.configs import TABLE3_CONFIGS
from repro.sim import simulate
from repro.stencil import jacobi_2d


def test_heterogeneous_search(benchmark, record):
    config = TABLE3_CONFIGS["jacobi-2d"]
    baseline = config.baseline()
    result = benchmark.pedantic(
        optimize_heterogeneous,
        args=(baseline.spec, baseline),
        rounds=1,
        iterations=1,
    )
    best = result.best.design
    speedup = (
        simulate(baseline).total_cycles / simulate(best).total_cycles
    )
    assert speedup > 1.0
    record(
        "DSE",
        f"jacobi-2d hetero search: {result.evaluated} candidates, "
        f"{result.feasible} feasible, best h={best.fused_depth}, "
        f"measured speedup {speedup:.2f}x",
    )


def test_baseline_search(benchmark, record):
    spec = jacobi_2d()
    result = benchmark.pedantic(
        optimize_baseline,
        args=(spec, (4, 4)),
        kwargs={"unroll": 4, "max_fused_depth": 48},
        rounds=1,
        iterations=1,
    )
    assert result.feasible > 0
    record(
        "DSE",
        f"jacobi-2d baseline search: {result.evaluated} candidates, "
        f"best {result.best.design.describe()}",
    )
