"""Benchmarks of the design-space exploration itself.

Times the optimizer's search modes and asserts the headline DSE
outcome: the model-chosen heterogeneous design beats the paper-reported
baseline when both are *measured* on the simulator.  The engine
benchmark additionally compares the legacy serial evaluation path
against the cached + pruned :class:`CandidateEvaluator` modes and
asserts both return the same best design.

Also usable as a standalone script for the batch-engine comparison::

    python benchmarks/bench_dse.py --batch-compare \
        --min-speedup 3 --json-out bench-batch.json

which scores the Table 3 jacobi-2d space through the scalar model +
estimator and through the vectorized batch engines, verifies bitwise
parity, and fails unless batch scoring is at least ``--min-speedup``
times faster.

The tiered-search smoke compares exhaustive exact scoring against the
screen-then-refine :class:`~repro.dse.search.SearchDriver` on an
inflated (``--inflate`` x Table 3) jacobi-2d space::

    python benchmarks/bench_dse.py --tiered \
        --inflate 100 --min-speedup 5 --json-out bench-tiered.json

asserting the tiered search (Pareto screen) returns the
bitwise-identical best design *and* frontier with at least
``--min-speedup`` times fewer Tier-1 exact evaluations and O(chunk)
candidate residency.  ``--no-exhaustive`` (with
``--checkpoint``) runs only the tiered pass — the mode CI's
kill/resume smoke drives.
"""

import argparse
import json
import sys
import time

from repro import obs
from repro.dse import (
    CandidateEvaluator,
    ResourceBudget,
    SearchDriver,
    optimize_baseline,
    optimize_full,
    optimize_heterogeneous,
)
from repro.dse.space import DesignSpace
from repro.experiments.configs import TABLE3_CONFIGS
from repro.fpga.batch import estimate_batch
from repro.fpga.estimator import ResourceEstimator
from repro.fpga.flexcl import FlexCLEstimator
from repro.model.batch import predict_batch
from repro.fpga.resources import VIRTEX7_690T
from repro.model.predictor import Fidelity, PerformanceModel
from repro.sim import simulate
from repro.stencil import jacobi_2d
from repro.store import DesignStore, SearchCheckpoint
from repro.tiling import make_baseline_design, make_pipe_shared_design


def test_heterogeneous_search(benchmark, record):
    config = TABLE3_CONFIGS["jacobi-2d"]
    baseline = config.baseline()
    result = benchmark.pedantic(
        optimize_heterogeneous,
        args=(baseline.spec, baseline),
        rounds=1,
        iterations=1,
    )
    best = result.best.design
    speedup = (
        simulate(baseline).total_cycles / simulate(best).total_cycles
    )
    assert speedup > 1.0
    record(
        "DSE",
        f"jacobi-2d hetero search: {result.evaluated} candidates, "
        f"{result.feasible} feasible, best h={best.fused_depth}, "
        f"measured speedup {speedup:.2f}x",
    )


def test_baseline_search(benchmark, record):
    spec = jacobi_2d()
    result = benchmark.pedantic(
        optimize_baseline,
        args=(spec, (4, 4)),
        kwargs={"unroll": 4, "max_fused_depth": 48},
        rounds=1,
        iterations=1,
    )
    assert result.feasible > 0
    record(
        "DSE",
        f"jacobi-2d baseline search: {result.evaluated} candidates, "
        f"best {result.best.design.describe()}",
    )


def test_engine_speedup(benchmark, record, metrics_delta):
    """Serial vs cached+pruned ``optimize_full`` — parity and speedup."""
    spec = jacobi_2d(grid=(256, 256), iterations=32)
    kwargs = dict(unroll=2, max_kernels=8, max_fused_depth=16)

    # The legacy scalar reference: no vectorized fast path, no cache
    # reuse across kinds (a fresh engine would still memoize within the
    # run, which is the historical behavior being compared against).
    start = time.perf_counter()
    serial = optimize_full(
        spec, evaluator=CandidateEvaluator(vectorize=False), **kwargs
    )
    t_serial = time.perf_counter() - start

    engine = CandidateEvaluator(prune=True)
    start = time.perf_counter()
    pruned = optimize_full(spec, evaluator=engine, **kwargs)
    t_pruned = time.perf_counter() - start

    metrics_delta.mark()  # engine rates cover the warm pass only
    warm = benchmark.pedantic(
        optimize_full,
        args=(spec,),
        kwargs=dict(evaluator=engine, **kwargs),
        rounds=1,
        iterations=1,
    )
    t_warm = benchmark.stats.stats.mean

    for kind, serial_result in serial.items():
        for other in (pruned[kind], warm[kind]):
            assert (
                other.best.design.signature()
                == serial_result.best.design.signature()
            )
            assert (
                other.best.predicted_cycles
                == serial_result.best.predicted_cycles
            )
    assert t_serial / t_warm > 2.0
    cache_hit_rate = metrics_delta.rate("dse.cache_hits", "dse.candidates")
    prune_rate = metrics_delta.rate("dse.pruned", "dse.candidates")
    if obs.enabled():
        # The warm pass answers every non-pruned candidate from the
        # signature cache, so the registry must see a real hit rate.
        assert cache_hit_rate > 0.25
    benchmark.extra_info["cache_hit_rate"] = round(cache_hit_rate, 4)
    benchmark.extra_info["prune_rate"] = round(prune_rate, 4)
    record(
        "DSE",
        f"jacobi-2d full search engine: serial {t_serial:.2f}s, "
        f"pruned {t_pruned:.2f}s ({t_serial / t_pruned:.2f}x), "
        f"warm cache {t_warm:.2f}s ({t_serial / t_warm:.2f}x); "
        f"cache hit-rate {cache_hit_rate:.1%}, "
        f"prune rate {prune_rate:.1%} (metrics registry)",
    )


def table3_candidates():
    """The Table 3 jacobi-2d search space, fully enumerated.

    Baseline and pipe-shared designs over the default power-of-two
    tile space at the paper's parallelism/unroll/depth bounds — the
    same points ``optimize_full`` scores.
    """
    config = TABLE3_CONFIGS["jacobi-2d"]
    spec = config.spec()
    space = DesignSpace.default(
        spec,
        config.counts,
        unroll=config.unroll,
        max_fused_depth=config.fused_depth,
    )
    designs = []
    for tile in space.tile_shapes():
        for depth in space.depth_candidates():
            designs.append(
                make_baseline_design(
                    spec, tile, config.counts, depth, config.unroll
                )
            )
            designs.append(
                make_pipe_shared_design(
                    spec, tile, config.counts, depth, config.unroll
                )
            )
    return designs


def batch_compare(min_speedup, fidelity=Fidelity.REFINED):
    """Score the Table 3 space scalar vs batch; verify parity + speedup.

    Returns a JSON-serializable result dict; raises ``AssertionError``
    on any parity mismatch or a speedup below ``min_speedup``.
    """
    designs = table3_candidates()
    flexcl = FlexCLEstimator()
    model = PerformanceModel(fidelity=fidelity, estimator=flexcl)
    estimator = ResourceEstimator(flexcl)
    # Warm the shared FlexCL report cache so both paths pay it equally.
    model.predict(designs[0])
    estimator.estimate(designs[0])

    start = time.perf_counter()
    scalar = [
        (model.predict(d), estimator.estimate(d)) for d in designs
    ]
    t_scalar = time.perf_counter() - start

    start = time.perf_counter()
    prediction = predict_batch(designs, fidelity=fidelity, flexcl=flexcl)
    resources = estimate_batch(designs, flexcl=flexcl)
    t_batch = time.perf_counter() - start

    for i, (breakdown, usage) in enumerate(scalar):
        assert prediction.breakdown(i) == breakdown, designs[i].describe()
        assert resources.design_resources(i) == usage, designs[i].describe()

    speedup = t_scalar / t_batch
    result = {
        "space": "table3-jacobi-2d",
        "fidelity": fidelity.value,
        "candidates": len(designs),
        "scalar_s": round(t_scalar, 4),
        "batch_s": round(t_batch, 4),
        "scalar_candidates_per_s": round(len(designs) / t_scalar, 1),
        "batch_candidates_per_s": round(len(designs) / t_batch, 1),
        "speedup": round(speedup, 2),
        "min_speedup": min_speedup,
        "parity": "bitwise",
    }
    assert speedup >= min_speedup, (
        f"batch engine speedup {speedup:.2f}x below required "
        f"{min_speedup}x: {result}"
    )
    return result


#: Parallelism / unroll ladders for the inflated jacobi-2d space.
INFLATED_COUNTS = (
    (1, 1), (2, 2), (2, 4), (4, 2), (4, 4), (4, 8), (8, 4), (8, 8),
)
INFLATED_UNROLLS = (1, 2, 4, 8)
INFLATED_MAX_DEPTH = 128


def inflated_candidates(inflate=100):
    """A lazy ``inflate``x-Table-3 jacobi-2d stream.

    Inflates the Table 3 space along every axis the ROADMAP names:
    more parallelism options, denser (every-integer) depth ladders,
    more unroll factors, and the full power-of-two tile space per
    parallelism — then truncates the deterministic mega-stream to
    exactly ``inflate`` times the base Table 3 size, so the factor in
    the report is exact.

    Returns:
        ``(target, stream)`` — the candidate count and a fresh lazy
        generator over it.  Call again for a second identical stream
        (the enumeration is deterministic, which is also what lets
        checkpointed runs resume by re-enumeration).
    """
    import itertools

    config = TABLE3_CONFIGS["jacobi-2d"]
    spec = config.spec()
    base = DesignSpace.default(
        spec,
        config.counts,
        unroll=config.unroll,
        max_fused_depth=config.fused_depth,
    )
    target = 2 * base.size * inflate  # x2: baseline + pipe-shared

    def stream():
        for unroll in INFLATED_UNROLLS:
            for counts in INFLATED_COUNTS:
                space = DesignSpace.default(
                    spec, counts, unroll=unroll,
                    max_fused_depth=INFLATED_MAX_DEPTH,
                )
                for tile in space.tile_shapes():
                    for depth in range(1, INFLATED_MAX_DEPTH + 1):
                        yield make_baseline_design(
                            spec, tile, counts, depth, unroll
                        )
                        yield make_pipe_shared_design(
                            spec, tile, counts, depth, unroll
                        )

    return target, itertools.islice(stream(), target)


def _frontier_entry(e):
    return [
        repr(e.design.signature()),
        e.predicted_cycles,
        e.resources.total.bram18,
    ]


def _tiered_result_json(result, driver):
    return {
        "best": {
            "signature": repr(result.best.design.signature()),
            "predicted_cycles": result.best.predicted_cycles,
            "describe": result.best.design.describe(),
        },
        "frontier": [_frontier_entry(e) for e in result.frontier],
        "report": driver.report.as_dict(),
    }


def tiered_compare(
    min_speedup=5.0,
    inflate=100,
    chunk_size=4096,
    checkpoint=None,
    exhaustive=True,
):
    """Tiered vs exhaustive search on the inflated jacobi-2d space.

    Both passes stream the identical candidate enumeration through a
    :class:`SearchDriver` in O(chunk) residency; the exhaustive
    reference disables screening (Tier-1 scores every feasible
    candidate), the tiered pass runs the Pareto screen — the mode
    whose contract covers the full frontier, not just the optimum.
    Asserts bitwise best-design parity, frontier equality, and a
    ``>= min_speedup`` reduction in Tier-1 exact evaluations.

    With ``exhaustive=False`` only the tiered pass runs (optionally
    against a durable ``checkpoint`` path) — CI's kill/resume smoke.
    """
    budget = ResourceBudget.from_device(VIRTEX7_690T)
    result = {
        "space": f"inflated-{inflate}x-table3-jacobi-2d",
        "inflate": inflate,
        "chunk_size": chunk_size,
        "min_speedup": min_speedup,
    }

    ck = SearchCheckpoint(checkpoint) if checkpoint else None
    try:
        target, stream = inflated_candidates(inflate)
        tiered_driver = SearchDriver(
            evaluator=CandidateEvaluator(prune=False),
            chunk_size=chunk_size,
            screen="pareto",
            checkpoint=ck,
            search_key=f"bench-tiered-{inflate}x",
        )
        start = time.perf_counter()
        tiered = tiered_driver.run(stream, budget)
        t_tiered = time.perf_counter() - start
    finally:
        if ck is not None:
            ck.close()
    assert tiered_driver.report.candidates == target, (
        f"stream exhausted early ({tiered_driver.report.candidates} of "
        f"{target}); lower --inflate"
    )
    # O(chunk) residency: a chunk plus the frontier band, never the
    # space.  The band is tiny (tens), so 2x chunk is generous.
    assert tiered_driver.report.peak_resident <= 2 * chunk_size, (
        f"peak residency {tiered_driver.report.peak_resident} is not "
        f"O(chunk={chunk_size})"
    )
    result["candidates"] = target
    result["tiered"] = _tiered_result_json(tiered, tiered_driver)
    result["tiered_s"] = round(t_tiered, 2)

    if exhaustive:
        _target, stream = inflated_candidates(inflate)
        exhaustive_driver = SearchDriver(
            evaluator=CandidateEvaluator(prune=False),
            chunk_size=chunk_size,
            screen=None,
        )
        start = time.perf_counter()
        full = exhaustive_driver.run(stream, budget)
        t_full = time.perf_counter() - start
        result["exhaustive"] = _tiered_result_json(
            full, exhaustive_driver
        )
        result["exhaustive_s"] = round(t_full, 2)
        assert (
            tiered.best.design.signature()
            == full.best.design.signature()
        ), "tiered best differs from exhaustive best"
        assert (
            tiered.best.predicted_cycles == full.best.predicted_cycles
        ), "tiered best cycles differ from exhaustive"
        assert (
            result["tiered"]["frontier"]
            == result["exhaustive"]["frontier"]
        ), "tiered frontier differs from exhaustive"
        tier1_full = exhaustive_driver.report.tier1_evaluations
        tier1_tiered = max(1, tiered_driver.report.tier1_evaluations)
        eval_speedup = tier1_full / tier1_tiered
        result["tier1_exhaustive"] = tier1_full
        result["tier1_tiered"] = tiered_driver.report.tier1_evaluations
        result["eval_speedup"] = round(eval_speedup, 2)
        result["wall_speedup"] = round(t_full / t_tiered, 2)
        assert eval_speedup >= min_speedup, (
            f"tiered search ran only {eval_speedup:.2f}x fewer Tier-1 "
            f"evaluations (required {min_speedup}x): {result}"
        )
    return result


def test_tiered_search_speedup(record):
    """Tiered search: same best, far fewer exact evaluations."""
    result = tiered_compare(min_speedup=3.0, inflate=2, chunk_size=2048)
    record(
        "DSE",
        f"jacobi-2d tiered search ({result['inflate']}x Table 3, "
        f"{result['candidates']} candidates): tier-1 "
        f"{result['tier1_exhaustive']} -> {result['tier1_tiered']} "
        f"({result['eval_speedup']}x fewer), best bitwise-identical, "
        f"peak residency {result['tiered']['report']['peak_resident']}",
    )


def test_batch_engine_speedup(record):
    """Vectorized scoring must beat the scalar loop 10x on Table 3."""
    result = batch_compare(min_speedup=10.0)
    record(
        "DSE",
        f"jacobi-2d batch engine: {result['candidates']} candidates, "
        f"scalar {result['scalar_s']}s, batch {result['batch_s']}s "
        f"({result['speedup']}x, bitwise parity)",
    )


def test_store_warm_start(benchmark, record, metrics_delta, tmp_path):
    """Cold-store vs warm-store ``optimize_full`` — the persistence win.

    The cold pass populates a fresh :class:`DesignStore`; the warm pass
    reopens it in a fresh evaluator (simulating a new process) and must
    answer every candidate from disk — at least 2x fewer model
    evaluations, counted both by engine stats and the obs registry.
    """
    spec = jacobi_2d(grid=(256, 256), iterations=32)
    kwargs = dict(unroll=2, max_kernels=8, max_fused_depth=16)
    store_dir = tmp_path / "store"

    start = time.perf_counter()
    with DesignStore(store_dir) as store:
        cold_engine = CandidateEvaluator(store=store)
        cold = optimize_full(spec, evaluator=cold_engine, **kwargs)
    t_cold = time.perf_counter() - start
    cold_evaluated = cold_engine.stats.evaluated
    assert cold_evaluated > 0

    warm_stats = {}
    metrics_delta.mark()  # store/engine rates cover the warm pass only

    def warm_run():
        with DesignStore(store_dir) as store:
            engine = CandidateEvaluator(store=store)
            result = optimize_full(spec, evaluator=engine, **kwargs)
            warm_stats["stats"] = engine.stats
            return result

    warm = benchmark.pedantic(warm_run, rounds=1, iterations=1)
    t_warm = benchmark.stats.stats.mean

    for kind, cold_result in cold.items():
        assert (
            warm[kind].best.design.signature()
            == cold_result.best.design.signature()
        )
        assert (
            warm[kind].best.predicted_cycles
            == cold_result.best.predicted_cycles
        )
    stats = warm_stats["stats"]
    assert stats.evaluated * 2 <= cold_evaluated
    assert stats.store_hits > 0
    deltas = metrics_delta.delta()
    probes = deltas.get("store.hits", 0) + deltas.get("store.misses", 0)
    store_hit_rate = deltas.get("store.hits", 0) / probes if probes else 0.0
    if obs.enabled():
        # The registry agrees: the warm pass ran (at most half) the
        # cold pass's model evaluations and hit the store heavily.
        assert deltas.get("dse.evaluated", 0) * 2 <= cold_evaluated
        assert store_hit_rate > 0.5
    benchmark.extra_info["store_hit_rate"] = round(store_hit_rate, 4)
    benchmark.extra_info["warm_speedup"] = round(t_cold / t_warm, 2)
    record(
        "DSE",
        f"jacobi-2d full search store: cold {t_cold:.2f}s "
        f"({cold_evaluated} model evals), warm {t_warm:.2f}s "
        f"({t_cold / t_warm:.2f}x, {stats.evaluated} model evals, "
        f"{stats.store_hits} store hits); "
        f"store hit-rate {float(store_hit_rate or 0):.1%}",
    )


def main(argv=None):
    """CLI entry point for the batch-compare smoke (used by CI)."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--batch-compare",
        action="store_true",
        help="run the scalar-vs-batch engine comparison",
    )
    parser.add_argument(
        "--tiered",
        action="store_true",
        help=(
            "run the tiered-vs-exhaustive search comparison on the "
            "inflated Table 3 space"
        ),
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help=(
            "fail below this speedup factor (scalar/batch wall time, "
            "or exhaustive/tiered Tier-1 evaluation counts; defaults "
            "10 for --batch-compare, 5 for --tiered)"
        ),
    )
    parser.add_argument(
        "--inflate",
        type=int,
        default=100,
        help="space inflation factor for --tiered (x Table 3 size)",
    )
    parser.add_argument(
        "--chunk-size",
        type=int,
        default=4096,
        help="candidates per search chunk for --tiered",
    )
    parser.add_argument(
        "--checkpoint",
        default=None,
        metavar="PATH",
        help=(
            "durable search checkpoint for --tiered; an interrupted "
            "run re-invoked with the same arguments resumes from it"
        ),
    )
    parser.add_argument(
        "--no-exhaustive",
        action="store_true",
        help=(
            "--tiered: skip the exhaustive reference pass (no parity/"
            "speedup assertions; used by CI's kill/resume smoke)"
        ),
    )
    parser.add_argument(
        "--fidelity",
        choices=[f.value for f in Fidelity],
        default=Fidelity.REFINED.value,
    )
    parser.add_argument(
        "--json-out",
        default=None,
        help="write the comparison result to this JSON file",
    )
    args = parser.parse_args(argv)
    if not args.batch_compare and not args.tiered:
        parser.error("nothing to do: pass --batch-compare or --tiered")
    try:
        if args.tiered:
            result = tiered_compare(
                min_speedup=(
                    5.0 if args.min_speedup is None else args.min_speedup
                ),
                inflate=args.inflate,
                chunk_size=args.chunk_size,
                checkpoint=args.checkpoint,
                exhaustive=not args.no_exhaustive,
            )
        else:
            result = batch_compare(
                min_speedup=(
                    10.0
                    if args.min_speedup is None
                    else args.min_speedup
                ),
                fidelity=Fidelity(args.fidelity),
            )
        failed = False
    except AssertionError as exc:
        print(f"FAIL: {exc}", file=sys.stderr)
        result = {"error": str(exc)}
        failed = True
    if args.json_out:
        with open(args.json_out, "w") as fh:
            json.dump(result, fh, indent=2)
            fh.write("\n")
    if not failed:
        print(json.dumps(result, indent=2))
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
