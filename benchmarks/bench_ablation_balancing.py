"""Ablation: workload balancing on/off on the pipe-shared design.

Isolates contribution #2 (Section 3.2): at the same region, parallelism
and fusion depth, heterogeneous tile sizes reduce the time kernels
spend stalled on their slower neighbors and at the block barrier
(the paper reports ~9 % waiting-time reduction).
"""

import pytest

from repro.experiments.configs import TABLE3_CONFIGS
from repro.sim import simulate
from repro.tiling import make_heterogeneous_design, make_pipe_shared_design


def average_stall_fraction(result):
    """Mean per-kernel (pipe-wait + barrier-wait) share of the run."""
    breakdowns = result.kernel_breakdowns().values()
    return sum(
        (bd.share_exposed + bd.wait) / result.total_cycles
        for bd in breakdowns
    ) / len(breakdowns)


@pytest.mark.parametrize("name", ["jacobi-2d", "hotspot-2d", "jacobi-3d"])
def test_balancing_ablation(benchmark, record, name):
    config = TABLE3_CONFIGS[name]
    spec = config.spec()
    depth = config.fused_depth * 2
    equal = make_pipe_shared_design(
        spec, config.tile_shape, config.counts, depth, config.unroll
    )
    region = equal.tile_grid.region_shape
    balanced = make_heterogeneous_design(
        spec, region, config.counts, depth, config.unroll
    )

    def run_pair():
        return simulate(equal), simulate(balanced)

    equal_result, balanced_result = benchmark.pedantic(
        run_pair, rounds=1, iterations=1
    )
    speedup = (
        equal_result.total_cycles / balanced_result.total_cycles
    )
    stall_equal = average_stall_fraction(equal_result)
    stall_balanced = average_stall_fraction(balanced_result)
    assert speedup > 1.0
    assert stall_balanced < stall_equal
    record(
        "Ablation: workload balancing (iso-depth)",
        f"{name:11s} avg stall {stall_equal:.1%} -> "
        f"{stall_balanced:.1%} (paper: ~9% saving), "
        f"speedup {speedup:.2f}x",
    )
