"""Program-level DSE: co-optimization vs per-stage optimization.

The joint search explores the cross product of per-stage designs
under one shared resource budget, so it can trade area between stages
— shrink the cheap threshold stage to buy the blur stage a deeper
pipeline.  Optimizing each stage in isolation (each one handed the
full budget, results composed afterwards) cannot, and the composed
result may not even fit.  This benchmark runs both on the
`blur-sobel-threshold` program and asserts the co-optimized design is
never worse, reporting the latency delta and the tiered-search Tier-1
evaluation counts.

Also usable as a standalone script (the mode CI's program smoke
drives)::

    python benchmarks/bench_program.py --json-out bench-program.json
"""

import argparse
import json
import sys

from repro.dse import ResourceBudget, SearchDriver
from repro.fpga.resources import VIRTEX7_690T
from repro.program import (
    ProgramEvaluator,
    get_program,
    optimize_program,
    optimize_stages_independently,
)


def _program(grid=(64, 64)):
    return get_program("blur-sobel-threshold", grid=grid, iterations=1)


def _compare(grid=(64, 64), chunk_size=64):
    program = _program(grid)
    budget = ResourceBudget.from_device(VIRTEX7_690T)

    engine = ProgramEvaluator()
    driver = SearchDriver(evaluator=engine, chunk_size=chunk_size)
    co = optimize_program(program, budget=budget, driver=driver)
    report = driver.report

    composed, per_stage = optimize_stages_independently(
        program, budget=budget
    )

    assert co.best is not None, "co-optimization found no feasible design"
    if composed is not None:
        assert (
            co.best.predicted_cycles
            <= composed.predicted_cycles + 1e-9
        ), (co.best.predicted_cycles, composed.predicted_cycles)

    return {
        "program": program.name,
        "grid": list(grid),
        "co_optimized_cycles": co.best.predicted_cycles,
        "independent_cycles": (
            composed.predicted_cycles if composed is not None else None
        ),
        "independent_feasible": composed is not None,
        "latency_delta_pct": (
            100.0
            * (composed.predicted_cycles - co.best.predicted_cycles)
            / composed.predicted_cycles
            if composed is not None
            else None
        ),
        "joint_candidates": co.evaluated,
        "tier1_evaluations": report.tier1_evaluations,
        "screened": report.screened,
        "per_stage_evaluated": {
            name: result.evaluated for name, result in per_stage.items()
        },
    }


def test_co_optimization_no_worse(benchmark, record):
    result = benchmark.pedantic(_compare, rounds=1, iterations=1)
    delta = result["latency_delta_pct"]
    record(
        "Program DSE",
        f"{result['program']}: co-opt {result['co_optimized_cycles']:.0f} "
        f"cycles vs independent {result['independent_cycles']:.0f} "
        + (f"({delta:+.1f}% latency) " if delta is not None else "")
        + f"with {result['tier1_evaluations']} Tier-1 evaluations of "
        f"{result['screened'] + result['tier1_evaluations']} candidates",
    )


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--grid",
        default="64x64",
        metavar="NxM",
        help="program grid shape (default 64x64)",
    )
    parser.add_argument(
        "--chunk-size",
        type=int,
        default=64,
        help="candidates per tiered-search chunk",
    )
    parser.add_argument(
        "--json-out",
        default=None,
        help="write the comparison record as JSON to this path",
    )
    args = parser.parse_args(argv)

    grid = tuple(int(v) for v in args.grid.split("x"))
    result = _compare(grid=grid, chunk_size=args.chunk_size)

    print(f"program: {result['program']} grid {args.grid}")
    print(
        f"co-optimized:     {result['co_optimized_cycles']:.0f} cycles "
        f"({result['joint_candidates']} joint candidates, "
        f"{result['tier1_evaluations']} tier-1 evaluations)"
    )
    if result["independent_cycles"] is not None:
        print(
            f"independent:      {result['independent_cycles']:.0f} cycles "
            f"({sum(result['per_stage_evaluated'].values())} "
            f"per-stage evaluations)"
        )
        print(f"latency delta:    {result['latency_delta_pct']:+.2f}%")
    else:
        print("independent:      composed design infeasible")

    if args.json_out:
        with open(args.json_out, "w") as fh:
            json.dump(result, fh, indent=2)
        print(f"wrote {args.json_out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
