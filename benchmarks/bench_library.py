"""Micro-benchmarks of the library's own hot paths.

These time the framework components a user iterates with: the
analytical model (the DSE inner loop), the cycle simulator, the
functional executor, the reference executor, the feature extractor,
and the code generator.
"""

from repro.codegen import generate_program
from repro.frontend import extract_features
from repro.model import PerformanceModel
from repro.sim import SimulationExecutor, run_functional
from repro.stencil import jacobi_2d, run_reference
from repro.tiling import make_heterogeneous_design

_SOURCE = """
__kernel void jacobi2d(__global float* A, __global float* B) {
    int i = get_global_id(0);
    int j = get_global_id(1);
    B[i][j] = 0.2f * (A[i][j] + A[i-1][j] + A[i+1][j]
                      + A[i][j-1] + A[i][j+1]);
}
"""


def paper_design():
    spec = jacobi_2d()
    return make_heterogeneous_design(spec, (512, 512), (4, 4), 64, unroll=4)


def test_model_prediction_speed(benchmark):
    """One model evaluation: the DSE evaluates thousands of these."""
    design = paper_design()
    model = PerformanceModel()
    cycles = benchmark(model.predict_cycles, design)
    assert cycles > 0


def test_simulator_speed(benchmark):
    """One full-run cycle simulation at paper scale."""
    design = paper_design()
    executor = SimulationExecutor()
    result = benchmark(executor.run, design)
    assert result.total_cycles > 0


def test_functional_executor_speed(benchmark):
    """Functional (value-level) execution of a small design."""
    spec = jacobi_2d(grid=(64, 64), iterations=8)
    design = make_heterogeneous_design(spec, (32, 32), (2, 2), 4)
    out = benchmark(run_functional, design)
    assert out["a"].shape == (64, 64)


def test_reference_executor_speed(benchmark):
    """Golden numpy reference on a mid-size grid."""
    spec = jacobi_2d(grid=(256, 256), iterations=16)
    out = benchmark(run_reference, spec)
    assert out["a"].shape == (256, 256)


def test_feature_extraction_speed(benchmark):
    """OpenCL-source parsing + linearization."""
    features = benchmark(
        extract_features, _SOURCE, "jacobi-2d", {"B": "A"}
    )
    assert features.pattern.points_per_cell() == 5


def test_codegen_speed(benchmark):
    """Full OpenCL program generation for a 16-kernel design."""
    design = paper_design()
    program = benchmark(generate_program, design)
    assert program.num_kernels == 16
