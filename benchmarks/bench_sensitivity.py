"""Sensitivity sweeps: how robust is the heterogeneous win?

The paper's optimizer takes ``BW`` and ``K`` as user inputs; these
benchmarks quantify how the design comparison shifts with the platform.
"""

import pytest

from repro.dse.sensitivity import SensitivityAnalyzer
from repro.experiments.configs import TABLE3_CONFIGS
from repro.tiling import make_heterogeneous_design


@pytest.fixture(scope="module")
def jacobi_pair():
    config = TABLE3_CONFIGS["jacobi-2d"]
    baseline = config.baseline()
    hetero = make_heterogeneous_design(
        baseline.spec,
        baseline.tile_grid.region_shape,
        config.counts,
        config.fused_depth * 2,
        config.unroll,
    )
    return baseline, hetero


def test_speedup_vs_bandwidth(benchmark, record, jacobi_pair):
    baseline, hetero = jacobi_pair
    analyzer = SensitivityAnalyzer()
    sweep = benchmark.pedantic(
        analyzer.speedup_vs_bandwidth,
        args=(baseline, hetero, [3.2e9, 6.4e9, 12.8e9, 25.6e9]),
        rounds=1,
        iterations=1,
    )
    speedups = [s for _, s in sweep]
    # The sharing advantage grows as bandwidth tightens.
    assert speedups == sorted(speedups, reverse=True)
    assert all(s > 1.0 for s in speedups)
    record(
        "Sensitivity",
        "jacobi-2d hetero speedup vs BW: "
        + ", ".join(
            f"{bw/1e9:.1f}GB/s={s:.2f}x" for bw, s in sweep
        ),
    )


def test_model_error_vs_launch_stagger(benchmark, record, jacobi_pair):
    baseline, _ = jacobi_pair
    analyzer = SensitivityAnalyzer()
    result = benchmark.pedantic(
        analyzer.sweep_launch_overhead,
        args=(baseline, [0, 600, 2400]),
        rounds=1,
        iterations=1,
    )
    errors = [p.model_error for p in result.points]
    assert errors == sorted(errors)
    record(
        "Sensitivity",
        "model error vs launch stagger: "
        + ", ".join(
            f"{p.value:.0f}cyc={p.model_error:.1%}"
            for p in result.points
        ),
    )
