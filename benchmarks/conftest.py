"""Shared helpers for the benchmark harness.

Every benchmark regenerates a piece of the paper's evaluation and
asserts its qualitative shape, while pytest-benchmark times the
regeneration itself.  Results are accumulated in ``_REPRO_RESULTS`` and
printed at the end of the session so ``pytest benchmarks/
--benchmark-only`` emits the paper-vs-measured tables.

Observability is enabled for the whole benchmark session in
metrics-only mode (``capture_events=False`` keeps the per-kernel
simulator timelines out of memory), so every bench run ends with the
run-report summary — evaluator cache hit-rate, prune rate, and the
model-predict latency histogram — alongside the reproduction tables.
Set ``REPRO_BENCH_NO_OBS=1`` to time the bare no-op path instead.
"""

from __future__ import annotations

import os
from typing import Dict, List

import pytest

from repro import obs

_REPRO_RESULTS: Dict[str, List[str]] = {}

_OBS_ON = os.environ.get("REPRO_BENCH_NO_OBS", "") in ("", "0")


def record_result(section: str, line: str) -> None:
    """Collect one line of reproduction output for the session report."""
    _REPRO_RESULTS.setdefault(section, []).append(line)


@pytest.fixture
def record():
    """Fixture exposing :func:`record_result`."""
    return record_result


class CounterDelta:
    """Counter snapshot/delta view over the default metrics registry.

    ``mark()`` pins the reference point; ``delta()`` returns each
    counter's increase since the mark, and ``rate(num, den)`` the
    ratio of two deltas — how benches report engine rates (cache hits,
    prunes) for just their own work.
    """

    def __init__(self):
        self._before: Dict[str, float] = {}
        self.mark()

    def mark(self) -> None:
        self._before = dict(obs.get_registry().report()["counters"])

    def delta(self) -> Dict[str, float]:
        after = obs.get_registry().report()["counters"]
        return {
            name: value - self._before.get(name, 0)
            for name, value in after.items()
            if value - self._before.get(name, 0)
        }

    def rate(self, numerator: str, denominator: str) -> float:
        deltas = self.delta()
        total = deltas.get(denominator, 0)
        return deltas.get(numerator, 0) / total if total else 0.0


@pytest.fixture
def metrics_delta():
    """A fresh :class:`CounterDelta` marked at test setup."""
    return CounterDelta()


def pytest_sessionstart(session):
    """Record metrics (not span/event streams) for every bench."""
    if _OBS_ON:
        obs.enable(capture_events=False, capture_spans=False)


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    """Print the accumulated reproduction tables after the timings."""
    if _REPRO_RESULTS:
        terminalreporter.section("paper reproduction results")
        for section in sorted(_REPRO_RESULTS):
            terminalreporter.write_line("")
            terminalreporter.write_line(f"== {section} ==")
            for line in _REPRO_RESULTS[section]:
                terminalreporter.write_line(line)
    if _OBS_ON and obs.enabled():
        terminalreporter.section("observability metrics")
        for line in obs.render_report_markdown().splitlines():
            terminalreporter.write_line(line)
