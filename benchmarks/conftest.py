"""Shared helpers for the benchmark harness.

Every benchmark regenerates a piece of the paper's evaluation and
asserts its qualitative shape, while pytest-benchmark times the
regeneration itself.  Results are accumulated in ``_REPRO_RESULTS`` and
printed at the end of the session so ``pytest benchmarks/
--benchmark-only`` emits the paper-vs-measured tables.
"""

from __future__ import annotations

from typing import Dict, List

import pytest

_REPRO_RESULTS: Dict[str, List[str]] = {}


def record_result(section: str, line: str) -> None:
    """Collect one line of reproduction output for the session report."""
    _REPRO_RESULTS.setdefault(section, []).append(line)


@pytest.fixture
def record():
    """Fixture exposing :func:`record_result`."""
    return record_result


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    """Print the accumulated reproduction tables after the timings."""
    if not _REPRO_RESULTS:
        return
    terminalreporter.section("paper reproduction results")
    for section in sorted(_REPRO_RESULTS):
        terminalreporter.write_line("")
        terminalreporter.write_line(f"== {section} ==")
        for line in _REPRO_RESULTS[section]:
            terminalreporter.write_line(line)
