"""Table 2 regeneration: the stencil benchmark suite description."""

from repro.experiments.table2 import render_table2, run_table2


def test_table2(benchmark, record):
    rows = benchmark(run_table2)
    assert len(rows) == 7
    by_name = {r.benchmark: r for r in rows}
    # Spot-check the paper's Table 2 values.
    assert by_name["jacobi-1d"].input_size == (131072,)
    assert by_name["jacobi-3d"].input_size == (1024, 1024, 1024)
    assert by_name["hotspot-3d"].iterations == 1000
    assert by_name["fdtd-3d"].iterations == 500
    for line in render_table2(rows).splitlines():
        record("Table 2", line)
