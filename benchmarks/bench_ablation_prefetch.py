"""Extension ablation: inter-block read prefetching.

Beyond the paper: with double-buffered tile footprints, the next
block's launches and burst reads pipeline with the current block's
computation.  This quantifies how much of the remaining memory/launch
share (Fig. 6's non-compute components) prefetching would reclaim, at
the cost of doubled tile-buffer BRAM.
"""

import pytest

from repro.experiments.configs import TABLE3_CONFIGS
from repro.sim import SimulationExecutor


@pytest.mark.parametrize("name", ["jacobi-2d", "jacobi-3d"])
def test_prefetch_ablation(benchmark, record, name):
    baseline = TABLE3_CONFIGS[name].baseline()
    executor = SimulationExecutor()

    def run_pair():
        plain = executor.run(baseline)
        prefetched = executor.run(baseline, prefetch_reads=True)
        return plain, prefetched

    plain, prefetched = benchmark.pedantic(
        run_pair, rounds=1, iterations=1
    )
    assert prefetched.total_cycles <= plain.total_cycles
    assert prefetched.prefetched
    saving = 1 - prefetched.total_cycles / plain.total_cycles
    # Prefetch can reclaim at most the non-compute share of a block.
    non_compute = 1 - (
        plain.breakdown.compute / plain.breakdown.total
    )
    assert saving <= non_compute + 0.01
    record(
        "Ablation: inter-block read prefetch (extension)",
        f"{name:11s} saves {saving:.1%} "
        f"(block non-compute share {non_compute:.1%})",
    )


def test_prefetch_gains_track_memory_boundedness(record):
    """Memory-bound 3-D stencils gain more than compute-bound 2-D."""
    executor = SimulationExecutor()
    savings = {}
    for name in ("jacobi-2d", "jacobi-3d"):
        baseline = TABLE3_CONFIGS[name].baseline()
        plain = executor.run(baseline).total_cycles
        fast = executor.run(
            baseline, prefetch_reads=True
        ).total_cycles
        savings[name] = 1 - fast / plain
    assert savings["jacobi-3d"] > savings["jacobi-2d"]
    record(
        "Ablation: inter-block read prefetch (extension)",
        f"2-D saves {savings['jacobi-2d']:.1%} vs 3-D "
        f"{savings['jacobi-3d']:.1%}",
    )
