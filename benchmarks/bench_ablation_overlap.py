"""Ablation: interior-first latency hiding on/off (Section 3.1, Eq. 11).

With hiding disabled, every halo transfer serializes with computation;
with hiding on, transfers stream in during the interior phase and only
the excess is exposed.
"""

import dataclasses

import pytest

from repro.experiments.configs import TABLE3_CONFIGS
from repro.opencl.platform import ADM_PCIE_7V3
from repro.sim import SimulationExecutor
from repro.tiling import make_heterogeneous_design


@pytest.mark.parametrize("name", ["jacobi-2d", "fdtd-2d"])
def test_overlap_ablation(benchmark, record, name):
    config = TABLE3_CONFIGS[name]
    baseline = config.baseline()
    design = make_heterogeneous_design(
        baseline.spec,
        baseline.tile_grid.region_shape,
        config.counts,
        config.fused_depth * 2,
        config.unroll,
    )
    executor = SimulationExecutor(ADM_PCIE_7V3)

    def run_pair():
        hidden = executor.run(design, overlap_sharing=True)
        exposed = executor.run(design, overlap_sharing=False)
        return hidden, exposed

    hidden, exposed = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    assert hidden.total_cycles <= exposed.total_cycles
    saving = 1 - hidden.total_cycles / exposed.total_cycles
    record(
        "Ablation: communication/computation overlap",
        f"{name:11s} hiding saves {saving:.1%} of total latency",
    )


def test_overlap_matters_more_with_slow_pipes(record):
    """At high C_pipe the hiding mechanism is load-bearing."""
    config = TABLE3_CONFIGS["jacobi-2d"]
    baseline = config.baseline()
    slow_board = dataclasses.replace(
        ADM_PCIE_7V3, pipe_cycles_per_word=8
    )
    design = make_heterogeneous_design(
        baseline.spec,
        baseline.tile_grid.region_shape,
        config.counts,
        config.fused_depth,
        config.unroll,
    )
    executor = SimulationExecutor(slow_board)
    hidden = executor.run(design, overlap_sharing=True)
    exposed = executor.run(design, overlap_sharing=False)
    saving = 1 - hidden.total_cycles / exposed.total_cycles
    assert saving > 0.01
    record(
        "Ablation: communication/computation overlap",
        f"jacobi-2d @ C_pipe=8: hiding saves {saving:.1%}",
    )
