"""Closed-loop load benchmark for the synthesis service.

A small fleet of client threads submits overlapping jobs against an
in-process :class:`~repro.service.SynthesisService` and waits for each
result before sending the next (closed loop).  Reported per phase:
p50/p99 job latency and throughput — once against a cold design store
and once against the same store re-opened warm, which is the restart
scenario the service's persistence exists for.  The dedup/memo rates
for just this workload come from the ``metrics_delta`` fixture.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Tuple

from repro.service import JobRequest, JobState, SynthesisService
from repro.store import DesignStore

WAIT_S = 300.0
CLIENTS = 4
JOBS_PER_CLIENT = 6

#: Three tiny, disjoint workloads; the fleet cycles through them, so
#: most submissions repeat a signature some other client already sent.
REQUESTS = [
    {"benchmark": "jacobi-1d", "grid_shape": (64,), "iterations": 4},
    {"benchmark": "jacobi-2d", "grid_shape": (32, 32), "iterations": 4},
    {
        "benchmark": "jacobi-3d",
        "grid_shape": (16, 16, 16),
        "iterations": 4,
    },
]


def _percentile(sorted_values: List[float], q: float) -> float:
    index = min(
        len(sorted_values) - 1, int(q * (len(sorted_values) - 1))
    )
    return sorted_values[index]


def _closed_loop(
    service: SynthesisService,
) -> Tuple[List[float], float]:
    """Run the client fleet; return (per-job latencies, wall time)."""
    latencies: List[float] = []
    failures: List[str] = []
    lock = threading.Lock()
    start_line = threading.Barrier(CLIENTS)

    def client(index: int) -> None:
        start_line.wait()
        for turn in range(JOBS_PER_CLIENT):
            spec = REQUESTS[(index + turn) % len(REQUESTS)]
            begin = time.perf_counter()
            job, _ = service.submit(JobRequest(**spec))
            service.wait(job.id, timeout=WAIT_S)
            elapsed = time.perf_counter() - begin
            with lock:
                latencies.append(elapsed)
                if job.state is not JobState.DONE:
                    failures.append(f"{job.id}: {job.error}")

    threads = [
        threading.Thread(target=client, args=(i,))
        for i in range(CLIENTS)
    ]
    wall_start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(WAIT_S)
    wall = time.perf_counter() - wall_start
    assert not failures, failures
    return latencies, wall


def _phase_summary(latencies: List[float], wall: float) -> Dict:
    ordered = sorted(latencies)
    return {
        "jobs": len(ordered),
        "p50_ms": _percentile(ordered, 0.50) * 1e3,
        "p99_ms": _percentile(ordered, 0.99) * 1e3,
        "throughput": len(ordered) / wall if wall else 0.0,
    }


def test_service_closed_loop_cold_vs_warm(
    benchmark, record, metrics_delta, tmp_path
):
    store_dir = tmp_path / "results"

    # Phase 1 — cold store: every unique signature runs the model.
    metrics_delta.mark()
    store = DesignStore(store_dir)
    cold_service = SynthesisService(store=store, workers=4)
    try:
        cold_latencies, cold_wall = _closed_loop(cold_service)
        # The health view is the ops contract: capacity fields must be
        # present and sane while the service is live.
        health = cold_service.health()
        assert health["uptime_s"] > 0.0
        assert 0 <= health["workers_busy"] <= health["workers"]
        assert 0 <= health["queue_depth"] <= health["queue_capacity"]
    finally:
        cold_service.shutdown(drain=True, timeout=WAIT_S)
        store.close()
    cold = _phase_summary(cold_latencies, cold_wall)
    cold_deltas = metrics_delta.delta()
    assert cold_service.evaluator.stats.evaluated > 0

    # Phase 2 — warm store, fresh service (the restart scenario),
    # timed by pytest-benchmark as the headline number.
    metrics_delta.mark()
    store = DesignStore(store_dir)
    warm_service = SynthesisService(store=store, workers=4)
    try:
        warm_latencies, warm_wall = benchmark.pedantic(
            _closed_loop,
            args=(warm_service,),
            rounds=1,
            iterations=1,
        )
    finally:
        warm_service.shutdown(drain=True, timeout=WAIT_S)
        store.close()
    warm = _phase_summary(warm_latencies, warm_wall)

    # The warm service never ran the model: pure store/memo traffic.
    assert warm_service.evaluator.stats.evaluated == 0
    assert warm_service.evaluator.stats.store_hits > 0

    total = CLIENTS * JOBS_PER_CLIENT
    dedup_rate = metrics_delta.rate(
        "service.dedup", "service.requests"
    )
    record(
        "Service",
        f"closed loop ({CLIENTS} clients x {JOBS_PER_CLIENT} jobs, "
        f"{len(REQUESTS)} unique workloads): "
        f"cold p50 {cold['p50_ms']:.1f}ms p99 {cold['p99_ms']:.1f}ms "
        f"({cold['throughput']:.1f} jobs/s) | "
        f"warm p50 {warm['p50_ms']:.1f}ms p99 {warm['p99_ms']:.1f}ms "
        f"({warm['throughput']:.1f} jobs/s)",
    )
    record(
        "Service",
        f"warm phase: {total} jobs, 0 model evaluations "
        f"({warm_service.evaluator.stats.store_hits} store hits), "
        f"dedup rate {dedup_rate:.0%}, cold-phase evaluations "
        f"{cold_deltas.get('dse.evaluated', 0):g}",
    )
    assert cold["jobs"] == warm["jobs"] == total


def test_service_dedup_saves_evaluations(
    benchmark, record, metrics_delta
):
    """Same service, repeat submissions: evaluations stay flat."""
    service = SynthesisService(workers=2)
    request = REQUESTS[1]

    def repeat_submissions(count: int = 5) -> None:
        for _ in range(count):
            job, _ = service.submit(JobRequest(**request))
            service.wait(job.id, timeout=WAIT_S)
            assert job.state is JobState.DONE

    try:
        first, _ = service.submit(JobRequest(**request))
        service.wait(first.id, timeout=WAIT_S)
        # Every finished job carries its resource flight record.
        assert first.flight is not None
        assert first.flight["run_s"] > 0.0
        assert first.flight["queue_wait_s"] >= 0.0
        evaluated_once = service.evaluator.stats.evaluated
        metrics_delta.mark()
        benchmark.pedantic(repeat_submissions, rounds=1, iterations=1)
        assert service.evaluator.stats.evaluated == evaluated_once
        deltas = metrics_delta.delta()
        record(
            "Service",
            f"5 repeat submissions: +{deltas.get('dse.evaluated', 0):g} "
            f"model evaluations, "
            f"+{deltas.get('dse.cache_hits', 0):g} memo hits, "
            f"completed {service.stats.completed} jobs",
        )
    finally:
        service.shutdown(drain=True, timeout=WAIT_S)
