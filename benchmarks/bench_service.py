"""Closed-loop load benchmark for the synthesis service.

A small fleet of client threads submits overlapping jobs against an
in-process :class:`~repro.service.SynthesisService` and waits for each
result before sending the next (closed loop).  Reported per phase:
p50/p99 job latency and throughput — once against a cold design store
and once against the same store re-opened warm, which is the restart
scenario the service's persistence exists for.  The dedup/memo rates
for just this workload come from the ``metrics_delta`` fixture.
"""

from __future__ import annotations

import http.client
import json
import os
import threading
import time
from typing import Dict, List, Tuple

from repro.service import (
    JobRequest,
    JobState,
    ShardedSynthesisService,
    SynthesisService,
    make_async_server,
)
from repro.store import DesignStore

WAIT_S = 300.0
CLIENTS = 4
JOBS_PER_CLIENT = 6

#: Three tiny, disjoint workloads; the fleet cycles through them, so
#: most submissions repeat a signature some other client already sent.
REQUESTS = [
    {"benchmark": "jacobi-1d", "grid_shape": (64,), "iterations": 4},
    {"benchmark": "jacobi-2d", "grid_shape": (32, 32), "iterations": 4},
    {
        "benchmark": "jacobi-3d",
        "grid_shape": (16, 16, 16),
        "iterations": 4,
    },
]


def _percentile(sorted_values: List[float], q: float) -> float:
    index = min(
        len(sorted_values) - 1, int(q * (len(sorted_values) - 1))
    )
    return sorted_values[index]


def _closed_loop(
    service: SynthesisService,
) -> Tuple[List[float], float]:
    """Run the client fleet; return (per-job latencies, wall time)."""
    latencies: List[float] = []
    failures: List[str] = []
    lock = threading.Lock()
    start_line = threading.Barrier(CLIENTS)

    def client(index: int) -> None:
        start_line.wait()
        for turn in range(JOBS_PER_CLIENT):
            spec = REQUESTS[(index + turn) % len(REQUESTS)]
            begin = time.perf_counter()
            job, _ = service.submit(JobRequest(**spec))
            service.wait(job.id, timeout=WAIT_S)
            elapsed = time.perf_counter() - begin
            with lock:
                latencies.append(elapsed)
                if job.state is not JobState.DONE:
                    failures.append(f"{job.id}: {job.error}")

    threads = [
        threading.Thread(target=client, args=(i,))
        for i in range(CLIENTS)
    ]
    wall_start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(WAIT_S)
    wall = time.perf_counter() - wall_start
    assert not failures, failures
    return latencies, wall


def _phase_summary(latencies: List[float], wall: float) -> Dict:
    ordered = sorted(latencies)
    return {
        "jobs": len(ordered),
        "p50_ms": _percentile(ordered, 0.50) * 1e3,
        "p99_ms": _percentile(ordered, 0.99) * 1e3,
        "throughput": len(ordered) / wall if wall else 0.0,
    }


def test_service_closed_loop_cold_vs_warm(
    benchmark, record, metrics_delta, tmp_path
):
    store_dir = tmp_path / "results"

    # Phase 1 — cold store: every unique signature runs the model.
    metrics_delta.mark()
    store = DesignStore(store_dir)
    cold_service = SynthesisService(store=store, workers=4)
    try:
        cold_latencies, cold_wall = _closed_loop(cold_service)
        # The health view is the ops contract: capacity fields must be
        # present and sane while the service is live.
        health = cold_service.health()
        assert health["uptime_s"] > 0.0
        assert 0 <= health["workers_busy"] <= health["workers"]
        assert 0 <= health["queue_depth"] <= health["queue_capacity"]
    finally:
        cold_service.shutdown(drain=True, timeout=WAIT_S)
        store.close()
    cold = _phase_summary(cold_latencies, cold_wall)
    cold_deltas = metrics_delta.delta()
    assert cold_service.evaluator.stats.evaluated > 0

    # Phase 2 — warm store, fresh service (the restart scenario),
    # timed by pytest-benchmark as the headline number.
    metrics_delta.mark()
    store = DesignStore(store_dir)
    warm_service = SynthesisService(store=store, workers=4)
    try:
        warm_latencies, warm_wall = benchmark.pedantic(
            _closed_loop,
            args=(warm_service,),
            rounds=1,
            iterations=1,
        )
    finally:
        warm_service.shutdown(drain=True, timeout=WAIT_S)
        store.close()
    warm = _phase_summary(warm_latencies, warm_wall)

    # The warm service never ran the model: pure store/memo traffic.
    assert warm_service.evaluator.stats.evaluated == 0
    assert warm_service.evaluator.stats.store_hits > 0

    total = CLIENTS * JOBS_PER_CLIENT
    dedup_rate = metrics_delta.rate(
        "service.dedup", "service.requests"
    )
    record(
        "Service",
        f"closed loop ({CLIENTS} clients x {JOBS_PER_CLIENT} jobs, "
        f"{len(REQUESTS)} unique workloads): "
        f"cold p50 {cold['p50_ms']:.1f}ms p99 {cold['p99_ms']:.1f}ms "
        f"({cold['throughput']:.1f} jobs/s) | "
        f"warm p50 {warm['p50_ms']:.1f}ms p99 {warm['p99_ms']:.1f}ms "
        f"({warm['throughput']:.1f} jobs/s)",
    )
    record(
        "Service",
        f"warm phase: {total} jobs, 0 model evaluations "
        f"({warm_service.evaluator.stats.store_hits} store hits), "
        f"dedup rate {dedup_rate:.0%}, cold-phase evaluations "
        f"{cold_deltas.get('dse.evaluated', 0):g}",
    )
    assert cold["jobs"] == warm["jobs"] == total


#: The sharded-scaling workload: one joint multi-stencil DSE per job
#: (~1-2s of pure-Python model evaluation), every signature unique so
#: dedup/memo cannot shortcut any of it — a genuinely CPU-bound fleet.
SHARD_JOBS = [
    {
        "program": "blur-sobel-threshold",
        "grid_shape": (128, 128),
        "iterations": 2 + turn,
    }
    for turn in range(8)
]


def _run_fleet(service, specs) -> float:
    """Submit every spec, wait for all; return the wall time."""
    begin = time.perf_counter()
    jobs = [service.submit(JobRequest(**spec))[0] for spec in specs]
    for job in jobs:
        service.wait(job.id, timeout=WAIT_S)
    wall = time.perf_counter() - begin
    failures = [
        f"{job.id}: {job.error}"
        for job in jobs
        if job.state is not JobState.DONE
    ]
    assert not failures, failures
    return wall


def test_sharded_throughput_scaling(benchmark, record, tmp_path):
    """4 worker processes vs 1 on a CPU-bound, dedup-proof workload.

    The single-replica phase is the baseline: same dispatcher, same
    RPC overhead, one engine.  On a >=4-core machine the 4-replica
    phase must clear 2x throughput; on smaller machines the measured
    ratio is recorded but not asserted (there is nothing to scale
    onto).
    """
    walls: Dict[int, float] = {}
    for processes in (1, 4):
        store_root = tmp_path / f"shard-{processes}"
        service = ShardedSynthesisService(
            store_root=store_root, worker_processes=processes
        )
        try:
            if processes == 4:
                walls[processes] = benchmark.pedantic(
                    _run_fleet,
                    args=(service, SHARD_JOBS),
                    rounds=1,
                    iterations=1,
                )
            else:
                walls[processes] = _run_fleet(service, SHARD_JOBS)
            # Every replica journal is separate: N writers, no locks.
            health = service.health()
            assert len(health["replicas"]) == processes
            assert all(r["alive"] for r in health["replicas"])
        finally:
            service.shutdown(drain=True, timeout=WAIT_S)
    speedup = walls[1] / walls[4] if walls[4] else 0.0
    record(
        "Service",
        f"sharded scaling ({len(SHARD_JOBS)} CPU-bound joint-DSE "
        f"jobs): 1 process {walls[1]:.2f}s, 4 processes "
        f"{walls[4]:.2f}s -> {speedup:.2f}x "
        f"({os.cpu_count()} cores visible)",
    )
    if (os.cpu_count() or 1) >= 4:
        assert speedup >= 2.0, (
            f"expected >=2x with 4 worker processes, got {speedup:.2f}x"
        )


POLL_CLIENTS = 256
POLLS_EACH = 20


def test_async_frontend_polling_fanin(benchmark, record):
    """256 concurrent pollers against the asyncio front door.

    Every client holds one keep-alive connection and performs a fixed
    number of status polls while the workers chew on CPU-bound jobs;
    the run passes only if every poll response parses AND the jobs
    still finish under full polling load — fan-in served by the event
    loop, workers never starved.
    """
    service = SynthesisService(workers=2)
    door = make_async_server(service, port=0)
    host, port = door.server_address
    try:
        # Two joint-DSE jobs (~seconds each): real work for the
        # pollers to overlap with.
        jobs = [
            service.submit(JobRequest(**spec))[0]
            for spec in SHARD_JOBS[:2]
        ]
        job_ids = [job.id for job in jobs]
        polls: List[int] = []
        errors: List[str] = []
        lock = threading.Lock()
        start_line = threading.Barrier(POLL_CLIENTS + 1)

        def poller(index: int) -> None:
            conn = http.client.HTTPConnection(host, port, timeout=60)
            count = 0
            start_line.wait()
            try:
                for _ in range(POLLS_EACH):
                    conn.request(
                        "GET", f"/jobs/{job_ids[index % len(job_ids)]}"
                    )
                    reply = conn.getresponse()
                    payload = json.loads(reply.read())
                    count += 1
                    if reply.status != 200 or "state" not in payload:
                        raise AssertionError(
                            f"bad poll reply: {reply.status} {payload}"
                        )
            except Exception as exc:  # noqa: BLE001 - collected below
                with lock:
                    errors.append(f"poller {index}: {exc}")
            finally:
                conn.close()
                with lock:
                    polls.append(count)

        threads = [
            threading.Thread(target=poller, args=(i,), daemon=True)
            for i in range(POLL_CLIENTS)
        ]
        for thread in threads:
            thread.start()

        def jobs_under_load() -> float:
            start_line.wait()
            begin = time.perf_counter()
            for job_id in job_ids:
                service.wait(job_id, timeout=WAIT_S)
            return time.perf_counter() - begin

        try:
            drain_wall = benchmark.pedantic(
                jobs_under_load, rounds=1, iterations=1
            )
        finally:
            for thread in threads:
                thread.join(120)
        assert not errors, errors[:5]
        assert all(job.state is JobState.DONE for job in jobs)
        assert len(polls) == POLL_CLIENTS
        # Starvation check cuts both ways: every client completed its
        # polls, and the workers finished the jobs while they did.
        assert min(polls) == POLLS_EACH
        record(
            "Service",
            f"async front door: {POLL_CLIENTS} concurrent pollers x "
            f"{POLLS_EACH} polls ({sum(polls)} answered) while "
            f"{len(job_ids)} jobs finished in {drain_wall:.2f}s",
        )
    finally:
        door.shutdown()
        service.shutdown(drain=True, timeout=WAIT_S)


def test_service_dedup_saves_evaluations(
    benchmark, record, metrics_delta
):
    """Same service, repeat submissions: evaluations stay flat."""
    service = SynthesisService(workers=2)
    request = REQUESTS[1]

    def repeat_submissions(count: int = 5) -> None:
        for _ in range(count):
            job, _ = service.submit(JobRequest(**request))
            service.wait(job.id, timeout=WAIT_S)
            assert job.state is JobState.DONE

    try:
        first, _ = service.submit(JobRequest(**request))
        service.wait(first.id, timeout=WAIT_S)
        # Every finished job carries its resource flight record.
        assert first.flight is not None
        assert first.flight["run_s"] > 0.0
        assert first.flight["queue_wait_s"] >= 0.0
        evaluated_once = service.evaluator.stats.evaluated
        metrics_delta.mark()
        benchmark.pedantic(repeat_submissions, rounds=1, iterations=1)
        assert service.evaluator.stats.evaluated == evaluated_once
        deltas = metrics_delta.delta()
        record(
            "Service",
            f"5 repeat submissions: +{deltas.get('dse.evaluated', 0):g} "
            f"model evaluations, "
            f"+{deltas.get('dse.cache_hits', 0):g} memo hits, "
            f"completed {service.stats.completed} jobs",
        )
    finally:
        service.shutdown(drain=True, timeout=WAIT_S)
