"""Ablation: redundant computation vs stencil dimensionality.

The paper's central motivation (Fig. 1(b)): the overlapped-tiling
redundancy grows with the cone depth and *exponentially* with the
stencil dimensionality, which is why the pipe-sharing gain is largest
for 3-D stencils.
"""

from repro.stencil import get_benchmark
from repro.tiling import make_baseline_design, make_pipe_shared_design

CASES = {
    1: ("jacobi-1d", (256,), (4,)),
    2: ("jacobi-2d", (64, 64), (2, 2)),
    3: ("jacobi-3d", (16, 16, 16), (2, 2, 2)),
}


def redundancy_by_dimension(depth):
    ratios = {}
    for ndim, (name, tile, counts) in CASES.items():
        spec = get_benchmark(name)
        design = make_baseline_design(spec, tile, counts, depth)
        ratios[ndim] = design.redundancy_ratio()
    return ratios


def test_redundancy_grows_with_dimension(benchmark, record):
    ratios = benchmark(redundancy_by_dimension, 8)
    assert ratios[1] < ratios[2] < ratios[3]
    record(
        "Ablation: redundancy vs dimensionality",
        "baseline redundant/useful at h=8: "
        + ", ".join(f"{d}-D {r:.2f}" for d, r in sorted(ratios.items())),
    )


def test_redundancy_grows_with_depth(record):
    spec = get_benchmark("jacobi-2d")
    ratios = []
    for depth in (2, 4, 8, 16):
        design = make_baseline_design(spec, (64, 64), (2, 2), depth)
        ratios.append(design.redundancy_ratio())
    assert ratios == sorted(ratios)
    record(
        "Ablation: redundancy vs dimensionality",
        "jacobi-2d baseline redundancy at h=2/4/8/16: "
        + ", ".join(f"{r:.2f}" for r in ratios),
    )


def test_sharing_benefit_grows_with_dimension(record):
    """Pipe sharing's redundancy elimination grows with D."""
    savings = {}
    for ndim, (name, tile, counts) in CASES.items():
        spec = get_benchmark(name)
        base = make_baseline_design(spec, tile, counts, 8)
        pipe = make_pipe_shared_design(spec, tile, counts, 8)
        savings[ndim] = base.redundancy_ratio() - pipe.redundancy_ratio()
    assert savings[1] < savings[2] < savings[3]
    record(
        "Ablation: redundancy vs dimensionality",
        "redundancy removed by sharing: "
        + ", ".join(
            f"{d}-D {s:.2f}" for d, s in sorted(savings.items())
        ),
    )
