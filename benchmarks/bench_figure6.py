"""Figure 6 regeneration: execution-time breakdowns.

Asserts the paper's Fig. 6 story: pipe sharing eliminates (or slashes)
the redundant-computation share and shrinks the memory share; the
baseline's redundancy share grows from Jacobi-2D to Jacobi-3D.
"""

import pytest

from repro.experiments.figure6 import run_figure6


@pytest.mark.parametrize("name", ["jacobi-2d", "jacobi-3d"])
def test_figure6_breakdown(benchmark, record, name):
    bars = benchmark.pedantic(
        run_figure6, args=([name],), rounds=1, iterations=1
    )
    by_label = {b.design_label: b for b in bars}
    base = by_label["baseline"].fractions
    het = by_label["heterogeneous"].fractions
    # Redundant computation and memory transfer shrink.
    assert het["compute_redundant"] < base["compute_redundant"]
    assert het["read"] + het["write"] < base["read"] + base["write"]
    # Useful computation dominates the optimized design.
    assert het["compute_useful"] > base["compute_useful"]
    for bar in bars:
        parts = ", ".join(
            f"{k}={v:.0%}"
            for k, v in bar.fractions.items()
            if v > 0.005
        )
        record(
            "Figure 6",
            f"{bar.benchmark:10s} {bar.design_label:13s} "
            f"{bar.total_cycles:.3e} cyc: {parts}",
        )


def test_figure6_redundancy_grows_with_dimension(record):
    """The baseline redundancy share grows from 2-D to 3-D (the paper's
    motivation for why higher dimensions benefit more)."""
    bars = run_figure6(benchmarks=("jacobi-2d", "jacobi-3d"))
    base2d = next(
        b
        for b in bars
        if b.benchmark == "jacobi-2d" and b.design_label == "baseline"
    )
    base3d = next(
        b
        for b in bars
        if b.benchmark == "jacobi-3d" and b.design_label == "baseline"
    )
    ratio_2d = base2d.fractions["compute_redundant"] / max(
        base2d.fractions["compute_useful"], 1e-9
    )
    ratio_3d = base3d.fractions["compute_redundant"] / max(
        base3d.fractions["compute_useful"], 1e-9
    )
    assert ratio_3d > ratio_2d
    record(
        "Figure 6",
        f"baseline redundant/useful: 2-D {ratio_2d:.2f} vs 3-D "
        f"{ratio_3d:.2f}",
    )
