"""NumPy-vectorized batch evaluation of the performance model.

Evaluates an entire array of candidate designs — all ``(h, f_k_d,
tile_shape)`` points of an enumerated space — in one pass over NumPy
arrays: Eq. 2 region counts, Eq. 4-6 memory latencies, Eq. 7-9
per-iteration cone workloads (the iteration axis is vectorized too),
and Eq. 10-11 pipe-share/overlap with the same zero-clamp semantics as
:func:`~repro.model.sharing.share_latency_eq10`.

**Parity is the contract.**  For every candidate, every breakdown
component equals the scalar :meth:`PerformanceModel.predict` result
*bitwise* — not approximately.  That requires replicating the scalar
path's operation order and numeric types per equation:

- Integer geometry (cell counts, footprints, byte sizes) is computed in
  ``int64``; integer arithmetic is exact in any association order, so
  these may use ``np.prod``/``reduceat`` freely.  A range guard keeps
  every intermediate below ``2**62`` (no ``int64`` overflow) and every
  cell count below ``2**52`` (so ``int -> float64`` conversions and the
  BRAM model's float-ceil divisions round identically to the scalar
  path's arbitrary-precision ``int`` arithmetic).
- Float accumulations (the ``i = 1..h`` iteration loop, Eq. 10's face
  sums) run as explicit sequential loops over the iteration/dimension
  axes — ``np.sum``'s pairwise summation would change the rounding.
  Masked lanes accumulate ``+ 0.0``, which is a bitwise identity for
  the non-negative quantities involved.
- Ratios whose scalar form is a Python ``int / int`` true division
  (Eq. 2's ``N_region``, the integer block count) are computed
  per-candidate in Python, because CPython's correctly-rounded rational
  division can differ from NumPy's convert-then-divide for huge
  operands.

Candidates whose geometry exceeds the guarded range raise
:class:`BatchRangeError`; callers (the
:class:`~repro.dse.evaluator.CandidateEvaluator` fast path) fall back
to the scalar model, so the guard affects speed, never results.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro import obs
from repro.errors import DesignSpaceError
from repro.fpga.flexcl import FlexCLEstimator
from repro.fpga.parity import (
    CELLS_LIMIT,
    INT64_LIMIT,
    BatchRangeError,
    check_parity_range,
)
from repro.model.predictor import Fidelity, LatencyBreakdown
from repro.opencl.platform import ADM_PCIE_7V3, BoardSpec
from repro.tiling.design import StencilDesign

__all__ = [
    "BatchPrediction",
    "BatchRangeError",
    "CELLS_LIMIT",
    "INT64_LIMIT",
    "check_parity_range",
    "lower_bound_batch",
    "predict_batch",
]


@dataclass(frozen=True)
class BatchPrediction:
    """Per-candidate latency components (cycles), as ``float64`` arrays.

    Component ``i`` of every array is bitwise-equal to the same field
    of ``PerformanceModel.predict(designs[i])`` at the requested
    fidelity.  ``total`` follows :attr:`LatencyBreakdown.total`'s
    summation order.
    """

    launch: np.ndarray
    read: np.ndarray
    write: np.ndarray
    compute_useful: np.ndarray
    compute_redundant: np.ndarray
    share_exposed: np.ndarray
    total: np.ndarray

    def __len__(self) -> int:
        return len(self.total)

    def breakdown(self, i: int) -> LatencyBreakdown:
        """Candidate ``i``'s components as a scalar breakdown."""
        return LatencyBreakdown(
            launch=float(self.launch[i]),
            read=float(self.read[i]),
            write=float(self.write[i]),
            compute_useful=float(self.compute_useful[i]),
            compute_redundant=float(self.compute_redundant[i]),
            share_exposed=float(self.share_exposed[i]),
        )


def _normalize_boards(
    board: Union[BoardSpec, Sequence[BoardSpec]], n: int
) -> List[BoardSpec]:
    if isinstance(board, BoardSpec):
        return [board] * n
    boards = list(board)
    if len(boards) != n:
        raise DesignSpaceError(
            f"Per-candidate board list has {len(boards)} entries for "
            f"{n} candidates"
        )
    return boards


def predict_batch(
    designs: Sequence[StencilDesign],
    board: Union[BoardSpec, Sequence[BoardSpec]] = ADM_PCIE_7V3,
    fidelity: Fidelity = Fidelity.REFINED,
    flexcl: Optional[FlexCLEstimator] = None,
) -> BatchPrediction:
    """Predict latency breakdowns for a whole array of candidates.

    Args:
        designs: candidate designs (mixed dimensionalities allowed;
            candidates are grouped by rank internally).
        board: one board for all candidates, or one per candidate
            (e.g. a sensitivity sweep's per-point boards).
        fidelity: analytical-model variant, as in
            :class:`~repro.model.predictor.PerformanceModel`.
        flexcl: shared pipeline analyzer (one is built when omitted).

    Returns:
        A :class:`BatchPrediction` aligned with ``designs``.

    Raises:
        BatchRangeError: when any candidate's geometry exceeds the
            exact-parity range (fall back to the scalar model).
    """
    designs = list(designs)
    n = len(designs)
    boards = _normalize_boards(board, n)
    flexcl = flexcl or FlexCLEstimator()
    out = {
        name: np.zeros(n, dtype=np.float64)
        for name in (
            "launch",
            "read",
            "write",
            "compute_useful",
            "compute_redundant",
            "share_exposed",
        )
    }
    start = time.perf_counter()
    with obs.span(
        "model.predict_batch", candidates=n, fidelity=fidelity.value
    ):
        groups: Dict[int, List[int]] = {}
        for i, design in enumerate(designs):
            groups.setdefault(design.spec.ndim, []).append(i)
        for ndim, idx in groups.items():
            if fidelity is Fidelity.PAPER:
                parts = _paper_group(designs, boards, flexcl, idx, ndim)
            else:
                parts = _refined_group(designs, boards, flexcl, idx, ndim)
            for name, values in parts.items():
                out[name][idx] = values
    elapsed = time.perf_counter() - start
    if n and obs.enabled():
        # Keep the ``model.predict`` latency histogram meaningful for
        # vectorized scoring: one amortized observation per candidate.
        per_candidate = elapsed / n
        for _ in range(n):
            obs.observe("model.predict", per_candidate)
    total = (
        out["launch"]
        + out["read"]
        + out["write"]
        + out["compute_useful"]
        + out["compute_redundant"]
        + out["share_exposed"]
    )
    return BatchPrediction(total=total, **out)


def lower_bound_batch(
    designs: Sequence[StencilDesign],
    fidelity: Fidelity = Fidelity.REFINED,
    flexcl: Optional[FlexCLEstimator] = None,
) -> np.ndarray:
    """Admissible compute-only latency lower bounds for a batch.

    Entry ``i`` is bitwise-equal to
    :meth:`repro.dse.evaluator.CandidateEvaluator.lower_bound` for
    ``designs[i]`` at the same fidelity: the per-tile cone workloads
    run on vectorized ``int64`` columns (exact), and the final float
    products replicate the scalar bound's operation order per
    candidate in pure Python.  Since the bound counts computation
    cycles only, it never exceeds the Eq. 7-11 prediction, so a
    screen that drops candidates whose bound already loses to an
    incumbent never drops the optimum.

    Args:
        designs: candidate designs (mixed dimensionalities allowed).
        fidelity: analytical-model variant the bound must undercut.
        flexcl: shared pipeline analyzer (one is built when omitted).

    Returns:
        A ``float64`` array of cycle lower bounds aligned with
        ``designs``.

    Raises:
        BatchRangeError: when any candidate's geometry exceeds the
            exact-parity range (fall back to the scalar bound).
    """
    designs = list(designs)
    n = len(designs)
    flexcl = flexcl or FlexCLEstimator()
    out = np.zeros(n, dtype=np.float64)
    with obs.span(
        "model.lower_bound_batch", candidates=n, fidelity=fidelity.value
    ):
        groups: Dict[int, List[int]] = {}
        for i, design in enumerate(designs):
            groups.setdefault(design.spec.ndim, []).append(i)
        for ndim, idx in groups.items():
            _lower_bound_group(designs, flexcl, fidelity, idx, ndim, out)
    return out


def _lower_bound_group(
    designs: Sequence[StencilDesign],
    flexcl: FlexCLEstimator,
    fidelity: Fidelity,
    idx: Sequence[int],
    ndim: int,
    out: np.ndarray,
) -> None:
    g = len(idx)
    shape_p, cone_p, _halo_p, pair_cand, seg_starts, max_extent = (
        _tile_columns(designs, idx, ndim)
    )
    h_arr = np.empty(g, dtype=np.int64)
    radius_rows = np.empty((g, ndim), dtype=np.int64)
    max_r = 0
    for row, i in enumerate(idx):
        design = designs[i]
        h_arr[row] = design.fused_depth
        radius_rows[row] = design.spec.pattern.radius
        max_r = max(max_r, max(design.spec.pattern.radius))
    max_h = int(h_arr.max())
    check_parity_range(max_extent + 2 * max_r * (max_h + 1), ndim, max_h)

    # Total cone workload per tile (``tile_compute_cells``), with the
    # iteration axis vectorized exactly as the predictor kernels do.
    rn_p = radius_rows[pair_cand] * cone_p
    h_p = h_arr[pair_cand]
    totals_p = np.zeros(len(pair_cand), dtype=np.int64)
    for i in range(1, max_h + 1):
        rem = h_p - i
        cells_i = np.prod(shape_p + rn_p * rem[:, None], axis=1)
        totals_p += np.where(rem >= 0, cells_i, 0)
    seg_max = np.maximum.reduceat(totals_p, seg_starts)
    if fidelity is Fidelity.PAPER:
        # Slowest-tile selection mirrors ``slowest_tile()``: first
        # maximal total wins.
        pick = _first_argmax_per_segment(totals_p, pair_cand, seg_starts)
        slow_shape = shape_p[pick]
        for row, i in enumerate(idx):
            design = designs[i]
            report = flexcl.estimate(design.spec.pattern, design.unroll)
            tile_cells = 1
            for w in slow_shape[row]:
                tile_cells *= int(w)
            per_block = (
                report.cycles_per_element
                * design.fused_depth
                * tile_cells
            )
            grid_cells = 1
            for w in design.spec.grid_shape:
                grid_cells *= w
            # Eq. 2's ``N_region``: one correctly-rounded int/int true
            # division, exactly as ``num_blocks_paper`` computes it.
            n_region = (
                design.spec.iterations
                * grid_cells
                / (design.fused_depth * design.parallelism * tile_cells)
            )
            out[i] = per_block * n_region
        return
    for row, i in enumerate(idx):
        design = designs[i]
        report = flexcl.estimate(design.spec.pattern, design.unroll)
        per_block = report.cycles_per_element * int(seg_max[row])
        out[i] = per_block * design.num_blocks()


# -- shared group plumbing -----------------------------------------------------


def _tile_columns(
    designs: Sequence[StencilDesign], idx: Sequence[int], ndim: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, int]:
    """Per-tile ("pair") geometry columns for one rank group.

    Returns ``(shape, cone, halo, pair_cand, seg_starts, max_extent)``:
    ``(m, ndim)`` int64 arrays of tile extents, cone-side and halo-side
    multiplicities, the owning group-local candidate index per pair,
    each candidate's first pair index, and the largest raw extent seen.
    """
    shapes: List[Tuple[int, ...]] = []
    cones: List[Tuple[int, ...]] = []
    halos: List[Tuple[int, ...]] = []
    pair_cand: List[int] = []
    seg_starts: List[int] = []
    max_extent = 0
    for g, i in enumerate(idx):
        design = designs[i]
        seg_starts.append(len(shapes))
        for tile in design.tiles:
            shapes.append(tile.shape)
            cones.append(design.cone_sides(tile))
            halos.append(design.halo_sides(tile))
            pair_cand.append(g)
            max_extent = max(max_extent, max(tile.shape))
    return (
        np.asarray(shapes, dtype=np.int64).reshape(-1, ndim),
        np.asarray(cones, dtype=np.int64).reshape(-1, ndim),
        np.asarray(halos, dtype=np.int64).reshape(-1, ndim),
        np.asarray(pair_cand, dtype=np.int64),
        np.asarray(seg_starts, dtype=np.int64),
        max_extent,
    )


def _first_argmax_per_segment(
    totals: np.ndarray, pair_cand: np.ndarray, seg_starts: np.ndarray
) -> np.ndarray:
    """Index of each segment's first maximal element (first max wins).

    Matches the scalar paths' strict ``>`` update loops (and Python's
    ``max``), which keep the earliest of tied maxima.
    """
    seg_max = np.maximum.reduceat(totals, seg_starts)
    m = len(totals)
    position = np.where(
        totals == seg_max[pair_cand], np.arange(m, dtype=np.int64), m
    )
    return np.minimum.reduceat(position, seg_starts)


# -- paper-exact (Eqs. 1-11) group evaluation ----------------------------------


def _paper_group(
    designs: Sequence[StencilDesign],
    boards: Sequence[BoardSpec],
    flexcl: FlexCLEstimator,
    idx: Sequence[int],
    ndim: int,
) -> Dict[str, np.ndarray]:
    g = len(idx)
    h_arr = np.empty(g, dtype=np.int64)
    k_arr = np.empty(g, dtype=np.int64)
    c_elem = np.empty(g, dtype=np.float64)
    per_cycle = np.empty(g, dtype=np.float64)
    pipe = np.empty(g, dtype=np.float64)
    launch = np.empty(g, dtype=np.float64)
    read_bpc = np.empty(g, dtype=np.int64)
    write_bpc = np.empty(g, dtype=np.int64)
    growth = np.empty((g, ndim), dtype=np.int64)
    sharing = np.zeros(g, dtype=bool)
    max_r = 0
    max_bpc = 1
    for row, i in enumerate(idx):
        design = designs[i]
        spec = design.spec
        report = flexcl.estimate(spec.pattern, design.unroll)
        h_arr[row] = design.fused_depth
        k_arr[row] = design.parallelism
        c_elem[row] = report.cycles_per_element
        per_cycle[row] = boards[i].effective_bytes_per_cycle
        pipe[row] = float(boards[i].pipe_cycles_per_word)
        launch[row] = float(boards[i].kernel_launch_cycles)
        aux_bytes = spec.element_bytes * len(spec.pattern.aux)
        read_bpc[row] = spec.cell_state_bytes + aux_bytes
        write_bpc[row] = spec.cell_state_bytes
        growth[row] = spec.pattern.halo_growth
        sharing[row] = design.sharing
        max_r = max(max_r, max(spec.pattern.radius))
        max_bpc = max(max_bpc, spec.cell_state_bytes + aux_bytes)

    shape_p, cone_p, _halo_p, pair_cand, seg_starts, max_extent = (
        _tile_columns(designs, idx, ndim)
    )
    max_h = int(h_arr.max())
    check_parity_range(
        max_extent + 2 * max_r * (max_h + 1), ndim, max(max_h, max_bpc)
    )

    # Slowest-tile selection: total cone workload per tile, first max
    # wins (mirrors ``max(tiles, key=tile_compute_cells)``).
    radius_rows = np.asarray(
        [designs[i].spec.pattern.radius for i in idx], dtype=np.int64
    ).reshape(g, ndim)
    rn_p = radius_rows[pair_cand] * cone_p
    h_p = h_arr[pair_cand]
    totals_p = np.zeros(len(pair_cand), dtype=np.int64)
    for i in range(1, max_h + 1):
        rem = h_p - i
        cells_i = np.prod(shape_p + rn_p * rem[:, None], axis=1)
        totals_p += np.where(rem >= 0, cells_i, 0)
    pick = _first_argmax_per_segment(totals_p, pair_cand, seg_starts)
    slow_shape = shape_p[pick]

    # Eq. 2 per candidate in pure Python: one correctly-rounded int/int
    # true division, exactly as ``num_regions_eq2`` computes it.
    n_region = np.empty(g, dtype=np.float64)
    for row, i in enumerate(idx):
        design = designs[i]
        grid_cells = 1
        for w in design.spec.grid_shape:
            grid_cells *= w
        tile_cells = 1
        for w in slow_shape[row]:
            tile_cells *= int(w)
        n_region[row] = (
            design.spec.iterations
            * grid_cells
            / (design.fused_depth * design.parallelism * tile_cells)
        )

    denom = per_cycle / k_arr
    read_cells = np.prod(slow_shape + growth * h_arr[:, None], axis=1)
    read = (read_cells * read_bpc) / denom
    tile_cells0 = np.prod(slow_shape, axis=1)
    write = (tile_cells0 * write_bpc) / denom

    useful = np.zeros(g, dtype=np.float64)
    redundant = np.zeros(g, dtype=np.float64)
    exposed = np.zeros(g, dtype=np.float64)
    useful_i = c_elem * tile_cells0
    any_sharing = bool(sharing.any())
    for i in range(1, max_h + 1):
        rem = h_arr - i
        active = rem >= 0
        cells_i = np.prod(slow_shape + growth * rem[:, None], axis=1)
        l_iter = c_elem * cells_i
        useful += np.where(active, useful_i, 0.0)
        redundant += np.where(active, l_iter - useful_i, 0.0)
        if not any_sharing:
            continue
        # Eq. 10 with the scalar clamp: per-face extents shrink inward
        # by ``Δw_d (h - i)`` and clamp at zero, faces multiply in
        # ascending dimension order, and faces sum in ascending ``j``.
        total_face = np.zeros(g, dtype=np.float64)
        clamped = [
            np.maximum(0.0, slow_shape[:, d] - growth[:, d] * rem)
            for d in range(ndim)
        ]
        for j in range(ndim):
            face = np.ones(g, dtype=np.float64)
            for d in range(ndim):
                if d == j:
                    continue
                face = face * clamped[d]
            total_face = total_face + face
        l_share = pipe * total_face
        exposed += np.where(
            active & sharing, np.maximum(0.0, l_share - l_iter), 0.0
        )

    return {
        "launch": launch * n_region,
        "read": read * n_region,
        "write": write * n_region,
        "compute_useful": useful * n_region,
        "compute_redundant": redundant * n_region,
        "share_exposed": exposed * n_region,
    }


# -- refined (exact-geometry) group evaluation ---------------------------------


def _refined_group(
    designs: Sequence[StencilDesign],
    boards: Sequence[BoardSpec],
    flexcl: FlexCLEstimator,
    idx: Sequence[int],
    ndim: int,
) -> Dict[str, np.ndarray]:
    g = len(idx)
    shape_p, cone_p, halo_p, pair_cand, seg_starts, max_extent = (
        _tile_columns(designs, idx, ndim)
    )
    m = len(pair_cand)

    h_arr = np.empty(g, dtype=np.int64)
    k_arr = np.empty(g, dtype=np.int64)
    c_elem = np.empty(g, dtype=np.float64)
    per_cycle = np.empty(g, dtype=np.float64)
    pipe = np.empty(g, dtype=np.float64)
    launch = np.empty(g, dtype=np.float64)
    read_bpc = np.empty(g, dtype=np.int64)
    write_bpc = np.empty(g, dtype=np.int64)
    nf_arr = np.empty(g, dtype=np.int64)
    radius = np.empty((g, ndim), dtype=np.int64)
    blocks_f = np.empty(g, dtype=np.float64)
    max_r = 0
    max_scale = 1
    for row, i in enumerate(idx):
        design = designs[i]
        spec = design.spec
        report = flexcl.estimate(spec.pattern, design.unroll)
        h_arr[row] = design.fused_depth
        k_arr[row] = design.parallelism
        c_elem[row] = report.cycles_per_element
        per_cycle[row] = boards[i].effective_bytes_per_cycle
        pipe[row] = float(boards[i].pipe_cycles_per_word)
        launch[row] = float(boards[i].kernel_launch_cycles)
        aux_bytes = spec.element_bytes * len(spec.pattern.aux)
        read_bpc[row] = spec.cell_state_bytes + aux_bytes
        write_bpc[row] = spec.cell_state_bytes
        nf_arr[row] = spec.pattern.num_fields
        radius[row] = spec.pattern.radius
        blocks_f[row] = float(design.num_blocks())
        max_r = max(max_r, max(spec.pattern.radius))
        max_scale = max(
            max_scale,
            design.fused_depth,
            (spec.cell_state_bytes + aux_bytes) * design.parallelism,
            2 * ndim * max(spec.pattern.radius) * spec.pattern.num_fields,
        )
    max_h = int(h_arr.max())
    check_parity_range(max_extent + 2 * max_r * (max_h + 1), ndim, max_scale)

    h_p = h_arr[pair_cand]
    c_elem_p = c_elem[pair_cand]
    pipe_p = pipe[pair_cand]
    per_cycle_p = per_cycle[pair_cand]
    k_p = k_arr[pair_cand]
    nf_p = nf_arr[pair_cand]
    r_p = radius[pair_cand]

    cells_p = np.prod(shape_p, axis=1)
    read_shape = shape_p + r_p * h_p[:, None] * cone_p + r_p * halo_p
    read_cells = np.prod(read_shape, axis=1)
    read = (read_cells * read_bpc[pair_cand] * k_p) / per_cycle_p
    write = (cells_p * write_bpc[pair_cand] * k_p) / per_cycle_p
    useful = (c_elem_p * h_p) * cells_p

    compute_cells = np.zeros(m, dtype=np.int64)
    exposed = np.zeros(m, dtype=np.float64)
    prev_indep = np.zeros(m, dtype=np.int64)
    for i in range(1, max_h + 1):
        rem = h_p - i
        active = rem >= 0
        fp = shape_p + r_p * rem[:, None] * cone_p
        compute_cells += np.where(active, np.prod(fp, axis=1), 0)
        if i >= 2:
            # Cells received through pipes before iteration ``i``
            # (``tile_share_cells``): a radius-wide strip per shared
            # side, sized to the iteration footprint transversally;
            # dims with no shared side or zero radius contribute zero.
            share_cells = np.zeros(m, dtype=np.int64)
            for d in range(ndim):
                transverse = np.ones(m, dtype=np.int64)
                for j in range(ndim):
                    if j != d:
                        transverse *= fp[:, j]
                share_cells += halo_p[:, d] * r_p[:, d] * transverse
            share = pipe_p * (share_cells * nf_p)
            mask = active & (share > 0.0)
            exposed += np.where(
                mask,
                np.maximum(0.0, share - c_elem_p * prev_indep),
                0.0,
            )
        # Interior-first schedule: next iteration's halo hides behind
        # this iteration's independent (interior) cells.
        prev_indep = np.prod(np.maximum(fp - r_p * halo_p, 0), axis=1)
    redundant = c_elem_p * compute_cells - useful

    launch_p = launch[pair_cand]
    totals_p = launch_p + read + write + useful + redundant + exposed
    pick = _first_argmax_per_segment(totals_p, pair_cand, seg_starts)

    return {
        "launch": launch * blocks_f,
        "read": read[pick] * blocks_f,
        "write": write[pick] * blocks_f,
        "compute_useful": useful[pick] * blocks_f,
        "compute_redundant": redundant[pick] * blocks_f,
        "share_exposed": exposed[pick] * blocks_f,
    }
