"""Off-line profiling: recover platform model parameters from runs.

Table 1 lists ``BW`` and ``C_pipe`` as "obtained: off-line profiling".
On the real system one times microbenchmarks; here the same procedure
runs against the execution simulator: craft designs that isolate one
mechanism, measure them, and fit the model constant.  The recovered
values can then parameterize :class:`~repro.model.PerformanceModel`
for a board whose datasheet numbers are unknown — and the tests use
the recovery accuracy as a consistency check between the simulator and
the model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.errors import SimulationError
from repro.fpga.flexcl import FlexCLEstimator
from repro.opencl.platform import ADM_PCIE_7V3, BoardSpec
from repro.sim.executor import SimulationExecutor
from repro.stencil.library import jacobi_2d
from repro.tiling.baseline import make_baseline_design
from repro.tiling.pipeshared import make_pipe_shared_design


@dataclass(frozen=True)
class CalibrationResult:
    """Recovered platform constants.

    Attributes:
        bandwidth_bytes_per_cycle: effective burst bandwidth seen by a
            single kernel times ``K`` (i.e. the shared total).
        pipe_cycles_per_word: ``C_pipe``.
        launch_cycles: base kernel-launch latency.
        launch_stagger_cycles: per-kernel sequential launch delay.
    """

    bandwidth_bytes_per_cycle: float
    pipe_cycles_per_word: float
    launch_cycles: float
    launch_stagger_cycles: float


def _linear_fit(xs: Sequence[float], ys: Sequence[float]) -> Tuple[float, float]:
    """Least-squares fit ``y = a + b x``; returns ``(a, b)``."""
    n = len(xs)
    if n < 2:
        raise SimulationError("Need at least two points to fit")
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    sxx = sum((x - mean_x) ** 2 for x in xs)
    if sxx == 0:
        raise SimulationError("Degenerate fit: constant x")
    sxy = sum(
        (x - mean_x) * (y - mean_y) for x, y in zip(xs, ys)
    )
    slope = sxy / sxx
    return mean_y - slope * mean_x, slope


class OfflineProfiler:
    """Runs profiling microbenchmarks on a board's simulator."""

    def __init__(self, board: BoardSpec = ADM_PCIE_7V3):
        self.board = board
        self.executor = SimulationExecutor(board)

    def profile_bandwidth(
        self, tile_extents: Sequence[int] = (32, 64, 128, 256)
    ) -> float:
        """Effective bytes/cycle from a read-size sweep.

        Single-kernel, single-iteration designs isolate the burst
        transfer: cycles grow linearly in footprint bytes; the slope's
        inverse is the effective bandwidth.
        """
        xs: List[float] = []
        ys: List[float] = []
        for extent in tile_extents:
            grid = (extent * 2, extent * 2)
            spec = jacobi_2d(grid=grid, iterations=1)
            design = make_baseline_design(
                spec, (extent, extent), (1, 1), 1
            )
            result = self.executor.run(design)
            tile = design.tiles[0]
            payload = design.tile_read_bytes(tile) + (
                design.tile_write_bytes(tile)
            )
            xs.append(float(payload))
            ys.append(result.breakdown.memory / design.num_blocks())
        _intercept, slope = _linear_fit(xs, ys)
        if slope <= 0:
            raise SimulationError("Bandwidth fit produced no slope")
        return 1.0 / slope

    def profile_launch(self, max_kernels: int = 8) -> Tuple[float, float]:
        """(base launch cycles, per-kernel stagger) from a K-sweep.

        Tiny equal designs with growing kernel counts: the critical
        kernel's launch completion grows linearly in its launch index.
        """
        xs: List[float] = []
        ys: List[float] = []
        for k in range(1, max_kernels + 1):
            spec = jacobi_2d(grid=(8 * k, 8), iterations=1)
            design = make_baseline_design(spec, (8, 8), (k, 1), 1)
            result = self.executor.run(design)
            ys.append(result.breakdown.launch / design.num_blocks())
            xs.append(float(k - 1))
        base, stagger = _linear_fit(xs, ys)
        return base, stagger

    def profile_pipe_cost(
        self, depths: Sequence[int] = (2, 4, 8, 16)
    ) -> float:
        """``C_pipe`` from a halo-volume sweep on a sharing design.

        A two-kernel 1-D sharing design with a deliberately slow pipe
        exposes the transfer on the critical path; latency grows
        linearly in the number of exchanged elements.
        """
        # Expose the transfer by making computation trivially cheap.
        report = FlexCLEstimator().estimate(
            jacobi_2d(grid=(64, 64), iterations=2).pattern, unroll=64
        )
        xs: List[float] = []
        ys: List[float] = []
        for h in depths:
            spec = jacobi_2d(grid=(64, 64), iterations=h)
            design = make_pipe_shared_design(spec, (32, 32), (2, 2), h)
            result = self.executor.run(design, report=report)
            slowest = design.slowest_tile()
            exchanged = design.tile_share_total(slowest)
            xs.append(float(exchanged))
            ys.append(
                (result.breakdown.compute + result.breakdown.share_exposed)
                / design.num_blocks()
            )
        _intercept, slope = _linear_fit(xs, ys)
        return max(slope, 0.0)

    def calibrate(self) -> CalibrationResult:
        """Run all microbenchmarks and assemble the constants."""
        base, stagger = self.profile_launch()
        return CalibrationResult(
            bandwidth_bytes_per_cycle=self.profile_bandwidth(),
            pipe_cycles_per_word=self.profile_pipe_cost(),
            launch_cycles=base,
            launch_stagger_cycles=stagger,
        )
