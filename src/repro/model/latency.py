"""Top-level latency assembly (Section 4.1, Eqs. 1-3)."""

from __future__ import annotations

import math

from repro.model.params import ModelParameters


def num_regions_eq2(params: ModelParameters) -> float:
    """Eq. 2: ``N_region = H Π W_d / (h K Π w_d)`` (real-valued)."""
    grid_cells = math.prod(params.grid_shape)
    tile_cells = math.prod(params.tile_shape)
    return (
        params.total_iterations
        * grid_cells
        / (params.fused_depth * params.parallelism * tile_cells)
    )


def slowest_kernel_latency_eq3(
    params: ModelParameters, sharing: bool
) -> float:
    """Eq. 3: ``L_max = L_mem + L_comp + L_launch`` per region block."""
    from repro.model.compute import compute_latency_eq7
    from repro.model.memory import memory_latency_eq4

    return (
        memory_latency_eq4(params)
        + compute_latency_eq7(params, sharing)
        + params.launch_cycles
    )


def total_latency_eq1(params: ModelParameters, sharing: bool) -> float:
    """Eq. 1: ``L = N_region * max_k L_tile_k`` in cycles.

    The model evaluates the slowest kernel directly (its parameters
    carry the slowest tile's extents and balancing factors), so the
    ``max`` is already folded in.
    """
    return num_regions_eq2(params) * slowest_kernel_latency_eq3(
        params, sharing
    )
