"""Inter-tile pipe-sharing latency (Section 4.4, Eqs. 10-11)."""

from __future__ import annotations


from repro.model.params import ModelParameters


def share_latency_eq10(params: ModelParameters, iteration: int) -> float:
    """Eq. 10: cycles to move iteration ``i``'s halos through pipes.

    ``L_share_i = C_pipe * Σ_j Π_{d != j} (w_d f_d^max - Δw_d (h - i))``

    The transferred strips cover each face of the part of the tile that
    is still *useful* at iteration ``i`` (the cone shrinks inward by
    ``Δw_d (h - i)``), which is why the extent carries a minus sign.
    Negative extents clamp to zero (nothing useful left to share).
    """
    remaining = params.fused_depth - iteration
    total_cells = 0.0
    for j in range(params.ndim):
        face = 1.0
        for d in range(params.ndim):
            if d == j:
                continue
            extent = (
                params.tile_shape[d] - params.halo_growth[d] * remaining
            )
            face *= max(0.0, extent)
        total_cells += face
    return params.pipe_cycles_per_word * total_cells


def overlap_lambda_eq11(params: ModelParameters, iteration: int) -> float:
    """Eq. 11: exposed fraction of the pipe transfer at iteration ``i``.

    ``λ = 0`` when the transfer fully hides behind the iteration's
    computation; otherwise the excess ratio
    ``(L_share_i - L_iter_i) / L_iter_i``.
    """
    # Imported here to avoid a circular import with compute.py.
    from repro.model.compute import iteration_latency_eq8

    l_share = share_latency_eq10(params, iteration)
    l_iter = iteration_latency_eq8(params, iteration)
    if l_iter <= 0.0:
        return 0.0 if l_share <= 0.0 else 1.0
    if l_share <= l_iter:
        return 0.0
    return (l_share - l_iter) / l_iter
