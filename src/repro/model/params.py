"""Model parameters (Table 1 of the paper) and their extraction.

:class:`ModelParameters` gathers every symbol of the paper's analytical
model.  :func:`extract_parameters` plays the role of the framework's
*feature extractor* + off-line profiling stage: it derives the
parameters from a :class:`~repro.tiling.design.StencilDesign`, a
:class:`~repro.opencl.platform.BoardSpec`, and a pipeline report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.fpga.flexcl import FlexCLEstimator, PipelineReport
from repro.opencl.platform import ADM_PCIE_7V3, BoardSpec
from repro.tiling.design import StencilDesign


@dataclass(frozen=True)
class ModelParameters:
    """All symbols of Table 1 for one (design, board) pair.

    Attributes:
        total_iterations: ``H``.
        fused_depth: ``h``.
        ndim: ``D``.
        parallelism: ``K``.
        grid_shape: ``W_d``.
        tile_shape: ``w_d * f_max_d`` — the slowest kernel's extents.
        balancing_factors: ``f_max_d`` (slowest kernel, per dimension).
        halo_growth: ``Δw_d = 2 r_d``.
        element_bytes: ``Δs`` — bytes moved per cell per transfer
            (all state fields; reads additionally carry aux inputs).
        read_aux_bytes: extra bytes per cell read (aux inputs).
        bandwidth_bytes_per_cycle: ``BW`` expressed per kernel cycle.
        cycles_per_element: ``C_element = II / N_PE`` (Eq. 9).
        initiation_interval: ``II`` from the HLS/FlexCL report.
        unroll: ``N_PE`` (``N_unroll``).
        pipe_cycles_per_word: ``C_pipe``.
        launch_cycles: kernel-launch latency per region.
        num_regions: ``N_region`` (Eq. 2, real-valued).
    """

    total_iterations: int
    fused_depth: int
    ndim: int
    parallelism: int
    grid_shape: Tuple[int, ...]
    tile_shape: Tuple[int, ...]
    balancing_factors: Tuple[float, ...]
    halo_growth: Tuple[int, ...]
    element_bytes: int
    read_aux_bytes: int
    bandwidth_bytes_per_cycle: float
    cycles_per_element: float
    initiation_interval: int
    unroll: int
    pipe_cycles_per_word: float
    launch_cycles: float
    num_regions: float


def extract_parameters(
    design: StencilDesign,
    board: BoardSpec = ADM_PCIE_7V3,
    report: Optional[PipelineReport] = None,
) -> ModelParameters:
    """Derive Table 1's parameters for a design on a board.

    Args:
        design: the stencil design under evaluation.
        board: platform characteristics (``BW``, clock, ``C_pipe``).
        report: HLS pipeline report; estimated via the FlexCL stand-in
            when not supplied.

    Returns:
        The populated :class:`ModelParameters`.
    """
    spec = design.spec
    if report is None:
        report = FlexCLEstimator().estimate(spec.pattern, design.unroll)
    slowest = design.slowest_tile()
    base_extents = tuple(
        region / count
        for region, count in zip(
            design.tile_grid.region_shape, design.tile_grid.counts
        )
    )
    factors = tuple(
        w / base for w, base in zip(slowest.shape, base_extents)
    )
    return ModelParameters(
        total_iterations=spec.iterations,
        fused_depth=design.fused_depth,
        ndim=spec.ndim,
        parallelism=design.parallelism,
        grid_shape=spec.grid_shape,
        tile_shape=slowest.shape,
        balancing_factors=factors,
        halo_growth=spec.pattern.halo_growth,
        element_bytes=spec.cell_state_bytes,
        read_aux_bytes=spec.element_bytes * len(spec.pattern.aux),
        bandwidth_bytes_per_cycle=board.effective_bytes_per_cycle,
        cycles_per_element=report.cycles_per_element,
        initiation_interval=report.ii,
        unroll=report.unroll,
        pipe_cycles_per_word=float(board.pipe_cycles_per_word),
        launch_cycles=float(board.kernel_launch_cycles),
        num_regions=design.num_blocks_paper(),
    )
