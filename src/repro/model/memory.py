"""Global-memory transfer latency (Section 4.2, Eqs. 4-6).

Reads and writes are burst transfers coupled with work-group barriers;
when ``K`` kernels run simultaneously the bandwidth is shared evenly,
so each kernel sees ``BW / K``.
"""

from __future__ import annotations

import math

from repro.model.params import ModelParameters


def read_latency_eq5(params: ModelParameters) -> float:
    """Eq. 5: cycles the slowest kernel spends reading one region block.

    ``L_read = Δs * Π_d (w_d f_d^max + Δw_d h) / (BW / K)``

    The read footprint is the tile grown by the full cone margin; reads
    additionally carry the auxiliary inputs (e.g. HotSpot's power map).
    """
    cells = math.prod(
        w + dw * params.fused_depth
        for w, dw in zip(params.tile_shape, params.halo_growth)
    )
    size_bytes = cells * (params.element_bytes + params.read_aux_bytes)
    return size_bytes / (
        params.bandwidth_bytes_per_cycle / params.parallelism
    )


def write_latency_eq6(params: ModelParameters) -> float:
    """Eq. 6: cycles writing the tile's final block back.

    ``L_write = Δs * Π_d (w_d f_d^max) / (BW / K)``
    """
    cells = math.prod(params.tile_shape)
    size_bytes = cells * params.element_bytes
    return size_bytes / (
        params.bandwidth_bytes_per_cycle / params.parallelism
    )


def memory_latency_eq4(params: ModelParameters) -> float:
    """Eq. 4: total global-memory latency per region block."""
    return read_latency_eq5(params) + write_latency_eq6(params)
