"""The assembled performance predictor.

Two fidelity levels are provided:

- ``Fidelity.PAPER`` — Eqs. 1-11 exactly as published: the slowest
  kernel's footprint grows by ``Δw_d (h - i)`` (both sides of every
  dimension), ``N_region`` is the real-valued Eq. 2, and pipe overhead
  follows Eq. 10/11.
- ``Fidelity.REFINED`` — same structure, but workloads, read/write
  footprints, and pipe traffic are taken from the design's exact
  per-tile geometry (outer sides only expand, integer region counts),
  and latency hiding uses the interior-first schedule.

Neither fidelity models the sequential kernel-launch stagger — the
paper explicitly does not, and names it as the cause of the model's
systematic underestimation of measured latency (Section 5.6).  The
cycle simulator (:mod:`repro.sim`) *does* model it, which is what makes
the Figure 7 comparison meaningful.
"""

from __future__ import annotations

import enum
import math
import threading
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro import obs
from repro.fpga.flexcl import FlexCLEstimator, PipelineReport
from repro.model.compute import cycles_per_element_eq9, iteration_latency_eq8
from repro.model.latency import num_regions_eq2
from repro.model.memory import read_latency_eq5, write_latency_eq6
from repro.model.params import extract_parameters
from repro.model.sharing import share_latency_eq10
from repro.opencl.platform import ADM_PCIE_7V3, BoardSpec
from repro.tiling.design import StencilDesign
from repro.tiling.schedule import split_independent_dependent


class Fidelity(enum.Enum):
    """Which variant of the analytical model to evaluate."""

    PAPER = "paper"
    REFINED = "refined"


@dataclass(frozen=True)
class LatencyBreakdown:
    """Predicted (or simulated) latency split into components (cycles).

    All components are totals over the whole stencil execution for the
    barrier-setting (slowest) kernel — the quantity Eq. 1 scales up.
    """

    launch: float
    read: float
    write: float
    compute_useful: float
    compute_redundant: float
    share_exposed: float
    wait: float = 0.0

    @property
    def total(self) -> float:
        """Total latency in cycles."""
        return (
            self.launch
            + self.read
            + self.write
            + self.compute_useful
            + self.compute_redundant
            + self.share_exposed
            + self.wait
        )

    @property
    def memory(self) -> float:
        """Read + write cycles."""
        return self.read + self.write

    @property
    def compute(self) -> float:
        """Useful + redundant computation cycles."""
        return self.compute_useful + self.compute_redundant

    def seconds(self, clock_hz: float) -> float:
        """Total latency in seconds at a given kernel clock."""
        return self.total / clock_hz

    def fractions(self) -> Dict[str, float]:
        """Each component as a fraction of the total (Fig. 6 view)."""
        total = self.total or 1.0
        return {
            "launch": self.launch / total,
            "read": self.read / total,
            "write": self.write / total,
            "compute_useful": self.compute_useful / total,
            "compute_redundant": self.compute_redundant / total,
            "share_exposed": self.share_exposed / total,
            "wait": self.wait / total,
        }

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view including the total."""
        return {
            "launch": self.launch,
            "read": self.read,
            "write": self.write,
            "compute_useful": self.compute_useful,
            "compute_redundant": self.compute_redundant,
            "share_exposed": self.share_exposed,
            "wait": self.wait,
            "total": self.total,
        }

    def scaled(self, factor: float) -> "LatencyBreakdown":
        """All components multiplied by ``factor``."""
        return LatencyBreakdown(
            launch=self.launch * factor,
            read=self.read * factor,
            write=self.write * factor,
            compute_useful=self.compute_useful * factor,
            compute_redundant=self.compute_redundant * factor,
            share_exposed=self.share_exposed * factor,
            wait=self.wait * factor,
        )


class PerformanceModel:
    """Predicts total execution latency for a design on a board."""

    def __init__(
        self,
        board: BoardSpec = ADM_PCIE_7V3,
        fidelity: Fidelity = Fidelity.REFINED,
        estimator: Optional[FlexCLEstimator] = None,
    ):
        self.board = board
        self.fidelity = fidelity
        self.estimator = estimator or FlexCLEstimator()
        self._cache: Dict[Tuple, LatencyBreakdown] = {}
        self._lock = threading.Lock()

    def pipeline_report(self, design: StencilDesign) -> PipelineReport:
        """The HLS/FlexCL pipeline report used for ``C_element``."""
        return self.estimator.estimate(design.spec.pattern, design.unroll)

    def predict(self, design: StencilDesign) -> LatencyBreakdown:
        """Predicted latency breakdown over the full execution.

        When observability is on, every prediction runs inside a
        ``model.predict`` span, which feeds the like-named latency
        histogram in the metrics registry.
        """
        with obs.span("model.predict", fidelity=self.fidelity.value):
            report = self.pipeline_report(design)
            if self.fidelity is Fidelity.PAPER:
                return self._predict_paper(design, report)
            return self._predict_refined(design, report)

    def predict_cycles(self, design: StencilDesign) -> float:
        """Shortcut for ``predict(design).total``."""
        return self.predict(design).total

    # -- pure, hashable-input entry point --------------------------------------

    def predict_cached(self, design: StencilDesign) -> LatencyBreakdown:
        """Memoized :meth:`predict`.

        The prediction is a pure function of ``design.signature()``
        (the board, fidelity, and FlexCL configuration are fixed per
        model instance), so results are cached under that hashable key.
        Safe to call concurrently from worker threads.
        """
        key = design.signature()
        with self._lock:
            cached = self._cache.get(key)
        if obs.enabled():
            obs.inc("model.predictions")
            obs.inc("model.prediction_cache_hits", int(cached is not None))
        if cached is not None:
            return cached
        breakdown = self.predict(design)
        with self._lock:
            return self._cache.setdefault(key, breakdown)

    def predict_cycles_cached(self, design: StencilDesign) -> float:
        """Shortcut for ``predict_cached(design).total``."""
        return self.predict_cached(design).total

    def prime(self, design: StencilDesign, breakdown: LatencyBreakdown) -> LatencyBreakdown:
        """Seed the prediction cache with an externally-computed result.

        Used by the vectorized batch engine
        (:func:`repro.model.batch.predict_batch`) to write its
        bitwise-identical results through to the scalar cache, so later
        :meth:`predict_cached` calls for the same design are free.
        First write wins (matching ``setdefault`` semantics); the
        retained entry is returned.
        """
        with self._lock:
            return self._cache.setdefault(design.signature(), breakdown)

    # -- paper-exact evaluation -------------------------------------------------

    def _predict_paper(
        self, design: StencilDesign, report: PipelineReport
    ) -> LatencyBreakdown:
        params = extract_parameters(design, self.board, report)
        n_region = num_regions_eq2(params)
        read = read_latency_eq5(params)
        write = write_latency_eq6(params)
        c_elem = cycles_per_element_eq9(params)
        useful = 0.0
        redundant = 0.0
        exposed = 0.0
        tile_cells = math.prod(params.tile_shape)
        for i in range(1, params.fused_depth + 1):
            l_iter = iteration_latency_eq8(params, i)
            useful_i = c_elem * tile_cells
            useful += useful_i
            redundant += l_iter - useful_i
            if design.sharing:
                l_share = share_latency_eq10(params, i)
                exposed += max(0.0, l_share - l_iter)
        per_block = LatencyBreakdown(
            launch=params.launch_cycles,
            read=read,
            write=write,
            compute_useful=useful,
            compute_redundant=redundant,
            share_exposed=exposed,
        )
        return per_block.scaled(n_region)

    # -- refined (exact-geometry) evaluation ---------------------------------------

    def _predict_refined(
        self, design: StencilDesign, report: PipelineReport
    ) -> LatencyBreakdown:
        c_elem = report.cycles_per_element
        c_pipe = float(self.board.pipe_cycles_per_word)
        k = design.parallelism
        per_cycle = self.board.effective_bytes_per_cycle
        slowest_total = -1.0
        slowest_breakdown: Optional[LatencyBreakdown] = None
        for tile in design.tiles:
            read = design.tile_read_bytes(tile) * k / per_cycle
            write = design.tile_write_bytes(tile) * k / per_cycle
            useful = c_elem * design.fused_depth * tile.cells
            redundant = (
                c_elem * design.tile_compute_cells(tile) - useful
            )
            exposed = 0.0
            previous_indep = None
            for i in range(1, design.fused_depth + 1):
                indep, dep = split_independent_dependent(design, tile, i)
                share = c_pipe * design.tile_share_cells(tile, i)
                # Boundary-first schedule: iteration i's incoming halo
                # streams in while iteration i-1's interior computes;
                # only the excess transfer is exposed as a stall.
                if previous_indep is not None and share > 0.0:
                    exposed += max(
                        0.0, share - c_elem * previous_indep
                    )
                previous_indep = indep
            breakdown = LatencyBreakdown(
                launch=float(self.board.kernel_launch_cycles),
                read=read,
                write=write,
                compute_useful=useful,
                compute_redundant=redundant,
                share_exposed=exposed,
            )
            if breakdown.total > slowest_total:
                slowest_total = breakdown.total
                slowest_breakdown = breakdown
        assert slowest_breakdown is not None
        return slowest_breakdown.scaled(design.num_blocks())


def predict_latency(
    design: StencilDesign,
    board: BoardSpec = ADM_PCIE_7V3,
    fidelity: Fidelity = Fidelity.REFINED,
) -> LatencyBreakdown:
    """Convenience wrapper: predict a design's latency breakdown."""
    return PerformanceModel(board, fidelity).predict(design)
