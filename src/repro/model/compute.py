"""Computation latency (Section 4.3, Eqs. 7-9)."""

from __future__ import annotations

import math
from typing import List

from repro.model.params import ModelParameters
from repro.model.sharing import overlap_lambda_eq11, share_latency_eq10


def cycles_per_element_eq9(params: ModelParameters) -> float:
    """Eq. 9: ``C_element = II / N_PE``."""
    return params.initiation_interval / params.unroll


def iteration_latency_eq8(params: ModelParameters, iteration: int) -> float:
    """Eq. 8: cycles of the slowest kernel's ``i``-th fused iteration.

    ``L_iter_i = C_element * Π_d (w_d f_d^max + Δw_d (h - i))``
    """
    remaining = params.fused_depth - iteration
    cells = math.prod(
        w + dw * remaining
        for w, dw in zip(params.tile_shape, params.halo_growth)
    )
    return cycles_per_element_eq9(params) * cells


def iteration_latencies(params: ModelParameters) -> List[float]:
    """Eq. 8 evaluated for every fused iteration ``1..h``."""
    return [
        iteration_latency_eq8(params, i)
        for i in range(1, params.fused_depth + 1)
    ]


def compute_latency_eq7(params: ModelParameters, sharing: bool) -> float:
    """Eq. 7: computation latency of one fused block with sharing overhead.

    ``L_comp = Σ_i (1 + λ_iter_i) * L_iter_i``

    With ``λ`` from Eq. 11, the per-iteration contribution equals
    ``max(L_iter_i, L_share_i)`` — communication hides behind
    computation when it fits, and only the excess is exposed.

    Args:
        params: model parameters.
        sharing: whether the design exchanges halos through pipes
            (``λ = 0`` otherwise).
    """
    total = 0.0
    for i in range(1, params.fused_depth + 1):
        l_iter = iteration_latency_eq8(params, i)
        if sharing and l_iter <= 0.0:
            # Degenerate cone: the iteration computes nothing
            # (``Δw_d (h - i)`` consumed the whole extent) but its pipe
            # transfer still takes ``L_share`` cycles, all exposed.
            # ``(1 + λ) L_iter`` would lose that term to the zero
            # multiplier, so charge the transfer directly.
            total += max(0.0, share_latency_eq10(params, i))
            continue
        lam = overlap_lambda_eq11(params, i) if sharing else 0.0
        total += (1.0 + lam) * l_iter
    return total
