"""Analytical performance model (Section 4 of the paper, Eqs. 1-11)."""

from repro.model.params import ModelParameters, extract_parameters
from repro.model.latency import num_regions_eq2, total_latency_eq1
from repro.model.memory import memory_latency_eq4, read_latency_eq5, write_latency_eq6
from repro.model.compute import (
    compute_latency_eq7,
    cycles_per_element_eq9,
    iteration_latency_eq8,
)
from repro.model.sharing import overlap_lambda_eq11, share_latency_eq10
from repro.model.batch import BatchPrediction, BatchRangeError, predict_batch
from repro.model.calibration import CalibrationResult, OfflineProfiler
from repro.model.predictor import (
    Fidelity,
    LatencyBreakdown,
    PerformanceModel,
    predict_latency,
)

__all__ = [
    "CalibrationResult",
    "OfflineProfiler",
    "ModelParameters",
    "extract_parameters",
    "num_regions_eq2",
    "total_latency_eq1",
    "memory_latency_eq4",
    "read_latency_eq5",
    "write_latency_eq6",
    "compute_latency_eq7",
    "iteration_latency_eq8",
    "cycles_per_element_eq9",
    "share_latency_eq10",
    "overlap_lambda_eq11",
    "BatchPrediction",
    "BatchRangeError",
    "predict_batch",
    "Fidelity",
    "LatencyBreakdown",
    "PerformanceModel",
    "predict_latency",
]
