"""Exception hierarchy for the stencil-synthesis framework.

Every error raised by this package derives from :class:`ReproError` so
callers can catch framework failures with a single ``except`` clause
while still distinguishing configuration problems from runtime ones.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class SpecificationError(ReproError):
    """A stencil pattern, spec, or design parameter is malformed."""


class FrontendError(ReproError):
    """The OpenCL-subset frontend failed to parse or analyze a kernel."""


class ParseError(FrontendError):
    """Syntactic failure while parsing stencil source code."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        location = f" at line {line}, column {column}" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class ExtractionError(FrontendError):
    """The feature extractor could not recover a stencil pattern."""


class ResourceError(ReproError):
    """A design exceeds the FPGA resource budget."""


class DesignSpaceError(ReproError):
    """The design-space exploration was given an infeasible space."""


class StoreError(ReproError):
    """The persistent design store hit corruption or an I/O failure.

    Every filesystem or decoding failure inside :mod:`repro.store` is
    re-raised as this type (with the original exception chained), so
    callers never see a bare ``OSError`` or ``json.JSONDecodeError``
    escape the store layer.
    """


class ServiceError(ReproError):
    """The synthesis service rejected or could not process a request."""


class ServiceClosedError(ServiceError):
    """The service is draining or stopped; submissions are refused.

    Distinct from a malformed request so transports can map it to the
    right status code (HTTP 503 + no ``rejected`` accounting) instead
    of conflating every :class:`ServiceError` raised during a drain
    with a client error.
    """


class ServiceOverloadError(ServiceError):
    """The service's admission control rejected a job: queue full.

    Attributes:
        retry_after_s: the server's estimate of when capacity frees up;
            surfaced over HTTP as a ``Retry-After`` header with a 429.
    """

    def __init__(self, message: str, retry_after_s: float = 1.0):
        super().__init__(message)
        self.retry_after_s = retry_after_s


class JobCancelledError(ServiceError):
    """A job was cancelled (explicitly, or by its deadline)."""


class TransientServiceError(ServiceError):
    """A retryable failure inside a job (I/O hiccup, racing resource).

    The service worker retries jobs failing with this type (or another
    type in its ``transient`` tuple) with exponential backoff before
    declaring the job failed.
    """


class SimulationError(ReproError):
    """The execution simulator reached an inconsistent state."""


class PipeError(SimulationError):
    """Illegal operation on an OpenCL pipe (e.g. read past end)."""


class BackendUnavailable(SimulationError):
    """A requested simulator backend cannot run in this environment.

    Raised (and always caught — callers fall back to the numpy
    interpreter) when the JIT backend finds no working C compiler, an
    unsupported dtype, or a failed compilation.  Never fatal on the
    ``backend="auto"`` path.
    """


class CodegenError(ReproError):
    """The automatic code generator received an unsupported design."""
