"""Tiered streaming design-space search (screen, then refine).

ROADMAP item 5: Table-3-class spaces inflated by HBM banks, program
stages, or denser depth ladders are 100-1000x larger than what the
materialized ``List[StencilDesign]`` sweeps were built for.  This
module restructures exploration around a :class:`SearchDriver` that

1. consumes a *lazy* candidate generator in fixed-size chunks (peak
   residency is O(chunk), never O(space)),
2. runs a **Tier-0** vectorized screen per chunk — the exact
   :meth:`~repro.fpga.batch.BatchResources.feasible` resource mask
   plus the admissible latency lower bound of
   :func:`~repro.model.batch.lower_bound_batch` (bitwise-equal to the
   scalar pruning bound, provably ≤ the Eq. 7-11 prediction), and
3. promotes only the survivors to **Tier-1** exact scoring through
   the shared :class:`~repro.dse.evaluator.CandidateEvaluator`,

while maintaining a running :class:`SearchFrontier` (incumbent best +
(cycles, BRAM) Pareto band).  Because the bound is admissible and the
band-screen rule only discards candidates that some already-scored
point strictly dominates, the tiered search returns the *same best
design* — bitwise — and, under the ``"pareto"`` screen, the same
final frontier as exhaustive scoring (``docs/SEARCH.md`` states the
argument precisely).

With a :class:`~repro.store.checkpoint.SearchCheckpoint` attached,
every completed chunk's survivors are durably recorded; a killed
sweep resumes by re-enumerating the (deterministic) stream and
replaying recorded chunks, and independent workers can shard one
stream by interleaving chunks (``shard=(index, count)``) and merging
their partial results with :func:`merge_results`.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro import obs
from repro.dse.constraints import ResourceBudget
from repro.dse.evaluator import (
    CandidateEvaluator,
    DSEResult,
    EvaluatedDesign,
    EvaluationStats,
)
from repro.dse.pareto import pareto_front
from repro.errors import DesignSpaceError, StoreError
from repro.store.backing import (
    _resources_from_json,
    _resources_to_json,
    digest,
    evaluation_context,
)
from repro.store.checkpoint import SearchCheckpoint
from repro.tiling.design import StencilDesign

__all__ = [
    "SCREEN_MODES",
    "SearchDriver",
    "SearchFrontier",
    "SearchReport",
    "merge_results",
]

_log = obs.get_logger("dse.search")

#: Valid Tier-0 screen modes: ``None`` disables screening (chunked
#: exhaustive scoring), ``"latency"`` drops candidates whose lower
#: bound already loses to the incumbent best (the single-objective
#: searches), ``"pareto"`` drops only candidates some frontier point
#: strictly dominates in (cycles, BRAM) — the mode that preserves the
#: full Pareto band.
SCREEN_MODES = (None, "latency", "pareto")


def _band_sort_key(e: EvaluatedDesign) -> Tuple:
    return (
        e.predicted_cycles,
        e.resources.total.bram18,
        repr(e.design.signature()),
    )


class SearchFrontier:
    """Running incumbent + (cycles, BRAM) Pareto band.

    The incumbent follows the engine's strict-``<`` update rule, so
    among equal-latency designs the earliest in stream order is kept —
    exactly the design exhaustive ``explore`` returns.  The band is
    maintained incrementally with :func:`~repro.dse.pareto.pareto_front`
    (dominance is transitive and the equal-tuple dedup keeps the
    lowest signature, so incremental == one-shot construction).
    """

    def __init__(self) -> None:
        self.best: Optional[EvaluatedDesign] = None
        self._band: List[EvaluatedDesign] = []

    @property
    def band(self) -> Tuple[EvaluatedDesign, ...]:
        """The current Pareto band, sorted by predicted cycles."""
        return tuple(self._band)

    def __len__(self) -> int:
        return len(self._band)

    def admits_cycles(self, bound: float) -> bool:
        """Latency screen: can a candidate with this bound still win?

        Mirrors the scalar engine's prune rule (reject when ``bound >=
        best``); an admissible bound therefore never rejects a
        strictly faster candidate.
        """
        return self.best is None or bound < self.best.predicted_cycles

    def admits(self, bound: float, bram: int) -> bool:
        """Pareto screen: could the candidate still reach the band?

        Rejects only when some band member weakly dominates the
        optimistic objective pair ``(bound, bram)`` with at least one
        strict inequality.  Since the true cycles are ≥ ``bound`` and
        BRAM is exact, every rejected candidate is strictly dominated
        by a *scored* design — it can appear on no final frontier, and
        (band cycles never undercut the incumbent) it cannot beat or
        first-tie the best either.  Candidates whose exact objective
        tuple equals a band member's are always admitted, so the
        front's deterministic dedup tie-break is unaffected.
        """
        for p in self._band:
            p_cycles = p.predicted_cycles
            p_bram = p.resources.total.bram18
            if (
                p_bram <= bram
                and p_cycles <= bound
                and (p_bram < bram or p_cycles < bound)
            ):
                return False
        return True

    def extend(self, results: Sequence[EvaluatedDesign]) -> None:
        """Fold newly-scored feasible designs in, in stream order."""
        for result in results:
            if (
                self.best is None
                or result.predicted_cycles < self.best.predicted_cycles
            ):
                self.best = result
        if results:
            self._band = pareto_front(self._band + list(results))

    def members(self) -> Tuple[EvaluatedDesign, ...]:
        """Band plus the incumbent (when dominated off the band),
        sorted by (cycles, BRAM, signature)."""
        members = list(self._band)
        if self.best is not None and not any(
            m is self.best for m in members
        ):
            members.append(self.best)
        members.sort(key=_band_sort_key)
        return tuple(members)


@dataclass
class SearchReport:
    """Driver-level counters for one :meth:`SearchDriver.run`.

    ``peak_resident`` is the largest number of candidate/evaluated
    design objects the driver held at once (current chunk + frontier)
    — the O(chunk) residency guarantee, measurable.
    """

    chunks: int = 0
    replayed_chunks: int = 0
    skipped_chunks: int = 0
    candidates: int = 0
    infeasible: int = 0
    screened: int = 0
    promoted: int = 0
    tier1_evaluations: int = 0
    peak_resident: int = 0
    band_size: int = 0
    wall_time_s: float = 0.0

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view (JSON-ready)."""
        return {
            "chunks": self.chunks,
            "replayed_chunks": self.replayed_chunks,
            "skipped_chunks": self.skipped_chunks,
            "candidates": self.candidates,
            "infeasible": self.infeasible,
            "screened": self.screened,
            "promoted": self.promoted,
            "tier1_evaluations": self.tier1_evaluations,
            "peak_resident": self.peak_resident,
            "band_size": self.band_size,
            "wall_time_s": self.wall_time_s,
        }


@dataclass(frozen=True)
class _ChunkOutcome:
    """What one chunk contributed (scored live or replayed)."""

    survivors: List[EvaluatedDesign] = field(default_factory=list)
    infeasible: int = 0
    screened: int = 0
    replayed: bool = False


class SearchDriver:
    """Screen-then-refine explorer over lazy candidate streams.

    Args:
        evaluator: the exact Tier-1 engine (a serial
            :class:`CandidateEvaluator` is built when omitted).
        chunk_size: candidates materialized at a time.  ``None``
            selects the passthrough mode: :meth:`run` delegates to
            ``evaluator.explore(list(candidates), budget)`` and is
            bit-for-bit the historical exhaustive path (the
            ``optimize_*`` default).
        screen: Tier-0 mode, one of :data:`SCREEN_MODES`.
        checkpoint: optional durable chunk store; completed chunks
            replay on resume instead of re-scoring.
        search_key: identifier grouping this search's checkpoint
            records; required when several searches share one
            checkpoint file (``run``'s ``key`` argument overrides it
            per call).
        shard: ``(index, count)`` — process only chunks with
            ``chunk_index % count == index``.  Each shard must use its
            own checkpoint search id; merge partial results with
            :func:`merge_results`.
    """

    def __init__(
        self,
        evaluator: Optional[CandidateEvaluator] = None,
        chunk_size: Optional[int] = 1024,
        screen: Optional[str] = "latency",
        checkpoint: Optional[SearchCheckpoint] = None,
        search_key: Optional[str] = None,
        shard: Tuple[int, int] = (0, 1),
    ):
        if chunk_size is not None and chunk_size < 1:
            raise DesignSpaceError(
                f"chunk_size must be >= 1, got {chunk_size}"
            )
        if screen not in SCREEN_MODES:
            raise DesignSpaceError(
                f"Unknown screen mode {screen!r}; expected one of "
                f"{SCREEN_MODES}"
            )
        index, count = shard
        if count < 1 or not 0 <= index < count:
            raise DesignSpaceError(f"Invalid shard {shard!r}")
        self.evaluator = evaluator or CandidateEvaluator()
        self.chunk_size = chunk_size
        self.screen = screen
        self.checkpoint = checkpoint
        self.search_key = search_key
        self.shard = (index, count)
        #: Counters of the most recent :meth:`run`.
        self.report = SearchReport()

    # -- checkpoint plumbing ---------------------------------------------------

    def _meta(self, budget: ResourceBudget) -> dict:
        engine = self.evaluator
        return {
            "context": evaluation_context(
                engine.board, engine.fidelity, engine.estimator.flexcl
            ),
            "budget": {
                "label": budget.label,
                "limit": [
                    budget.limit.ff,
                    budget.limit.lut,
                    budget.limit.dsp,
                    budget.limit.bram18,
                ],
            },
            "chunk_size": self.chunk_size,
            "screen": self.screen,
            "shard": list(self.shard),
        }

    @staticmethod
    def _chunk_payload(
        chunk: Sequence[StencilDesign],
        outcome: _ChunkOutcome,
    ) -> dict:
        # Map survivors back to chunk positions by signature: the
        # engine's memo may hand back an ``EvaluatedDesign`` built from
        # an equal design seen earlier, so identity cannot be used.
        index_of: Dict[Tuple, int] = {}
        for j, design in enumerate(chunk):
            index_of.setdefault(design.signature(), j)
        return {
            "n": len(chunk),
            "infeasible": outcome.infeasible,
            "screened": outcome.screened,
            "survivors": [
                [
                    index_of[e.design.signature()],
                    e.predicted_cycles,
                    _resources_to_json(e.resources),
                ]
                for e in outcome.survivors
            ],
        }

    @staticmethod
    def _replay_chunk(
        chunk: Sequence[StencilDesign], payload: dict
    ) -> _ChunkOutcome:
        if payload.get("n") != len(chunk):
            raise StoreError(
                "Search checkpoint chunk does not match the enumerated "
                f"stream (recorded {payload.get('n')} candidates, "
                f"enumerated {len(chunk)}); the candidate generator "
                "must be deterministic across runs"
            )
        survivors = [
            EvaluatedDesign(
                design=chunk[local],
                predicted_cycles=cycles,
                resources=_resources_from_json(resources),
            )
            for local, cycles, resources in payload["survivors"]
        ]
        return _ChunkOutcome(
            survivors=survivors,
            infeasible=int(payload.get("infeasible", 0)),
            screened=int(payload.get("screened", 0)),
            replayed=True,
        )

    # -- chunk scoring ---------------------------------------------------------

    def _score_chunk(
        self,
        chunk: List[StencilDesign],
        budget: ResourceBudget,
        frontier: SearchFrontier,
        run_stats: EvaluationStats,
    ) -> _ChunkOutcome:
        engine = self.evaluator
        if self.screen is None:
            promoted = chunk
            infeasible = screened = 0
        else:
            with obs.span("search.tier0", candidates=len(chunk)):
                feasible, bounds, bram = engine.screen_batch(chunk, budget)
            promoted = []
            infeasible = screened = 0
            for j, design in enumerate(chunk):
                if not feasible[j]:
                    infeasible += 1
                    continue
                if self.screen == "latency":
                    admitted = frontier.admits_cycles(bounds[j])
                else:
                    admitted = frontier.admits(bounds[j], bram[j])
                if admitted:
                    promoted.append(design)
                else:
                    screened += 1
        tier0 = EvaluationStats(
            candidates=infeasible + screened,
            infeasible=infeasible,
            screened=screened,
            promoted=len(promoted),
        )
        engine.absorb_stats(tier0)
        run_stats.merge(tier0)
        tier1 = EvaluationStats()
        if promoted:
            with obs.span("search.tier1", promoted=len(promoted)):
                results = engine.evaluate_batch(
                    promoted, budget, stats=tier1
                )
        else:
            results = []
        engine.absorb_stats(tier1, publish=False)
        run_stats.merge(tier1)
        survivors = [r for r in results if r is not None]
        # Tier-1 re-checks feasibility with the identical integer
        # estimate, so with screening on nothing is rejected here; with
        # screening off its rejects are this chunk's infeasible count.
        if self.screen is None:
            infeasible = len(promoted) - len(survivors)
        return _ChunkOutcome(
            survivors=survivors,
            infeasible=infeasible,
            screened=screened,
        )

    # -- the drive loop --------------------------------------------------------

    def run(
        self,
        candidates: Iterable[StencilDesign],
        budget: ResourceBudget,
        key: Optional[str] = None,
    ) -> DSEResult:
        """Search a candidate stream; return the frontier's result.

        In passthrough mode (``chunk_size=None``) this is exactly
        ``evaluator.explore``.  In tiered mode the returned
        :class:`DSEResult` carries the incumbent best (bitwise-equal
        to the exhaustive best), the frontier members as
        ``candidates``, and the band under ``frontier``;
        ``evaluated``/``feasible`` count this shard's streamed and
        feasible candidates.
        """
        if self.chunk_size is None:
            return self.evaluator.explore(list(candidates), budget)
        checkpoint = self.checkpoint
        search = key or self.search_key
        if checkpoint is not None:
            if search is None:
                search = digest(self._meta(budget))[:16]
            checkpoint.begin(search, self._meta(budget))
        frontier = SearchFrontier()
        run_stats = EvaluationStats()
        report = SearchReport()
        start = time.perf_counter()
        stream = iter(candidates)
        index = 0
        shard_index, shard_count = self.shard
        with obs.span(
            "search.run",
            chunk_size=self.chunk_size,
            screen=self.screen or "off",
        ) as run_span:
            while True:
                chunk = list(itertools.islice(stream, self.chunk_size))
                if not chunk:
                    break
                if index % shard_count != shard_index:
                    report.skipped_chunks += 1
                    index += 1
                    continue
                payload = (
                    checkpoint.chunk(search, index)
                    if checkpoint is not None
                    else None
                )
                if payload is not None:
                    outcome = self._replay_chunk(chunk, payload)
                    replay = EvaluationStats(
                        candidates=len(chunk),
                        infeasible=outcome.infeasible,
                        screened=outcome.screened,
                        promoted=len(outcome.survivors),
                    )
                    self.evaluator.absorb_stats(replay)
                    run_stats.merge(replay)
                    report.replayed_chunks += 1
                    obs.inc("search.chunk_replays")
                else:
                    outcome = self._score_chunk(
                        chunk, budget, frontier, run_stats
                    )
                    if checkpoint is not None:
                        checkpoint.record_chunk(
                            search,
                            index,
                            self._chunk_payload(chunk, outcome),
                        )
                frontier.extend(outcome.survivors)
                report.chunks += 1
                report.candidates += len(chunk)
                report.infeasible += outcome.infeasible
                report.screened += outcome.screened
                report.promoted += len(outcome.survivors)
                resident = len(chunk) + len(frontier) + 1
                report.peak_resident = max(
                    report.peak_resident, resident
                )
                obs.inc("search.chunks")
                obs.set_gauge("search.band_size", len(frontier))
                obs.set_gauge(
                    "search.peak_resident", report.peak_resident
                )
                index += 1
            run_span.set(
                chunks=report.chunks, promoted=report.promoted
            )
        run_stats.wall_time_s = time.perf_counter() - start
        report.tier1_evaluations = run_stats.evaluated
        report.band_size = len(frontier)
        report.wall_time_s = run_stats.wall_time_s
        self.report = report
        if obs.enabled():
            _log.debug(
                "search: %s chunks (%s replayed), %s",
                report.chunks,
                report.replayed_chunks,
                run_stats.summary(),
            )
        if frontier.best is None:
            raise DesignSpaceError(
                f"No feasible design within budget {budget.label} "
                f"({report.candidates} candidates evaluated)"
            )
        return DSEResult(
            best=frontier.best,
            evaluated=report.candidates,
            feasible=report.candidates - report.infeasible,
            candidates=frontier.members(),
            stats=run_stats,
            frontier=frontier.band,
        )


def merge_results(results: Sequence[DSEResult]) -> DSEResult:
    """Merge partial shard results into one :class:`DSEResult`.

    The best design is the minimum over shards by ``(cycles, BRAM,
    signature)`` — stream order is not observable across shards, so
    ties break deterministically by signature instead.  Bands merge
    through :func:`~repro.dse.pareto.pareto_front`.
    """
    results = [r for r in results if r is not None]
    if not results:
        raise DesignSpaceError("No shard results to merge")
    frontier = SearchFrontier()
    stats = EvaluationStats()
    evaluated = feasible = 0
    pool: List[EvaluatedDesign] = []
    for result in results:
        evaluated += result.evaluated
        feasible += result.feasible
        if result.stats is not None:
            stats.merge(result.stats)
        pool.extend(result.candidates)
    if not pool:
        raise DesignSpaceError("No feasible design across shards")
    pool.sort(key=_band_sort_key)
    frontier.extend(pool)
    best = pool[0]
    return DSEResult(
        best=best,
        evaluated=evaluated,
        feasible=feasible,
        candidates=frontier.members(),
        stats=stats,
        frontier=frontier.band,
    )
