"""What-if sensitivity analysis over platform parameters.

Table 1 marks the global-memory bandwidth ``BW`` and the parallelism
``K`` as *user-defined inputs* to the performance optimizer, and
``C_pipe`` as profiled.  This module sweeps those knobs for a fixed
design (or design pair) and reports predicted and measured latency, so
a user can ask questions like "would this design still win on a board
with half the bandwidth?" before committing to synthesis.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.dse.evaluator import CandidateEvaluator, EvaluationStats
from repro.errors import DesignSpaceError
from repro.fpga.estimator import ResourceEstimator
from repro.model.batch import BatchRangeError, predict_batch
from repro.model.predictor import Fidelity
from repro.opencl.platform import ADM_PCIE_7V3, BoardSpec
from repro.store.backing import BackingStore
from repro.store.checkpoint import CheckpointedExecutor, SweepCheckpoint
from repro.tiling.design import StencilDesign


@dataclass(frozen=True)
class SweepPoint:
    """One point of a sensitivity sweep."""

    value: float
    predicted_cycles: float
    measured_cycles: float

    @property
    def model_error(self) -> float:
        """Relative model error at this point."""
        if self.measured_cycles == 0:
            return 0.0
        return (
            self.measured_cycles - self.predicted_cycles
        ) / self.measured_cycles


@dataclass(frozen=True)
class SweepResult:
    """A full sweep of one parameter."""

    parameter: str
    design_label: str
    points: Tuple[SweepPoint, ...]

    def best(self) -> SweepPoint:
        """The point with the lowest measured latency."""
        return min(self.points, key=lambda p: p.measured_cycles)

    def measured_range(self) -> float:
        """Max/min measured-latency ratio across the sweep."""
        cycles = [p.measured_cycles for p in self.points]
        return max(cycles) / min(cycles)


class SensitivityAnalyzer:
    """Sweeps board parameters for a fixed design.

    Model predictions route through one
    :class:`~repro.dse.evaluator.CandidateEvaluator` per swept board
    point; the evaluators share a single FlexCL pipeline analyzer and
    resource estimator (those don't depend on the swept board knobs),
    so re-sweeping a design re-uses all signature-cached work.

    With a persistent ``store``, every per-board evaluator consults and
    writes through it (each board point gets its own evaluation
    context, so entries never cross boards); with a ``checkpoint``,
    simulator measurements are durable too — an interrupted sweep
    resumed from the same files repeats no completed work and returns
    identical points.
    """

    def __init__(
        self,
        board: BoardSpec = ADM_PCIE_7V3,
        fidelity: Fidelity = Fidelity.REFINED,
        store: Optional[BackingStore] = None,
        checkpoint: Optional[SweepCheckpoint] = None,
    ):
        self.board = board
        self.fidelity = fidelity
        self.store = store
        self.checkpoint = checkpoint
        self._estimator = ResourceEstimator()
        self._evaluators: Dict[BoardSpec, CandidateEvaluator] = {}
        self._executors: Dict[BoardSpec, CheckpointedExecutor] = {}

    def _evaluator_for(self, board: BoardSpec) -> CandidateEvaluator:
        evaluator = self._evaluators.get(board)
        if evaluator is None:
            evaluator = CandidateEvaluator(
                board=board,
                fidelity=self.fidelity,
                estimator=self._estimator,
                store=self.store,
            )
            self._evaluators[board] = evaluator
        return evaluator

    def _executor_for(self, board: BoardSpec) -> CheckpointedExecutor:
        executor = self._executors.get(board)
        if executor is None:
            executor = CheckpointedExecutor(board, self.checkpoint)
            self._executors[board] = executor
        return executor

    def stats(self) -> EvaluationStats:
        """Aggregate engine counters across every swept board point."""
        total = EvaluationStats()
        for evaluator in self._evaluators.values():
            total.merge(evaluator.stats)
        return total

    def _evaluate(
        self, design: StencilDesign, board: BoardSpec
    ) -> Tuple[float, float]:
        predicted = self._evaluator_for(board).predict_cycles(design)
        measured = self._executor_for(board).total_cycles(design)
        return predicted, measured

    def _prime_boards(
        self, design: StencilDesign, boards: Sequence[BoardSpec]
    ) -> None:
        """Vectorize one design across every swept board point.

        ``predict_batch`` accepts one board per candidate, so a whole
        sweep's model work collapses into a single batched pass; the
        bitwise-identical breakdowns are primed into each per-board
        evaluator's model cache, and the per-point loop then answers
        from cache.  Out-of-range designs fall back to the scalar path
        (stats and results are unchanged either way).
        """
        try:
            prediction = predict_batch(
                [design] * len(boards),
                board=boards,
                fidelity=self.fidelity,
                flexcl=self._estimator.flexcl,
            )
        except BatchRangeError:
            return
        for i, board in enumerate(boards):
            self._evaluator_for(board).model.prime(
                design, prediction.breakdown(i)
            )

    def sweep_bandwidth(
        self,
        design: StencilDesign,
        bandwidths_bytes_per_s: Sequence[float],
    ) -> SweepResult:
        """Latency vs peak global-memory bandwidth ``BW``."""
        if not bandwidths_bytes_per_s:
            raise DesignSpaceError("Bandwidth sweep needs values")
        boards = [
            self.board.with_bandwidth(bw) for bw in bandwidths_bytes_per_s
        ]
        self._prime_boards(design, boards)
        points = []
        for bw, board in zip(bandwidths_bytes_per_s, boards):
            predicted, measured = self._evaluate(design, board)
            points.append(SweepPoint(bw, predicted, measured))
        return SweepResult("bandwidth", design.describe(), tuple(points))

    def sweep_pipe_cost(
        self,
        design: StencilDesign,
        cycles_per_word: Sequence[int],
    ) -> SweepResult:
        """Latency vs ``C_pipe`` (cycles per transferred element)."""
        if not cycles_per_word:
            raise DesignSpaceError("Pipe-cost sweep needs values")
        boards = [
            dataclasses.replace(self.board, pipe_cycles_per_word=int(cost))
            for cost in cycles_per_word
        ]
        self._prime_boards(design, boards)
        points = []
        for cost, board in zip(cycles_per_word, boards):
            predicted, measured = self._evaluate(design, board)
            points.append(SweepPoint(float(cost), predicted, measured))
        return SweepResult("pipe_cost", design.describe(), tuple(points))

    def sweep_launch_overhead(
        self,
        design: StencilDesign,
        stagger_cycles: Sequence[int],
    ) -> SweepResult:
        """Latency vs the sequential kernel-launch stagger."""
        if not stagger_cycles:
            raise DesignSpaceError("Launch sweep needs values")
        boards = [
            dataclasses.replace(self.board, launch_stagger_cycles=int(stagger))
            for stagger in stagger_cycles
        ]
        self._prime_boards(design, boards)
        points = []
        for stagger, board in zip(stagger_cycles, boards):
            predicted, measured = self._evaluate(design, board)
            points.append(
                SweepPoint(float(stagger), predicted, measured)
            )
        return SweepResult("launch_stagger", design.describe(), tuple(points))

    def speedup_vs_bandwidth(
        self,
        baseline: StencilDesign,
        optimized: StencilDesign,
        bandwidths_bytes_per_s: Sequence[float],
    ) -> List[Tuple[float, float]]:
        """Measured optimized-vs-baseline speedup across bandwidths.

        The paper's gain comes partly from eliminated transfers, so it
        *grows* as bandwidth shrinks — this sweep quantifies that.
        """
        results = []
        for bw in bandwidths_bytes_per_s:
            board = self.board.with_bandwidth(bw)
            executor = self._executor_for(board)
            speedup = executor.total_cycles(baseline) / executor.total_cycles(
                optimized
            )
            results.append((bw, speedup))
        return results
