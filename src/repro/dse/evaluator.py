"""The unified candidate-evaluation engine behind every DSE caller.

The paper's whole optimization story (Section 5.1) rests on the
analytical model making exhaustive enumeration cheap.  This module is
the single path from a candidate :class:`StencilDesign` to its scored
:class:`EvaluatedDesign`, shared by the ``optimize_*`` entry points,
the sensitivity sweeps, the Pareto utilities, the experiment CLI, and
the benchmarks.  It adds three things the per-caller loops never had:

- **Memoization** — model and resource-estimator results are cached
  under the design's canonical signature
  (:meth:`~repro.tiling.design.StencilDesign.signature`); designs recur
  across the baseline/pipe-shared/heterogeneous sweeps and across
  repeated experiment runs, and equal signatures guarantee equal
  results.
- **Parallel batches** — candidates evaluate concurrently on a
  :mod:`concurrent.futures` thread pool with a deterministic-ordering
  guarantee (results are always assembled in candidate order) and a
  serial fallback (``max_workers=None``).
- **Admissible pruning** — before the full model runs, a candidate is
  rejected on resource infeasibility, and optionally on a compute-only
  latency lower bound: if even its useful computation alone exceeds the
  best fully-evaluated latency so far, the candidate cannot win.  The
  bound never exceeds the true prediction, so pruning never discards
  the optimum.
- **Persistent warm starts** — with a
  :class:`~repro.store.backing.BackingStore` attached, a memo miss
  consults the store before running the model, and every fresh
  evaluation is written through, so results survive the process and
  warm-start the next run (see ``docs/STORE.md``).

Every run emits an :class:`EvaluationStats` record and can stream
per-candidate :class:`CandidateTrace` events to an observer hook.
"""

from __future__ import annotations

import math
import threading
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.obs import trace as obs_trace
from repro.dse.constraints import ResourceBudget
from repro.errors import DesignSpaceError
from repro.fpga.batch import estimate_batch
from repro.fpga.estimator import DesignResources, ResourceEstimator
from repro.fpga.flexcl import FlexCLEstimator
from repro.model.batch import (
    BatchRangeError,
    lower_bound_batch,
    predict_batch,
)
from repro.model.predictor import Fidelity, PerformanceModel
from repro.opencl.platform import ADM_PCIE_7V3, BoardSpec
from repro.store.backing import BackingStore, evaluation_context
from repro.tiling.design import StencilDesign

_log = obs.get_logger("dse")


@dataclass(frozen=True)
class EvaluatedDesign:
    """One candidate with its predicted latency and resources."""

    design: StencilDesign
    predicted_cycles: float
    resources: DesignResources


@dataclass(frozen=True)
class DSEResult:
    """Outcome of one exploration run."""

    best: EvaluatedDesign
    evaluated: int
    feasible: int
    #: All feasible candidates, fastest first (for Pareto analysis).
    #: A tiered search (``SearchDriver`` with screening on) returns
    #: only the promoted survivors here — O(frontier), not O(space).
    candidates: Tuple[EvaluatedDesign, ...]
    #: Engine counters for this run (``None`` for hand-built results).
    stats: Optional["EvaluationStats"] = field(default=None, compare=False)
    #: The (cycles, BRAM) Pareto band maintained during a tiered
    #: search; ``None`` for plain exhaustive explorations.
    frontier: Optional[Tuple[EvaluatedDesign, ...]] = field(
        default=None, compare=False
    )


@dataclass
class EvaluationStats:
    """Counters describing what the engine did for a batch of work.

    Attributes:
        candidates: designs submitted.
        evaluated: full model evaluations actually performed.
        cache_hits: designs answered from the signature cache.
        store_hits: designs whose prediction was answered by the
            persistent backing store (no model evaluation ran).
        infeasible: designs rejected by the resource-budget check.
        pruned: designs rejected by the latency lower bound (their full
            model evaluation was skipped).
        screened: designs rejected by the tiered search's vectorized
            Tier-0 screen (never reached exact scoring).
        promoted: designs the Tier-0 screen passed through to Tier-1
            exact scoring.
        wall_time_s: wall-clock seconds spent in the engine.
    """

    candidates: int = 0
    evaluated: int = 0
    cache_hits: int = 0
    store_hits: int = 0
    infeasible: int = 0
    pruned: int = 0
    screened: int = 0
    promoted: int = 0
    wall_time_s: float = 0.0

    def merge(self, other: "EvaluationStats") -> None:
        """Accumulate another stats record into this one."""
        self.candidates += other.candidates
        self.evaluated += other.evaluated
        self.cache_hits += other.cache_hits
        self.store_hits += other.store_hits
        self.infeasible += other.infeasible
        self.pruned += other.pruned
        self.screened += other.screened
        self.promoted += other.promoted
        self.wall_time_s += other.wall_time_s

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view."""
        return {
            "candidates": self.candidates,
            "evaluated": self.evaluated,
            "cache_hits": self.cache_hits,
            "store_hits": self.store_hits,
            "infeasible": self.infeasible,
            "pruned": self.pruned,
            "screened": self.screened,
            "promoted": self.promoted,
            "wall_time_s": self.wall_time_s,
        }

    def summary(self) -> str:
        """One-line human-readable rendering."""
        tiered = (
            f"{self.screened} screened, {self.promoted} promoted, "
            if (self.screened or self.promoted)
            else ""
        )
        return (
            f"{self.candidates} candidates: {self.evaluated} evaluated, "
            f"{self.cache_hits} cache hits, {self.store_hits} store hits, "
            f"{self.pruned} pruned, {tiered}"
            f"{self.infeasible} infeasible, {self.wall_time_s:.2f}s"
        )


@dataclass(frozen=True)
class CandidateTrace:
    """One per-candidate observability event.

    Attributes:
        design: the candidate.
        outcome: ``"evaluated"``, ``"cache-hit"``, ``"store-hit"``,
            ``"infeasible"`` or ``"pruned"``.
        predicted_cycles: model prediction when one was produced.
        lower_bound: the admissible bound, when pruning is active.
        seq: monotonic per-evaluator sequence id, assigned under the
            engine lock at emit time — even when the thread pool
            delivers events concurrently, sorting by ``seq`` recovers a
            deterministic total order.
    """

    design: StencilDesign
    outcome: str
    predicted_cycles: Optional[float] = None
    lower_bound: Optional[float] = None
    seq: int = -1


TraceHook = Callable[[CandidateTrace], None]

#: Smallest batch worth routing through the vectorized engine when
#: ``vectorize`` is left on auto (a single candidate gains nothing).
_VECTOR_MIN_BATCH = 2


class CandidateEvaluator:
    """Cached, parallel, prunable scorer for candidate designs.

    One evaluator is bound to a board, a model fidelity, and an
    estimator pair (the performance model and the resource estimator
    share one FlexCL pipeline analyzer so its reports are computed once
    per pattern).  All caches live for the evaluator's lifetime, so
    sharing one instance across sweeps shares their work.

    Args:
        board: platform the model evaluates against.
        fidelity: analytical-model variant.
        estimator: resource estimator (one is built when omitted).
        model: performance model (one is built when omitted).
        max_workers: thread-pool width for batch evaluation; ``None``,
            0, or 1 selects the serial path.
        prune: enable the compute-only lower-bound pruning in
            :meth:`explore`.  Pruned candidates are guaranteed slower
            than the returned best but are absent from
            ``DSEResult.candidates``.
        trace: optional per-candidate observer hook.
        store: optional persistent backing store — consulted on every
            memo miss, written through on every fresh evaluation.
            Entries are content-addressed under this evaluator's board,
            fidelity, and FlexCL configuration, so a store shared
            across differently-configured evaluators never serves a
            stale result.
        max_memo_entries: bound on the in-memory signature memo; when
            set, the least-recently-used entries are evicted past the
            bound (an evicted design re-evaluates — or, with a store
            attached, reloads — on its next appearance).  ``None``
            keeps the memo unbounded.
        vectorize: batch-scoring mode.  ``None`` (default) routes
            batches of two or more candidates through the NumPy batch
            engine (:mod:`repro.model.batch` / :mod:`repro.fpga.batch`)
            whenever pruning is off; ``True`` forces it for any
            non-empty batch; ``False`` disables it.  The vectorized
            path returns bitwise-identical results, stats, and traces —
            candidates out of the batch engine's exact-parity range
            fall back to the scalar path automatically.
    """

    def __init__(
        self,
        board: BoardSpec = ADM_PCIE_7V3,
        fidelity: Fidelity = Fidelity.REFINED,
        estimator: Optional[ResourceEstimator] = None,
        model: Optional[PerformanceModel] = None,
        max_workers: Optional[int] = None,
        prune: bool = False,
        trace: Optional[TraceHook] = None,
        store: Optional[BackingStore] = None,
        max_memo_entries: Optional[int] = None,
        vectorize: Optional[bool] = None,
    ):
        if estimator is None:
            flexcl = model.estimator if model is not None else FlexCLEstimator()
            estimator = ResourceEstimator(flexcl)
        if model is None:
            model = PerformanceModel(board, fidelity, estimator.flexcl)
        if max_memo_entries is not None and max_memo_entries < 1:
            raise DesignSpaceError(
                f"max_memo_entries must be >= 1, got {max_memo_entries}"
            )
        self.board = board
        self.fidelity = model.fidelity
        self.estimator = estimator
        self.model = model
        self.max_workers = max_workers
        self.prune = prune
        self.trace = trace
        self.store = store
        self.max_memo_entries = max_memo_entries
        self.vectorize = vectorize
        self.store_context = (
            evaluation_context(board, self.fidelity, estimator.flexcl)
            if store is not None
            else None
        )
        #: Lifetime aggregate over every evaluate/explore call.
        self.stats = EvaluationStats()
        self._results: "OrderedDict[Tuple, EvaluatedDesign]" = OrderedDict()
        self._predicted: "OrderedDict[Tuple, None]" = OrderedDict()
        self._lock = threading.Lock()
        self._emit_seq = 0

    # -- cached primitives -----------------------------------------------------

    def resources(self, design: StencilDesign) -> DesignResources:
        """Signature-cached resource estimate."""
        return self.estimator.estimate(design)

    # -- store + memo plumbing -------------------------------------------------

    def _store_lookup(self, design: StencilDesign):
        """Consult the backing store; ``None`` without one (or on miss)."""
        if self.store is None:
            return None
        return self.store.lookup_design(design, self.store_context)

    def _store_record(
        self,
        design: StencilDesign,
        cycles: Optional[float] = None,
        resources: Optional[DesignResources] = None,
    ) -> None:
        """Write a fresh result through to the backing store."""
        if self.store is None:
            return
        self.store.record_design(
            design, self.store_context, cycles=cycles, resources=resources
        )

    def _memo_get(self, sig: Tuple) -> Optional[EvaluatedDesign]:
        """LRU-aware memo read (call under ``self._lock``)."""
        result = self._results.get(sig)
        if result is not None and self.max_memo_entries is not None:
            self._results.move_to_end(sig)
        return result

    def _memo_put(
        self, sig: Tuple, result: EvaluatedDesign
    ) -> EvaluatedDesign:
        """LRU-aware memo insert (call under ``self._lock``).

        Returns the canonical result object for the signature: a
        concurrent writer may have won the race, in which case its
        object is kept (same signature → same values).
        """
        existing = self._results.get(sig)
        if existing is not None:
            return existing
        self._results[sig] = result
        if (
            self.max_memo_entries is not None
            and len(self._results) > self.max_memo_entries
        ):
            self._results.popitem(last=False)
        return result

    def predict_cycles(self, design: StencilDesign) -> float:
        """Signature-cached model prediction (total cycles).

        Resolution order on a memo miss: the persistent store (when
        attached), then the model — with the fresh prediction written
        through to the store.
        """
        sig = design.signature()
        with self._lock:
            hit = sig in self._predicted
            if hit and self.max_memo_entries is not None:
                self._predicted.move_to_end(sig)
        cycles: Optional[float] = None
        store_hit = False
        if not hit:
            stored = self._store_lookup(design)
            if stored is not None and stored.cycles is not None:
                cycles = stored.cycles
                store_hit = True
        if cycles is None:
            cycles = self.model.predict_cycles_cached(design)
        with self._lock:
            if not store_hit:
                # A store-served prediction never reaches the model's
                # own cache, so only model-backed signatures may short-
                # circuit future calls through ``_predicted``.
                self._predicted[sig] = None
                if (
                    self.max_memo_entries is not None
                    and len(self._predicted) > self.max_memo_entries
                ):
                    self._predicted.popitem(last=False)
            self.stats.candidates += 1
            if hit:
                self.stats.cache_hits += 1
            elif store_hit:
                self.stats.store_hits += 1
            else:
                self.stats.evaluated += 1
        if obs.enabled():
            obs.inc("dse.candidates")
            if hit:
                obs.inc("dse.cache_hits")
            elif store_hit:
                obs.inc("dse.store_hits")
            else:
                obs.inc("dse.evaluated")
        if not hit and not store_hit:
            self._store_record(design, cycles=cycles)
        return cycles

    def lower_bound(self, design: StencilDesign) -> float:
        """Admissible compute-only latency lower bound (cycles).

        Counts only computation cycles — launch, memory, and pipe
        overheads are all non-negative, so the bound never exceeds the
        full prediction at either fidelity:

        - ``REFINED``: the slowest kernel's total latency is at least
          its computation ``C_element · Σ_i workload_i``, maximized
          over kernels and scaled by the integer block count.
        - ``PAPER``: Eq. 7's ``L_comp`` is at least the useful part
          ``C_element · h · Π w_d`` of the slowest kernel, scaled by
          the real-valued ``N_region`` of Eq. 2.
        """
        report = self.model.pipeline_report(design)
        c_elem = report.cycles_per_element
        if self.fidelity is Fidelity.PAPER:
            per_block = (
                c_elem
                * design.fused_depth
                * math.prod(design.slowest_tile().shape)
            )
            return per_block * design.num_blocks_paper()
        per_block = c_elem * max(
            design.tile_compute_cells(t) for t in design.tiles
        )
        return per_block * design.num_blocks()

    # -- single-candidate evaluation -------------------------------------------

    def evaluate(
        self, design: StencilDesign, budget: ResourceBudget
    ) -> Optional[EvaluatedDesign]:
        """Score one candidate against a budget.

        Returns the cached :class:`EvaluatedDesign` when the signature
        was seen before (same signature → same result object); the
        budget check always re-runs, so the same design can be feasible
        under one budget and rejected under another.  Returns ``None``
        for infeasible candidates.
        """
        stats = EvaluationStats()
        start = time.perf_counter()
        with obs.span("dse.evaluate", budget=budget.label):
            result = self._evaluate_one(
                design, budget, stats, incumbent=None
            )
        stats.wall_time_s = time.perf_counter() - start
        self._absorb(stats)
        return result

    def _evaluate_one(
        self,
        design: StencilDesign,
        budget: ResourceBudget,
        stats: EvaluationStats,
        incumbent: Optional[List[float]],
        bound: Optional[float] = None,
    ) -> Optional[EvaluatedDesign]:
        """Evaluate one candidate, updating ``stats`` and ``incumbent``.

        ``incumbent`` is a shared single-element list holding the best
        fully-evaluated feasible latency so far (guarded by
        ``self._lock``); ``bound`` is the precomputed lower bound, when
        pruning is active.  ``stats`` may be shared across pool
        threads: the candidate's counters are tallied locally and
        merged in under the engine lock.
        """
        delta = EvaluationStats()
        try:
            return self._evaluate_one_unsynced(
                design, budget, delta, incumbent, bound
            )
        finally:
            with self._lock:
                stats.merge(delta)

    def _evaluate_one_unsynced(
        self,
        design: StencilDesign,
        budget: ResourceBudget,
        stats: EvaluationStats,
        incumbent: Optional[List[float]],
        bound: Optional[float],
    ) -> Optional[EvaluatedDesign]:
        stats.candidates += 1
        sig = design.signature()
        with self._lock:
            cached = self._memo_get(sig)
        if cached is not None:
            stats.cache_hits += 1
            if not cached.resources.total.fits_within(budget.limit):
                stats.infeasible += 1
                self._emit(CandidateTrace(design, "infeasible"))
                return None
            self._note_incumbent(incumbent, cached.predicted_cycles)
            self._emit(
                CandidateTrace(design, "cache-hit", cached.predicted_cycles)
            )
            return cached
        stored = self._store_lookup(design)
        if stored is not None and stored.complete:
            result = EvaluatedDesign(
                design, stored.cycles, stored.resources
            )
            with self._lock:
                result = self._memo_put(sig, result)
            stats.store_hits += 1
            if not result.resources.total.fits_within(budget.limit):
                stats.infeasible += 1
                self._emit(CandidateTrace(design, "infeasible"))
                return None
            self._note_incumbent(incumbent, result.predicted_cycles)
            self._emit(
                CandidateTrace(design, "store-hit", result.predicted_cycles)
            )
            return result
        if stored is not None and stored.resources is not None:
            resources = stored.resources
            fresh_resources = False
        else:
            resources = self.resources(design)
            fresh_resources = True
        if not resources.total.fits_within(budget.limit):
            stats.infeasible += 1
            if fresh_resources:
                self._store_record(design, resources=resources)
            self._emit(CandidateTrace(design, "infeasible"))
            return None
        if bound is not None and incumbent is not None:
            with self._lock:
                best = incumbent[0]
            if best is not None and bound >= best:
                stats.pruned += 1
                if fresh_resources:
                    self._store_record(design, resources=resources)
                self._emit(
                    CandidateTrace(design, "pruned", lower_bound=bound)
                )
                return None
        if stored is not None and stored.cycles is not None:
            cycles = stored.cycles
            stats.store_hits += 1
            if fresh_resources:
                self._store_record(design, resources=resources)
        else:
            cycles = self.model.predict_cycles_cached(design)
            stats.evaluated += 1
            self._store_record(design, cycles=cycles, resources=resources)
        result = EvaluatedDesign(design, cycles, resources)
        with self._lock:
            result = self._memo_put(sig, result)
        self._note_incumbent(incumbent, cycles)
        self._emit(CandidateTrace(design, "evaluated", cycles, bound))
        return result

    def _absorb(self, delta: EvaluationStats) -> None:
        """Fold a batch's counters into the lifetime stats and metrics."""
        self.absorb_stats(delta)

    def absorb_stats(
        self, delta: EvaluationStats, publish: bool = True
    ) -> None:
        """Fold externally-collected counters into the lifetime stats.

        The tiered :class:`~repro.dse.search.SearchDriver` tallies its
        Tier-0 screen counters outside the engine and folds them in
        here; ``publish=False`` skips the metrics registry for deltas
        whose counters were already published (e.g. by
        :meth:`evaluate_batch`'s ``stats`` path).
        """
        with self._lock:
            self.stats.merge(delta)
        if publish:
            self._publish(delta)

    def _publish(self, delta: EvaluationStats) -> None:
        """Feed a batch's counters to the metrics registry."""
        if obs.enabled():
            obs.inc("dse.candidates", delta.candidates)
            obs.inc("dse.evaluated", delta.evaluated)
            obs.inc("dse.cache_hits", delta.cache_hits)
            obs.inc("dse.store_hits", delta.store_hits)
            obs.inc("dse.infeasible", delta.infeasible)
            obs.inc("dse.pruned", delta.pruned)
            obs.inc("search.screened", delta.screened)
            obs.inc("search.promoted", delta.promoted)
            obs.observe("dse.batch_wall_s", delta.wall_time_s)
            obs.set_gauge("dse.cache_size", self.cache_size())

    def _note_incumbent(
        self, incumbent: Optional[List[float]], cycles: float
    ) -> None:
        if incumbent is None:
            return
        with self._lock:
            if incumbent[0] is None or cycles < incumbent[0]:
                incumbent[0] = cycles

    def _emit(self, event: CandidateTrace) -> None:
        if self.trace is None:
            return
        with self._lock:
            seq = self._emit_seq
            self._emit_seq += 1
        self.trace(replace(event, seq=seq))

    # -- vectorized fast path --------------------------------------------------

    def _vector_eligible(self, count: int) -> bool:
        """Whether a batch of ``count`` candidates may use the fast path.

        Pruning needs per-candidate incumbent interleaving, which batch
        scoring cannot honor, so pruned engines always take the scalar
        path.
        """
        if self.prune or self.vectorize is False:
            return False
        if self.vectorize is True:
            return count > 0
        return count >= _VECTOR_MIN_BATCH

    def _score_vectorized(
        self, items: Sequence[Tuple[Tuple, StencilDesign]]
    ) -> Optional[Dict[Tuple, Tuple[float, DesignResources]]]:
        """Batch-score fresh designs; ``None`` -> fall back to scalar.

        Runs the vectorized model and resource estimator over every
        design that neither the memo nor the store can answer, primes
        the scalar caches with the (bitwise-identical) results, and
        returns ``{signature: (total_cycles, resources)}``.
        """
        scored: Dict[Tuple, Tuple[float, DesignResources]] = {}
        if not items:
            return scored
        designs = [design for _sig, design in items]
        try:
            resources = estimate_batch(designs, flexcl=self.estimator.flexcl)
            prediction = predict_batch(
                designs,
                board=self.board,
                fidelity=self.fidelity,
                flexcl=self.model.estimator,
            )
        except BatchRangeError:
            return None
        for i, (sig, design) in enumerate(items):
            breakdown = self.model.prime(design, prediction.breakdown(i))
            res = self.estimator.prime(
                design, resources.design_resources(i)
            )
            scored[sig] = (breakdown.total, res)
        return scored

    def _run_batch_vectorized(
        self,
        candidates: Sequence[StencilDesign],
        budget: ResourceBudget,
        stats: EvaluationStats,
    ) -> Optional[List[Optional[EvaluatedDesign]]]:
        """Vectorized ``_run_batch`` body; ``None`` -> use the scalar path.

        Scoring is hoisted: one batched model/estimator pass covers
        every design the memo and store cannot answer, then each
        candidate walks the exact per-candidate memo/store/budget
        sequence of :meth:`_evaluate_one_unsynced`, preserving stats,
        traces, and store write-through byte for byte.
        """
        stored_entries: Dict[Tuple, object] = {}
        fresh: "OrderedDict[Tuple, StencilDesign]" = OrderedDict()
        with self._lock:
            known = set(self._results)
        for design in candidates:
            sig = design.signature()
            if sig in known or sig in fresh:
                continue
            if sig not in stored_entries:
                stored_entries[sig] = self._store_lookup(design)
            entry = stored_entries[sig]
            if entry is not None and entry.complete:
                continue
            fresh[sig] = design
        scored = self._score_vectorized(list(fresh.items()))
        if scored is None:
            return None
        local = EvaluationStats()
        recorded: set = set()
        results = [
            self._finish_one_vectorized(
                design, budget, local, stored_entries, scored, recorded
            )
            for design in candidates
        ]
        with self._lock:
            stats.merge(local)
        return results

    def _finish_one_vectorized(
        self,
        design: StencilDesign,
        budget: ResourceBudget,
        stats: EvaluationStats,
        stored: Dict[Tuple, object],
        scored: Dict[Tuple, Tuple[float, DesignResources]],
        recorded: set,
    ) -> Optional[EvaluatedDesign]:
        """Per-candidate epilogue of the vectorized path.

        Mirrors :meth:`_evaluate_one_unsynced` (minus pruning, which
        never reaches here) with model/estimator calls replaced by the
        precomputed ``scored`` values; ``recorded`` guards the store
        against duplicate resource-only records for repeated designs.
        """
        stats.candidates += 1
        sig = design.signature()
        with self._lock:
            cached = self._memo_get(sig)
        if cached is not None:
            stats.cache_hits += 1
            if not cached.resources.total.fits_within(budget.limit):
                stats.infeasible += 1
                self._emit(CandidateTrace(design, "infeasible"))
                return None
            self._emit(
                CandidateTrace(design, "cache-hit", cached.predicted_cycles)
            )
            return cached
        entry = stored.get(sig)
        if entry is not None and entry.complete:
            result = EvaluatedDesign(design, entry.cycles, entry.resources)
            with self._lock:
                result = self._memo_put(sig, result)
            stats.store_hits += 1
            if not result.resources.total.fits_within(budget.limit):
                stats.infeasible += 1
                self._emit(CandidateTrace(design, "infeasible"))
                return None
            self._emit(
                CandidateTrace(design, "store-hit", result.predicted_cycles)
            )
            return result
        if entry is not None and entry.resources is not None:
            resources = entry.resources
            fresh_resources = False
        else:
            resources = scored[sig][1]
            fresh_resources = True
        if not resources.total.fits_within(budget.limit):
            stats.infeasible += 1
            if fresh_resources and sig not in recorded:
                recorded.add(sig)
                self._store_record(design, resources=resources)
            self._emit(CandidateTrace(design, "infeasible"))
            return None
        if entry is not None and entry.cycles is not None:
            cycles = entry.cycles
            stats.store_hits += 1
            if fresh_resources and sig not in recorded:
                recorded.add(sig)
                self._store_record(design, resources=resources)
        else:
            cycles = scored[sig][0]
            stats.evaluated += 1
            if sig not in recorded:
                recorded.add(sig)
                self._store_record(
                    design, cycles=cycles, resources=resources
                )
        result = EvaluatedDesign(design, cycles, resources)
        with self._lock:
            result = self._memo_put(sig, result)
        self._emit(CandidateTrace(design, "evaluated", cycles, None))
        return result

    # -- tier-0 screening (the tiered search's vectorized gate) ----------------

    def screen_batch(
        self,
        candidates: Sequence[StencilDesign],
        budget: ResourceBudget,
    ) -> Tuple[List[bool], List[float], List[int]]:
        """Cheap per-candidate screen data for one chunk.

        Returns ``(feasible, bounds, bram)``: the exact resource-budget
        verdict, the admissible compute-only latency lower bound (see
        :meth:`lower_bound` — never exceeds the full prediction), and
        the exact total BRAM18 count, one entry per candidate.

        The fast path runs the vectorized estimators
        (:func:`~repro.fpga.batch.estimate_batch` /
        :func:`~repro.model.batch.lower_bound_batch`); candidates out
        of the exact-parity range fall back to scalar estimation.
        Nothing is memoized on either path — screening a huge space
        leaves the signature caches untouched, so peak residency stays
        O(chunk), not O(space).
        """
        candidates = list(candidates)
        if not candidates:
            return [], [], []
        if self.vectorize is not False:
            try:
                resources = estimate_batch(
                    candidates, flexcl=self.estimator.flexcl
                )
                bounds = lower_bound_batch(
                    candidates,
                    fidelity=self.fidelity,
                    flexcl=self.model.estimator,
                )
                feasible = resources.feasible(budget.limit)
                return (
                    [bool(f) for f in feasible],
                    [float(b) for b in bounds],
                    [int(b) for b in resources.total.bram18],
                )
            except BatchRangeError:
                pass
        feasible_s: List[bool] = []
        bounds_s: List[float] = []
        bram_s: List[int] = []
        for design in candidates:
            report = self.model.pipeline_report(design)
            # An explicit report bypasses the estimator's signature
            # cache: tier-0 rejects must not grow it.
            res = self.estimator.estimate(design, report)
            feasible_s.append(res.total.fits_within(budget.limit))
            bounds_s.append(self.lower_bound(design))
            bram_s.append(res.total.bram18)
        return feasible_s, bounds_s, bram_s

    # -- batch evaluation ------------------------------------------------------

    def evaluate_batch(
        self,
        candidates: Sequence[StencilDesign],
        budget: ResourceBudget,
        stats: Optional[EvaluationStats] = None,
    ) -> List[Optional[EvaluatedDesign]]:
        """Score a batch; the result list always matches input order.

        Parallel (``max_workers > 1``) and serial execution return the
        same values for every candidate — with pruning enabled, the set
        of skipped candidates can differ between runs, but a skipped
        candidate is always provably slower than the best, so the
        returned optimum is invariant.
        """
        delta = EvaluationStats()
        start = time.perf_counter()
        with obs.span(
            "dse.evaluate_batch",
            candidates=len(candidates),
            budget=budget.label,
        ):
            results = self._run_batch(candidates, budget, delta)
        delta.wall_time_s = time.perf_counter() - start
        if stats is not None:
            stats.merge(delta)
            self._publish(delta)
        else:
            self._absorb(delta)
        return results

    def _run_batch(
        self,
        candidates: Sequence[StencilDesign],
        budget: ResourceBudget,
        stats: EvaluationStats,
    ) -> List[Optional[EvaluatedDesign]]:
        if self._vector_eligible(len(candidates)):
            vectorized = self._run_batch_vectorized(candidates, budget, stats)
            if vectorized is not None:
                return vectorized
        incumbent: Optional[List[float]] = [None] if self.prune else None
        bounds: Optional[List[float]] = None
        order = range(len(candidates))
        if self.prune:
            # Lower bounds are cheap; scheduling candidates by
            # ascending bound establishes a strong incumbent early and
            # lets everything past the cutoff be rejected wholesale.
            bounds = [self.lower_bound(d) for d in candidates]
            order = sorted(order, key=lambda i: (bounds[i], i))
        results: List[Optional[EvaluatedDesign]] = [None] * len(candidates)
        workers = self.max_workers or 0
        if workers > 1:
            def evaluate(i):
                return self._evaluate_one(
                    candidates[i],
                    budget,
                    stats,
                    incumbent,
                    bounds[i] if bounds else None,
                )
            # Pool threads have no trace context of their own; carry
            # the caller's (parented at this fan-out point) so every
            # per-candidate span still lands in the request's trace.
            # fork() is None when untraced — the common path stays
            # allocation-free.
            ctx = obs_trace.fork()
            if ctx is None:
                task = evaluate
            else:
                def task(i):
                    with obs_trace.activate(ctx):
                        return evaluate(i)
            with ThreadPoolExecutor(max_workers=workers) as pool:
                ordered = list(pool.map(task, order))
            for i, result in zip(order, ordered):
                results[i] = result
            return results
        for position, i in enumerate(order):
            if bounds is not None and incumbent is not None:
                with self._lock:
                    best = incumbent[0]
                if best is not None and bounds[i] >= best:
                    # Candidates are bound-sorted: everything from here
                    # on is provably no faster than the incumbent.
                    remaining = len(candidates) - position
                    with self._lock:
                        stats.candidates += remaining
                        stats.pruned += remaining
                    if self.trace is not None:
                        for j in list(order)[position:]:
                            self._emit(
                                CandidateTrace(
                                    candidates[j],
                                    "pruned",
                                    lower_bound=bounds[j],
                                )
                            )
                    break
            results[i] = self._evaluate_one(
                candidates[i],
                budget,
                stats,
                incumbent,
                bounds[i] if bounds else None,
            )
        return results

    # -- exploration (the optimizer entry point) -------------------------------

    def explore(
        self,
        candidates: Sequence[StencilDesign],
        budget: ResourceBudget,
    ) -> DSEResult:
        """Evaluate candidates against a budget; return the fastest.

        Without pruning this reproduces the historical serial
        ``Optimizer.explore`` bit for bit (same feasible set, same
        stable ordering); with pruning the best design and its
        predicted cycles are identical but provably-slower candidates
        are absent from ``DSEResult.candidates``.
        """
        candidates = list(candidates)
        stats = EvaluationStats()
        start = time.perf_counter()
        with obs.span(
            "dse.explore",
            candidates=len(candidates),
            budget=budget.label,
        ) as explore_span:
            results = self._run_batch(candidates, budget, stats)
            feasible = [r for r in results if r is not None]
            explore_span.set(feasible=len(feasible))
        stats.wall_time_s = time.perf_counter() - start
        self._absorb(stats)
        if obs.enabled():
            _log.debug("explore: %s", stats.summary())
        if not feasible:
            raise DesignSpaceError(
                f"No feasible design within budget {budget.label} "
                f"({len(candidates)} candidates evaluated)"
            )
        feasible.sort(key=lambda e: e.predicted_cycles)
        return DSEResult(
            best=feasible[0],
            evaluated=len(candidates),
            feasible=len(feasible),
            candidates=tuple(feasible),
            stats=stats,
        )

    # -- cache management ------------------------------------------------------

    def cache_size(self) -> int:
        """Number of memoized candidate evaluations."""
        with self._lock:
            return len(self._results)

    def clear_cache(self) -> None:
        """Drop every memoized evaluation (stats are preserved)."""
        with self._lock:
            self._results.clear()

    def reset_stats(self) -> None:
        """Zero the lifetime counters."""
        with self._lock:
            self.stats = EvaluationStats()
