"""Design-space definition and enumeration helpers.

The heterogeneous design space of Section 5.1: fused-iteration depth
``h`` and the balancing factors ``f_k_d`` (the balancing solver derives
the optimal factors for a given ``h`` directly, so the explorer
enumerates depths), plus tile-shape and parallelism candidates for the
baseline search of Section 5.4.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.errors import DesignSpaceError
from repro.stencil.spec import StencilSpec


def fused_depth_candidates(
    max_depth: int,
    total_iterations: int,
    dense_until: int = 32,
    sparse_step: int = 4,
) -> List[int]:
    """Candidate cone depths ``h``.

    Every depth up to ``dense_until`` is tried; beyond that, every
    ``sparse_step``-th depth plus every exact divisor of the iteration
    count (divisors avoid a padded final block).

    Args:
        max_depth: largest admissible depth (resource-limited).
        total_iterations: the workload's ``H``.
        dense_until: exhaustive range bound.
        sparse_step: stride beyond the exhaustive range.

    Returns:
        Sorted unique candidate depths, all within
        ``[1, min(max_depth, total_iterations)]``.
    """
    if max_depth < 1:
        raise DesignSpaceError(f"max_depth must be >= 1: {max_depth}")
    limit = min(max_depth, total_iterations)
    candidates = set(range(1, min(dense_until, limit) + 1))
    candidates.update(range(dense_until, limit + 1, sparse_step))
    # Divisors come in pairs (d, H // d) with the smaller member at
    # most sqrt(H), so one pass to the square root finds them all.
    for d in range(1, math.isqrt(total_iterations) + 1):
        if total_iterations % d == 0:
            if d <= limit:
                candidates.add(d)
            paired = total_iterations // d
            if paired <= limit:
                candidates.add(paired)
    candidates.add(limit)
    return sorted(candidates)


def parallelism_candidates(
    spec: StencilSpec, max_kernels: int = 16
) -> List[Tuple[int, ...]]:
    """Candidate tile-grid counts (``K`` decompositions).

    Per-dimension counts are powers of two (including 1), the total
    kernel count stays within ``max_kernels``, and every dimension's
    grid extent must admit at least a 2-cell tile per kernel.

    Returns:
        Count tuples sorted by total parallelism then lexicographically.
    """
    if max_kernels < 1:
        raise DesignSpaceError(f"max_kernels must be >= 1: {max_kernels}")
    per_dim: List[List[int]] = []
    for extent in spec.grid_shape:
        options = [
            k for k in _powers_of_two(1, max_kernels) if extent // k >= 2
        ]
        per_dim.append(options or [1])

    results: List[Tuple[int, ...]] = []

    def _recurse(prefix: Tuple[int, ...], remaining: int) -> None:
        d = len(prefix)
        if d == spec.ndim:
            results.append(prefix)
            return
        for k in per_dim[d]:
            if k <= remaining:
                _recurse(prefix + (k,), remaining // k)

    _recurse((), max_kernels)
    return sorted(results, key=lambda c: (math.prod(c), c))


def _powers_of_two(low: int, high: int) -> List[int]:
    values = []
    v = 1
    while v <= high:
        if v >= low:
            values.append(v)
        v *= 2
    return values


@dataclass(frozen=True)
class DesignSpace:
    """The searchable space for one stencil workload.

    Attributes:
        spec: the workload.
        counts: tiles per dimension (``K`` fixed, per Section 5.4).
        tile_candidates: per-dimension candidate tile extents for the
            uniform (baseline / pipe-shared) designs.
        max_fused_depth: upper bound on ``h``.
        unroll: processing elements per kernel.
    """

    spec: StencilSpec
    counts: Tuple[int, ...]
    tile_candidates: Tuple[Tuple[int, ...], ...]
    max_fused_depth: int
    unroll: int = 1

    def __post_init__(self) -> None:
        if len(self.counts) != self.spec.ndim:
            raise DesignSpaceError(
                f"counts {self.counts} must have rank {self.spec.ndim}"
            )
        if len(self.tile_candidates) != self.spec.ndim:
            raise DesignSpaceError(
                f"tile_candidates must have rank {self.spec.ndim}"
            )
        for d, options in enumerate(self.tile_candidates):
            if not options:
                raise DesignSpaceError(
                    f"No tile candidates in dimension {d}"
                )

    @classmethod
    def default(
        cls,
        spec: StencilSpec,
        counts: Sequence[int],
        unroll: int = 1,
        max_fused_depth: Optional[int] = None,
        min_tile: int = 4,
        max_tile: int = 512,
    ) -> "DesignSpace":
        """Power-of-two tile extents that keep regions within the grid."""
        candidates: List[Tuple[int, ...]] = []
        for d in range(spec.ndim):
            cap = min(max_tile, spec.grid_shape[d] // counts[d])
            options = [
                v
                for v in _powers_of_two(min_tile, cap)
                if spec.grid_shape[d] % (v * counts[d]) == 0
            ]
            if not options:
                raise DesignSpaceError(
                    f"No feasible tile extent in dimension {d} for grid "
                    f"{spec.grid_shape} with counts {counts}"
                )
            candidates.append(tuple(options))
        return cls(
            spec=spec,
            counts=tuple(int(c) for c in counts),
            tile_candidates=tuple(candidates),
            max_fused_depth=(
                max_fused_depth
                if max_fused_depth is not None
                else spec.iterations
            ),
            unroll=unroll,
        )

    def tile_shapes(self) -> Iterator[Tuple[int, ...]]:
        """Cartesian product of the per-dimension tile candidates.

        Yields in lexicographic order with the last dimension varying
        fastest, exactly as ``itertools.product`` enumerates.
        """
        return itertools.product(*self.tile_candidates)

    def depth_candidates(self) -> List[int]:
        """Candidate ``h`` values for this space."""
        return fused_depth_candidates(
            self.max_fused_depth, self.spec.iterations
        )

    @property
    def size(self) -> int:
        """Exact number of (tile, h) points :meth:`tile_shapes` x
        :meth:`depth_candidates` enumerate."""
        tiles = math.prod(len(c) for c in self.tile_candidates)
        return tiles * len(self.depth_candidates())

    @property
    def size_estimate(self) -> int:
        """Alias of :attr:`size` (the historical name; the count is
        exact, not an estimate)."""
        return self.size
