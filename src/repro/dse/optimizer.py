"""The performance optimizer (Section 5.1).

Enumerates candidate designs, evaluates each with the analytical model
(that is the point of having a model: the search never synthesizes or
simulates), discards candidates that exceed the resource budget, and
returns the fastest feasible design.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.dse.constraints import ResourceBudget
from repro.dse.space import DesignSpace, fused_depth_candidates
from repro.errors import DesignSpaceError
from repro.fpga.estimator import DesignResources, ResourceEstimator
from repro.fpga.resources import FpgaDevice, VIRTEX7_690T
from repro.model.predictor import Fidelity, PerformanceModel
from repro.opencl.platform import ADM_PCIE_7V3, BoardSpec
from repro.stencil.spec import StencilSpec
from repro.tiling.baseline import make_baseline_design
from repro.tiling.design import StencilDesign
from repro.tiling.heterogeneous import make_heterogeneous_design
from repro.tiling.pipeshared import make_pipe_shared_design


@dataclass(frozen=True)
class EvaluatedDesign:
    """One candidate with its predicted latency and resources."""

    design: StencilDesign
    predicted_cycles: float
    resources: DesignResources


@dataclass(frozen=True)
class DSEResult:
    """Outcome of one exploration run."""

    best: EvaluatedDesign
    evaluated: int
    feasible: int
    #: All feasible candidates, fastest first (for Pareto analysis).
    candidates: Tuple[EvaluatedDesign, ...]


class Optimizer:
    """Model-driven design-space explorer."""

    def __init__(
        self,
        board: BoardSpec = ADM_PCIE_7V3,
        fidelity: Fidelity = Fidelity.REFINED,
        estimator: Optional[ResourceEstimator] = None,
    ):
        self.board = board
        self.model = PerformanceModel(board, fidelity)
        self.estimator = estimator or ResourceEstimator()

    def explore(
        self,
        candidates: Sequence[StencilDesign],
        budget: ResourceBudget,
    ) -> DSEResult:
        """Evaluate candidates against a budget; return the fastest."""
        evaluated = 0
        feasible: List[EvaluatedDesign] = []
        for design in candidates:
            evaluated += 1
            resources = self.estimator.estimate(design)
            if not resources.total.fits_within(budget.limit):
                continue
            cycles = self.model.predict_cycles(design)
            feasible.append(EvaluatedDesign(design, cycles, resources))
        if not feasible:
            raise DesignSpaceError(
                f"No feasible design within budget {budget.label} "
                f"({evaluated} candidates evaluated)"
            )
        feasible.sort(key=lambda e: e.predicted_cycles)
        return DSEResult(
            best=feasible[0],
            evaluated=evaluated,
            feasible=len(feasible),
            candidates=tuple(feasible),
        )


def _baseline_candidates(space: DesignSpace) -> List[StencilDesign]:
    candidates: List[StencilDesign] = []
    for tile_shape in space.tile_shapes():
        for h in space.depth_candidates():
            candidates.append(
                make_baseline_design(
                    space.spec, tile_shape, space.counts, h, space.unroll
                )
            )
    return candidates


def optimize_baseline(
    spec: StencilSpec,
    counts: Sequence[int],
    unroll: int = 1,
    device: FpgaDevice = VIRTEX7_690T,
    board: BoardSpec = ADM_PCIE_7V3,
    space: Optional[DesignSpace] = None,
    max_fused_depth: int = 256,
) -> DSEResult:
    """Best baseline (overlapped-tiling) design on a device.

    Mirrors the paper's baseline setup: explore iteration-fusion depth
    and tile size at fixed parallelism under the device budget.
    """
    if space is None:
        space = DesignSpace.default(
            spec, counts, unroll, max_fused_depth=max_fused_depth
        )
    optimizer = Optimizer(board)
    return optimizer.explore(
        _baseline_candidates(space), ResourceBudget.from_device(device)
    )


def optimize_pipe_shared(
    spec: StencilSpec,
    baseline: StencilDesign,
    board: BoardSpec = ADM_PCIE_7V3,
    estimator: Optional[ResourceEstimator] = None,
) -> DSEResult:
    """Best equal-tile pipe-shared design within the baseline's budget.

    Parallelism, tile shape, and region layout stay equal to the
    baseline (Section 5.4); only the fusion depth is re-explored — the
    BRAM freed by eliminating overlap storage admits deeper cones.
    """
    budget = ResourceBudget.from_design(baseline, estimator)
    slowest = baseline.slowest_tile()
    depths = fused_depth_candidates(
        min(4 * baseline.fused_depth + 64, spec.iterations),
        spec.iterations,
    )
    candidates = [
        make_pipe_shared_design(
            spec,
            slowest.shape,
            baseline.tile_grid.counts,
            h,
            baseline.unroll,
        )
        for h in depths
    ]
    return Optimizer(board, estimator=estimator).explore(candidates, budget)


def optimize_full(
    spec: StencilSpec,
    device: FpgaDevice = VIRTEX7_690T,
    board: BoardSpec = ADM_PCIE_7V3,
    unroll: int = 1,
    max_kernels: int = 16,
    max_fused_depth: int = 64,
    max_tile_options: int = 3,
) -> dict:
    """Coarse global search over parallelism, tile shape, and depth.

    Explores, for each design kind, the joint space the paper's
    baseline setup describes ("iteration fusion depth, tile size, and
    the number of simultaneous executing tiles") under the *device*
    budget, and returns the best design per kind.

    The space is pruned for tractability: power-of-two counts, the
    ``max_tile_options`` largest feasible power-of-two tile extents per
    dimension, and a thinned depth ladder.

    Returns:
        ``{"baseline": DSEResult, "pipe-shared": DSEResult,
        "heterogeneous": DSEResult}``.
    """
    from repro.dse.space import parallelism_candidates

    budget = ResourceBudget.from_device(device)
    optimizer = Optimizer(board)
    depth_ladder = [
        h
        for h in fused_depth_candidates(
            max_fused_depth, spec.iterations, dense_until=8, sparse_step=8
        )
    ]
    baseline_candidates: List[StencilDesign] = []
    pipe_candidates: List[StencilDesign] = []
    hetero_candidates: List[StencilDesign] = []
    for counts in parallelism_candidates(spec, max_kernels):
        try:
            space = DesignSpace.default(
                spec, counts, unroll, max_fused_depth=max_fused_depth
            )
        except DesignSpaceError:
            continue
        tile_options = [
            tuple(sorted(options)[-max_tile_options:])
            for options in space.tile_candidates
        ]
        pruned = DesignSpace(
            spec=spec,
            counts=space.counts,
            tile_candidates=tuple(tile_options),
            max_fused_depth=max_fused_depth,
            unroll=unroll,
        )
        for tile_shape in pruned.tile_shapes():
            region = tuple(
                t * c for t, c in zip(tile_shape, counts)
            )
            for h in depth_ladder:
                baseline_candidates.append(
                    make_baseline_design(spec, tile_shape, counts, h, unroll)
                )
                pipe_candidates.append(
                    make_pipe_shared_design(
                        spec, tile_shape, counts, h, unroll
                    )
                )
                try:
                    hetero_candidates.append(
                        make_heterogeneous_design(
                            spec, region, counts, h, unroll
                        )
                    )
                except Exception:
                    continue
    return {
        "baseline": optimizer.explore(baseline_candidates, budget),
        "pipe-shared": optimizer.explore(pipe_candidates, budget),
        "heterogeneous": optimizer.explore(hetero_candidates, budget),
    }


def optimize_heterogeneous(
    spec: StencilSpec,
    baseline: StencilDesign,
    board: BoardSpec = ADM_PCIE_7V3,
    estimator: Optional[ResourceEstimator] = None,
) -> DSEResult:
    """Best heterogeneous design within the baseline's budget.

    For each candidate fusion depth the balancing solver derives the
    optimal tile extents (the paper's ``f_k_d`` enumeration collapses
    to this closed form), the region layout matching the baseline's.
    """
    budget = ResourceBudget.from_design(baseline, estimator)
    region = baseline.tile_grid.region_shape
    depths = fused_depth_candidates(
        min(4 * baseline.fused_depth + 64, spec.iterations),
        spec.iterations,
    )
    candidates: List[StencilDesign] = []
    for h in depths:
        try:
            candidates.append(
                make_heterogeneous_design(
                    spec,
                    region,
                    baseline.tile_grid.counts,
                    h,
                    baseline.unroll,
                )
            )
        except DesignSpaceError:  # pragma: no cover - defensive
            continue
    return Optimizer(board, estimator=estimator).explore(candidates, budget)
