"""The performance optimizer (Section 5.1).

Enumerates candidate designs, scores each through the shared
:class:`~repro.dse.evaluator.CandidateEvaluator` engine (that is the
point of having a model: the search never synthesizes or simulates),
discards candidates that exceed the resource budget, and returns the
fastest feasible design.

All four ``optimize_*`` entry points accept an optional ``evaluator``
so callers can share one engine — and therefore its signature caches —
across searches; each also accepts ``max_workers``/``prune`` knobs that
are forwarded to a freshly built engine when none is supplied.

Candidate enumeration is *streaming*: every entry point builds a lazy
generator and hands it to a :class:`~repro.dse.search.SearchDriver`.
Without an explicit ``driver`` the passthrough driver reproduces the
historical exhaustive exploration bit for bit; passing a tiered driver
(``SearchDriver(chunk_size=..., screen=...)``) turns the same search
into a chunked screen-then-refine sweep with O(chunk) candidate
residency and an optional resume checkpoint (see ``docs/SEARCH.md``).
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence

from repro.dse.constraints import ResourceBudget
from repro.dse.evaluator import (
    CandidateEvaluator,
    DSEResult,
    EvaluatedDesign,
    EvaluationStats,
)
from repro.dse.search import SearchDriver
from repro.dse.space import DesignSpace, fused_depth_candidates
from repro.errors import DesignSpaceError
from repro.fpga.estimator import ResourceEstimator
from repro.fpga.resources import FpgaDevice, VIRTEX7_690T
from repro.model.predictor import Fidelity
from repro.opencl.platform import ADM_PCIE_7V3, BoardSpec
from repro.stencil.spec import StencilSpec
from repro.tiling.baseline import make_baseline_design
from repro.tiling.design import DesignKind, StencilDesign
from repro.tiling.heterogeneous import make_heterogeneous_design
from repro.tiling.pipeshared import make_pipe_shared_design

__all__ = [
    "DSEResult",
    "EvaluatedDesign",
    "EvaluationStats",
    "Optimizer",
    "baseline_candidates",
    "full_space_candidates",
    "optimize_baseline",
    "optimize_full",
    "optimize_heterogeneous",
    "optimize_pipe_shared",
]


class Optimizer:
    """Model-driven design-space explorer.

    A thin facade over :class:`CandidateEvaluator` kept for backward
    compatibility; ``explore`` delegates to the engine.
    """

    def __init__(
        self,
        board: BoardSpec = ADM_PCIE_7V3,
        fidelity: Fidelity = Fidelity.REFINED,
        estimator: Optional[ResourceEstimator] = None,
        max_workers: Optional[int] = None,
        prune: bool = False,
    ):
        self.evaluator = CandidateEvaluator(
            board=board,
            fidelity=fidelity,
            estimator=estimator,
            max_workers=max_workers,
            prune=prune,
        )
        self.board = board
        self.model = self.evaluator.model
        self.estimator = self.evaluator.estimator

    def explore(
        self,
        candidates: Sequence[StencilDesign],
        budget: ResourceBudget,
    ) -> DSEResult:
        """Evaluate candidates against a budget; return the fastest."""
        return self.evaluator.explore(candidates, budget)


def _resolve_evaluator(
    evaluator: Optional[CandidateEvaluator],
    board: BoardSpec,
    estimator: Optional[ResourceEstimator] = None,
    max_workers: Optional[int] = None,
    prune: bool = False,
    driver: Optional[SearchDriver] = None,
) -> CandidateEvaluator:
    if driver is not None:
        return driver.evaluator
    if evaluator is not None:
        return evaluator
    return CandidateEvaluator(
        board=board,
        estimator=estimator,
        max_workers=max_workers,
        prune=prune,
    )


def _run_search(
    engine: CandidateEvaluator,
    driver: Optional[SearchDriver],
    candidates: Iterator[StencilDesign],
    budget: ResourceBudget,
    entry: str,
    identity: Optional[dict] = None,
) -> DSEResult:
    """Route one search through a driver (a passthrough one by default).

    The passthrough driver delegates to ``engine.explore``, which
    keeps the default path bit-identical to the historical
    materialized exploration.  With a checkpointing driver, the
    checkpoint key fingerprints the candidate stream (entry point,
    spec, and search knobs), so several searches can share one
    checkpoint file without colliding.
    """
    if driver is None:
        driver = SearchDriver(evaluator=engine, chunk_size=None)
    key = None
    if driver.checkpoint is not None:
        from repro.store.backing import digest

        prefix = driver.search_key or "search"
        key = f"{prefix}:{entry}:{digest(identity or entry)[:12]}"
    return driver.run(candidates, budget, key=key)


def baseline_candidates(space: DesignSpace) -> Iterator[StencilDesign]:
    """Lazily enumerate a space's baseline designs (tile-major order)."""
    for tile_shape in space.tile_shapes():
        for h in space.depth_candidates():
            yield make_baseline_design(
                space.spec, tile_shape, space.counts, h, space.unroll
            )


def optimize_baseline(
    spec: StencilSpec,
    counts: Sequence[int],
    unroll: int = 1,
    device: FpgaDevice = VIRTEX7_690T,
    board: BoardSpec = ADM_PCIE_7V3,
    space: Optional[DesignSpace] = None,
    max_fused_depth: int = 256,
    evaluator: Optional[CandidateEvaluator] = None,
    driver: Optional[SearchDriver] = None,
) -> DSEResult:
    """Best baseline (overlapped-tiling) design on a device.

    Mirrors the paper's baseline setup: explore iteration-fusion depth
    and tile size at fixed parallelism under the device budget.
    """
    if space is None:
        space = DesignSpace.default(
            spec, counts, unroll, max_fused_depth=max_fused_depth
        )
    engine = _resolve_evaluator(evaluator, board, driver=driver)
    return _run_search(
        engine,
        driver,
        baseline_candidates(space),
        ResourceBudget.from_device(device),
        entry="baseline",
        identity={
            "spec": spec.signature(),
            "counts": space.counts,
            "tiles": space.tile_candidates,
            "max_fused_depth": space.max_fused_depth,
            "unroll": space.unroll,
        },
    )


def optimize_pipe_shared(
    spec: StencilSpec,
    baseline: StencilDesign,
    board: BoardSpec = ADM_PCIE_7V3,
    estimator: Optional[ResourceEstimator] = None,
    evaluator: Optional[CandidateEvaluator] = None,
    driver: Optional[SearchDriver] = None,
) -> DSEResult:
    """Best equal-tile pipe-shared design within the baseline's budget.

    Parallelism, tile shape, and region layout stay equal to the
    baseline (Section 5.4); only the fusion depth is re-explored — the
    BRAM freed by eliminating overlap storage admits deeper cones.
    """
    engine = _resolve_evaluator(evaluator, board, estimator, driver=driver)
    budget = ResourceBudget.from_design(baseline, engine.estimator)
    slowest = baseline.slowest_tile()
    depths = fused_depth_candidates(
        min(4 * baseline.fused_depth + 64, spec.iterations),
        spec.iterations,
    )
    candidates = (
        make_pipe_shared_design(
            spec,
            slowest.shape,
            baseline.tile_grid.counts,
            h,
            baseline.unroll,
        )
        for h in depths
    )
    return _run_search(
        engine,
        driver,
        candidates,
        budget,
        entry="pipe-shared",
        identity={
            "spec": spec.signature(),
            "baseline": baseline.signature(),
        },
    )


def full_space_candidates(
    spec: StencilSpec,
    kind: DesignKind,
    unroll: int = 1,
    max_kernels: int = 16,
    max_fused_depth: int = 64,
    max_tile_options: int = 3,
    dense_until: int = 8,
    sparse_step: int = 8,
) -> Iterator[StencilDesign]:
    """Lazily enumerate one design kind over the joint full space.

    One generator serves all three of :func:`optimize_full`'s sweeps
    (parallelism x tile shape x depth, identical nesting order per
    kind), so the candidate-construction loop exists once and no
    design-kind list is ever materialized.  Heterogeneous layouts the
    balancing solver rejects are skipped, as before.
    """
    from repro.dse.space import parallelism_candidates

    depth_ladder = fused_depth_candidates(
        max_fused_depth,
        spec.iterations,
        dense_until=dense_until,
        sparse_step=sparse_step,
    )
    for counts in parallelism_candidates(spec, max_kernels):
        try:
            space = DesignSpace.default(
                spec, counts, unroll, max_fused_depth=max_fused_depth
            )
        except DesignSpaceError:
            continue
        tile_options = [
            tuple(sorted(options)[-max_tile_options:])
            for options in space.tile_candidates
        ]
        pruned = DesignSpace(
            spec=spec,
            counts=space.counts,
            tile_candidates=tuple(tile_options),
            max_fused_depth=max_fused_depth,
            unroll=unroll,
        )
        for tile_shape in pruned.tile_shapes():
            for h in depth_ladder:
                if kind is DesignKind.BASELINE:
                    yield make_baseline_design(
                        spec, tile_shape, counts, h, unroll
                    )
                elif kind is DesignKind.PIPE_SHARED:
                    yield make_pipe_shared_design(
                        spec, tile_shape, counts, h, unroll
                    )
                else:
                    region = tuple(
                        t * c for t, c in zip(tile_shape, counts)
                    )
                    try:
                        yield make_heterogeneous_design(
                            spec, region, counts, h, unroll
                        )
                    except DesignSpaceError:
                        continue


def optimize_full(
    spec: StencilSpec,
    device: FpgaDevice = VIRTEX7_690T,
    board: BoardSpec = ADM_PCIE_7V3,
    unroll: int = 1,
    max_kernels: int = 16,
    max_fused_depth: int = 64,
    max_tile_options: int = 3,
    max_workers: Optional[int] = None,
    prune: bool = False,
    evaluator: Optional[CandidateEvaluator] = None,
    driver: Optional[SearchDriver] = None,
) -> dict:
    """Coarse global search over parallelism, tile shape, and depth.

    Explores, for each design kind, the joint space the paper's
    baseline setup describes ("iteration fusion depth, tile size, and
    the number of simultaneous executing tiles") under the *device*
    budget, and returns the best design per kind.

    The space is pruned for tractability: power-of-two counts, the
    ``max_tile_options`` largest feasible power-of-two tile extents per
    dimension, and a thinned depth ladder.  One evaluator instance
    scores all three sweeps, so pipeline reports and recurring designs
    are shared across them; pass ``max_workers``/``prune=True`` for the
    engine's parallel and bound-pruned modes (pruning preserves the
    best design but drops provably-slower candidates from the result's
    candidate lists), or a tiered ``driver`` to stream all three
    sweeps chunk by chunk.

    Returns:
        ``{"baseline": DSEResult, "pipe-shared": DSEResult,
        "heterogeneous": DSEResult}``.
    """
    budget = ResourceBudget.from_device(device)
    engine = _resolve_evaluator(
        evaluator, board, max_workers=max_workers, prune=prune,
        driver=driver,
    )
    knobs = {
        "spec": spec.signature(),
        "unroll": unroll,
        "max_kernels": max_kernels,
        "max_fused_depth": max_fused_depth,
        "max_tile_options": max_tile_options,
        "device": device.name,
    }
    results = {}
    for label, kind in (
        ("baseline", DesignKind.BASELINE),
        ("pipe-shared", DesignKind.PIPE_SHARED),
        ("heterogeneous", DesignKind.HETEROGENEOUS),
    ):
        results[label] = _run_search(
            engine,
            driver,
            full_space_candidates(
                spec,
                kind,
                unroll=unroll,
                max_kernels=max_kernels,
                max_fused_depth=max_fused_depth,
                max_tile_options=max_tile_options,
            ),
            budget,
            entry=f"full:{label}",
            identity=dict(knobs, kind=label),
        )
    return results


def optimize_heterogeneous(
    spec: StencilSpec,
    baseline: StencilDesign,
    board: BoardSpec = ADM_PCIE_7V3,
    estimator: Optional[ResourceEstimator] = None,
    evaluator: Optional[CandidateEvaluator] = None,
    driver: Optional[SearchDriver] = None,
) -> DSEResult:
    """Best heterogeneous design within the baseline's budget.

    For each candidate fusion depth the balancing solver derives the
    optimal tile extents (the paper's ``f_k_d`` enumeration collapses
    to this closed form), the region layout matching the baseline's.
    """
    engine = _resolve_evaluator(evaluator, board, estimator, driver=driver)
    budget = ResourceBudget.from_design(baseline, engine.estimator)
    region = baseline.tile_grid.region_shape
    depths = fused_depth_candidates(
        min(4 * baseline.fused_depth + 64, spec.iterations),
        spec.iterations,
    )

    def candidates() -> Iterator[StencilDesign]:
        for h in depths:
            try:
                yield make_heterogeneous_design(
                    spec,
                    region,
                    baseline.tile_grid.counts,
                    h,
                    baseline.unroll,
                )
            except DesignSpaceError:  # pragma: no cover - defensive
                continue

    return _run_search(
        engine,
        driver,
        candidates(),
        budget,
        entry="heterogeneous",
        identity={
            "spec": spec.signature(),
            "baseline": baseline.signature(),
        },
    )
