"""Resource-budget constraints for design-space exploration.

Two budget styles appear in the paper's evaluation:

- the *device* budget — a design must fit the FPGA (Section 5.3);
- the *baseline* budget — the proposed designs are constrained by the
  hardware size of the baseline so resource efficiency is demonstrated
  (Section 5.4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.fpga.estimator import ResourceEstimator
from repro.fpga.resources import FpgaDevice, ResourceVector
from repro.tiling.design import StencilDesign


@dataclass(frozen=True)
class ResourceBudget:
    """A resource ceiling a candidate design must respect."""

    limit: ResourceVector
    label: str = "budget"

    @classmethod
    def from_device(
        cls, device: FpgaDevice, margin: float = 0.9
    ) -> "ResourceBudget":
        """Budget = device capacity derated by a placement margin."""
        return cls(limit=device.capacity.scaled(margin), label=device.name)

    @classmethod
    def from_design(
        cls,
        design: StencilDesign,
        estimator: Optional[ResourceEstimator] = None,
        slack: float = 1.05,
    ) -> "ResourceBudget":
        """Budget = a reference design's estimated utilization.

        Args:
            slack: multiplicative tolerance.  BRAM packing is
                block-granular, so a literal ceiling would reject
                designs that genuinely occupy the same blocks; 5 %
                mirrors normal placement headroom.
        """
        estimator = estimator or ResourceEstimator()
        usage = estimator.estimate(design).total.scaled(slack)
        return cls(limit=usage, label=f"<= {design.kind}")

    def admits(
        self,
        design: StencilDesign,
        estimator: Optional[ResourceEstimator] = None,
    ) -> bool:
        """True when the design's estimated usage fits the budget."""
        estimator = estimator or ResourceEstimator()
        return estimator.estimate(design).total.fits_within(self.limit)
