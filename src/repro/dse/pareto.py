"""Performance/resource Pareto-frontier utilities.

Scoring raw designs for a frontier goes through the shared
:class:`~repro.dse.evaluator.CandidateEvaluator` engine
(:func:`pareto_explore`), so frontier construction reuses the same
signature caches as the ``optimize_*`` searches instead of carrying its
own evaluation loop.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, List, Optional, Sequence, Tuple

from repro.dse.constraints import ResourceBudget
from repro.dse.evaluator import CandidateEvaluator, EvaluatedDesign
from repro.store.backing import BackingStore
from repro.tiling.design import StencilDesign


def _dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """True when ``a`` is no worse in every objective and better in one."""
    return all(x <= y for x, y in zip(a, b)) and any(
        x < y for x, y in zip(a, b)
    )


def _default_objectives(e: EvaluatedDesign) -> Tuple[float, ...]:
    """Latency vs BRAM — the trade-off the paper's Table 3 stresses."""
    return (e.predicted_cycles, float(e.resources.total.bram18))


def pareto_front(
    candidates: Sequence[EvaluatedDesign],
    objectives: Optional[
        Callable[[EvaluatedDesign], Tuple[float, ...]]
    ] = None,
) -> List[EvaluatedDesign]:
    """Non-dominated candidates (all objectives minimized).

    Each objective tuple is computed once, and candidates with exactly
    equal tuples are deduplicated before the dominance scan (keeping
    the design with the lowest canonical signature, so the pick is
    deterministic regardless of input order) — the returned frontier
    never contains two entries with the same objectives.

    Args:
        candidates: evaluated designs.
        objectives: maps a candidate to its objective tuple; defaults
            to ``(predicted cycles, BRAM blocks)`` — the trade-off the
            paper's Table 3 stresses.

    Returns:
        The Pareto-optimal subset, sorted by the first objective.
    """
    if objectives is None:
        objectives = _default_objectives
    best: "OrderedDict[Tuple[float, ...], EvaluatedDesign]" = OrderedDict()
    for candidate in candidates:
        values = tuple(objectives(candidate))
        kept = best.get(values)
        if kept is None or repr(candidate.design.signature()) < repr(
            kept.design.signature()
        ):
            best[values] = candidate
    points = list(best.items())
    front = [
        (values, candidate)
        for values, candidate in points
        if not any(
            _dominates(other_values, values)
            for other_values, _ in points
        )
    ]
    front.sort(key=lambda pair: pair[0][0])
    return [candidate for _values, candidate in front]


def pareto_explore(
    designs: Sequence[StencilDesign],
    budget: ResourceBudget,
    evaluator: Optional[CandidateEvaluator] = None,
    objectives: Optional[
        Callable[[EvaluatedDesign], Tuple[float, ...]]
    ] = None,
    store: Optional[BackingStore] = None,
) -> List[EvaluatedDesign]:
    """Evaluate raw designs through the engine and return their front.

    Args:
        designs: unscored candidate designs.
        budget: resource ceiling; infeasible designs are excluded.
        evaluator: shared engine (a serial one is built when omitted).
        objectives: forwarded to :func:`pareto_front`.
        store: persistent backing store for the freshly-built engine —
            frontier scoring warm-starts from (and writes through to)
            disk.  Ignored when ``evaluator`` is supplied; attach the
            store to that evaluator instead.

    Returns:
        The Pareto-optimal subset of the feasible designs.
    """
    engine = evaluator or CandidateEvaluator(store=store)
    scored = [
        result
        for result in engine.evaluate_batch(designs, budget)
        if result is not None
    ]
    return pareto_front(scored, objectives)
