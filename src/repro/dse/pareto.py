"""Performance/resource Pareto-frontier utilities.

Scoring raw designs for a frontier goes through the shared
:class:`~repro.dse.evaluator.CandidateEvaluator` engine
(:func:`pareto_explore`), so frontier construction reuses the same
signature caches as the ``optimize_*`` searches instead of carrying its
own evaluation loop.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING, Callable, List, Optional, Sequence, Tuple

from repro.dse.constraints import ResourceBudget
from repro.dse.evaluator import CandidateEvaluator, EvaluatedDesign
from repro.errors import DesignSpaceError
from repro.store.backing import BackingStore
from repro.tiling.design import StencilDesign

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.dse.search import SearchDriver


def _dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """True when ``a`` is no worse in every objective and better in one."""
    return all(x <= y for x, y in zip(a, b)) and any(
        x < y for x, y in zip(a, b)
    )


def _default_objectives(e: EvaluatedDesign) -> Tuple[float, ...]:
    """Latency vs BRAM — the trade-off the paper's Table 3 stresses."""
    return (e.predicted_cycles, float(e.resources.total.bram18))


def pareto_front(
    candidates: Sequence[EvaluatedDesign],
    objectives: Optional[
        Callable[[EvaluatedDesign], Tuple[float, ...]]
    ] = None,
) -> List[EvaluatedDesign]:
    """Non-dominated candidates (all objectives minimized).

    Each objective tuple is computed once, and candidates with exactly
    equal tuples are deduplicated before the dominance scan (keeping
    the design with the lowest canonical signature, so the pick is
    deterministic regardless of input order) — the returned frontier
    never contains two entries with the same objectives.

    Args:
        candidates: evaluated designs.
        objectives: maps a candidate to its objective tuple; defaults
            to ``(predicted cycles, BRAM blocks)`` — the trade-off the
            paper's Table 3 stresses.

    Returns:
        The Pareto-optimal subset, sorted by the first objective.
    """
    if objectives is None:
        objectives = _default_objectives
    best: "OrderedDict[Tuple[float, ...], EvaluatedDesign]" = OrderedDict()
    for candidate in candidates:
        values = tuple(objectives(candidate))
        kept = best.get(values)
        if kept is None or repr(candidate.design.signature()) < repr(
            kept.design.signature()
        ):
            best[values] = candidate
    points = list(best.items())
    front = [
        (values, candidate)
        for values, candidate in points
        if not any(
            _dominates(other_values, values)
            for other_values, _ in points
        )
    ]
    front.sort(key=lambda pair: pair[0][0])
    return [candidate for _values, candidate in front]


def pareto_explore(
    designs: Sequence[StencilDesign],
    budget: ResourceBudget,
    evaluator: Optional[CandidateEvaluator] = None,
    objectives: Optional[
        Callable[[EvaluatedDesign], Tuple[float, ...]]
    ] = None,
    store: Optional[BackingStore] = None,
    driver: Optional["SearchDriver"] = None,
) -> List[EvaluatedDesign]:
    """Evaluate raw designs through the engine and return their front.

    Args:
        designs: unscored candidate designs (any iterable; with a
            tiered ``driver`` the stream is consumed chunk by chunk
            and never materialized).
        budget: resource ceiling; infeasible designs are excluded.
        evaluator: shared engine (a serial one is built when omitted).
        objectives: forwarded to :func:`pareto_front`.
        store: persistent backing store for the freshly-built engine —
            frontier scoring warm-starts from (and writes through to)
            disk.  Ignored when ``evaluator`` is supplied; attach the
            store to that evaluator instead.
        driver: optional :class:`~repro.dse.search.SearchDriver`.  A
            tiered driver must screen in ``"pareto"`` mode (or not at
            all) for the default objectives — the latency screen
            discards low-BRAM points the frontier needs; custom
            objectives require screening off, since the Tier-0 bound
            speaks only for the (cycles, BRAM) pair.

    Returns:
        The Pareto-optimal subset of the feasible designs.
    """
    if driver is not None and driver.chunk_size is not None:
        if objectives is not None and driver.screen is not None:
            raise DesignSpaceError(
                "Custom Pareto objectives require a non-screening "
                "driver (screen=None): the Tier-0 bound is admissible "
                "only for the (cycles, BRAM) objectives"
            )
        if objectives is None and driver.screen == "latency":
            raise DesignSpaceError(
                "pareto_explore needs a driver with screen='pareto' "
                "(or None); the latency screen drops frontier points"
            )
        if objectives is not None:
            # Chunked exhaustive scoring with an incremental front
            # under the caller's objectives (dominance is transitive
            # and the dedup keeps the lowest signature, so the
            # incremental front equals the one-shot construction).
            import itertools

            front: List[EvaluatedDesign] = []
            stream = iter(designs)
            while True:
                chunk = list(itertools.islice(stream, driver.chunk_size))
                if not chunk:
                    break
                scored = [
                    result
                    for result in driver.evaluator.evaluate_batch(
                        chunk, budget
                    )
                    if result is not None
                ]
                if scored:
                    front = pareto_front(front + scored, objectives)
            return front
        try:
            result = driver.run(designs, budget)
        except DesignSpaceError as exc:
            if "No feasible design" in str(exc):
                return []
            raise
        return list(result.frontier)
    engine = (
        driver.evaluator
        if driver is not None
        else evaluator or CandidateEvaluator(store=store)
    )
    scored = [
        result
        for result in engine.evaluate_batch(list(designs), budget)
        if result is not None
    ]
    return pareto_front(scored, objectives)
