"""Performance/resource Pareto-frontier utilities."""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple

from repro.dse.optimizer import EvaluatedDesign


def _dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """True when ``a`` is no worse in every objective and better in one."""
    return all(x <= y for x, y in zip(a, b)) and any(
        x < y for x, y in zip(a, b)
    )


def pareto_front(
    candidates: Sequence[EvaluatedDesign],
    objectives: Callable[[EvaluatedDesign], Tuple[float, ...]] = None,
) -> List[EvaluatedDesign]:
    """Non-dominated candidates (all objectives minimized).

    Args:
        candidates: evaluated designs.
        objectives: maps a candidate to its objective tuple; defaults
            to ``(predicted cycles, BRAM blocks)`` — the trade-off the
            paper's Table 3 stresses.

    Returns:
        The Pareto-optimal subset, sorted by the first objective.
    """
    if objectives is None:
        objectives = lambda e: (
            e.predicted_cycles,
            float(e.resources.total.bram18),
        )
    points = [(objectives(c), c) for c in candidates]
    front = [
        candidate
        for values, candidate in points
        if not any(
            _dominates(other_values, values)
            for other_values, _ in points
            if other_values != values
        )
    ]
    front.sort(key=lambda c: objectives(c)[0])
    return front
