"""Design-space exploration: the paper's performance optimizer."""

from repro.dse.space import (
    DesignSpace,
    fused_depth_candidates,
    parallelism_candidates,
)
from repro.dse.constraints import ResourceBudget
from repro.dse.evaluator import (
    CandidateEvaluator,
    CandidateTrace,
    DSEResult,
    EvaluatedDesign,
    EvaluationStats,
)
from repro.dse.optimizer import (
    Optimizer,
    baseline_candidates,
    full_space_candidates,
    optimize_baseline,
    optimize_full,
    optimize_heterogeneous,
    optimize_pipe_shared,
)
from repro.dse.pareto import pareto_explore, pareto_front
from repro.dse.search import (
    SCREEN_MODES,
    SearchDriver,
    SearchFrontier,
    SearchReport,
    merge_results,
)
from repro.dse.sensitivity import (
    SensitivityAnalyzer,
    SweepPoint,
    SweepResult,
)

__all__ = [
    "DesignSpace",
    "fused_depth_candidates",
    "parallelism_candidates",
    "ResourceBudget",
    "CandidateEvaluator",
    "CandidateTrace",
    "DSEResult",
    "EvaluatedDesign",
    "EvaluationStats",
    "Optimizer",
    "baseline_candidates",
    "full_space_candidates",
    "SCREEN_MODES",
    "SearchDriver",
    "SearchFrontier",
    "SearchReport",
    "merge_results",
    "optimize_baseline",
    "optimize_full",
    "optimize_heterogeneous",
    "optimize_pipe_shared",
    "pareto_explore",
    "pareto_front",
    "SensitivityAnalyzer",
    "SweepPoint",
    "SweepResult",
]
