"""Design-space exploration: the paper's performance optimizer."""

from repro.dse.space import (
    DesignSpace,
    fused_depth_candidates,
    parallelism_candidates,
)
from repro.dse.constraints import ResourceBudget
from repro.dse.optimizer import (
    DSEResult,
    EvaluatedDesign,
    Optimizer,
    optimize_baseline,
    optimize_full,
    optimize_heterogeneous,
    optimize_pipe_shared,
)
from repro.dse.pareto import pareto_front
from repro.dse.sensitivity import (
    SensitivityAnalyzer,
    SweepPoint,
    SweepResult,
)

__all__ = [
    "DesignSpace",
    "fused_depth_candidates",
    "parallelism_candidates",
    "ResourceBudget",
    "DSEResult",
    "EvaluatedDesign",
    "Optimizer",
    "optimize_baseline",
    "optimize_full",
    "optimize_heterogeneous",
    "optimize_pipe_shared",
    "pareto_front",
    "SensitivityAnalyzer",
    "SweepPoint",
    "SweepResult",
]
