"""One-call synthesis facade: stencil in, optimized FPGA design out.

The paper's framework is push-button (Fig. 5): the user hands over an
OpenCL stencil kernel and gets back an optimized, generated design.
:func:`synthesize` is that button — it chains the frontend feature
extractor, the baseline constructor, the model-driven design-space
exploration, and the code generator into one call:

    from repro.api import synthesize

    synth = synthesize(benchmark="jacobi-2d")
    print(synth.design.describe())
    print(synth.program.kernel_source)

Both the long-running synthesis service (:mod:`repro.service`) and the
runnable examples sit on this facade, so the pipeline exists in exactly
one place.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping, Optional, Sequence, Tuple

from repro import obs
from repro.codegen import (
    GeneratedPipeline,
    GeneratedProgram,
    generate_program,
    generate_program_pipeline,
)
from repro.dse.constraints import ResourceBudget
from repro.dse.evaluator import CandidateEvaluator, DSEResult
from repro.dse.optimizer import (
    optimize_heterogeneous,
    optimize_pipe_shared,
)
from repro.errors import SpecificationError
from repro.fpga.estimator import DesignResources
from repro.frontend import extract_features
from repro.opencl.platform import ADM_PCIE_7V3, BoardSpec
from repro.program.design import ProgramDesign
from repro.program.dse import optimize_program
from repro.program.evaluator import ProgramEvaluator
from repro.program.spec import ProgramSpec
from repro.stencil.library import get_benchmark
from repro.stencil.spec import StencilSpec
from repro.tiling.baseline import make_baseline_design
from repro.tiling.design import StencilDesign

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.dse.search import SearchDriver

_log = obs.get_logger("api")

#: Design styles :func:`synthesize` can target.
DESIGN_KINDS = ("baseline", "pipe-shared", "heterogeneous")


@dataclass(frozen=True)
class SynthesisResult:
    """Everything :func:`synthesize` produced for one request.

    Attributes:
        spec: the resolved workload.
        baseline: the reference (overlapped-tiling) design whose
            resource footprint bounded the exploration.
        dse: the full exploration outcome (``dse.candidates`` feeds
            Pareto analysis, ``dse.stats`` the engine counters).
        design: the chosen design (``dse.best.design``).
        predicted_cycles: the model's latency prediction for it.
        resources: its estimated resource utilization.
        program: the generated OpenCL kernel + host program
            (``None`` when ``emit=False``).
        evaluator: the engine that scored the candidates; reuse it
            across calls to share its memo and backing store.
        sim_backend: the resolved value-execution simulator backend
            (``"numpy"`` or ``"jit"``) any functional execution of
            this result's designs will use.
    """

    spec: StencilSpec
    baseline: StencilDesign
    dse: DSEResult
    design: StencilDesign
    predicted_cycles: float
    resources: DesignResources
    program: Optional[GeneratedProgram]
    evaluator: CandidateEvaluator
    sim_backend: str = "numpy"


@dataclass(frozen=True)
class ProgramSynthesisResult:
    """Everything :func:`synthesize` produced for one program request.

    Attributes:
        program_spec: the validated multi-stage program DAG.
        dse: the program-level exploration outcome.
        design: the chosen :class:`~repro.program.design.ProgramDesign`
            (one concrete design point per stage plus the schedule).
        predicted_cycles: the composed latency prediction for it.
        resources: its composed resource utilization.
        pipeline: the generated fused OpenCL pipeline (``None`` when
            ``emit=False``).
        evaluator: the program engine that scored the candidates;
            reuse it across calls to share its memo and backing store.
        sim_backend: the resolved value-execution simulator backend.
    """

    program_spec: ProgramSpec
    dse: DSEResult
    design: ProgramDesign
    predicted_cycles: float
    resources: DesignResources
    pipeline: Optional[GeneratedPipeline]
    evaluator: ProgramEvaluator
    sim_backend: str = "numpy"


def default_baseline_parameters(
    spec: StencilSpec,
) -> Tuple[Tuple[int, ...], Tuple[int, ...], int]:
    """Heuristic ``(tile_shape, counts, fused_depth)`` for a workload.

    Small enough to be feasible on the default device for any spec the
    test suite builds, large enough to leave the optimizer a real
    space: two tiles per dimension (four for 1-D), tile extents sized
    to the region the grid affords, and a cone depth capped by the
    iteration count.
    """
    counts = tuple(
        (4 if spec.ndim == 1 else 2) if extent >= 8 else 1
        for extent in spec.grid_shape
    )
    tile_shape = tuple(
        max(
            2 * radius + 1,
            min(64, extent // (2 * count) or 1),
        )
        for extent, count, radius in zip(
            spec.grid_shape, counts, spec.pattern.radius
        )
    )
    fused_depth = max(1, min(8, spec.iterations))
    return tile_shape, counts, fused_depth


def _resolve_spec(
    source: Optional[str],
    benchmark: Optional[str],
    name: str,
    field_map: Optional[Mapping[str, str]],
    aux: Sequence[str],
    grid_shape: Optional[Sequence[int]],
    iterations: Optional[int],
) -> StencilSpec:
    if (source is None) == (benchmark is None):
        raise SpecificationError(
            "synthesize() needs exactly one of `source` (OpenCL kernel "
            "text) or `benchmark` (library name)"
        )
    if benchmark is not None:
        overrides = {}
        if grid_shape is not None:
            overrides["grid"] = tuple(grid_shape)
        if iterations is not None:
            overrides["iterations"] = iterations
        return get_benchmark(benchmark, **overrides)
    if grid_shape is None or iterations is None:
        raise SpecificationError(
            "synthesize(source=...) needs grid_shape= and iterations= "
            "to scope the workload"
        )
    features = extract_features(
        source, name=name, field_map=field_map, aux=tuple(aux)
    )
    return StencilSpec(
        name=name,
        pattern=features.pattern,
        grid_shape=tuple(grid_shape),
        iterations=iterations,
        dtype=features.dtype,
    )


def _synthesize_program(
    program: ProgramSpec,
    *,
    board: BoardSpec,
    schedule: str,
    evaluator: Optional[CandidateEvaluator],
    driver: Optional["SearchDriver"],
    emit: bool,
    sim_backend: Optional[str],
) -> ProgramSynthesisResult:
    """The multi-stage arm of :func:`synthesize`."""
    from repro.sim import jit as sim_jit

    resolved_backend = sim_jit.resolve_backend(sim_backend)
    with obs.span(
        "api.synthesize",
        design="program",
        schedule=schedule,
        sim_backend=resolved_backend,
    ):
        if driver is not None:
            engine = driver.evaluator
            if not isinstance(engine, ProgramEvaluator):
                # A single-stencil driver: wrap its engine (keeping its
                # memo/store) and rebuild the driver around the wrapper
                # with the same tiering configuration.
                from repro.dse.search import SearchDriver

                engine = ProgramEvaluator(stage_engine=engine)
                driver = SearchDriver(
                    evaluator=engine,
                    chunk_size=driver.chunk_size,
                    screen=driver.screen,
                    checkpoint=driver.checkpoint,
                    search_key=driver.search_key,
                    shard=driver.shard,
                )
        elif isinstance(evaluator, ProgramEvaluator):
            engine = evaluator
        elif evaluator is not None:
            engine = ProgramEvaluator(stage_engine=evaluator)
        else:
            engine = ProgramEvaluator(board=board)
        dse = optimize_program(
            program,
            board=engine.board,
            schedule=schedule,
            evaluator=engine,
            driver=driver,
        )
        best = dse.best
        pipeline = generate_program_pipeline(best.design) if emit else None
        _log.debug(
            "synthesized program %s: %d stages, %s schedule "
            "(%d candidates, %d feasible)",
            program.name, program.num_stages, schedule, dse.evaluated,
            dse.feasible,
        )
    return ProgramSynthesisResult(
        program_spec=program,
        dse=dse,
        design=best.design,
        predicted_cycles=best.predicted_cycles,
        resources=best.resources,
        pipeline=pipeline,
        evaluator=engine,
        sim_backend=resolved_backend,
    )


def synthesize(
    source: Optional[str] = None,
    *,
    benchmark: Optional[str] = None,
    program: Optional[ProgramSpec] = None,
    schedule: str = "coresident",
    board: BoardSpec = ADM_PCIE_7V3,
    name: str = "user-stencil",
    field_map: Optional[Mapping[str, str]] = None,
    aux: Sequence[str] = (),
    grid_shape: Optional[Sequence[int]] = None,
    iterations: Optional[int] = None,
    tile_shape: Optional[Sequence[int]] = None,
    counts: Optional[Sequence[int]] = None,
    fused_depth: Optional[int] = None,
    unroll: int = 1,
    design: str = "heterogeneous",
    evaluator: Optional[CandidateEvaluator] = None,
    driver: Optional["SearchDriver"] = None,
    emit: bool = True,
    sim_backend: Optional[str] = None,
) -> "SynthesisResult | ProgramSynthesisResult":
    """Extract → optimize → codegen, as one call.

    Args:
        source: OpenCL-C stencil kernel text (the paper's input form).
            Mutually exclusive with ``benchmark`` and ``program``.
        benchmark: name in the stencil library (e.g. ``"jacobi-2d"``).
        program: a multi-stage
            :class:`~repro.program.spec.ProgramSpec` DAG; routes the
            call through the program-level search and the fused
            pipeline generator, returning a
            :class:`ProgramSynthesisResult` instead.  Mutually
            exclusive with ``source`` and ``benchmark``.
        schedule: program schedule (``"coresident"`` or
            ``"timeshared"``); only meaningful with ``program``.
        board: target platform.
        name: workload name used when building a spec from ``source``.
        field_map: written-array → state-field mapping for ping-pong
            kernels (see :class:`repro.frontend.FeatureExtractor`).
        aux: read-only auxiliary array names (e.g. HotSpot's power).
        grid_shape: grid extents; required with ``source``, an
            override with ``benchmark``.
        iterations: stencil iteration count; same rules as
            ``grid_shape``.
        tile_shape: baseline tile extents; derived via
            :func:`default_baseline_parameters` when omitted.
        counts: tiles per dimension; derived when omitted.
        fused_depth: baseline cone depth; derived when omitted.
        unroll: processing elements per kernel.
        design: ``"baseline"``, ``"pipe-shared"`` or
            ``"heterogeneous"`` — which style the optimizer targets.
            ``"baseline"`` skips the re-exploration and scores the
            baseline itself.
        evaluator: a shared :class:`CandidateEvaluator`; one is built
            against ``board`` when omitted.  Passing the service's (or
            a previous call's) engine reuses its memo and persistent
            store.
        driver: optional :class:`~repro.dse.search.SearchDriver` for
            tiered (screen-then-refine) exploration; its evaluator
            takes precedence over ``evaluator``.  Ignored for the
            ``"baseline"`` design kind, which scores one candidate.
        emit: generate the OpenCL program for the chosen design.
        sim_backend: value-execution simulator backend request
            (``"auto" | "numpy" | "jit"``; default: the process
            default / ``REPRO_SIM_BACKEND`` / ``"auto"``).  The
            resolved choice is reported on the result.

    Returns:
        A :class:`SynthesisResult`, or a
        :class:`ProgramSynthesisResult` when ``program`` is given.
    """
    from repro.sim import jit as sim_jit

    if program is not None:
        if source is not None or benchmark is not None:
            raise SpecificationError(
                "synthesize() takes exactly one of `source`, "
                "`benchmark`, or `program`"
            )
        return _synthesize_program(
            program,
            board=board,
            schedule=schedule,
            evaluator=evaluator,
            driver=driver,
            emit=emit,
            sim_backend=sim_backend,
        )
    if design not in DESIGN_KINDS:
        raise SpecificationError(
            f"Unknown design kind {design!r}; expected one of "
            f"{DESIGN_KINDS}"
        )
    resolved_backend = sim_jit.resolve_backend(sim_backend)
    with obs.span(
        "api.synthesize", design=design, sim_backend=resolved_backend
    ):
        spec = _resolve_spec(
            source, benchmark, name, field_map, aux, grid_shape,
            iterations,
        )
        defaults = default_baseline_parameters(spec)
        baseline = make_baseline_design(
            spec,
            tuple(tile_shape) if tile_shape is not None else defaults[0],
            tuple(counts) if counts is not None else defaults[1],
            fused_depth if fused_depth is not None else defaults[2],
            unroll=unroll,
        )
        if driver is not None:
            engine = driver.evaluator
        else:
            engine = evaluator or CandidateEvaluator(board=board)
        if design == "heterogeneous":
            dse = optimize_heterogeneous(
                spec, baseline, board=engine.board, evaluator=engine,
                driver=driver,
            )
        elif design == "pipe-shared":
            dse = optimize_pipe_shared(
                spec, baseline, board=engine.board, evaluator=engine,
                driver=driver,
            )
        else:
            dse = engine.explore(
                [baseline],
                ResourceBudget.from_design(baseline, engine.estimator),
            )
        best = dse.best
        program = generate_program(best.design) if emit else None
        _log.debug(
            "synthesized %s: %s (%d candidates, %d feasible)",
            spec.name, best.design.describe(), dse.evaluated,
            dse.feasible,
        )
    return SynthesisResult(
        spec=spec,
        baseline=baseline,
        dse=dse,
        design=best.design,
        predicted_cycles=best.predicted_cycles,
        resources=best.resources,
        program=program,
        evaluator=engine,
        sim_backend=resolved_backend,
    )
