"""Per-benchmark experiment configurations and the paper's reported data.

``TABLE3_CONFIGS`` fixes, per benchmark, the baseline design parameters
the paper reports in Table 3 (tile size, parallelism, fusion depth) and
an unroll factor chosen so the estimated DSP count lands near the
paper's report.  ``PAPER_TABLE3`` embeds the paper's own Table 3
numbers so the harness can print paper-vs-measured side by side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.stencil.library import get_benchmark
from repro.stencil.spec import StencilSpec
from repro.tiling.baseline import make_baseline_design
from repro.tiling.design import StencilDesign


@dataclass(frozen=True)
class BenchmarkConfig:
    """Fixed design inputs for one benchmark's Table 3 row.

    Attributes:
        name: benchmark key in the stencil library.
        tile_shape: baseline tile extents (Table 3 "Tile Size").
        counts: tiles per dimension (Table 3 "Parallelism").
        fused_depth: baseline cone depth (Table 3 "#Fused Iter.").
        unroll: per-kernel processing elements.
    """

    name: str
    tile_shape: Tuple[int, ...]
    counts: Tuple[int, ...]
    fused_depth: int
    unroll: int

    def spec(self) -> StencilSpec:
        """The benchmark at its paper-scale problem size."""
        return get_benchmark(self.name)

    def baseline(self) -> StencilDesign:
        """The baseline design at the paper's reported parameters."""
        return make_baseline_design(
            self.spec(),
            self.tile_shape,
            self.counts,
            self.fused_depth,
            self.unroll,
        )


#: Baseline design parameters, from Table 3's "Baseline" rows.
TABLE3_CONFIGS: Dict[str, BenchmarkConfig] = {
    "jacobi-1d": BenchmarkConfig(
        "jacobi-1d", (4096,), (16,), 128, unroll=4
    ),
    "jacobi-2d": BenchmarkConfig(
        "jacobi-2d", (128, 128), (4, 4), 32, unroll=4
    ),
    "jacobi-3d": BenchmarkConfig(
        "jacobi-3d", (16, 32, 32), (4, 2, 2), 6, unroll=4
    ),
    # The paper reports 256x256 / 32^3 HotSpot tiles, but a full
    # footprint buffer at those sizes cannot fit the 690T's BRAM (their
    # microarchitecture evidently streams); we use the largest tiles
    # our footprint-buffered kernels can place.  See EXPERIMENTS.md.
    "hotspot-2d": BenchmarkConfig(
        "hotspot-2d", (128, 128), (4, 4), 32, unroll=4
    ),
    "hotspot-3d": BenchmarkConfig(
        "hotspot-3d", (16, 16, 16), (4, 2, 2), 6, unroll=4
    ),
    "fdtd-2d": BenchmarkConfig(
        "fdtd-2d", (64, 64), (4, 4), 12, unroll=2
    ),
    # fdtd-3d's composed four-field datapath is LUT-hungry; eight
    # kernels (instead of the paper's sixteen) keep unroll 2 placeable
    # on the 690T.
    "fdtd-3d": BenchmarkConfig(
        "fdtd-3d", (16, 32, 16), (2, 2, 2), 4, unroll=2
    ),
}


@dataclass(frozen=True)
class PaperTable3Row:
    """One benchmark's numbers as published in the paper's Table 3."""

    baseline_fused: int
    baseline_tile: Tuple[int, ...]
    hetero_fused: int
    hetero_tile: Tuple[int, ...]
    baseline_resources: Tuple[int, int, int, int]  # FF, LUT, DSP, BRAM
    hetero_resources: Tuple[int, int, int, int]
    speedup: float


#: The paper's Table 3, verbatim.
PAPER_TABLE3: Dict[str, PaperTable3Row] = {
    "jacobi-1d": PaperTable3Row(
        128, (4096,), 512, (4096,),
        (54864, 79920, 80, 544), (43896, 62580, 80, 396), 1.19,
    ),
    "jacobi-2d": PaperTable3Row(
        32, (128, 128), 63, (120, 120),
        (240016, 343184, 1792, 1170), (191276, 287955, 1792, 996), 1.58,
    ),
    "jacobi-3d": PaperTable3Row(
        6, (16, 32, 32), 16, (16, 28, 28),
        (264026, 367217, 1802, 1170), (237846, 335951, 1802, 796), 2.05,
    ),
    "hotspot-2d": PaperTable3Row(
        32, (256, 256), 69, (248, 248),
        (259040, 251936, 1920, 1320), (233375, 217197, 1920, 1081), 1.35,
    ),
    "hotspot-3d": PaperTable3Row(
        6, (32, 32, 32), 16, (30, 30, 30),
        (225259, 236664, 1747, 1260), (199625, 207853, 1747, 1162), 1.97,
    ),
    "fdtd-2d": PaperTable3Row(
        12, (64, 64), 23, (60, 60),
        (104247, 149457, 324, 560), (86872, 131102, 324, 427), 1.48,
    ),
    "fdtd-3d": PaperTable3Row(
        4, (16, 32, 16), 10, (14, 32, 15),
        (149078, 203266, 518, 952), (137632, 176874, 518, 835), 1.90,
    ),
}

#: The paper's headline: average heterogeneous speedup.
PAPER_MEAN_SPEEDUP = 1.65
