"""Figure 6: execution-time breakdown (Jacobi-2D and Jacobi-3D).

The paper's Fig. 6 decomposes each design's execution time into useful
computation, redundant computation, memory transfer, and waiting, for
the baseline and the proposed designs.  We regenerate the same stacked
bars from the simulator's critical-kernel breakdown.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.dse.evaluator import CandidateEvaluator
from repro.dse.optimizer import optimize_heterogeneous, optimize_pipe_shared
from repro.experiments.configs import TABLE3_CONFIGS
from repro.experiments.report import render_table
from repro.opencl.platform import ADM_PCIE_7V3, BoardSpec
from repro.store.checkpoint import CheckpointedExecutor


@dataclass(frozen=True)
class Figure6Bar:
    """One stacked bar: a (benchmark, design) execution breakdown."""

    benchmark: str
    design_label: str
    total_cycles: float
    fractions: Dict[str, float]


def run_figure6(
    benchmarks: Sequence[str] = ("jacobi-2d", "jacobi-3d"),
    board: BoardSpec = ADM_PCIE_7V3,
    evaluator: Optional[CandidateEvaluator] = None,
    executor: Optional[CheckpointedExecutor] = None,
) -> List[Figure6Bar]:
    """Regenerate Fig. 6's breakdown bars on the simulator.

    ``evaluator``/``executor`` follow the same warm-start/resume
    contract as :func:`repro.experiments.table3.run_table3`.
    """
    executor = executor or CheckpointedExecutor(board)
    bars: List[Figure6Bar] = []
    for name in benchmarks:
        config = TABLE3_CONFIGS[name]
        baseline = config.baseline()
        spec = baseline.spec
        pipe = optimize_pipe_shared(
            spec, baseline, board, evaluator=evaluator
        ).best.design
        hetero = optimize_heterogeneous(
            spec, baseline, board, evaluator=evaluator
        ).best.design
        for label, design in (
            ("baseline", baseline),
            ("pipe-shared", pipe),
            ("heterogeneous", hetero),
        ):
            total_cycles, fractions = executor.breakdown(design)
            bars.append(
                Figure6Bar(
                    benchmark=name,
                    design_label=label,
                    total_cycles=total_cycles,
                    fractions=fractions,
                )
            )
    return bars


def render_figure6(bars: Sequence[Figure6Bar]) -> str:
    """ASCII rendering of the breakdown bars."""
    components = [
        "compute_useful",
        "compute_redundant",
        "read",
        "write",
        "share_exposed",
        "launch",
        "wait",
    ]
    rows = []
    for bar in bars:
        rows.append(
            [bar.benchmark, bar.design_label, bar.total_cycles]
            + [bar.fractions[c] for c in components]
        )
    return render_table(
        ["Benchmark", "Design", "Cycles"] + components,
        rows,
        title="Figure 6: Execution time breakdown (fractions of total)",
    )


if __name__ == "__main__":  # pragma: no cover
    print(render_figure6(run_figure6()))
