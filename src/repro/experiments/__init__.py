"""Reproduction harness: one module per table/figure of the paper."""

from repro.experiments.configs import (
    BenchmarkConfig,
    PAPER_TABLE3,
    TABLE3_CONFIGS,
    PaperTable3Row,
)
from repro.experiments.table2 import Table2Row, run_table2
from repro.experiments.table3 import Table3Row, run_table3
from repro.experiments.figure6 import Figure6Bar, run_figure6
from repro.experiments.figure7 import Figure7Series, run_figure7
from repro.experiments.report import render_table

__all__ = [
    "BenchmarkConfig",
    "PAPER_TABLE3",
    "TABLE3_CONFIGS",
    "PaperTable3Row",
    "Table2Row",
    "run_table2",
    "Table3Row",
    "run_table3",
    "Figure6Bar",
    "run_figure6",
    "Figure7Series",
    "run_figure7",
    "render_table",
]
