"""``python -m repro.experiments`` / ``repro`` console entry point."""

import sys
from typing import List, Optional

from repro.experiments.runner import main as _runner_main


def main(argv: Optional[List[str]] = None) -> int:
    """Console-script entry (the ``repro`` command)."""
    return _runner_main(argv)


if __name__ == "__main__":
    sys.exit(main())
