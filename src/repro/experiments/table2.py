"""Table 2: the stencil benchmark suite description."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.experiments.report import format_shape, render_table
from repro.stencil.library import PAPER_SUITE, get_benchmark


@dataclass(frozen=True)
class Table2Row:
    """One benchmark's suite entry."""

    benchmark: str
    source: str
    input_size: Tuple[int, ...]
    iterations: int
    fields: int
    radius: Tuple[int, ...]


def run_table2() -> List[Table2Row]:
    """Build the benchmark-suite table (paper's Table 2 plus shape info)."""
    rows: List[Table2Row] = []
    for name in PAPER_SUITE:
        spec = get_benchmark(name)
        rows.append(
            Table2Row(
                benchmark=name,
                source=spec.source,
                input_size=spec.grid_shape,
                iterations=spec.iterations,
                fields=spec.pattern.num_fields,
                radius=spec.pattern.radius,
            )
        )
    return rows


def render_table2(rows: List[Table2Row]) -> str:
    """ASCII rendering of Table 2."""
    return render_table(
        ["Benchmark", "Source", "Input Size", "#Iterations",
         "#Fields", "Radius"],
        [
            (
                r.benchmark,
                r.source,
                format_shape(r.input_size),
                r.iterations,
                r.fields,
                format_shape(r.radius),
            )
            for r in rows
        ],
        title="Table 2: Stencil Benchmark Suite Description",
    )


if __name__ == "__main__":  # pragma: no cover
    print(render_table2(run_table2()))
