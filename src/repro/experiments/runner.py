"""Command-line entry point.

Two families of subcommands:

Reproduction (regenerate the paper's evaluation)::

    python -m repro.experiments table2
    python -m repro.experiments table3 [--benchmarks jacobi-2d,...]
    python -m repro.experiments figure6
    python -m repro.experiments figure7
    python -m repro.experiments all

Tooling (use the framework on one benchmark)::

    python -m repro.experiments optimize  --benchmark jacobi-2d
    python -m repro.experiments simulate  --benchmark jacobi-2d [--design hetero]
    python -m repro.experiments codegen   --benchmark jacobi-2d [--output DIR]
    python -m repro.experiments calibrate
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import List, Optional, Sequence

from repro import obs
from repro.experiments.figure6 import render_figure6, run_figure6
from repro.experiments.figure7 import (
    FIGURE7_BENCHMARKS,
    render_figure7,
    run_figure7,
)
from repro.experiments.table2 import render_table2, run_table2
from repro.experiments.table3 import render_table3, run_table3
from repro.stencil.library import PAPER_SUITE

_REPRO_COMMANDS = ("table2", "table3", "figure6", "figure7", "all")
_TOOL_COMMANDS = ("optimize", "simulate", "codegen", "calibrate")


def _parse_benchmarks(value: Optional[str], default: Sequence[str]):
    if not value:
        return tuple(default)
    return tuple(name.strip() for name in value.split(",") if name.strip())


def _build_designs(benchmark: str, evaluator=None):
    from repro.dse.evaluator import CandidateEvaluator
    from repro.dse.optimizer import (
        optimize_heterogeneous,
        optimize_pipe_shared,
    )
    from repro.experiments.configs import TABLE3_CONFIGS

    config = TABLE3_CONFIGS[benchmark]
    baseline = config.baseline()
    spec = baseline.spec
    engine = evaluator or CandidateEvaluator()
    return {
        "spec": spec,
        "baseline": baseline,
        "pipe": optimize_pipe_shared(
            spec, baseline, evaluator=engine
        ).best.design,
        "hetero": optimize_heterogeneous(
            spec, baseline, evaluator=engine
        ).best.design,
    }


def _cmd_optimize(args) -> List[str]:
    from repro.dse.evaluator import CandidateEvaluator
    from repro.sim import simulate

    evaluator = CandidateEvaluator()
    bundle = _build_designs(args.benchmark, evaluator)
    lines = [f"Workload: {bundle['spec'].describe()}"]
    base_cycles = simulate(bundle["baseline"]).total_cycles
    for label in ("baseline", "pipe", "hetero"):
        design = bundle[label]
        measured = simulate(design).total_cycles
        resources = evaluator.resources(design).total
        lines.append(
            f"{label:9s} {design.describe()}\n"
            f"          predicted {evaluator.predict_cycles(design):.3e} "
            f"cyc, measured {measured:.3e} cyc "
            f"(speedup {base_cycles / measured:.2f}x), {resources}"
        )
    lines.append(f"Engine: {evaluator.stats.summary()}")
    return lines


def _cmd_simulate(args) -> List[str]:
    from repro.sim import simulate

    bundle = _build_designs(args.benchmark)
    design = bundle[args.design]
    result = simulate(design)
    fractions = ", ".join(
        f"{k}={v:.1%}"
        for k, v in result.breakdown.fractions().items()
        if v > 0.001
    )
    return [
        f"Design: {design.describe()}",
        f"Total: {result.total_cycles:.4e} cycles "
        f"({result.seconds * 1e3:.2f} ms at "
        f"{result.board.clock_hz / 1e6:.0f} MHz)",
        f"Blocks: {result.num_blocks}, critical kernel "
        f"{result.block.critical_index}",
        f"Breakdown: {fractions}",
    ]


def _cmd_codegen(args) -> List[str]:
    from repro.codegen import generate_program

    bundle = _build_designs(args.benchmark)
    design = bundle[args.design]
    program = generate_program(design)
    out_dir = pathlib.Path(args.output)
    out_dir.mkdir(parents=True, exist_ok=True)
    stem = args.benchmark.replace("-", "_")
    kernel_path = out_dir / f"{stem}_{args.design}.cl"
    host_path = out_dir / f"{stem}_{args.design}_host.c"
    kernel_path.write_text(program.kernel_source)
    host_path.write_text(program.host_source)
    return [
        f"Design: {design.describe()}",
        f"Wrote {kernel_path} "
        f"({len(program.kernel_source.splitlines())} lines, "
        f"{program.num_kernels} kernels)",
        f"Wrote {host_path}",
    ]


def _cmd_calibrate(_args) -> List[str]:
    from repro.model.calibration import OfflineProfiler
    from repro.opencl.platform import ADM_PCIE_7V3

    result = OfflineProfiler().calibrate()
    board = ADM_PCIE_7V3
    return [
        "Off-line profiling against the simulated board:",
        f"  effective bandwidth: {result.bandwidth_bytes_per_cycle:.2f} "
        f"B/cycle (configured {board.effective_bytes_per_cycle:.2f})",
        f"  C_pipe: {result.pipe_cycles_per_word:.3f} cycles/word "
        f"(configured {board.pipe_cycles_per_word})",
        f"  kernel launch: {result.launch_cycles:.0f} cycles "
        f"(configured {board.kernel_launch_cycles})",
        f"  launch stagger: {result.launch_stagger_cycles:.0f} cycles "
        f"(configured {board.launch_stagger_cycles})",
    ]


def main(argv: Optional[List[str]] = None) -> int:
    """CLI dispatcher."""
    parser = argparse.ArgumentParser(
        prog="repro-stencil",
        description=(
            "Reproduction of 'A Comprehensive Framework for Synthesizing "
            "Stencil Algorithms on FPGAs using OpenCL Model' (DAC 2017)."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=_REPRO_COMMANDS + _TOOL_COMMANDS,
        help="experiment to regenerate or tool to run",
    )
    parser.add_argument(
        "--benchmarks",
        default="",
        help="comma-separated benchmark subset (reproduction commands)",
    )
    parser.add_argument(
        "--benchmark",
        default="jacobi-2d",
        help="single benchmark for the tooling commands",
    )
    parser.add_argument(
        "--design",
        choices=("baseline", "pipe", "hetero"),
        default="hetero",
        help="which design the tooling commands act on",
    )
    parser.add_argument(
        "--output",
        default="generated",
        help="output directory for codegen",
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help=(
            "enable observability and write a merged Chrome/Perfetto "
            "trace (DSE spans + simulator phase timelines) to PATH"
        ),
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help=(
            "enable observability and write the structured run report "
            "(counters, derived rates, latency histograms) to PATH"
        ),
    )
    parser.add_argument(
        "--log-level",
        default=None,
        metavar="LEVEL",
        help=(
            "repro.* log level (debug/info/warning/error; also "
            "settable via REPRO_LOG_LEVEL)"
        ),
    )
    args = parser.parse_args(argv)

    if args.log_level is not None:
        obs.configure_logging(level=args.log_level)
    observing = args.trace_out is not None or args.metrics_out is not None
    if observing:
        obs.enable()
    log = obs.get_logger("experiments")

    with obs.span(f"cli.{args.experiment}", benchmark=args.benchmark):
        outputs = _dispatch(args)
    if observing:
        if args.trace_out is not None:
            path = obs.export_chrome_trace(args.trace_out)
            log.info("wrote Chrome/Perfetto trace to %s", path)
            outputs.append(f"Wrote trace {path}")
        if args.metrics_out is not None:
            path = obs.export_run_report(args.metrics_out)
            log.info("wrote run report to %s", path)
            outputs.append(f"Wrote metrics report {path}")
    print("\n\n".join(outputs))
    return 0


def _dispatch(args) -> List[str]:
    """Run the selected experiment/tool; return its output sections."""
    outputs: List[str] = []
    if args.experiment in ("table2", "all"):
        outputs.append(render_table2(run_table2()))
    if args.experiment in ("table3", "all"):
        outputs.append(
            render_table3(
                run_table3(_parse_benchmarks(args.benchmarks, PAPER_SUITE))
            )
        )
    if args.experiment in ("figure6", "all"):
        outputs.append(render_figure6(run_figure6()))
    if args.experiment in ("figure7", "all"):
        outputs.append(
            render_figure7(
                run_figure7(
                    _parse_benchmarks(args.benchmarks, FIGURE7_BENCHMARKS)
                )
            )
        )
    if args.experiment == "optimize":
        outputs.append("\n".join(_cmd_optimize(args)))
    if args.experiment == "simulate":
        outputs.append("\n".join(_cmd_simulate(args)))
    if args.experiment == "codegen":
        outputs.append("\n".join(_cmd_codegen(args)))
    if args.experiment == "calibrate":
        outputs.append("\n".join(_cmd_calibrate(args)))
    return outputs


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
