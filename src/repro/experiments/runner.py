"""Command-line entry point.

Two families of subcommands:

Reproduction (regenerate the paper's evaluation)::

    python -m repro.experiments table2
    python -m repro.experiments table3 [--benchmarks jacobi-2d,...]
    python -m repro.experiments figure6
    python -m repro.experiments figure7
    python -m repro.experiments all

Tooling (use the framework on one benchmark)::

    python -m repro.experiments optimize  --benchmark jacobi-2d
    python -m repro.experiments simulate  --benchmark jacobi-2d [--design hetero]
    python -m repro.experiments codegen   --benchmark jacobi-2d [--output DIR]
    python -m repro.experiments calibrate

Service (synthesis-as-a-service, see ``docs/SERVICE.md``)::

    python -m repro.experiments serve  [--host H] [--port P]
                                       [--workers N] [--queue-depth D]
                                       [--worker-processes N]
                                       [--frontend threaded|async]
                                       [--store DIR]
    python -m repro.experiments submit --url http://H:P
                                       --benchmark jacobi-2d
                                       [--design hetero] [--output DIR]

Every command accepts ``--sim-backend {auto,numpy,jit}`` to pick the
value-execution simulator backend (``auto`` uses the compiled JIT
backend when a C compiler is present; see ``docs/SIM.md``), and
``figure7`` accepts ``--execute-check`` to bitwise-verify the swept
designs' execution against the naive reference.

Every experiment/tool accepts ``--store DIR`` to persist design
evaluations and sweep measurements: a rerun (or a run resumed after a
crash) warm-starts from the stored results and produces byte-identical
reports.  A server started with ``--store DIR`` answers repeat queries
from the same store across restarts.  The store itself is managed
with::

    python -m repro.experiments store stats      --store DIR
    python -m repro.experiments store compact    --store DIR
    python -m repro.experiments store gc         --store DIR [--context FP]
    python -m repro.experiments store invalidate --store DIR [--context FP]

Observability (see ``docs/OBSERVABILITY.md``) — a server started with
``--store DIR`` also journals per-job flight records and periodic
metric snapshots to ``DIR/telemetry.jsonl`` (override the path with
``--telemetry``); watch a live service or a journal with::

    python -m repro.experiments obs top --url http://H:P
    python -m repro.experiments obs top --telemetry DIR/telemetry.jsonl
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import List, Optional, Sequence

from repro import obs
from repro.experiments.figure6 import render_figure6, run_figure6
from repro.experiments.figure7 import (
    FIGURE7_BENCHMARKS,
    render_figure7,
    run_figure7,
)
from repro.experiments.table2 import render_table2, run_table2
from repro.experiments.table3 import render_table3, run_table3
from repro.stencil.library import PAPER_SUITE

_REPRO_COMMANDS = ("table2", "table3", "figure6", "figure7", "all")
_TOOL_COMMANDS = ("optimize", "simulate", "codegen", "calibrate", "program")
_SERVICE_COMMANDS = ("serve", "submit")
_STORE_ACTIONS = ("stats", "compact", "gc", "invalidate")
_OBS_ACTIONS = ("top",)

#: CLI design labels → service/facade design kinds.
_DESIGN_KINDS = {
    "baseline": "baseline",
    "pipe": "pipe-shared",
    "hetero": "heterogeneous",
}


def _parse_benchmarks(value: Optional[str], default: Sequence[str]):
    if not value:
        return tuple(default)
    return tuple(name.strip() for name in value.split(",") if name.strip())


class _StoreSession:
    """The CLI's persistence bundle: design store + sweep checkpoint.

    Built from ``--store DIR``; without the flag every accessor returns
    a plain (non-persistent) engine/executor, so the command paths are
    identical either way.
    """

    RESULTS_DIR = "results"
    SWEEPS_FILE = "sweeps.jsonl"
    SEARCHES_FILE = "searches.jsonl"

    def __init__(self, path: Optional[str], sim_backend: Optional[str] = None):
        self.store = None
        self.checkpoint = None
        self.search_checkpoint = None
        self.sim_backend = sim_backend
        if path:
            from repro.store import (
                DesignStore,
                SearchCheckpoint,
                SweepCheckpoint,
            )

            root = pathlib.Path(path)
            self.store = DesignStore(root / self.RESULTS_DIR)
            self.checkpoint = SweepCheckpoint(root / self.SWEEPS_FILE)
            self.search_checkpoint = SearchCheckpoint(
                root / self.SEARCHES_FILE
            )

    def evaluator(self):
        from repro.dse.evaluator import CandidateEvaluator

        return CandidateEvaluator(store=self.store)

    def driver(self, args, evaluator=None):
        """A tiered SearchDriver when ``--tiered``, else ``None``."""
        if not getattr(args, "tiered", False):
            return None
        from repro.dse.search import SearchDriver

        return SearchDriver(
            evaluator=evaluator or self.evaluator(),
            chunk_size=args.chunk_size,
            checkpoint=self.search_checkpoint,
        )

    def executor(self, board=None):
        from repro.opencl.platform import ADM_PCIE_7V3
        from repro.store.checkpoint import CheckpointedExecutor

        return CheckpointedExecutor(
            board or ADM_PCIE_7V3, self.checkpoint,
            sim_backend=self.sim_backend,
        )

    def summary_lines(self) -> List[str]:
        if self.store is None:
            return []
        stats = self.store.stats_summary()
        runtime = stats["runtime"]
        return [
            f"Store {stats['root']}: {stats['entries']} entries "
            f"({runtime['hits']} hits, {runtime['misses']} misses, "
            f"{runtime['writes']} writes this run); "
            f"checkpoint {len(self.checkpoint)} steps"
        ]

    def close(self) -> None:
        if self.store is not None:
            self.store.close()
        if self.checkpoint is not None:
            self.checkpoint.close()
        if self.search_checkpoint is not None:
            self.search_checkpoint.close()


def _build_designs(benchmark: str, evaluator=None, driver=None):
    from repro.dse.evaluator import CandidateEvaluator
    from repro.dse.optimizer import (
        optimize_heterogeneous,
        optimize_pipe_shared,
    )
    from repro.experiments.configs import TABLE3_CONFIGS

    config = TABLE3_CONFIGS[benchmark]
    baseline = config.baseline()
    spec = baseline.spec
    engine = evaluator or CandidateEvaluator()
    return {
        "spec": spec,
        "baseline": baseline,
        "pipe": optimize_pipe_shared(
            spec, baseline, evaluator=engine, driver=driver
        ).best.design,
        "hetero": optimize_heterogeneous(
            spec, baseline, evaluator=engine, driver=driver
        ).best.design,
    }


def _cmd_optimize(args, session: _StoreSession) -> List[str]:
    from repro.sim import simulate

    evaluator = session.evaluator()
    driver = session.driver(args, evaluator)
    bundle = _build_designs(args.benchmark, evaluator, driver)
    lines = [f"Workload: {bundle['spec'].describe()}"]
    base_cycles = simulate(bundle["baseline"]).total_cycles
    for label in ("baseline", "pipe", "hetero"):
        design = bundle[label]
        measured = simulate(design).total_cycles
        resources = evaluator.resources(design).total
        lines.append(
            f"{label:9s} {design.describe()}\n"
            f"          predicted {evaluator.predict_cycles(design):.3e} "
            f"cyc, measured {measured:.3e} cyc "
            f"(speedup {base_cycles / measured:.2f}x), {resources}"
        )
    lines.append(f"Engine: {evaluator.stats.summary()}")
    return lines


def _cmd_simulate(args, session: _StoreSession) -> List[str]:
    from repro.sim import simulate

    bundle = _build_designs(
        args.benchmark, session.evaluator(), session.driver(args)
    )
    design = bundle[args.design]
    result = simulate(design)
    fractions = ", ".join(
        f"{k}={v:.1%}"
        for k, v in result.breakdown.fractions().items()
        if v > 0.001
    )
    return [
        f"Design: {design.describe()}",
        f"Total: {result.total_cycles:.4e} cycles "
        f"({result.seconds * 1e3:.2f} ms at "
        f"{result.board.clock_hz / 1e6:.0f} MHz)",
        f"Blocks: {result.num_blocks}, critical kernel "
        f"{result.block.critical_index}",
        f"Breakdown: {fractions}",
    ]


def _cmd_codegen(args, session: _StoreSession) -> List[str]:
    from repro.codegen import generate_program

    bundle = _build_designs(
        args.benchmark, session.evaluator(), session.driver(args)
    )
    design = bundle[args.design]
    program = generate_program(design)
    out_dir = pathlib.Path(args.output or "generated")
    out_dir.mkdir(parents=True, exist_ok=True)
    stem = args.benchmark.replace("-", "_")
    kernel_path = out_dir / f"{stem}_{args.design}.cl"
    host_path = out_dir / f"{stem}_{args.design}_host.c"
    kernel_path.write_text(program.kernel_source)
    host_path.write_text(program.host_source)
    return [
        f"Design: {design.describe()}",
        f"Wrote {kernel_path} "
        f"({len(program.kernel_source.splitlines())} lines, "
        f"{program.num_kernels} kernels)",
        f"Wrote {host_path}",
    ]


def _cmd_program(args, session: _StoreSession) -> List[str]:
    """Synthesize a multi-stage program benchmark end to end."""
    from repro.api import synthesize
    from repro.program.evaluator import ProgramEvaluator
    from repro.program.library import get_program

    grid = (
        tuple(int(v) for v in args.grid.split("x")) if args.grid else None
    )
    program = get_program(
        args.program, grid=grid, iterations=args.iterations
    )
    engine = ProgramEvaluator(stage_engine=session.evaluator())
    driver = session.driver(args, engine)
    synth = synthesize(
        program=program,
        schedule=args.schedule,
        evaluator=engine,
        driver=driver,
    )
    lines = [
        f"Program: {program.name} "
        f"({program.num_stages} stages: {', '.join(program.topo_order())})",
        f"Schedule: {synth.design.schedule}",
        f"Best: {synth.design.describe()}",
        f"Predicted {synth.predicted_cycles:.3e} cycles, "
        f"{synth.resources.total}",
        f"DSE: {synth.dse.evaluated} evaluated, "
        f"{synth.dse.feasible} feasible",
    ]
    if driver is not None:
        report = driver.report.as_dict()
        lines.append(
            f"Search: {report['chunks']:.0f} chunks "
            f"({report['replayed_chunks']:.0f} replayed from "
            f"checkpoint), {report['tier1_evaluations']:.0f} tier-1 "
            f"evaluations"
        )
    if args.output:
        out_dir = pathlib.Path(args.output)
        out_dir.mkdir(parents=True, exist_ok=True)
        stem = args.program.replace("-", "_")
        kernel_path = out_dir / f"{stem}_pipeline.cl"
        host_path = out_dir / f"{stem}_pipeline_host.c"
        kernel_path.write_text(synth.pipeline.kernel_source)
        host_path.write_text(synth.pipeline.host_source)
        lines.append(
            f"Wrote {kernel_path} ({synth.pipeline.num_kernels} kernels, "
            f"{len(synth.pipeline.forwarded)} forwarded edge(s))"
        )
        lines.append(f"Wrote {host_path}")
    return lines


def _cmd_serve(args, session: _StoreSession) -> List[str]:
    """Run the synthesis service until SIGTERM/SIGINT, then drain."""
    import signal
    import threading

    from repro.service import (
        ShardedSynthesisService,
        SynthesisService,
        make_async_server,
        make_server,
    )

    if not obs.enabled():
        # A resident server should always be observable: metrics-only
        # mode keeps per-kernel event streams out of memory.  Spans
        # stay on so per-job traces (GET /jobs/<id>/trace) work.
        obs.enable(capture_events=False)
    telemetry = None
    telemetry_path = args.telemetry
    if telemetry_path is None and args.store:
        telemetry_path = pathlib.Path(args.store) / "telemetry.jsonl"
    if telemetry_path:
        telemetry = obs.TelemetryJournal(telemetry_path)
    if args.worker_processes:
        # Sharded mode: the replicas own the store (one writer slot
        # each), so the dispatcher-side handle is closed unused.
        store_root = None
        if session.store is not None:
            store_root = session.store.root
            session.store.close()
            session.store = None
        service = ShardedSynthesisService(
            store_root=store_root,
            worker_processes=args.worker_processes,
            queue_depth=args.queue_depth,
            default_timeout_s=args.job_timeout,
            tiered=args.tiered,
            search_chunk_size=args.chunk_size,
            telemetry=telemetry,
            slo_p99_target_s=args.slo_p99,
        )
        workers_desc = f"{args.worker_processes} worker processes"
        store_attached = store_root is not None
    else:
        service = SynthesisService(
            store=session.store,
            workers=args.workers,
            queue_depth=args.queue_depth,
            default_timeout_s=args.job_timeout,
            tiered=args.tiered,
            search_chunk_size=args.chunk_size,
            telemetry=telemetry,
            slo_p99_target_s=args.slo_p99,
        )
        workers_desc = f"{args.workers} workers"
        store_attached = session.store is not None
    if args.frontend == "async":
        server = make_async_server(service, host=args.host, port=args.port)
    else:
        server = make_server(service, host=args.host, port=args.port)
    host, port = server.server_address[:2]
    print(
        f"repro synthesis service listening on http://{host}:{port} "
        f"({workers_desc}, {args.frontend} frontend, "
        f"queue depth {args.queue_depth}, "
        f"store {'attached' if store_attached else 'none'}, "
        f"telemetry "
        f"{telemetry_path if telemetry_path else 'none'})",
        flush=True,
    )

    def _stop(_signum, _frame):
        # shutdown() must not run on the serving thread.
        threading.Thread(target=server.shutdown, daemon=True).start()

    signal.signal(signal.SIGTERM, _stop)
    signal.signal(signal.SIGINT, _stop)
    try:
        server.serve_forever()
    finally:
        server.server_close()
        service.shutdown(drain=True)
    stats = service.stats.as_dict()
    evals = service.evaluator_stats()
    return [
        f"Drained: {stats['completed']} completed, "
        f"{stats['failed']} failed, {stats['cancelled']} cancelled "
        f"({stats['deduped']} deduped, {stats['rejected']} rejected "
        f"of {stats['requests']} requests)",
        f"Engine: {evals['evaluated']:.0f} evaluated, "
        f"{evals['cache_hits']:.0f} cache hits, "
        f"{evals['store_hits']:.0f} store hits, "
        f"{evals['infeasible']:.0f} infeasible",
    ]


def _cmd_submit(args) -> List[str]:
    """Submit one job to a running service over HTTP."""
    from repro.service import ServiceClient, write_result_program

    client = ServiceClient(args.url)
    payload = {
        "benchmark": args.benchmark,
        "design": _DESIGN_KINDS[args.design],
        "priority": args.priority,
    }
    if args.job_timeout is not None:
        payload["timeout_s"] = args.job_timeout
    job = client.submit(**payload)
    lines = [
        f"Submitted {job['id']} "
        f"({'coalesced onto in-flight job' if job['coalesced'] else 'queued'})"
    ]
    if args.no_wait:
        lines.append(f"Poll: {args.url}/jobs/{job['id']}")
        return lines
    result = client.wait(job["id"], timeout_s=args.wait_timeout)
    design = result["design"]
    lines.extend(
        [
            f"Workload: {result['workload']}",
            f"Design:   {design['summary']}",
            f"Predicted {result['predicted_cycles']:.3e} cycles; "
            f"DSE evaluated {result['dse']['evaluated']} candidates "
            f"({result['dse']['feasible']} feasible)",
        ]
    )
    if args.output:
        stem = f"{args.benchmark.replace('-', '_')}_{args.design}"
        for path in write_result_program(result, args.output, stem):
            lines.append(f"Wrote {path}")
    return lines


def _cmd_calibrate(_args) -> List[str]:
    from repro.model.calibration import OfflineProfiler
    from repro.opencl.platform import ADM_PCIE_7V3

    result = OfflineProfiler().calibrate()
    board = ADM_PCIE_7V3
    return [
        "Off-line profiling against the simulated board:",
        f"  effective bandwidth: {result.bandwidth_bytes_per_cycle:.2f} "
        f"B/cycle (configured {board.effective_bytes_per_cycle:.2f})",
        f"  C_pipe: {result.pipe_cycles_per_word:.3f} cycles/word "
        f"(configured {board.pipe_cycles_per_word})",
        f"  kernel launch: {result.launch_cycles:.0f} cycles "
        f"(configured {board.kernel_launch_cycles})",
        f"  launch stagger: {result.launch_stagger_cycles:.0f} cycles "
        f"(configured {board.launch_stagger_cycles})",
    ]


def main(argv: Optional[List[str]] = None) -> int:
    """CLI dispatcher."""
    parser = argparse.ArgumentParser(
        prog="repro-stencil",
        description=(
            "Reproduction of 'A Comprehensive Framework for Synthesizing "
            "Stencil Algorithms on FPGAs using OpenCL Model' (DAC 2017)."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=(
            _REPRO_COMMANDS + _TOOL_COMMANDS + _SERVICE_COMMANDS
            + ("store", "obs")
        ),
        help=(
            "experiment to regenerate, tool to run, 'serve'/'submit' "
            "for the synthesis service, 'store', or 'obs'"
        ),
    )
    parser.add_argument(
        "action",
        nargs="?",
        default=None,
        help=(
            "store maintenance action "
            f"({'/'.join(_STORE_ACTIONS)}; 'store' command only) or "
            f"obs action ({'/'.join(_OBS_ACTIONS)}; 'obs' command only)"
        ),
    )
    parser.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help=(
            "persist design evaluations and sweep measurements under "
            "DIR; reruns and crash-resumed runs warm-start from it"
        ),
    )
    parser.add_argument(
        "--context",
        default=None,
        metavar="FINGERPRINT",
        help=(
            "evaluation-context fingerprint for 'store gc' (keep only "
            "this context) and 'store invalidate' (drop this context)"
        ),
    )
    parser.add_argument(
        "--benchmarks",
        default="",
        help="comma-separated benchmark subset (reproduction commands)",
    )
    parser.add_argument(
        "--benchmark",
        default="jacobi-2d",
        help="single benchmark for the tooling commands",
    )
    parser.add_argument(
        "--design",
        choices=("baseline", "pipe", "hetero"),
        default="hetero",
        help="which design the tooling commands act on",
    )
    parser.add_argument(
        "--output",
        default=None,
        help="output directory for codegen / program / submit "
        "(codegen defaults to 'generated')",
    )
    parser.add_argument(
        "--program",
        default="blur-sobel-threshold",
        help="program benchmark for the 'program' command",
    )
    parser.add_argument(
        "--schedule",
        choices=("coresident", "timeshared"),
        default="coresident",
        help="program composition schedule ('program' command)",
    )
    parser.add_argument(
        "--grid",
        default=None,
        metavar="NxM",
        help="shared grid override for 'program' (e.g. 64x64)",
    )
    parser.add_argument(
        "--iterations",
        type=int,
        default=None,
        help="per-stage iteration override for 'program'",
    )
    parser.add_argument(
        "--host",
        default="127.0.0.1",
        help="bind address for 'serve'",
    )
    parser.add_argument(
        "--port",
        type=int,
        default=8349,
        help="bind port for 'serve' (0 picks a free port)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=2,
        help="worker threads for 'serve'",
    )
    parser.add_argument(
        "--worker-processes",
        type=int,
        default=0,
        metavar="N",
        help=(
            "'serve': shard the service across N worker processes "
            "(one warm evaluator each, coordinating through the "
            "shared --store); 0 keeps the in-process thread pool"
        ),
    )
    parser.add_argument(
        "--frontend",
        choices=("threaded", "async"),
        default="threaded",
        help=(
            "'serve' HTTP frontend: 'threaded' (one thread per "
            "connection) or 'async' (one event loop; use for large "
            "polling fan-in)"
        ),
    )
    parser.add_argument(
        "--queue-depth",
        type=int,
        default=64,
        help=(
            "admission-control bound for 'serve'; a full queue "
            "rejects jobs with HTTP 429 + Retry-After"
        ),
    )
    parser.add_argument(
        "--job-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-job deadline ('serve' default / 'submit' override)",
    )
    parser.add_argument(
        "--url",
        default="http://127.0.0.1:8349",
        help="service base URL for 'submit'",
    )
    parser.add_argument(
        "--priority",
        type=int,
        default=0,
        help="job priority for 'submit' (higher runs first)",
    )
    parser.add_argument(
        "--no-wait",
        action="store_true",
        help="'submit': return the job id without waiting",
    )
    parser.add_argument(
        "--wait-timeout",
        type=float,
        default=300.0,
        metavar="SECONDS",
        help="'submit': bound on waiting for the result",
    )
    parser.add_argument(
        "--tiered",
        action="store_true",
        help=(
            "route design-space exploration through the tiered "
            "screen-then-refine SearchDriver (same best designs, far "
            "fewer exact evaluations; with --store, interrupted "
            "searches resume from searches.jsonl)"
        ),
    )
    parser.add_argument(
        "--chunk-size",
        type=int,
        default=1024,
        metavar="N",
        help="candidates per tiered-search chunk (with --tiered)",
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help=(
            "enable observability and write a merged Chrome/Perfetto "
            "trace (DSE spans + simulator phase timelines) to PATH"
        ),
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help=(
            "enable observability and write the structured run report "
            "(counters, derived rates, latency histograms) to PATH"
        ),
    )
    parser.add_argument(
        "--telemetry",
        default=None,
        metavar="PATH",
        help=(
            "'serve': journal per-job flight records and periodic "
            "metric snapshots to PATH (defaults to "
            "STORE/telemetry.jsonl when --store is given); "
            "'obs top': read the dashboard from this journal"
        ),
    )
    parser.add_argument(
        "--slo-p99",
        type=float,
        default=120.0,
        metavar="SECONDS",
        help=(
            "'serve': p99 job-latency objective behind the derived "
            "service.slo.* gauges on /metricsz"
        ),
    )
    parser.add_argument(
        "--interval",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="'obs top': refresh interval",
    )
    parser.add_argument(
        "--frames",
        type=int,
        default=None,
        metavar="N",
        help="'obs top': stop after N refreshes (default: run forever)",
    )
    parser.add_argument(
        "--sim-backend",
        choices=("auto", "numpy", "jit"),
        default=None,
        help=(
            "value-execution simulator backend: 'jit' compiles designs "
            "to native code (bitwise-identical to numpy; see "
            "docs/SIM.md), 'numpy' forces the interpreter, 'auto' "
            "picks jit when a C compiler is present (default: the "
            "REPRO_SIM_BACKEND environment variable, then 'auto')"
        ),
    )
    parser.add_argument(
        "--execute-check",
        action="store_true",
        help=(
            "'figure7': also execute every swept design point on real "
            "data (scaled one-region replicas) and verify the result "
            "bitwise against the naive reference"
        ),
    )
    parser.add_argument(
        "--log-level",
        default=None,
        metavar="LEVEL",
        help=(
            "repro.* log level (debug/info/warning/error; also "
            "settable via REPRO_LOG_LEVEL)"
        ),
    )
    args = parser.parse_args(argv)

    if args.log_level is not None:
        obs.configure_logging(level=args.log_level)
    observing = args.trace_out is not None or args.metrics_out is not None
    if observing:
        obs.enable()
    log = obs.get_logger("experiments")

    if args.experiment == "store":
        print("\n".join(_cmd_store(args, parser)))
        return 0
    if args.experiment == "obs":
        return _cmd_obs(args, parser)

    from repro.sim import jit as sim_jit

    if args.sim_backend is not None:
        sim_jit.set_default_backend(args.sim_backend)
    session = _StoreSession(args.store, sim_backend=args.sim_backend)
    try:
        with obs.span(f"cli.{args.experiment}", benchmark=args.benchmark):
            outputs = _dispatch(args, session)
        outputs.extend(session.summary_lines())
        report = sim_jit.backend_report(args.sim_backend)
        outputs.append(
            f"Sim backend: {report['resolved']} "
            f"(requested {report['requested']}, compiler "
            f"{report['compiler'] or 'none'})"
        )
    finally:
        session.close()
    if observing:
        if args.trace_out is not None:
            path = obs.export_chrome_trace(args.trace_out)
            log.info("wrote Chrome/Perfetto trace to %s", path)
            outputs.append(f"Wrote trace {path}")
        if args.metrics_out is not None:
            path = obs.export_run_report(args.metrics_out)
            log.info("wrote run report to %s", path)
            outputs.append(f"Wrote metrics report {path}")
    print("\n\n".join(outputs))
    return 0


def _dispatch(args, session: _StoreSession) -> List[str]:
    """Run the selected experiment/tool; return its output sections."""
    outputs: List[str] = []
    if args.experiment in ("table2", "all"):
        outputs.append(render_table2(run_table2()))
    if args.experiment in ("table3", "all"):
        outputs.append(
            render_table3(
                run_table3(
                    _parse_benchmarks(args.benchmarks, PAPER_SUITE),
                    evaluator=session.evaluator(),
                    executor=session.executor(),
                )
            )
        )
    if args.experiment in ("figure6", "all"):
        outputs.append(
            render_figure6(
                run_figure6(
                    evaluator=session.evaluator(),
                    executor=session.executor(),
                )
            )
        )
    if args.experiment in ("figure7", "all"):
        outputs.append(
            render_figure7(
                run_figure7(
                    _parse_benchmarks(args.benchmarks, FIGURE7_BENCHMARKS),
                    evaluator=session.evaluator(),
                    executor=session.executor(),
                    check_execution=args.execute_check,
                    sim_backend=session.sim_backend,
                )
            )
        )
    if args.experiment == "optimize":
        outputs.append("\n".join(_cmd_optimize(args, session)))
    if args.experiment == "simulate":
        outputs.append("\n".join(_cmd_simulate(args, session)))
    if args.experiment == "codegen":
        outputs.append("\n".join(_cmd_codegen(args, session)))
    if args.experiment == "calibrate":
        outputs.append("\n".join(_cmd_calibrate(args)))
    if args.experiment == "program":
        outputs.append("\n".join(_cmd_program(args, session)))
    if args.experiment == "serve":
        outputs.append("\n".join(_cmd_serve(args, session)))
    if args.experiment == "submit":
        outputs.append("\n".join(_cmd_submit(args)))
    return outputs


def _cmd_obs(args, parser: argparse.ArgumentParser) -> int:
    """The ``obs`` subcommand (currently only ``top``)."""
    from repro.obs.top import run_top

    if args.action not in _OBS_ACTIONS:
        parser.error(f"obs requires an action: {', '.join(_OBS_ACTIONS)}")
    if args.telemetry is not None:
        return run_top(
            journal=args.telemetry,
            interval_s=args.interval,
            frames=args.frames,
        )
    return run_top(
        url=args.url,
        interval_s=args.interval,
        frames=args.frames,
    )


def _cmd_store(args, parser: argparse.ArgumentParser) -> List[str]:
    """The ``store`` maintenance subcommand (stats/compact/gc/invalidate)."""
    from repro.store import DesignStore

    if args.action not in _STORE_ACTIONS:
        parser.error(
            f"store requires an action: {', '.join(_STORE_ACTIONS)}"
        )
    if not args.store:
        parser.error("store maintenance requires --store DIR")
    root = pathlib.Path(args.store) / _StoreSession.RESULTS_DIR
    with DesignStore(root) as store:
        if args.action == "stats":
            return [json.dumps(store.stats_summary(), indent=1)]
        if args.action == "compact":
            outcome = store.compact()
            return [
                f"Compacted {root}: folded "
                f"{outcome['journal_folded']} journal record(s) into a "
                f"{outcome['snapshot_entries']}-entry snapshot"
            ]
        if args.action == "gc":
            dropped = store.gc(keep_context=args.context)
            return [
                f"GC {root}: dropped {dropped} unusable entr"
                f"{'y' if dropped == 1 else 'ies'}, "
                f"{len(store)} kept"
            ]
        dropped = store.invalidate(context=args.context)
        scope = args.context or "all contexts"
        return [
            f"Invalidated {dropped} entr"
            f"{'y' if dropped == 1 else 'ies'} ({scope}), "
            f"{len(store)} kept"
        ]


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
