"""Plain-text table rendering for the experiment harness."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render an ASCII table with right-aligned numeric columns."""
    materialized: List[List[str]] = [
        [_fmt(cell) for cell in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in materialized:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(
        " | ".join(h.ljust(w) for h, w in zip(headers, widths))
    )
    lines.append(sep)
    for row in materialized:
        lines.append(
            " | ".join(cell.rjust(w) for cell, w in zip(row, widths))
        )
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1e6 or abs(cell) < 1e-3:
            return f"{cell:.3e}"
        return f"{cell:.3f}".rstrip("0").rstrip(".")
    if isinstance(cell, tuple):
        return "x".join(str(v) for v in cell)
    return str(cell)


def format_shape(shape: Sequence[int]) -> str:
    """``(a, b)`` as ``a x b``."""
    return " x ".join(str(s) for s in shape)


def render_series_chart(
    xs: Sequence[float],
    series: Sequence[tuple],
    height: int = 10,
    width: int = 60,
    title: str = "",
) -> str:
    """A small ASCII line chart for latency-vs-parameter sweeps.

    Args:
        xs: x positions (e.g. fused depths).
        series: ``(marker_char, ys)`` pairs plotted on a shared scale.
        height: rows of the plotting area.
        width: columns of the plotting area.
        title: optional heading.

    Returns:
        Multi-line string (a Fig. 7-style panel for terminals).
    """
    if not xs or not series:
        return title
    all_ys = [y for _, ys in series for y in ys]
    lo, hi = min(all_ys), max(all_ys)
    span = (hi - lo) or 1.0
    x_lo, x_hi = min(xs), max(xs)
    x_span = (x_hi - x_lo) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for marker, ys in series:
        for x, y in zip(xs, ys):
            col = int((x - x_lo) / x_span * (width - 1))
            row = height - 1 - int((y - lo) / span * (height - 1))
            grid[row][col] = marker
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(f"{hi:10.3e} +" + "-" * width)
    for row in grid:
        lines.append(" " * 11 + "|" + "".join(row))
    lines.append(f"{lo:10.3e} +" + "-" * width)
    lines.append(
        " " * 12 + f"{x_lo:g}".ljust(width - 8) + f"{x_hi:g}".rjust(8)
    )
    return "\n".join(lines)
