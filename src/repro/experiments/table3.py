"""Table 3: baseline vs heterogeneous — parameters, resources, speedup.

For every benchmark: fix the baseline at the paper's reported design
point, explore the heterogeneous space within the baseline's resource
budget (same parallelism, region layout, and unroll — Section 5.4's
methodology), then *measure* both designs on the cycle simulator and
report design parameters, estimated resources, and speedup.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.dse.evaluator import CandidateEvaluator
from repro.dse.optimizer import optimize_heterogeneous
from repro.experiments.configs import PAPER_TABLE3, TABLE3_CONFIGS
from repro.experiments.report import format_shape, render_table
from repro.fpga.estimator import ResourceEstimator
from repro.fpga.resources import ResourceVector
from repro.opencl.platform import ADM_PCIE_7V3, BoardSpec
from repro.stencil.library import PAPER_SUITE
from repro.store.checkpoint import CheckpointedExecutor
from repro.tiling.design import StencilDesign


@dataclass(frozen=True)
class Table3Row:
    """One benchmark's measured comparison."""

    benchmark: str
    baseline: StencilDesign
    heterogeneous: StencilDesign
    baseline_resources: ResourceVector
    hetero_resources: ResourceVector
    baseline_cycles: float
    hetero_cycles: float

    @property
    def speedup(self) -> float:
        """Simulated baseline/heterogeneous latency ratio."""
        return self.baseline_cycles / self.hetero_cycles

    @property
    def paper_speedup(self) -> Optional[float]:
        """The paper's reported speedup for this benchmark."""
        row = PAPER_TABLE3.get(self.benchmark)
        return row.speedup if row else None

    @property
    def bram_saving(self) -> float:
        """Fractional BRAM reduction of the heterogeneous design."""
        if self.baseline_resources.bram18 == 0:
            return 0.0
        return 1.0 - (
            self.hetero_resources.bram18 / self.baseline_resources.bram18
        )


def run_table3(
    benchmarks: Sequence[str] = PAPER_SUITE,
    board: BoardSpec = ADM_PCIE_7V3,
    evaluator: Optional[CandidateEvaluator] = None,
    executor: Optional[CheckpointedExecutor] = None,
) -> List[Table3Row]:
    """Regenerate Table 3's rows on the simulator.

    Args:
        benchmarks: suite subset to run.
        board: target platform.
        evaluator: shared scoring engine — pass a store-backed one
            (``CandidateEvaluator(store=...)``) to warm-start the
            heterogeneous search from persisted evaluations.
        executor: measurement front door — pass a checkpointed one to
            make the simulator measurements resumable.
    """
    evaluator = evaluator or CandidateEvaluator(
        board=board, estimator=ResourceEstimator()
    )
    executor = executor or CheckpointedExecutor(board)
    rows: List[Table3Row] = []
    for name in benchmarks:
        config = TABLE3_CONFIGS[name]
        baseline = config.baseline()
        spec = baseline.spec
        hetero = optimize_heterogeneous(
            spec, baseline, board, evaluator=evaluator
        ).best.design
        rows.append(
            Table3Row(
                benchmark=name,
                baseline=baseline,
                heterogeneous=hetero,
                baseline_resources=evaluator.resources(baseline).total,
                hetero_resources=evaluator.resources(hetero).total,
                baseline_cycles=executor.total_cycles(baseline),
                hetero_cycles=executor.total_cycles(hetero),
            )
        )
    return rows


def mean_speedup(rows: Sequence[Table3Row]) -> float:
    """Arithmetic mean speedup across benchmarks (the paper's 1.65X)."""
    return sum(r.speedup for r in rows) / len(rows)


def render_table3(rows: Sequence[Table3Row]) -> str:
    """ASCII rendering mirroring the paper's Table 3 layout."""
    body: List[Tuple] = []
    for r in rows:
        paper = PAPER_TABLE3.get(r.benchmark)
        for label, design, res, cycles, perf in (
            (
                "Baseline",
                r.baseline,
                r.baseline_resources,
                r.baseline_cycles,
                1.0,
            ),
            (
                "Heterogeneous",
                r.heterogeneous,
                r.hetero_resources,
                r.hetero_cycles,
                r.speedup,
            ),
        ):
            slowest = design.slowest_tile()
            body.append(
                (
                    r.benchmark,
                    label,
                    design.fused_depth,
                    format_shape(slowest.shape),
                    format_shape(design.tile_grid.counts),
                    res.ff,
                    res.lut,
                    res.dsp,
                    res.bram18,
                    perf,
                    paper.speedup if label == "Heterogeneous" and paper
                    else "",
                )
            )
    table = render_table(
        [
            "Benchmark",
            "Optimization",
            "#Fused",
            "Tile Size",
            "Parallelism",
            "FF",
            "LUT",
            "DSP",
            "BRAM",
            "Perf.",
            "Paper",
        ],
        body,
        title="Table 3: Experimental Results of Stencil Benchmark Suite",
    )
    return (
        f"{table}\n"
        f"Mean speedup: {mean_speedup(list(rows)):.2f}X "
        f"(paper: 1.65X)"
    )


if __name__ == "__main__":  # pragma: no cover
    print(render_table3(run_table3()))
