"""Figure 7: analytical-model validation against the (simulated) testbed.

For each benchmark, sweep the fused-iteration depth ``h`` on the
heterogeneous design and compare the analytical model's predicted
latency against the cycle simulator's measurement.  The paper's
observations, which this harness re-checks:

- the model tracks the measured scaling trend;
- it systematically *underestimates* (it does not model the sequential
  kernel-launch delay, which the simulator does);
- the average error is around 12 %;
- the model-optimal ``h`` matches the measured-optimal ``h``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.dse.evaluator import CandidateEvaluator
from repro.experiments.configs import TABLE3_CONFIGS
from repro.experiments.report import render_table
from repro.model.predictor import Fidelity
from repro.opencl.platform import ADM_PCIE_7V3, BoardSpec
from repro.store.checkpoint import CheckpointedExecutor
from repro.tiling.heterogeneous import make_heterogeneous_design

#: The six benchmarks of the paper's Fig. 7 panels.
FIGURE7_BENCHMARKS: Tuple[str, ...] = (
    "jacobi-2d",
    "jacobi-3d",
    "hotspot-2d",
    "hotspot-3d",
    "fdtd-2d",
    "fdtd-3d",
)


@dataclass(frozen=True)
class Figure7Series:
    """One panel: model vs measurement across fused depths."""

    benchmark: str
    depths: Tuple[int, ...]
    predicted: Tuple[float, ...]
    measured: Tuple[float, ...]

    @property
    def errors(self) -> Tuple[float, ...]:
        """Per-point relative error ``(measured - predicted)/measured``."""
        return tuple(
            (m - p) / m for m, p in zip(self.measured, self.predicted)
        )

    @property
    def mean_abs_error(self) -> float:
        """Mean absolute relative error across the sweep."""
        errors = self.errors
        return sum(abs(e) for e in errors) / len(errors)

    @property
    def underestimates(self) -> bool:
        """True when the model never exceeds the measurement."""
        return all(p <= m * 1.0001 for p, m in zip(
            self.predicted, self.measured
        ))

    @property
    def optimal_depth_match(self) -> bool:
        """True when picking the model-optimal ``h`` is measured-optimal.

        The paper reports the model's optimal fused-iteration count
        always matching the measured optimum.  We check the property
        that actually matters to the optimizer: running the design at
        the model's chosen depth costs at most 2 % over the best
        measured depth (exact ties between neighboring depths are
        common on the flat part of the curve).
        """
        predicted_best = min(
            range(len(self.depths)), key=lambda i: self.predicted[i]
        )
        measured_best = min(self.measured)
        return self.measured[predicted_best] <= 1.02 * measured_best


def _depth_sweep(baseline_depth: int, total_iterations: int) -> List[int]:
    """The swept depths: geometric-ish ladder around the baseline's."""
    candidates = sorted(
        {
            max(1, baseline_depth // 4),
            max(1, baseline_depth // 2),
            baseline_depth,
            baseline_depth * 2,
            baseline_depth * 3,
            baseline_depth * 4,
            baseline_depth * 6,
            baseline_depth * 8,
        }
    )
    return [h for h in candidates if h <= total_iterations]


def _check_execution(
    executor: CheckpointedExecutor,
    config,
    region: Tuple[int, ...],
    h: int,
) -> None:
    """Bitwise-verify value execution of one swept design point.

    The paper-scale grids are too large to execute in full, so the
    check runs a *scaled replica*: the same stencil, tile partition,
    cone depth, and unroll, but on a one-region grid for ``h``
    iterations.  The executor's backend (jit or numpy) must match the
    naive reference executor bit for bit — the same contract the
    parity test suite enforces, re-checked here on the exact design
    family the sweep measures.
    """
    import numpy as np

    from repro.errors import SimulationError
    from repro.stencil.reference import run_reference

    spec = config.spec().with_grid(region).with_iterations(h)
    replica = make_heterogeneous_design(
        spec, region, config.counts, h, config.unroll
    )
    produced = executor.execute(replica)
    expected = run_reference(spec)
    for fname, grid in expected.items():
        if not np.array_equal(grid, produced[fname]):
            raise SimulationError(
                f"Execution check failed for {config.name} at h={h} on "
                f"the {executor.resolved_backend()} backend: field "
                f"{fname!r} diverged from the reference"
            )


def run_figure7(
    benchmarks: Sequence[str] = FIGURE7_BENCHMARKS,
    board: BoardSpec = ADM_PCIE_7V3,
    fidelity: Fidelity = Fidelity.REFINED,
    evaluator: Optional[CandidateEvaluator] = None,
    executor: Optional[CheckpointedExecutor] = None,
    check_execution: bool = False,
    sim_backend: Optional[str] = None,
) -> List[Figure7Series]:
    """Regenerate the model-validation sweeps.

    ``evaluator``/``executor`` follow the same warm-start/resume
    contract as :func:`repro.experiments.table3.run_table3`; the
    evaluator must match ``board``/``fidelity`` when supplied.

    With ``check_execution=True``, every swept design point is also
    *executed* on real data (a one-region scaled replica — the full
    paper-scale grids do not fit in memory) and verified bitwise
    against the naive reference, on the backend selected by
    ``sim_backend`` (default: process default / ``REPRO_SIM_BACKEND``
    / ``auto``).  Raises :class:`~repro.errors.SimulationError` on
    any divergence.
    """
    evaluator = evaluator or CandidateEvaluator(
        board=board, fidelity=fidelity
    )
    executor = executor or CheckpointedExecutor(
        board, sim_backend=sim_backend
    )
    series: List[Figure7Series] = []
    for name in benchmarks:
        config = TABLE3_CONFIGS[name]
        baseline = config.baseline()
        spec = baseline.spec
        region = baseline.tile_grid.region_shape
        depths = _depth_sweep(config.fused_depth, spec.iterations)
        predicted: List[float] = []
        measured: List[float] = []
        for h in depths:
            design = make_heterogeneous_design(
                spec, region, config.counts, h, config.unroll
            )
            predicted.append(evaluator.predict_cycles(design))
            measured.append(executor.total_cycles(design))
            if check_execution:
                _check_execution(executor, config, region, h)
        series.append(
            Figure7Series(
                benchmark=name,
                depths=tuple(depths),
                predicted=tuple(predicted),
                measured=tuple(measured),
            )
        )
    return series


def mean_error(series: Sequence[Figure7Series]) -> float:
    """Average absolute model error across all panels (paper: ~12 %)."""
    return sum(s.mean_abs_error for s in series) / len(series)


def render_figure7(
    series: Sequence[Figure7Series], charts: bool = True
) -> str:
    """ASCII rendering of the validation sweeps (table + panels)."""
    from repro.experiments.report import render_series_chart

    rows = []
    for s in series:
        for h, p, m, e in zip(s.depths, s.predicted, s.measured, s.errors):
            rows.append((s.benchmark, h, p, m, f"{e:+.1%}"))
    table = render_table(
        ["Benchmark", "h", "Predicted", "Measured", "Error"],
        rows,
        title="Figure 7: Validation of Performance Model",
    )
    parts = [table]
    if charts:
        for s in series:
            parts.append(
                render_series_chart(
                    [float(h) for h in s.depths],
                    [("P", s.predicted), ("M", s.measured)],
                    title=(
                        f"{s.benchmark}: P = predicted, M = measured "
                        f"(cycles vs fused depth h)"
                    ),
                )
            )
    summary = [
        f"Mean |error|: {mean_error(list(series)):.1%} (paper: ~12%)",
    ]
    for s in series:
        summary.append(
            f"  {s.benchmark}: mean |err| {s.mean_abs_error:.1%}, "
            f"underestimates={s.underestimates}, "
            f"optimal-h match={s.optimal_depth_match}"
        )
    return "\n\n".join(parts) + "\n" + "\n".join(summary)


if __name__ == "__main__":  # pragma: no cover
    print(render_figure7(run_figure7()))
