"""repro — reproduction of "A Comprehensive Framework for Synthesizing
Stencil Algorithms on FPGAs using OpenCL Model" (Wang & Liang, DAC 2017).

The package implements the paper's full stack from scratch:

- :mod:`repro.stencil` — declarative iterative-stencil workloads
  (the Table 2 suite and more) with a golden numpy reference.
- :mod:`repro.frontend` — an OpenCL-C subset parser + feature extractor.
- :mod:`repro.opencl` / :mod:`repro.fpga` — the OpenCL-on-FPGA machine
  model: board, NDRange, pipes, burst memory, resources, BRAM packing,
  and a FlexCL-style II estimator.
- :mod:`repro.tiling` — the paper's architecture layer: overlapped
  baseline tiling, pipe-shared tiling, and workload-balanced
  heterogeneous tiling.
- :mod:`repro.model` — the analytical performance model (Eqs. 1-11).
- :mod:`repro.dse` — the model-driven performance optimizer.
- :mod:`repro.codegen` — the automatic OpenCL kernel/host generator.
- :mod:`repro.sim` — a cycle-approximate execution simulator (the
  "testbed") and a functional executor that matches the reference
  bitwise.
- :mod:`repro.experiments` — regenerates every table and figure.

Quickstart::

    from repro import (
        jacobi_2d, make_baseline_design, optimize_heterogeneous, simulate,
    )
    spec = jacobi_2d()
    baseline = make_baseline_design(spec, (128, 128), (4, 4), 32, unroll=4)
    hetero = optimize_heterogeneous(spec, baseline).best.design
    print(simulate(baseline).total_cycles / simulate(hetero).total_cycles)
"""

from repro.errors import (
    CodegenError,
    DesignSpaceError,
    ExtractionError,
    FrontendError,
    ParseError,
    PipeError,
    ReproError,
    ResourceError,
    SimulationError,
    SpecificationError,
)
from repro.stencil import (
    BENCHMARKS,
    PAPER_SUITE,
    BoundaryPolicy,
    StencilPattern,
    StencilSpec,
    Tap,
    fdtd_2d,
    fdtd_3d,
    get_benchmark,
    hotspot_2d,
    hotspot_3d,
    jacobi_1d,
    jacobi_2d,
    jacobi_3d,
    run_reference,
)
from repro.frontend import extract_features, extract_pattern
from repro.opencl import ADM_PCIE_7V3, BoardSpec, Pipe
from repro.fpga import (
    VIRTEX7_690T,
    FlexCLEstimator,
    FpgaDevice,
    ResourceVector,
)
from repro.fpga.estimator import ResourceEstimator, estimate_resources
from repro.tiling import (
    DesignKind,
    StencilDesign,
    TileGrid,
    make_baseline_design,
    make_heterogeneous_design,
    make_pipe_shared_design,
)
from repro.model import (
    Fidelity,
    LatencyBreakdown,
    PerformanceModel,
    predict_latency,
)
from repro.dse import (
    CandidateEvaluator,
    DSEResult,
    EvaluationStats,
    Optimizer,
    optimize_baseline,
    optimize_full,
    optimize_heterogeneous,
    optimize_pipe_shared,
)
from repro.codegen import GeneratedProgram, generate_program
from repro.api import SynthesisResult, synthesize
from repro.sim import (
    FunctionalExecutor,
    SimulationExecutor,
    SimulationResult,
    run_functional,
    simulate,
)

__version__ = "1.0.0"

__all__ = [
    # errors
    "ReproError",
    "SpecificationError",
    "FrontendError",
    "ParseError",
    "ExtractionError",
    "ResourceError",
    "DesignSpaceError",
    "SimulationError",
    "PipeError",
    "CodegenError",
    # stencil
    "BENCHMARKS",
    "PAPER_SUITE",
    "BoundaryPolicy",
    "StencilPattern",
    "StencilSpec",
    "Tap",
    "jacobi_1d",
    "jacobi_2d",
    "jacobi_3d",
    "hotspot_2d",
    "hotspot_3d",
    "fdtd_2d",
    "fdtd_3d",
    "get_benchmark",
    "run_reference",
    # frontend
    "extract_features",
    "extract_pattern",
    # machine model
    "ADM_PCIE_7V3",
    "BoardSpec",
    "Pipe",
    "VIRTEX7_690T",
    "FpgaDevice",
    "ResourceVector",
    "FlexCLEstimator",
    "ResourceEstimator",
    "estimate_resources",
    # designs
    "DesignKind",
    "StencilDesign",
    "TileGrid",
    "make_baseline_design",
    "make_pipe_shared_design",
    "make_heterogeneous_design",
    # model
    "Fidelity",
    "LatencyBreakdown",
    "PerformanceModel",
    "predict_latency",
    # dse
    "CandidateEvaluator",
    "DSEResult",
    "EvaluationStats",
    "Optimizer",
    "optimize_baseline",
    "optimize_full",
    "optimize_pipe_shared",
    "optimize_heterogeneous",
    # codegen
    "GeneratedProgram",
    "generate_program",
    # facade
    "SynthesisResult",
    "synthesize",
    # sim
    "FunctionalExecutor",
    "SimulationExecutor",
    "SimulationResult",
    "run_functional",
    "simulate",
    "__version__",
]
