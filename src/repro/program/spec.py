"""The multi-stencil program IR: a DAG of dependent stencil stages.

The paper synthesizes one stencil at a time; real workloads are
*chains* of dependent stencils (StencilFlow maps whole DAGs of stencil
operators onto spatial hardware).  A :class:`ProgramSpec` lifts the
single-workload :class:`~repro.stencil.spec.StencilSpec` to a program:

- a **stage** is a named, fully-specified stencil workload (its own
  pattern, grid, iteration count, dtype, boundary, and deterministic
  initial state);
- an **edge** declares that one stage's final field feeds another
  stage's input — either a state field (its initial value) or a
  read-only auxiliary array.

Validation is strict and structural: edges must reference known
stages/fields, connected stages must agree on grid shape, dtype, and
boundary policy (the bitwise-parity contract composes stage by stage,
so a silent cast or resample would be a correctness bug), at most one
edge may feed any given input, and the stage graph must be acyclic.
Execution order is the deterministic topological order that respects
stage declaration order among independent stages.

Like every other cacheable object in the framework, a program has a
canonical :meth:`ProgramSpec.signature` — equal signatures imply
identical model, search, and simulation results — so the
content-addressed :class:`~repro.store.backing.DesignStore`, the
evaluator memo, and service request coalescing all work unchanged for
programs (see ``docs/PROGRAMS.md``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.errors import SpecificationError
from repro.stencil.spec import StencilSpec


@dataclass(frozen=True)
class ProgramStage:
    """One named stage of a stencil program."""

    name: str
    spec: StencilSpec

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise SpecificationError("Stage name must be a non-empty string")


@dataclass(frozen=True)
class ProgramEdge:
    """One dataflow edge: a produced field feeding a consumer input.

    Attributes:
        producer: name of the stage whose final state is read.
        field: the producer field that flows along the edge.
        consumer: name of the stage receiving the data.
        target: the consumer input fed — a state field (the edge sets
            its initial value) or an auxiliary array name (the edge
            supplies the read-only input).
    """

    producer: str
    field: str
    consumer: str
    target: str


@dataclass(frozen=True)
class ProgramSpec:
    """A validated DAG of dependent stencil stages.

    Attributes:
        name: program name (e.g. ``"blur-sobel-threshold"``).
        stages: the stages, in declaration order.
        edges: inter-stage dataflow edges.
    """

    name: str
    stages: Tuple[ProgramStage, ...]
    edges: Tuple[ProgramEdge, ...] = ()
    _order: Tuple[str, ...] = field(
        init=False, repr=False, compare=False, default=()
    )

    def __post_init__(self) -> None:
        object.__setattr__(self, "stages", tuple(self.stages))
        object.__setattr__(self, "edges", tuple(self.edges))
        if not self.stages:
            raise SpecificationError(
                f"Program {self.name!r} needs at least one stage"
            )
        names = [stage.name for stage in self.stages]
        if len(set(names)) != len(names):
            seen = {n for n in names if names.count(n) > 1}
            raise SpecificationError(
                f"Duplicate stage name(s) in program {self.name!r}: "
                f"{sorted(seen)}"
            )
        by_name = {stage.name: stage for stage in self.stages}
        fed: Dict[Tuple[str, str], ProgramEdge] = {}
        for edge in self.edges:
            self._check_edge(edge, by_name)
            key = (edge.consumer, edge.target)
            if key in fed:
                other = fed[key]
                raise SpecificationError(
                    f"Input {edge.target!r} of stage {edge.consumer!r} is "
                    f"fed by two edges (from {other.producer!r} and "
                    f"{edge.producer!r})"
                )
            fed[key] = edge
        object.__setattr__(self, "_order", self._topological_order())

    # -- validation ------------------------------------------------------------

    def _check_edge(
        self, edge: ProgramEdge, by_name: Dict[str, ProgramStage]
    ) -> None:
        for role, stage_name in (
            ("producer", edge.producer),
            ("consumer", edge.consumer),
        ):
            if stage_name not in by_name:
                raise SpecificationError(
                    f"Edge {role} {stage_name!r} is not a stage of "
                    f"program {self.name!r} (stages: "
                    f"{[s.name for s in self.stages]})"
                )
        if edge.producer == edge.consumer:
            raise SpecificationError(
                f"Stage {edge.producer!r} cannot feed itself"
            )
        producer = by_name[edge.producer].spec
        consumer = by_name[edge.consumer].spec
        if edge.field not in producer.pattern.fields:
            raise SpecificationError(
                f"Edge reads unknown field {edge.field!r} of stage "
                f"{edge.producer!r} (fields: {producer.pattern.fields})"
            )
        known = set(consumer.pattern.fields) | set(consumer.pattern.aux)
        if edge.target not in known:
            raise SpecificationError(
                f"Edge feeds unknown input {edge.target!r} of stage "
                f"{edge.consumer!r} (fields: {consumer.pattern.fields}, "
                f"aux: {consumer.pattern.aux})"
            )
        if producer.grid_shape != consumer.grid_shape:
            raise SpecificationError(
                f"Edge {edge.producer!r}->{edge.consumer!r}: grid shapes "
                f"differ ({producer.grid_shape} vs {consumer.grid_shape}); "
                "inter-stage fields flow without resampling"
            )
        if producer.dtype != consumer.dtype:
            raise SpecificationError(
                f"Edge {edge.producer!r}->{edge.consumer!r}: dtypes differ "
                f"({producer.dtype} vs {consumer.dtype}); a silent cast "
                "would break the bitwise-parity contract"
            )
        if producer.boundary is not consumer.boundary:
            raise SpecificationError(
                f"Edge {edge.producer!r}->{edge.consumer!r}: boundary "
                f"policies differ ({producer.boundary.name} vs "
                f"{consumer.boundary.name})"
            )

    def _topological_order(self) -> Tuple[str, ...]:
        """Deterministic Kahn's algorithm (declaration order breaks ties)."""
        names = [stage.name for stage in self.stages]
        indegree = {name: 0 for name in names}
        successors: Dict[str, List[str]] = {name: [] for name in names}
        for edge in self.edges:
            if edge.consumer not in successors[edge.producer]:
                successors[edge.producer].append(edge.consumer)
            indegree[edge.consumer] += 1
        # Count each (producer, consumer) pair once for the indegree.
        indegree = {name: 0 for name in names}
        for name, succ in successors.items():
            for consumer in succ:
                indegree[consumer] += 1
        order: List[str] = []
        ready = [name for name in names if indegree[name] == 0]
        while ready:
            current = ready.pop(0)
            order.append(current)
            for consumer in successors[current]:
                indegree[consumer] -= 1
                if indegree[consumer] == 0:
                    # Insert in declaration order to keep the order
                    # deterministic and stable across runs.
                    ready.append(consumer)
                    ready.sort(key=names.index)
        if len(order) != len(names):
            cyclic = sorted(set(names) - set(order))
            raise SpecificationError(
                f"Program {self.name!r} has a dependency cycle through "
                f"stage(s) {cyclic}"
            )
        return tuple(order)

    # -- accessors -------------------------------------------------------------

    @property
    def num_stages(self) -> int:
        """Number of stages."""
        return len(self.stages)

    @property
    def stage_names(self) -> Tuple[str, ...]:
        """Stage names in declaration order."""
        return tuple(stage.name for stage in self.stages)

    def stage(self, name: str) -> ProgramStage:
        """Look up a stage by name."""
        for stage in self.stages:
            if stage.name == name:
                return stage
        raise SpecificationError(
            f"Program {self.name!r} has no stage {name!r}"
        )

    def topo_order(self) -> Tuple[str, ...]:
        """Stage names in deterministic topological (execution) order."""
        return self._order

    def edges_into(self, stage_name: str) -> Tuple[ProgramEdge, ...]:
        """Edges feeding a stage, in declaration order."""
        return tuple(e for e in self.edges if e.consumer == stage_name)

    def edges_from(self, stage_name: str) -> Tuple[ProgramEdge, ...]:
        """Edges consuming a stage's output, in declaration order."""
        return tuple(e for e in self.edges if e.producer == stage_name)

    def external_inputs(self, stage_name: str) -> Tuple[str, ...]:
        """A stage's inputs not fed by any edge (default-initialized)."""
        spec = self.stage(stage_name).spec
        fed = {e.target for e in self.edges_into(stage_name)}
        names = tuple(spec.pattern.fields) + tuple(spec.pattern.aux)
        return tuple(n for n in names if n not in fed)

    def terminal_stages(self) -> Tuple[str, ...]:
        """Stages whose output feeds no other stage (program outputs)."""
        producers = {e.producer for e in self.edges}
        return tuple(
            s.name for s in self.stages if s.name not in producers
        )

    def signature(self) -> Tuple:
        """Canonical hashable identity of the program.

        Covers every field that influences evaluation: stage names and
        their full spec signatures (in declaration order) plus the
        sorted edge list.  Equal signatures imply identical model,
        search, and simulation results, so the signature keys the
        evaluator memo and the persistent design store.
        """
        return (
            "program",
            self.name,
            tuple(
                (stage.name, stage.spec.signature())
                for stage in self.stages
            ),
            tuple(
                sorted(
                    (e.producer, e.field, e.consumer, e.target)
                    for e in self.edges
                )
            ),
        )

    def describe(self) -> str:
        """One-line human-readable description."""
        chain = " -> ".join(self.topo_order())
        return (
            f"{self.name}: {self.num_stages} stage(s) [{chain}], "
            f"{len(self.edges)} edge(s)"
        )


class ProgramBuilder:
    """Incremental, validating constructor for :class:`ProgramSpec`.

    Example:
        >>> from repro.stencil.library import gaussian_blur_2d
        >>> builder = ProgramBuilder("pipeline")
        >>> _ = builder.stage("blur", gaussian_blur_2d(grid=(32, 32)))
        >>> spec = builder.build()
        >>> spec.num_stages
        1
    """

    def __init__(self, name: str):
        self.name = name
        self._stages: List[ProgramStage] = []
        self._edges: List[ProgramEdge] = []

    def stage(self, name: str, spec: StencilSpec) -> "ProgramBuilder":
        """Append a stage; returns the builder for chaining."""
        self._stages.append(ProgramStage(name, spec))
        return self

    def connect(
        self,
        producer: str,
        field: str,
        consumer: str,
        target: str = None,
    ) -> "ProgramBuilder":
        """Add an edge; ``target`` defaults to the produced field name."""
        self._edges.append(
            ProgramEdge(
                producer, field, consumer,
                field if target is None else target,
            )
        )
        return self

    def build(self) -> ProgramSpec:
        """Validate and freeze the program."""
        return ProgramSpec(
            name=self.name,
            stages=tuple(self._stages),
            edges=tuple(self._edges),
        )


def single_stage_program(spec: StencilSpec) -> ProgramSpec:
    """Wrap one stencil workload as a trivial one-stage program."""
    return ProgramSpec(
        name=spec.name, stages=(ProgramStage(spec.name, spec),)
    )
