"""Stage-by-stage execution of stencil programs.

Two executors share one input-wiring rule (:func:`resolve_stage_inputs`):
a stage's state fields and aux arrays default to its spec's
deterministic initial data, external overrides replace entry-stage
inputs, and every incoming edge overrides one input with a copy of the
producer stage's final field.  Because the wiring is identical, the
fused functional path is bitwise-identical to the reference composition
whenever each stage's functional executor matches its reference
executor — which is the framework's single-stencil parity contract,
extended to programs by construction.

The functional path runs each stage through
:class:`~repro.sim.functional.FunctionalExecutor`, so stages use the
JIT backend when eligible and fall back to the interpreter otherwise;
:attr:`ProgramFunctionalExecutor.stage_backends` reports which backend
actually ran each stage.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from repro.errors import SpecificationError
from repro.program.design import ProgramDesign
from repro.program.spec import ProgramSpec
from repro.sim.functional import FunctionalExecutor
from repro.stencil.reference import ReferenceExecutor

State = Dict[str, np.ndarray]
#: Final field arrays of every stage, keyed by stage name.
ProgramState = Dict[str, State]
#: Per-stage input overrides: stage name -> field/aux name -> array.
ExternalInputs = Mapping[str, Mapping[str, np.ndarray]]


def resolve_stage_inputs(
    program: ProgramSpec,
    stage_name: str,
    produced: ProgramState,
    external: Optional[ExternalInputs] = None,
) -> Tuple[State, State]:
    """Build a stage's ``(state, aux)`` inputs from upstream results.

    Args:
        program: the program being executed.
        stage_name: the stage about to run.
        produced: final states of already-executed stages.
        external: optional user-supplied input arrays, keyed by stage
            name then field/aux name (applied before edge wiring, so
            an edge-fed input always wins over an external override).

    Returns:
        The stage's initial field dict and aux dict: spec defaults with
        overrides applied, then every edge-fed input replaced by a copy
        of the producer's final field array.
    """
    spec = program.stage(stage_name).spec
    state = spec.initial_state()
    aux = spec.aux_state()
    for key, value in ((external or {}).get(stage_name, {}) or {}).items():
        array = np.asarray(value, dtype=spec.dtype)
        if array.shape != spec.grid_shape:
            raise SpecificationError(
                f"External input {key!r} for stage {stage_name!r} has "
                f"shape {array.shape}, expected {spec.grid_shape}"
            )
        if key in state:
            state[key] = array.copy()
        elif key in aux:
            aux[key] = array.copy()
        else:
            raise SpecificationError(
                f"Stage {stage_name!r} has no input named {key!r} "
                f"(fields: {spec.pattern.fields}, aux: {spec.pattern.aux})"
            )
    for edge in program.edges_into(stage_name):
        value = produced[edge.producer][edge.field].copy()
        if edge.target in state:
            state[edge.target] = value
        else:
            aux[edge.target] = value
    return state, aux


def run_program_reference(
    program: ProgramSpec, external: Optional[ExternalInputs] = None
) -> ProgramState:
    """Golden oracle: compose per-stage reference executors in topo order."""
    produced: ProgramState = {}
    for name in program.topo_order():
        spec = program.stage(name).spec
        state, aux = resolve_stage_inputs(program, name, produced, external)
        produced[name] = ReferenceExecutor(spec).run(state=state, aux=aux)
    return produced


class ProgramFunctionalExecutor:
    """Executes a mapped program stage by stage on numpy grids.

    Args:
        design: the program design to execute.
        backend: per-stage simulator backend (``"auto"``, ``"numpy"``,
            or ``"jit"``); same semantics as
            :class:`~repro.sim.functional.FunctionalExecutor`.

    Inherits the per-stage constraints of the functional simulator:
    CLAMP boundaries are rejected and every stage's grid must divide by
    its region shape (:class:`~repro.errors.SpecificationError`).
    """

    def __init__(
        self, design: ProgramDesign, backend: Optional[str] = None
    ):
        self.design = design
        self.program = design.program
        self._executors = {
            name: FunctionalExecutor(stage_design, backend=backend)
            for name, stage_design in design.stage_designs
        }
        #: Backend that ran each stage in the most recent :meth:`run`.
        self.stage_backends: Dict[str, str] = {}

    def run(
        self, external: Optional[ExternalInputs] = None
    ) -> ProgramState:
        """Execute every stage in topological order.

        Args:
            external: optional per-stage input overrides (see
                :func:`resolve_stage_inputs`).

        Returns:
            Final field arrays of every stage, keyed by stage name.
        """
        produced: ProgramState = {}
        self.stage_backends = {}
        for name in self.program.topo_order():
            executor = self._executors[name]
            state, aux = resolve_stage_inputs(
                self.program, name, produced, external
            )
            produced[name] = executor.run(state=state, aux=aux)
            self.stage_backends[name] = executor.active_backend
        return produced


def run_program_functional(
    design: ProgramDesign,
    backend: Optional[str] = None,
    external: Optional[ExternalInputs] = None,
) -> ProgramState:
    """Convenience wrapper around :class:`ProgramFunctionalExecutor`."""
    return ProgramFunctionalExecutor(design, backend=backend).run(external)
