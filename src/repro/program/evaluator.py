"""Program-candidate scoring through the single-stencil engine.

:class:`ProgramEvaluator` presents the same duck-typed surface the
tiered :class:`~repro.dse.search.SearchDriver` drives —
``screen_batch`` / ``evaluate_batch`` / ``explore`` / ``absorb_stats``
plus the ``board`` / ``fidelity`` / ``estimator`` attributes — but
over :class:`~repro.program.design.ProgramDesign` candidates.  Every
per-stage number comes from a wrapped
:class:`~repro.dse.evaluator.CandidateEvaluator` (so its signature
memo, persistent store, and batch-engine fast paths are shared with
single-stencil searches on the same engine), and the composition rules
of :mod:`repro.program.model` turn stage numbers into program totals.

Program-level results are themselves memoized and store-backed under
the :meth:`~repro.program.design.ProgramDesign.signature`, so a
program search warm-starts exactly like a single-stencil one.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import List, Optional, Sequence, Tuple

from repro import obs
from repro.dse.constraints import ResourceBudget
from repro.dse.evaluator import (
    CandidateEvaluator,
    CandidateTrace,
    DSEResult,
    EvaluatedDesign,
    EvaluationStats,
)
from repro.errors import DesignSpaceError
from repro.fpga.batch import estimate_batch
from repro.fpga.estimator import DesignResources
from repro.model.batch import (
    BatchRangeError,
    lower_bound_batch,
    predict_batch,
)
from repro.model.predictor import Fidelity
from repro.opencl.platform import ADM_PCIE_7V3, BoardSpec
from repro.program.design import ProgramDesign
from repro.program.model import (
    compose_cycles,
    compose_resources,
    program_lower_bound,
)
from repro.store.backing import BackingStore, evaluation_context
from repro.tiling.design import StencilDesign

_log = obs.get_logger("program")

#: Smallest batch worth a vectorized stage-priming pass.
_VECTOR_MIN_BATCH = 2


class ProgramEvaluator:
    """Cached scorer for :class:`ProgramDesign` candidates.

    Args:
        board: platform the stage models evaluate against (ignored
            when ``stage_engine`` is given — the engine's board wins).
        fidelity: analytical-model variant (same caveat).
        stage_engine: the single-stencil evaluator that scores stage
            designs; one is built when omitted.  Passing a warm engine
            (e.g. the service's resident evaluator) shares its memo
            and store with every other caller.
        store: optional persistent backing store for *program-level*
            entries; defaults to the stage engine's store, so one
            store serves both granularities.
        vectorize: batch-scoring mode for the stage-priming pass —
            ``None`` (auto: batches of 2+), ``True``, or ``False``.
    """

    def __init__(
        self,
        board: BoardSpec = ADM_PCIE_7V3,
        fidelity: Fidelity = Fidelity.REFINED,
        stage_engine: Optional[CandidateEvaluator] = None,
        store: Optional[BackingStore] = None,
        vectorize: Optional[bool] = None,
    ):
        if stage_engine is None:
            stage_engine = CandidateEvaluator(
                board=board, fidelity=fidelity, vectorize=vectorize
            )
        self.stage_engine = stage_engine
        self.board = stage_engine.board
        self.fidelity = stage_engine.fidelity
        self.estimator = stage_engine.estimator
        self.model = stage_engine.model
        self.vectorize = (
            stage_engine.vectorize if vectorize is None else vectorize
        )
        self.store = store if store is not None else stage_engine.store
        self.store_context = (
            evaluation_context(self.board, self.fidelity, self.estimator.flexcl)
            if self.store is not None
            else None
        )
        #: Lifetime aggregate over every evaluate/explore call.
        self.stats = EvaluationStats()
        self._results: "OrderedDict[Tuple, EvaluatedDesign]" = OrderedDict()
        self._lock = threading.Lock()

    # -- composed primitives ---------------------------------------------------

    def resources(self, design: ProgramDesign) -> DesignResources:
        """Composed program resources (stage estimates are memoized)."""
        stage_res = [
            self.stage_engine.resources(d)
            for _name, d in design.stage_designs
        ]
        return compose_resources(design.schedule, stage_res)

    def predict_cycles(self, design: ProgramDesign) -> float:
        """Composed program latency (stage predictions are memoized)."""
        cycles = [
            self.stage_engine.model.predict_cycles_cached(d)
            for _name, d in design.stage_designs
        ]
        return compose_cycles(design, cycles, self.board)

    def lower_bound(self, design: ProgramDesign) -> float:
        """Admissible composed program lower bound (cycles)."""
        bounds = [
            self.stage_engine.lower_bound(d)
            for _name, d in design.stage_designs
        ]
        return program_lower_bound(design, bounds, self.board)

    # -- store + memo plumbing -------------------------------------------------

    def _store_lookup(self, design: ProgramDesign):
        if self.store is None:
            return None
        return self.store.lookup_design(design, self.store_context)

    def _store_record(
        self,
        design: ProgramDesign,
        cycles: Optional[float] = None,
        resources: Optional[DesignResources] = None,
    ) -> None:
        if self.store is None:
            return
        self.store.record_design(
            design, self.store_context, cycles=cycles, resources=resources
        )

    # -- vectorized stage priming ----------------------------------------------

    def _prime_stages(self, candidates: Sequence[ProgramDesign]) -> None:
        """Pre-score all fresh stage designs in two batched passes.

        Primes the stage model's and estimator's signature caches with
        the (bitwise-identical) batch-engine results, so the scalar
        composition loop below never runs the scalar model.  Skipped
        silently when vectorization is off, the batch is tiny, or any
        stage is outside the batch engines' exact-parity range.
        """
        if self.vectorize is False:
            return
        unique: "OrderedDict[Tuple, StencilDesign]" = OrderedDict()
        for pdesign in candidates:
            for _name, d in pdesign.stage_designs:
                unique.setdefault(d.signature(), d)
        if self.vectorize is None and len(unique) < _VECTOR_MIN_BATCH:
            return
        designs = list(unique.values())
        if not designs:
            return
        try:
            prediction = predict_batch(
                designs,
                board=self.board,
                fidelity=self.fidelity,
                flexcl=self.model.estimator,
            )
            resources = estimate_batch(
                designs, flexcl=self.estimator.flexcl
            )
        except BatchRangeError:
            return
        for i, d in enumerate(designs):
            self.model.prime(d, prediction.breakdown(i))
            self.estimator.prime(d, resources.design_resources(i))

    # -- tier-0 screening ------------------------------------------------------

    def screen_batch(
        self,
        candidates: Sequence[ProgramDesign],
        budget: ResourceBudget,
    ) -> Tuple[List[bool], List[float], List[int]]:
        """Cheap composed screen data for one chunk.

        Returns ``(feasible, bounds, bram)`` exactly as
        :meth:`CandidateEvaluator.screen_batch` does, but composed
        along each candidate's DAG: the shared-budget feasibility
        verdict, the admissible composed lower bound, and the composed
        BRAM18 count.  Nothing is memoized — screening a huge product
        space leaves the caches O(chunk).
        """
        candidates = list(candidates)
        if not candidates:
            return [], [], []
        flat: List[StencilDesign] = []
        offsets: List[int] = []
        for pdesign in candidates:
            offsets.append(len(flat))
            flat.extend(d for _name, d in pdesign.stage_designs)
        offsets.append(len(flat))
        stage_res: Optional[List[DesignResources]] = None
        stage_bounds: Optional[List[float]] = None
        if self.vectorize is not False:
            try:
                batch_res = estimate_batch(
                    flat, flexcl=self.estimator.flexcl
                )
                batch_bounds = lower_bound_batch(
                    flat,
                    fidelity=self.fidelity,
                    flexcl=self.model.estimator,
                )
                stage_res = [
                    batch_res.design_resources(j) for j in range(len(flat))
                ]
                stage_bounds = [float(b) for b in batch_bounds]
            except BatchRangeError:
                stage_res = None
        if stage_res is None:
            stage_res = []
            stage_bounds = []
            for d in flat:
                report = self.model.pipeline_report(d)
                # An explicit report bypasses the estimator's signature
                # cache: tier-0 rejects must not grow it.
                stage_res.append(self.estimator.estimate(d, report))
                stage_bounds.append(self.stage_engine.lower_bound(d))
        feasible: List[bool] = []
        bounds: List[float] = []
        bram: List[int] = []
        for i, pdesign in enumerate(candidates):
            lo, hi = offsets[i], offsets[i + 1]
            composed = compose_resources(
                pdesign.schedule, stage_res[lo:hi]
            )
            feasible.append(composed.total.fits_within(budget.limit))
            bounds.append(
                program_lower_bound(
                    pdesign, stage_bounds[lo:hi], self.board
                )
            )
            bram.append(composed.total.bram18)
        return feasible, bounds, bram

    # -- tier-1 evaluation -----------------------------------------------------

    def _evaluate_one(
        self,
        design: ProgramDesign,
        budget: ResourceBudget,
        stats: EvaluationStats,
    ) -> Optional[EvaluatedDesign]:
        result, outcome = self._score_one(design, budget, stats)
        # Every composed candidate flows through the stage engine's
        # per-candidate hook, exactly like single-stencil candidates
        # do — the synthesis service's cancellation point lives there,
        # so a program exploration aborts within one candidate too.
        self.stage_engine._emit(
            CandidateTrace(
                design=design,
                outcome=outcome,
                predicted_cycles=(
                    result.predicted_cycles
                    if result is not None
                    else None
                ),
            )
        )
        return result

    def _score_one(
        self,
        design: ProgramDesign,
        budget: ResourceBudget,
        stats: EvaluationStats,
    ) -> Tuple[Optional[EvaluatedDesign], str]:
        stats.candidates += 1
        sig = design.signature()
        with self._lock:
            cached = self._results.get(sig)
        if cached is not None:
            stats.cache_hits += 1
            if not cached.resources.total.fits_within(budget.limit):
                stats.infeasible += 1
                return None, "infeasible"
            return cached, "cache-hit"
        stored = self._store_lookup(design)
        if stored is not None and stored.complete:
            result = EvaluatedDesign(design, stored.cycles, stored.resources)
            with self._lock:
                result = self._results.setdefault(sig, result)
            stats.store_hits += 1
            if not result.resources.total.fits_within(budget.limit):
                stats.infeasible += 1
                return None, "infeasible"
            return result, "store-hit"
        resources = self.resources(design)
        if not resources.total.fits_within(budget.limit):
            stats.infeasible += 1
            self._store_record(design, resources=resources)
            return None, "infeasible"
        cycles = self.predict_cycles(design)
        stats.evaluated += 1
        self._store_record(design, cycles=cycles, resources=resources)
        result = EvaluatedDesign(design, cycles, resources)
        with self._lock:
            result = self._results.setdefault(sig, result)
        return result, "evaluated"

    def evaluate_batch(
        self,
        candidates: Sequence[ProgramDesign],
        budget: ResourceBudget,
        stats: Optional[EvaluationStats] = None,
    ) -> List[Optional[EvaluatedDesign]]:
        """Score a batch of programs; results match input order."""
        delta = EvaluationStats()
        start = time.perf_counter()
        with obs.span(
            "program.evaluate_batch",
            candidates=len(candidates),
            budget=budget.label,
        ):
            self._prime_stages(candidates)
            results = [
                self._evaluate_one(design, budget, delta)
                for design in candidates
            ]
        delta.wall_time_s = time.perf_counter() - start
        if stats is not None:
            stats.merge(delta)
            self.absorb_stats(delta, publish=True, merge=False)
        else:
            self.absorb_stats(delta)
        return results

    def absorb_stats(
        self,
        delta: EvaluationStats,
        publish: bool = True,
        merge: bool = True,
    ) -> None:
        """Fold externally-collected counters into the lifetime stats."""
        if merge:
            with self._lock:
                self.stats.merge(delta)
        if publish and obs.enabled():
            obs.inc("program.candidates", delta.candidates)
            obs.inc("program.evaluated", delta.evaluated)
            obs.inc("program.cache_hits", delta.cache_hits)
            obs.inc("program.store_hits", delta.store_hits)
            obs.inc("program.infeasible", delta.infeasible)
            obs.inc("search.screened", delta.screened)
            obs.inc("search.promoted", delta.promoted)

    # -- exploration (passthrough / optimizer entry point) ---------------------

    def explore(
        self,
        candidates: Sequence[ProgramDesign],
        budget: ResourceBudget,
    ) -> DSEResult:
        """Evaluate program candidates; return the fastest feasible."""
        candidates = list(candidates)
        stats = EvaluationStats()
        start = time.perf_counter()
        with obs.span(
            "program.explore",
            candidates=len(candidates),
            budget=budget.label,
        ):
            results = self.evaluate_batch(candidates, budget, stats)
            feasible = [r for r in results if r is not None]
        stats.wall_time_s = time.perf_counter() - start
        with self._lock:
            self.stats.merge(stats)
        if obs.enabled():
            _log.debug("program explore: %s", stats.summary())
        if not feasible:
            raise DesignSpaceError(
                f"No feasible program design within budget {budget.label} "
                f"({len(candidates)} candidates evaluated)"
            )
        feasible.sort(key=lambda e: e.predicted_cycles)
        return DSEResult(
            best=feasible[0],
            evaluated=len(candidates),
            feasible=len(feasible),
            candidates=tuple(feasible),
            stats=stats,
        )

    # -- cache management ------------------------------------------------------

    def cache_size(self) -> int:
        """Number of memoized program evaluations."""
        with self._lock:
            return len(self._results)

    def clear_cache(self) -> None:
        """Drop every memoized program evaluation (stats preserved)."""
        with self._lock:
            self._results.clear()
