"""Multi-stencil programs: DAGs of dependent stencil stages.

The paper's pipeline synthesizes one stencil at a time; real
applications chain several — blur feeding an edge detector, FDTD's E
and H field updates feeding each other across iterations.  This
package models such programs explicitly:

- :mod:`repro.program.spec` — the program IR: named stages (each a
  single-stencil :class:`~repro.stencil.spec.StencilSpec`) plus edges
  declaring which produced field feeds which consumer input, validated
  for acyclicity and grid/dtype/boundary compatibility.
- :mod:`repro.program.design` — one concrete design point per stage
  plus a program schedule (co-resident or time-shared).
- :mod:`repro.program.model` — per-stage Eq. 1-11 predictions composed
  along the DAG, with on-chip forwarding credit for aligned tilings.
- :mod:`repro.program.sim` — stage-by-stage reference and functional
  execution, bitwise-identical to composing the single-stencil
  executors by hand.
- :mod:`repro.program.dse` — product-space program search through the
  existing tiered :class:`~repro.dse.search.SearchDriver`.
- :mod:`repro.program.frontend` — multi-kernel OpenCL source in, wired
  :class:`ProgramSpec` out.

The fused OpenCL pipeline generator lives with the other code
generators: :func:`repro.codegen.generate_program_pipeline`.
"""

from repro.program.spec import (
    ProgramBuilder,
    ProgramEdge,
    ProgramSpec,
    ProgramStage,
    single_stage_program,
)
from repro.program.design import SCHEDULES, ProgramDesign
from repro.program.library import (
    PROGRAM_BENCHMARKS,
    blur_sobel_threshold,
    fdtd_two_field,
    get_program,
)
from repro.program.sim import (
    ProgramFunctionalExecutor,
    resolve_stage_inputs,
    run_program_functional,
    run_program_reference,
)
from repro.program.model import (
    RECONFIGURATION_CYCLES,
    ProgramBatchPrediction,
    compose_cycles,
    compose_resources,
    forwardable_edges,
    forwarding_savings,
    lower_bound_program_batch,
    predict_program_batch,
    program_lower_bound,
)
from repro.program.evaluator import ProgramEvaluator
from repro.program.dse import (
    optimize_program,
    optimize_stages_independently,
    program_candidates,
    stage_design_options,
)
from repro.program.frontend import program_from_source, split_kernels

__all__ = [
    "ProgramBuilder",
    "ProgramEdge",
    "ProgramSpec",
    "ProgramStage",
    "single_stage_program",
    "SCHEDULES",
    "ProgramDesign",
    "PROGRAM_BENCHMARKS",
    "blur_sobel_threshold",
    "fdtd_two_field",
    "get_program",
    "ProgramFunctionalExecutor",
    "resolve_stage_inputs",
    "run_program_functional",
    "run_program_reference",
    "RECONFIGURATION_CYCLES",
    "ProgramBatchPrediction",
    "compose_cycles",
    "compose_resources",
    "forwardable_edges",
    "forwarding_savings",
    "lower_bound_program_batch",
    "predict_program_batch",
    "program_lower_bound",
    "ProgramEvaluator",
    "optimize_program",
    "optimize_stages_independently",
    "program_candidates",
    "stage_design_options",
    "program_from_source",
    "split_kernels",
]
