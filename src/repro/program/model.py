"""Program-level performance/resource composition along the DAG.

Each stage of a :class:`~repro.program.design.ProgramDesign` is scored
by the existing single-stencil machinery — the Eq. 1-11 performance
model and the FF/LUT/DSP/BRAM estimator — and this module composes the
per-stage numbers into program totals under the design's schedule:

**Co-resident** (all stage pipelines on the fabric at once)::

    cycles    = max(sum(stage_i) - forwarding_savings, max(stage_i))
    resources = sum(stage_i)          (componentwise)

Stages execute back to back (the DAG serializes dependent stages), but
when a producer/consumer pair's tilings align — same region shape and
same tile counts — the inter-stage field can be forwarded on-chip
through pipes instead of spilling through DDR, saving one Eq. 4-6
write plus one read of the whole grid per forwarded edge.  The clamp
at ``max(stage_i)`` keeps the composed estimate no smaller than any
single stage, so forwarding savings can never drive the total below
what the slowest stage alone needs.

**Time-shared** (stages swap onto the fabric one after another)::

    cycles    = sum(stage_i) + RECONFIGURATION_CYCLES * (n - 1)
    resources = max(stage_i)          (componentwise)

Every inter-stage field spills through DDR (its Eq. 4-6 cost is
already inside each stage's own prediction), and each stage transition
pays a reconfiguration penalty.

The module also provides the program analogues of the batch engines:
:func:`predict_program_batch` flattens all stage designs of all
candidates into single :func:`~repro.model.batch.predict_batch` /
:func:`~repro.fpga.batch.estimate_batch` calls and recomposes, and
:func:`program_lower_bound` composes per-stage admissible bounds into
a program bound that never exceeds the composed prediction (each stage
bound never exceeds its stage prediction, and the forwarding savings
subtracted are identical on both sides) — so the tiered search's
Tier-0 screen stays admissible for programs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.fpga.batch import estimate_batch
from repro.fpga.estimator import DesignResources
from repro.fpga.flexcl import FlexCLEstimator
from repro.fpga.resources import ResourceVector
from repro.model.batch import lower_bound_batch, predict_batch
from repro.model.predictor import Fidelity
from repro.opencl.platform import ADM_PCIE_7V3, BoardSpec
from repro.program.design import ProgramDesign
from repro.program.spec import ProgramEdge

#: Cycles charged per stage transition under the time-shared schedule
#: (kernel teardown, partial reconfiguration, relaunch).  A modeling
#: constant, not a measured figure; at 200 MHz it is one millisecond.
RECONFIGURATION_CYCLES: float = 200_000.0


def forwardable_edges(design: ProgramDesign) -> Tuple[ProgramEdge, ...]:
    """Edges whose inter-stage field can be forwarded on-chip.

    Forwarding requires the co-resident schedule and an aligned
    producer/consumer tiling: equal region shapes and equal tile
    counts, so each producer tile streams to exactly one consumer tile
    without a reshuffle stage.  (Grid shape and dtype equality are
    already guaranteed by edge validation.)
    """
    if design.schedule != "coresident":
        return ()
    out = []
    for edge in design.program.edges:
        producer = design.design_for(edge.producer)
        consumer = design.design_for(edge.consumer)
        if (
            producer.tile_grid.region_shape
            == consumer.tile_grid.region_shape
            and producer.tile_grid.counts == consumer.tile_grid.counts
        ):
            out.append(edge)
    return tuple(out)


def forwarding_savings(
    design: ProgramDesign, board: BoardSpec = ADM_PCIE_7V3
) -> float:
    """DDR cycles saved by on-chip forwarding (Eq. 4-6 terms avoided).

    Each forwarded edge avoids one full-grid field write by the
    producer and one full-grid read by the consumer at the board's
    effective DDR rate.
    """
    total = 0.0
    for edge in forwardable_edges(design):
        spec = design.program.stage(edge.producer).spec
        field_bytes = spec.total_cells * spec.element_bytes
        total += 2.0 * field_bytes / board.effective_bytes_per_cycle
    return total


def compose_cycles(
    design: ProgramDesign,
    stage_cycles: Sequence[float],
    board: BoardSpec = ADM_PCIE_7V3,
) -> float:
    """Compose per-stage predictions into the program total."""
    total = float(sum(stage_cycles))
    if design.schedule == "timeshared":
        return total + RECONFIGURATION_CYCLES * (design.num_stages - 1)
    slowest = max(float(c) for c in stage_cycles)
    return max(total - forwarding_savings(design, board), slowest)


def compose_resources(
    schedule: str, stage_resources: Sequence[DesignResources]
) -> DesignResources:
    """Compose per-stage estimates into the program footprint."""
    totals = [r.total for r in stage_resources]
    kernels = [r.kernels for r in stage_resources]
    pipes = [r.pipes for r in stage_resources]
    if schedule == "timeshared":
        def fold(vectors: List[ResourceVector]) -> ResourceVector:
            acc = vectors[0]
            for v in vectors[1:]:
                acc = acc.max_with(v)
            return acc
    else:
        def fold(vectors: List[ResourceVector]) -> ResourceVector:
            acc = vectors[0]
            for v in vectors[1:]:
                acc = acc + v
            return acc
    return DesignResources(
        total=fold(totals), kernels=fold(kernels), pipes=fold(pipes)
    )


def program_lower_bound(
    design: ProgramDesign,
    stage_bounds: Sequence[float],
    board: BoardSpec = ADM_PCIE_7V3,
) -> float:
    """Admissible program bound from per-stage admissible bounds.

    Never exceeds :func:`compose_cycles` of the stage predictions:
    each stage bound is at most its prediction, the same forwarding
    savings are subtracted on both sides, and both are clamped at the
    slowest single stage.
    """
    total = float(sum(stage_bounds))
    if design.schedule == "timeshared":
        return total + RECONFIGURATION_CYCLES * (design.num_stages - 1)
    slowest = max(float(b) for b in stage_bounds)
    return max(total - forwarding_savings(design, board), slowest)


@dataclass(frozen=True)
class ProgramBatchPrediction:
    """Composed per-candidate program predictions and resources."""

    #: Composed program latency per candidate (cycles).
    total: np.ndarray
    #: Per-candidate per-stage latencies, aligned with each program's
    #: topological stage order.
    stage_cycles: Tuple[Tuple[float, ...], ...]
    #: Composed program resources per candidate.
    resources: Tuple[DesignResources, ...]

    def __len__(self) -> int:
        return len(self.total)

    def feasible(self, limit: ResourceVector) -> np.ndarray:
        """Boolean mask: which programs fit within the shared budget."""
        return np.asarray(
            [r.total.fits_within(limit) for r in self.resources],
            dtype=bool,
        )


def predict_program_batch(
    designs: Sequence[ProgramDesign],
    board: BoardSpec = ADM_PCIE_7V3,
    fidelity: Fidelity = Fidelity.REFINED,
    flexcl: Optional[FlexCLEstimator] = None,
) -> ProgramBatchPrediction:
    """Predict composed latency + resources for a batch of programs.

    Flattens every candidate's stage designs into one
    :func:`~repro.model.batch.predict_batch` and one
    :func:`~repro.fpga.batch.estimate_batch` call, then recomposes the
    per-stage results along each candidate's DAG under its schedule.

    Raises:
        BatchRangeError: when any stage design's geometry exceeds the
            batch engines' exact-parity range (fall back to scalar
            per-stage scoring).
    """
    designs = list(designs)
    flexcl = flexcl or FlexCLEstimator()
    flat = []
    offsets = []
    for pdesign in designs:
        offsets.append(len(flat))
        flat.extend(d for _name, d in pdesign.stage_designs)
    offsets.append(len(flat))
    if flat:
        prediction = predict_batch(
            flat, board=board, fidelity=fidelity, flexcl=flexcl
        )
        resources = estimate_batch(flat, flexcl=flexcl)
    total = np.zeros(len(designs), dtype=np.float64)
    stage_cycles: List[Tuple[float, ...]] = []
    composed: List[DesignResources] = []
    for i, pdesign in enumerate(designs):
        lo, hi = offsets[i], offsets[i + 1]
        cycles = tuple(float(prediction.total[j]) for j in range(lo, hi))
        stage_res = [resources.design_resources(j) for j in range(lo, hi)]
        total[i] = compose_cycles(pdesign, cycles, board)
        stage_cycles.append(cycles)
        composed.append(compose_resources(pdesign.schedule, stage_res))
    return ProgramBatchPrediction(
        total=total,
        stage_cycles=tuple(stage_cycles),
        resources=tuple(composed),
    )


def lower_bound_program_batch(
    designs: Sequence[ProgramDesign],
    board: BoardSpec = ADM_PCIE_7V3,
    fidelity: Fidelity = Fidelity.REFINED,
    flexcl: Optional[FlexCLEstimator] = None,
) -> np.ndarray:
    """Admissible composed lower bounds for a batch of programs.

    Raises:
        BatchRangeError: when any stage design exceeds the batch
            engines' exact-parity range.
    """
    designs = list(designs)
    flexcl = flexcl or FlexCLEstimator()
    flat = []
    offsets = []
    for pdesign in designs:
        offsets.append(len(flat))
        flat.extend(d for _name, d in pdesign.stage_designs)
    offsets.append(len(flat))
    if flat:
        bounds = lower_bound_batch(flat, fidelity=fidelity, flexcl=flexcl)
    out = np.zeros(len(designs), dtype=np.float64)
    for i, pdesign in enumerate(designs):
        lo, hi = offsets[i], offsets[i + 1]
        stage_bounds = [float(bounds[j]) for j in range(lo, hi)]
        out[i] = program_lower_bound(pdesign, stage_bounds, board)
    return out
