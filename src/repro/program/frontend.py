"""Build a :class:`ProgramSpec` from multi-kernel OpenCL source.

The single-kernel frontend (:mod:`repro.frontend`) recovers one
stencil pattern per ``__kernel`` function; this module splits a
translation unit containing several kernels, extracts each one, and
wires the DAG by name: when a later kernel reads (as state or aux) an
array name that an earlier kernel updates as a field, an edge is
inferred from the most recent such producer.  Kernel declaration order
is program order — sources are written top to bottom.

This is the convenience path for paper-style "hand me the OpenCL"
input; the :class:`~repro.program.spec.ProgramBuilder` API remains the
primary, fully-explicit way to construct programs.
"""

from __future__ import annotations

import re
from typing import Dict, Mapping, Optional, Sequence, Tuple

from repro.errors import ExtractionError
from repro.frontend import extract_features
from repro.program.spec import ProgramBuilder, ProgramSpec
from repro.stencil.spec import StencilSpec

_KERNEL_RE = re.compile(r"__kernel\s+\w+[\w\s*]*?\b(\w+)\s*\(")


def split_kernels(source: str) -> Tuple[Tuple[str, str], ...]:
    """Split a translation unit into ``(kernel_name, chunk)`` pairs.

    Each chunk runs from its ``__kernel`` keyword to the next one (or
    the end of the source), so per-kernel extraction sees exactly one
    kernel definition.
    """
    matches = list(_KERNEL_RE.finditer(source))
    if not matches:
        raise ExtractionError(
            "No __kernel definitions found in program source"
        )
    chunks = []
    for i, match in enumerate(matches):
        start = match.start()
        end = (
            matches[i + 1].start() if i + 1 < len(matches) else len(source)
        )
        chunks.append((match.group(1), source[start:end]))
    return tuple(chunks)


def program_from_source(
    source: str,
    *,
    grid_shape: Sequence[int],
    iterations: int,
    name: str = "user-program",
    stage_iterations: Optional[Mapping[str, int]] = None,
    field_map: Optional[Mapping[str, Mapping[str, str]]] = None,
    aux: Optional[Mapping[str, Sequence[str]]] = None,
) -> ProgramSpec:
    """Extract every kernel and wire the dataflow DAG by array name.

    Args:
        source: OpenCL-C text containing one or more ``__kernel``
            definitions, in program order.
        grid_shape: shared grid extents of every stage.
        iterations: default per-stage iteration count.
        name: program name.
        stage_iterations: per-kernel iteration overrides, keyed by
            kernel name.
        field_map: per-kernel written-array → state-field mappings
            (see :class:`repro.frontend.FeatureExtractor`).
        aux: per-kernel read-only auxiliary array names.

    Returns:
        The validated :class:`ProgramSpec`.
    """
    builder = ProgramBuilder(name)
    produced: Dict[str, Tuple[str, str]] = {}
    pending = []
    for kernel_name, chunk in split_kernels(source):
        features = extract_features(
            chunk,
            name=kernel_name,
            field_map=(field_map or {}).get(kernel_name),
            aux=tuple((aux or {}).get(kernel_name, ())),
        )
        spec = StencilSpec(
            name=kernel_name,
            pattern=features.pattern,
            grid_shape=tuple(grid_shape),
            iterations=int(
                (stage_iterations or {}).get(kernel_name, iterations)
            ),
            dtype=features.dtype,
        )
        builder.stage(kernel_name, spec)
        # Wire each of this stage's inputs to the most recent earlier
        # stage that updates an identically-named field.
        for target in (
            tuple(features.pattern.fields) + tuple(features.pattern.aux)
        ):
            if target in produced:
                producer_stage, producer_field = produced[target]
                pending.append(
                    (producer_stage, producer_field, kernel_name, target)
                )
        for field in features.pattern.fields:
            produced[field] = (kernel_name, field)
    for producer, field, consumer, target in pending:
        builder.connect(producer, field, consumer, target)
    return builder.build()
