"""Program-level design-space exploration.

The program space is the product of per-stage single-stencil spaces:
every stage independently picks a ``(parallelism, tile shape, fusion
depth, balancing)`` point from the same enumerations the paper's
single-stencil searches use (:func:`~repro.dse.optimizer.full_space_candidates`
with tighter caps — the product grows multiplicatively).  Candidates
stream lazily through the existing tiered
:class:`~repro.dse.search.SearchDriver`, so program searches get the
vectorized Tier-0 screen (per-stage admissible bounds composed along
the DAG), chunked O(chunk) residency, resume checkpoints, and sharding
for free.

:func:`optimize_program` is the program analogue of ``optimize_full``;
:func:`optimize_stages_independently` is the ablation baseline the
benchmark suite compares against — each stage optimized alone under
the same shared budget, then composed.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterator, Optional, Sequence, Tuple

from repro.dse.constraints import ResourceBudget
from repro.dse.evaluator import DSEResult, EvaluatedDesign
from repro.dse.optimizer import full_space_candidates
from repro.dse.search import SearchDriver
from repro.errors import DesignSpaceError
from repro.fpga.resources import FpgaDevice, VIRTEX7_690T
from repro.opencl.platform import ADM_PCIE_7V3, BoardSpec
from repro.program.design import SCHEDULES, ProgramDesign
from repro.program.evaluator import ProgramEvaluator
from repro.program.spec import ProgramSpec
from repro.stencil.spec import StencilSpec
from repro.tiling.design import DesignKind, StencilDesign

__all__ = [
    "optimize_program",
    "optimize_stages_independently",
    "program_candidates",
    "stage_design_options",
]

#: Default per-stage design kinds explored by ``optimize_program``.
DEFAULT_KINDS: Tuple[DesignKind, ...] = (
    DesignKind.BASELINE,
    DesignKind.PIPE_SHARED,
)


def stage_design_options(
    spec: StencilSpec,
    kinds: Sequence[DesignKind] = DEFAULT_KINDS,
    unroll: int = 1,
    max_kernels: int = 2,
    max_fused_depth: int = 4,
    max_tile_options: int = 1,
) -> Tuple[StencilDesign, ...]:
    """Materialize one stage's bounded design options, in stable order.

    Reuses the single-stencil full-space enumeration with tight caps
    (the program space is the *product* of these per-stage lists, so
    each list must stay small).  The order is deterministic across
    runs — the product enumeration must replay identically for
    checkpoint resume.
    """
    options = []
    for kind in kinds:
        options.extend(
            full_space_candidates(
                spec,
                kind,
                unroll=unroll,
                max_kernels=max_kernels,
                max_fused_depth=max_fused_depth,
                max_tile_options=max_tile_options,
            )
        )
    if not options:
        raise DesignSpaceError(
            f"No stage design options for workload {spec.name!r} under "
            f"kinds {[k.value for k in kinds]}"
        )
    return tuple(options)


def program_candidates(
    program: ProgramSpec,
    options: Dict[str, Sequence[StencilDesign]],
    schedule: str = "coresident",
) -> Iterator[ProgramDesign]:
    """Lazily enumerate the product space of per-stage options.

    Stages vary in topological order with the last stage innermost;
    the stream is deterministic given deterministic option lists, as
    checkpoint replay requires.
    """
    order = program.topo_order()
    for name in order:
        if name not in options:
            raise DesignSpaceError(
                f"No design options supplied for stage {name!r}"
            )
    per_stage = [tuple(options[name]) for name in order]
    for combo in itertools.product(*per_stage):
        yield ProgramDesign(
            program=program,
            stage_designs=tuple(zip(order, combo)),
            schedule=schedule,
        )


def _resolve_program_evaluator(
    evaluator: Optional[ProgramEvaluator],
    board: BoardSpec,
    driver: Optional[SearchDriver],
) -> ProgramEvaluator:
    if driver is not None:
        engine = driver.evaluator
        if not isinstance(engine, ProgramEvaluator):
            raise DesignSpaceError(
                "optimize_program needs a driver built on a "
                "ProgramEvaluator; wrap the driver's engine with "
                "ProgramEvaluator(stage_engine=...) first"
            )
        return engine
    if evaluator is not None:
        return evaluator
    return ProgramEvaluator(board=board)


def optimize_program(
    program: ProgramSpec,
    device: FpgaDevice = VIRTEX7_690T,
    board: BoardSpec = ADM_PCIE_7V3,
    budget: Optional[ResourceBudget] = None,
    schedule: str = "coresident",
    kinds: Sequence[DesignKind] = DEFAULT_KINDS,
    unroll: int = 1,
    max_kernels: int = 2,
    max_fused_depth: int = 4,
    max_tile_options: int = 1,
    evaluator: Optional[ProgramEvaluator] = None,
    driver: Optional[SearchDriver] = None,
) -> DSEResult:
    """Co-optimize every stage's design under one shared budget.

    Args:
        program: the validated program DAG.
        device: budget source when ``budget`` is omitted.
        board: platform the stage models evaluate against.
        budget: shared resource budget the *composed* program must fit.
        schedule: ``"coresident"`` or ``"timeshared"``.
        kinds: per-stage design kinds to enumerate.
        unroll, max_kernels, max_fused_depth, max_tile_options:
            per-stage enumeration caps (the program space is their
            product across stages — keep them tight).
        evaluator: a shared :class:`ProgramEvaluator` (one is built
            when omitted; ignored when ``driver`` carries its own).
        driver: a tiered :class:`~repro.dse.search.SearchDriver` built
            on a :class:`ProgramEvaluator` for chunked screening,
            checkpoint resume, and sharding; the default passthrough
            driver explores exhaustively.

    Returns:
        The usual :class:`~repro.dse.evaluator.DSEResult`, with
        ``best.design`` a :class:`ProgramDesign`.
    """
    if schedule not in SCHEDULES:
        raise DesignSpaceError(
            f"Unknown program schedule {schedule!r}; supported: {SCHEDULES}"
        )
    engine = _resolve_program_evaluator(evaluator, board, driver)
    if budget is None:
        budget = ResourceBudget.from_device(device)
    options = {
        stage.name: stage_design_options(
            stage.spec,
            kinds=kinds,
            unroll=unroll,
            max_kernels=max_kernels,
            max_fused_depth=max_fused_depth,
            max_tile_options=max_tile_options,
        )
        for stage in program.stages
    }
    candidates = program_candidates(program, options, schedule)
    if driver is None:
        driver = SearchDriver(evaluator=engine, chunk_size=None)
    key = None
    if driver.checkpoint is not None:
        from repro.store.backing import digest

        prefix = driver.search_key or "search"
        identity = {
            "program": program.signature(),
            "schedule": schedule,
            "kinds": [k.value for k in kinds],
            "unroll": unroll,
            "max_kernels": max_kernels,
            "max_fused_depth": max_fused_depth,
            "max_tile_options": max_tile_options,
            "budget": budget.label,
        }
        key = f"{prefix}:program:{digest(identity)[:12]}"
    return driver.run(candidates, budget, key=key)


def optimize_stages_independently(
    program: ProgramSpec,
    device: FpgaDevice = VIRTEX7_690T,
    board: BoardSpec = ADM_PCIE_7V3,
    budget: Optional[ResourceBudget] = None,
    schedule: str = "coresident",
    kinds: Sequence[DesignKind] = DEFAULT_KINDS,
    unroll: int = 1,
    max_kernels: int = 2,
    max_fused_depth: int = 4,
    max_tile_options: int = 1,
    evaluator: Optional[ProgramEvaluator] = None,
) -> Tuple[Optional[EvaluatedDesign], Dict[str, DSEResult]]:
    """Ablation baseline: optimize each stage alone, then compose.

    Each stage is optimized in isolation under the *full* shared
    budget (the greedy strategy a user without program-level DSE would
    apply), and the per-stage winners are composed into one
    :class:`ProgramDesign` scored by the program evaluator.

    Returns:
        ``(composed, per_stage)`` — the composed program's evaluation
        (``None`` when the greedy composition violates the shared
        budget) and each stage's own :class:`DSEResult`.
    """
    engine = evaluator or ProgramEvaluator(board=board)
    if budget is None:
        budget = ResourceBudget.from_device(device)
    per_stage: Dict[str, DSEResult] = {}
    chosen = []
    for name in program.topo_order():
        spec = program.stage(name).spec
        options = stage_design_options(
            spec,
            kinds=kinds,
            unroll=unroll,
            max_kernels=max_kernels,
            max_fused_depth=max_fused_depth,
            max_tile_options=max_tile_options,
        )
        result = engine.stage_engine.explore(list(options), budget)
        per_stage[name] = result
        chosen.append((name, result.best.design))
    composed_design = ProgramDesign(
        program=program, stage_designs=tuple(chosen), schedule=schedule
    )
    resources = engine.resources(composed_design)
    if not resources.total.fits_within(budget.limit):
        return None, per_stage
    composed = EvaluatedDesign(
        design=composed_design,
        predicted_cycles=engine.predict_cycles(composed_design),
        resources=resources,
    )
    return composed, per_stage
