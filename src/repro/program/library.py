"""Multi-stage program benchmarks (DAGs of dependent stencils).

Two canonical programs ship with the framework:

- ``blur-sobel-threshold`` — the classic image pipeline: an iterated
  Gaussian blur feeds a Sobel-x gradient which feeds an affine
  contrast/threshold stage (see the substitution note on
  :func:`repro.stencil.library.contrast_threshold_2d` for why the
  threshold is linearized).  A pure 3-stage chain.
- ``fdtd-two-field`` — the FDTD E/H update split into a true 2-stage
  DAG: the E-update reads the H field as a read-only auxiliary input,
  then the H-update reads the *updated* E field through an aux-target
  edge.  The stage coefficients mirror the monolithic ``fdtd-2d``
  benchmark; the independently-seeded H input is deterministic test
  data, not a physical initial condition.

Each program's reference oracle is the stage-by-stage composition of
:class:`~repro.stencil.reference.ReferenceExecutor` runs
(:func:`repro.program.sim.run_program_reference`); the fused functional
simulator must match it bitwise.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence, Tuple

from repro.errors import SpecificationError
from repro.program.spec import ProgramBuilder, ProgramSpec
from repro.stencil.library import (
    contrast_threshold_2d,
    gaussian_blur_2d,
    sobel_x_2d,
)
from repro.stencil.pattern import FieldUpdate, StencilPattern, Tap
from repro.stencil.spec import StencilSpec


def blur_sobel_threshold(
    grid: Sequence[int] = (1920, 1080),
    blur_iterations: int = 8,
    iterations: int = 1,
) -> ProgramSpec:
    """Image pipeline: Gaussian blur -> Sobel-x -> contrast threshold.

    Args:
        grid: shared grid extents of all three stages.
        blur_iterations: iteration count of the blur stage (the
            downstream stages run ``iterations`` each).
        iterations: iteration count of the sobel/threshold stages.
    """
    grid = tuple(grid)
    builder = ProgramBuilder("blur-sobel-threshold")
    builder.stage("blur", gaussian_blur_2d(grid=grid, iterations=blur_iterations))
    builder.stage("sobel", sobel_x_2d(grid=grid, iterations=iterations))
    builder.stage(
        "threshold", contrast_threshold_2d(grid=grid, iterations=iterations)
    )
    builder.connect("blur", "a", "sobel")
    builder.connect("sobel", "a", "threshold")
    return builder.build()


def _e_update_spec(
    grid: Tuple[int, ...], iterations: int
) -> StencilSpec:
    """E-field half step: ``e += 0.5 * (h[-1,0] - h[0,0])``."""
    pattern = StencilPattern(
        name="fdtd-e-update",
        ndim=2,
        fields=("e",),
        updates={
            "e": FieldUpdate(
                taps=(
                    Tap("e", (0, 0), 1.0),
                    Tap("h", (0, 0), -0.5),
                    Tap("h", (-1, 0), 0.5),
                )
            )
        },
        aux=("h",),
    )
    return StencilSpec(
        name="fdtd-e-update",
        pattern=pattern,
        grid_shape=grid,
        iterations=iterations,
        source="Polybench",
    )


def _h_update_spec(
    grid: Tuple[int, ...], iterations: int
) -> StencilSpec:
    """H-field half step: ``h += 0.7 * (e[0,0] - e[0,1])``."""
    pattern = StencilPattern(
        name="fdtd-h-update",
        ndim=2,
        fields=("h",),
        updates={
            "h": FieldUpdate(
                taps=(
                    Tap("h", (0, 0), 1.0),
                    Tap("e", (0, 1), -0.7),
                    Tap("e", (0, 0), 0.7),
                )
            )
        },
        aux=("e",),
    )
    return StencilSpec(
        name="fdtd-h-update",
        pattern=pattern,
        grid_shape=grid,
        iterations=iterations,
        source="Polybench",
    )


def fdtd_two_field(
    grid: Sequence[int] = (2048, 2048), iterations: int = 250
) -> ProgramSpec:
    """Two-field FDTD (E/H update) as a true 2-stage DAG.

    The E-update stage reads H as a read-only auxiliary array; the edge
    then feeds the updated E field into the H-update stage's auxiliary
    input — exercising aux-target edges through the whole stack.
    """
    grid = tuple(grid)
    builder = ProgramBuilder("fdtd-two-field")
    builder.stage("e-update", _e_update_spec(grid, iterations))
    builder.stage("h-update", _h_update_spec(grid, iterations))
    builder.connect("e-update", "e", "h-update", target="e")
    return builder.build()


PROGRAM_BENCHMARKS: Dict[str, Callable[..., ProgramSpec]] = {
    "blur-sobel-threshold": blur_sobel_threshold,
    "fdtd-two-field": fdtd_two_field,
}


def get_program(
    name: str,
    grid: Optional[Sequence[int]] = None,
    iterations: Optional[int] = None,
    **kwargs,
) -> ProgramSpec:
    """Build a program benchmark by name, passing overrides through.

    Args:
        name: key in :data:`PROGRAM_BENCHMARKS`.
        grid: optional shared grid override.
        iterations: optional per-stage iteration override.
        **kwargs: forwarded to the builder.
    """
    try:
        builder = PROGRAM_BENCHMARKS[name]
    except KeyError:
        raise SpecificationError(
            f"Unknown program benchmark {name!r}; known: "
            f"{sorted(PROGRAM_BENCHMARKS)}"
        ) from None
    if grid is not None:
        kwargs["grid"] = tuple(grid)
    if iterations is not None:
        kwargs["iterations"] = int(iterations)
    return builder(**kwargs)
