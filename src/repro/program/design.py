"""A complete hardware mapping of a stencil program.

A :class:`ProgramDesign` binds one :class:`~repro.tiling.design.StencilDesign`
to every stage of a :class:`~repro.program.spec.ProgramSpec`, plus a
**schedule** deciding how stages share the device:

- ``"coresident"`` — all stage pipelines are instantiated on the fabric
  at once; resources add up, and aligned producer/consumer tilings can
  forward inter-stage fields on-chip instead of spilling through DDR.
- ``"timeshared"`` — stages execute one after another, each getting the
  whole fabric; resources are the componentwise maximum, every
  inter-stage field spills through DDR, and each stage transition pays
  a reconfiguration penalty.

Like :class:`~repro.tiling.design.StencilDesign`, a program design is
frozen and content-addressed: :meth:`ProgramDesign.signature` keys the
evaluator memo and the persistent design store.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.errors import DesignSpaceError
from repro.program.spec import ProgramSpec
from repro.tiling.design import StencilDesign

#: Supported program schedules.
SCHEDULES: Tuple[str, ...] = ("coresident", "timeshared")


@dataclass(frozen=True)
class ProgramDesign:
    """One point of the program-level design space.

    Attributes:
        program: the program being mapped.
        stage_designs: ``(stage_name, design)`` pairs in the program's
            topological order — one per stage, where each design's spec
            must be the stage's spec.
        schedule: ``"coresident"`` or ``"timeshared"``.
    """

    program: ProgramSpec
    stage_designs: Tuple[Tuple[str, StencilDesign], ...]
    schedule: str = "coresident"
    _signature: Tuple = field(
        init=False, repr=False, compare=False, default=None
    )

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "stage_designs", tuple(self.stage_designs)
        )
        if self.schedule not in SCHEDULES:
            raise DesignSpaceError(
                f"Unknown program schedule {self.schedule!r}; "
                f"supported: {SCHEDULES}"
            )
        order = self.program.topo_order()
        got = tuple(name for name, _ in self.stage_designs)
        if got != order:
            raise DesignSpaceError(
                f"Stage designs must follow the program's topological "
                f"order {order}, got {got}"
            )
        for name, design in self.stage_designs:
            expected = self.program.stage(name).spec
            if design.spec.signature() != expected.signature():
                raise DesignSpaceError(
                    f"Design for stage {name!r} was built for workload "
                    f"{design.spec.name!r}, expected "
                    f"{expected.name!r} (signatures differ)"
                )

    @property
    def num_stages(self) -> int:
        """Number of stages."""
        return len(self.stage_designs)

    def design_for(self, stage_name: str) -> StencilDesign:
        """The design bound to a stage."""
        for name, design in self.stage_designs:
            if name == stage_name:
                return design
        raise DesignSpaceError(
            f"Program design has no stage {stage_name!r}"
        )

    def designs(self) -> Dict[str, StencilDesign]:
        """Stage designs keyed by stage name (topological order)."""
        return dict(self.stage_designs)

    def signature(self) -> Tuple:
        """Canonical hashable identity of the mapped program."""
        if self._signature is None:
            object.__setattr__(
                self,
                "_signature",
                (
                    "program-design",
                    self.program.signature(),
                    tuple(
                        (name, design.signature())
                        for name, design in self.stage_designs
                    ),
                    self.schedule,
                ),
            )
        return self._signature

    def describe(self) -> str:
        """Multi-line human-readable description."""
        lines = [f"{self.program.name} [{self.schedule}]"]
        for name, design in self.stage_designs:
            lines.append(f"  {name}: {design.describe()}")
        return "\n".join(lines)
